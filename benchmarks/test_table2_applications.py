"""Table 2: application benchmark types and data sets.

Benchmarks the workload construction (setup + plan precomputation) for
every application and prints the Table 2 comparison.
"""

import pytest

from repro.harness.tables import table2
from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.workloads import APPLICATIONS, make_workload

from conftest import PRESET


def build_all():
    workloads = []
    for app in APPLICATIONS:
        wl = make_workload(app, PRESET)
        ipc = GlobalIpcServer(num_nodes=8, page_bytes=1024)
        wl.setup(AddressSpaceLayout(ipc, 1024), 32)
        workloads.append(wl)
    return workloads


def test_table2_workload_construction(benchmark):
    workloads = benchmark.pedantic(build_all, rounds=1, iterations=1)
    assert len(workloads) == len(APPLICATIONS)
    print()
    print(table2().render())
