"""Ablation: directory cache size.

The paper models the directory as DRAM (22-cycle access) fronted by an
8K-entry cache (2-cycle hit).  This bench sweeps the cache size on a
remote-miss-heavy workload and checks that the hit rate — and with it
execution time — degrades monotonically as the cache shrinks.
"""

import pytest

from repro.sim.config import MachineConfig

from conftest import run_spec

SIZES = (8192, 512, 16)


def test_directory_cache_size(benchmark):
    def sweep():
        results = {}
        for entries in SIZES:
            cfg = MachineConfig(directory_cache_entries=entries)
            results[entries] = run_spec("radix", "lanuma", config=cfg)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rates = {}
    for entries, result in results.items():
        stats = result.stats
        hits = stats.directory_cache_hits
        misses = stats.directory_cache_misses
        rates[entries] = hits / max(1, hits + misses)
        print("dir cache %5d entries: hit rate %.3f, %d cycles"
              % (entries, rates[entries], stats.execution_cycles))
    assert rates[8192] > rates[512] > rates[16]
    assert (results[16].stats.execution_cycles
            >= results[8192].stats.execution_cycles)
