"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure of
the paper.  Policy suites are expensive (six full machine simulations
per application), so they are computed once per session and shared:
``get_suite(app)`` runs lazily and caches.

The benchmarks default to the ``small`` preset so the whole directory
finishes in a few minutes; set ``PRISM_BENCH_PRESET=default`` for the
paper-scale runs recorded in EXPERIMENTS.md.  Set ``PRISM_BENCH_JOBS=N``
to fan the policy suites out across N worker processes.
"""

from __future__ import annotations

import os

from repro.harness.session import ExperimentSpec, Session

PRESET = os.environ.get("PRISM_BENCH_PRESET", "small")

SESSION = Session(jobs=int(os.environ.get("PRISM_BENCH_JOBS", "1")))

_SUITES: "dict[str, object]" = {}


def run_spec(workload: str, policy: str, **spec_kwargs):
    """One (workload, policy) cell through the shared session."""
    return SESSION.run(ExperimentSpec(workload, policy, preset=PRESET,
                                      **spec_kwargs))


def get_suite(app: str):
    """The 6-policy suite for ``app`` (cached per session)."""
    suite = _SUITES.get(app)
    if suite is None:
        suite = SESSION.run_workload_suite(app, preset=PRESET)
        _SUITES[app] = suite
    return suite


def have_suite(app: str) -> bool:
    return app in _SUITES
