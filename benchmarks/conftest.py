"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure of
the paper.  Policy suites are expensive (six full machine simulations
per application), so they are computed once per session and shared:
``get_suite(app)`` runs lazily and caches.

The benchmarks default to the ``small`` preset so the whole directory
finishes in a few minutes; set ``PRISM_BENCH_PRESET=default`` for the
paper-scale runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

from repro.harness.runner import run_suite

PRESET = os.environ.get("PRISM_BENCH_PRESET", "small")

_SUITES: "dict[str, object]" = {}


def get_suite(app: str):
    """The 6-policy suite for ``app`` (cached per session)."""
    suite = _SUITES.get(app)
    if suite is None:
        suite = run_suite(app, preset=PRESET)
        _SUITES[app] = suite
    return suite


def have_suite(app: str) -> bool:
    return app in _SUITES
