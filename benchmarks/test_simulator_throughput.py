"""Meta-benchmark: the simulator's own throughput.

Not a paper artifact — this tracks how many simulated references per
second the pure-Python machine sustains, so regressions in the hot
reference path are caught.  Unlike the table/figure benchmarks this one
uses real multi-round statistics.
"""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload
from repro.workloads.synthetic import SyntheticWorkload


def run_small_machine():
    machine = Machine(MachineConfig(num_nodes=2, cpus_per_node=2,
                                    directory_cache_entries=256),
                      policy="scoma")
    wl = SyntheticWorkload("block", shared_kb=64,
                           refs_per_cpu_per_iter=2000, iterations=2)
    return machine.run(wl)


def test_reference_throughput(benchmark):
    result = benchmark.pedantic(run_small_machine, rounds=3, iterations=1,
                                warmup_rounds=1)
    refs = result.stats.references
    seconds = benchmark.stats.stats.mean
    print("\n%d simulated references in %.2fs -> %.0f refs/s"
          % (refs, seconds, refs / seconds))
    # Canary: the hot path should comfortably exceed 10k refs/s even on
    # slow hardware; a 10x regression trips this.
    assert refs / seconds > 10_000
