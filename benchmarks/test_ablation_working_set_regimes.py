"""Ablation: the section 6 working-set regimes.

The paper's summary conclusion:

    "There is no significant performance difference for working sets
    that fit within the L1/L2 caches.  For working sets larger than the
    L1/L2 caches, S-COMA's page cache acts as a third level cache and
    outperforms LA-NUMA.  For working sets larger than the page cache,
    more paging occurs in S-COMA, and LA-NUMA performs better."

A controlled synthetic block-sweep workload (random visit order) is run
in each of the three regimes under both pure policies.
"""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.synthetic import SyntheticWorkload

REGIMES = {
    # name: (shared_kb, sweep_fraction, scoma page-cache cap per node)
    "fits_l2": (128, 0.5, None),
    "fits_page_cache": (1024, 1.0, None),
    "exceeds_page_cache": (1024, 1.0, 8),
}


def run(policy, shared_kb, frac, cap):
    machine = Machine(MachineConfig(page_cache_frames=cap), policy=policy)
    wl = SyntheticWorkload("block", shared_kb=shared_kb,
                           sweep_fraction=frac, iterations=4,
                           refs_per_cpu_per_iter=3000,
                           cycles_per_ref=20, random_order=True)
    return machine.run(wl).stats.execution_cycles


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_working_set_regime(benchmark, regime):
    shared_kb, frac, cap = REGIMES[regime]

    def pair():
        return (run("scoma", shared_kb, frac, cap),
                run("lanuma", shared_kb, frac, None))

    scoma, lanuma = benchmark.pedantic(pair, rounds=1, iterations=1)
    ratio = lanuma / scoma
    print("\n%s: scoma=%d lanuma=%d lanuma/scoma=%.2f"
          % (regime, scoma, lanuma, ratio))
    if regime == "fits_l2":
        assert 0.9 < ratio < 1.1       # "no significant difference"
    elif regime == "fits_page_cache":
        assert ratio > 2.0             # S-COMA's L3 effect
    else:
        assert ratio < 1.0             # paging tips it to LA-NUMA
