"""Table 4: remote misses and page-outs, static configurations.

The paper's shape: SCOMA has the fewest remote misses (its page cache
absorbs capacity misses locally); LANUMA the most; SCOMA-70 sits in
between and is the only static configuration that pages out.
"""

import pytest

from repro.harness.tables import table4
from repro.workloads import APPLICATIONS

from conftest import get_suite


def test_table4_static_configurations(benchmark):
    suites = benchmark.pedantic(
        lambda: {app: get_suite(app) for app in APPLICATIONS},
        rounds=1, iterations=1)
    print()
    print(table4(suites).render())
    for app, suite in suites.items():
        scoma = suite.remote_misses("scoma")
        lanuma = suite.remote_misses("lanuma")
        scoma70 = suite.remote_misses("scoma-70")
        assert scoma <= scoma70, app
        assert scoma < lanuma, app
        assert suite.page_outs("scoma") == 0
        assert suite.page_outs("lanuma") == 0
        assert suite.page_outs("scoma-70") > 0, app
