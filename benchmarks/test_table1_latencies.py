"""Table 1: cache miss latencies and page fault overheads.

Runs the memory-latency microbenchmark on the simulated machine and
checks every row against the paper's Table 1.
"""

import pytest

from repro.harness.tables import table1
from repro.sim.latency import PAPER_TABLE1
from repro.workloads.microbench import run_microbenchmark


@pytest.fixture(scope="module")
def measured(benchmark_holder={}):
    return run_microbenchmark()


def test_table1_microbenchmark(benchmark):
    measured = benchmark.pedantic(run_microbenchmark, rounds=1, iterations=1)
    print()
    print(table1().render())
    for row, paper in PAPER_TABLE1.items():
        assert abs(measured[row] - paper) <= max(2, 0.02 * paper), \
            "%s: measured %d, paper %d" % (row, measured[row], paper)
