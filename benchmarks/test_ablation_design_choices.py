"""Ablations for the design choices DESIGN.md calls out.

* home-page-status flags (section 3.3 optimization): cheaper repeat
  faults under a paging-heavy policy;
* lazy home migration (section 3.5): a migratory synthetic workload
  where chasing the hot requester pays;
* CC-NUMA extension mode vs LA-NUMA (section 3.2 / 4.3): the measured
  cost of the extra PIT translation layer;
* directory-cached client frame numbers (section 4.3 mitigation): the
  invalidation path's hash search replaced by the fast PIT path.
"""

from dataclasses import replace

import pytest

from repro.harness.runner import derive_page_cache_caps
from repro.sim.config import MachineConfig
from repro.sim.latency import LatencyModel
from repro.sim.machine import Machine
from repro.workloads.synthetic import SyntheticWorkload

from conftest import run_spec


def test_home_status_flag_benefit(benchmark):
    """Repeat client faults skip the home round-trip when flags are on;
    a thrashing SCOMA-70-style run re-faults constantly."""
    def pair():
        results = {}
        scoma = run_spec("water-nsq", "scoma")
        caps = derive_page_cache_caps(scoma, fraction=0.4)
        for flag in (False, True):
            cfg = MachineConfig(home_status_flags=flag)
            results[flag] = run_spec("water-nsq", "scoma-70", config=cfg,
                                     page_cache_override=tuple(caps))
        return results

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    off = results[False].stats
    on = results[True].stats
    print("\nhome-status flags off: %d cycles (%d remote-home faults)"
          % (off.execution_cycles,
             sum(n.page_faults_remote_home for n in off.nodes)))
    print("home-status flags on:  %d cycles (%d remote-home faults)"
          % (on.execution_cycles,
             sum(n.page_faults_remote_home for n in on.nodes)))
    assert (sum(n.page_faults_remote_home for n in on.nodes)
            < sum(n.page_faults_remote_home for n in off.nodes))
    assert on.execution_cycles <= off.execution_cycles * 1.02


def test_lazy_migration_benefit(benchmark):
    """A migratory object pattern: with migration enabled the homes
    chase the current owner and remote traffic at stale homes drops."""
    def pair():
        results = {}
        for enabled in (False, True):
            cfg = MachineConfig(enable_migration=enabled,
                                migration_threshold=48)
            machine = Machine(cfg, policy="scoma")
            wl = SyntheticWorkload("migratory", shared_kb=128,
                                   iterations=8, cycles_per_ref=10)
            results[enabled] = machine.run(wl)
        return results

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    static = results[False].stats
    lazy = results[True].stats
    migrations = sum(n.homes_migrated_in for n in lazy.nodes)
    print("\nstatic homes:   %d cycles" % static.execution_cycles)
    print("lazy migration: %d cycles (%d migrations, %d forwards)"
          % (lazy.execution_cycles, migrations,
             sum(n.forwarded_requests for n in lazy.nodes)))
    assert migrations > 0


def test_ccnuma_vs_lanuma(benchmark):
    """LA-NUMA = CC-NUMA + PIT translation; the measured gap must be
    positive but small (the paper's section 4.3 conclusion)."""
    def pair():
        return (run_spec("lu", "lanuma"),
                run_spec("lu", "ccnuma"))

    lanuma, ccnuma = benchmark.pedantic(pair, rounds=1, iterations=1)
    overhead = (lanuma.stats.execution_cycles
                / ccnuma.stats.execution_cycles) - 1.0
    print("\nccnuma: %d cycles, lanuma: %d cycles, PIT overhead %.2f%%"
          % (ccnuma.stats.execution_cycles,
             lanuma.stats.execution_cycles, 100 * overhead))
    assert -0.02 < overhead < 0.10


def test_directory_client_frames_mitigation(benchmark):
    """Section 4.3: with a DRAM PIT, caching client frame numbers in the
    directory recovers part of the invalidation-path cost."""
    def pair():
        results = {}
        for mitigate in (False, True):
            cfg = replace(MachineConfig(directory_caches_client_frames=mitigate),
                          latency=LatencyModel(pit_access=10, pit_hash=40))
            results[mitigate] = run_spec("water-nsq", "scoma", config=cfg)
        return results

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    plain = results[False].stats.execution_cycles
    mitigated = results[True].stats.execution_cycles
    print("\nDRAM PIT, hash reverse:   %d cycles" % plain)
    print("DRAM PIT, dir frame nums: %d cycles (%.2f%% faster)"
          % (mitigated, 100 * (1 - mitigated / plain)))
    assert mitigated <= plain * 1.02
