"""Table 3: page consumption and utilization (SCOMA vs LANUMA).

SCOMA must allocate more real page frames than LANUMA (clients back
shared pages with page-cache memory; LANUMA clients use imaginary
frames) — the memory-consumption half of the paper's tradeoff.
"""

import pytest

from repro.harness.tables import table3
from repro.workloads import APPLICATIONS

from conftest import get_suite


def test_table3_page_frames_and_utilization(benchmark):
    suites = benchmark.pedantic(
        lambda: {app: get_suite(app) for app in APPLICATIONS},
        rounds=1, iterations=1)
    print()
    print(table3(suites).render())
    for app, suite in suites.items():
        scoma = suite.results["scoma"].stats
        lanuma = suite.results["lanuma"].stats
        assert scoma.frames_allocated_total > lanuma.frames_allocated_total, app
        imag = sum(n.imaginary_frames_allocated for n in lanuma.nodes)
        assert imag > 0, app
        assert 0.0 < scoma.average_utilization <= 1.0
        assert 0.0 < lanuma.average_utilization <= 1.0
