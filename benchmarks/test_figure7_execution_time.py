"""Figure 7: execution time under the six page-mode policies.

One benchmark per application; each runs the full policy suite
(SCOMA, LANUMA, SCOMA-70, Dyn-FCFS, Dyn-Util, Dyn-LRU — SCOMA first to
derive the 70% page-cache caps) and prints the figure's series for that
application.  The shape assertions mirror the paper's section 4.3
claims at a tolerance suitable for the scaled machine.
"""

import pytest

from repro.workloads import APPLICATIONS

from conftest import PRESET, get_suite

#: Apps where the paper attributes large LANUMA losses to capacity
#: misses (section 4.3: "SCOMA-70 significantly outperforms LANUMA in
#: Barnes, LU, Ocean and Radix" — all capacity-dominated).
CAPACITY_APPS = ("barnes", "lu", "ocean")


@pytest.mark.parametrize("app", APPLICATIONS)
def test_figure7_app(benchmark, app):
    suite = benchmark.pedantic(get_suite, args=(app,),
                               rounds=1, iterations=1)
    print()
    print("Figure 7 slice — %s (normalized to SCOMA):" % app)
    for policy in ("scoma", "lanuma", "scoma-70",
                   "dyn-fcfs", "dyn-util", "dyn-lru"):
        print("  %-9s %.3f" % (policy, suite.normalized_time(policy)))

    # Shape: SCOMA is the reference optimum; nothing beats it by more
    # than the scaled-machine tolerance.
    for policy in ("lanuma", "scoma-70", "dyn-fcfs", "dyn-util", "dyn-lru"):
        assert suite.normalized_time(policy) > 0.8
    # LANUMA pays for capacity misses on the capacity-dominated apps.
    if app in CAPACITY_APPS:
        assert suite.normalized_time("lanuma") > 1.3
        if PRESET == "default":
            # The SCOMA-70 < LANUMA ordering needs the paper-regime
            # footprint : page-cache ratios of the default preset; the
            # reduced presets over-thrash the 70% cache.
            assert (suite.normalized_time("scoma-70")
                    < suite.normalized_time("lanuma"))
    # Adaptive policies beat the worst static configuration everywhere.
    worst_static = max(suite.normalized_time("lanuma"),
                       suite.normalized_time("scoma-70"))
    best_adaptive = min(suite.normalized_time(p)
                        for p in ("dyn-fcfs", "dyn-util", "dyn-lru"))
    assert best_adaptive < worst_static
