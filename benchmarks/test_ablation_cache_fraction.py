"""Ablation: page-cache size and the Falsafi & Wood reconciliation.

Section 4.3: the paper's SCOMA-70 beats LANUMA where R-NUMA's fixed
320-KB page cache (5%-25% of the needed client pages) favoured
CC-NUMA.  Sweeping the page-cache fraction must show exactly that
crossover: LANUMA wins at small fractions, capped S-COMA wins at the
paper's 70%.
"""

import pytest

from repro.harness.sweep import cache_fraction_sweep, render_sweep

from conftest import PRESET


@pytest.mark.parametrize("app", ("lu", "water-nsq"))
def test_cache_fraction_crossover(benchmark, app):
    sweep = benchmark.pedantic(
        cache_fraction_sweep, args=(app,),
        kwargs={"fractions": (0.1, 0.25, 0.5, 0.7, 0.9),
                "preset": PRESET},
        rounds=1, iterations=1)
    print()
    print(render_sweep(sweep))

    # Monotone improvement with a bigger page cache (page-outs shrink).
    rows = sweep.rows()
    pageouts = [po for _, _, po in rows]
    assert pageouts == sorted(pageouts, reverse=True)

    # Falsafi & Wood's regime: a 10% page cache favours LANUMA...
    assert sweep.normalized(0.1) > sweep.lanuma_normalized * 0.9
    # ...the paper's regime: a 70-90% page cache favours S-COMA.
    assert sweep.normalized(0.9) < sweep.lanuma_normalized
    crossover = sweep.crossover_fraction()
    assert crossover is not None and crossover <= 0.9
