"""Section 4.3: impact of PIT translation overhead (SRAM vs DRAM).

Raises the PIT access time from 2 to 10 cycles under LANUMA clients
(every remote transaction translates through the PIT twice) and checks
that the slowdown stays in the paper's band: "less than 2%" for most
applications, up to 16% for Barnes.
"""

from dataclasses import replace

import pytest

from repro.sim.config import MachineConfig
from repro.sim.latency import LatencyModel

from conftest import run_spec

APPS = ("lu", "radix", "water-spa")


@pytest.mark.parametrize("app", APPS)
def test_pit_dram_slowdown(benchmark, app):
    def run_pair():
        sram = run_spec(app, "lanuma", config=MachineConfig())
        dram = run_spec(app, "lanuma",
                        config=replace(MachineConfig(),
                                       latency=LatencyModel(pit_access=10)))
        return sram, dram

    sram, dram = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    slowdown = (dram.stats.execution_cycles
                / sram.stats.execution_cycles) - 1.0
    print("\n%s: SRAM %d cycles, DRAM %d cycles, slowdown %.1f%%"
          % (app, sram.stats.execution_cycles,
             dram.stats.execution_cycles, 100 * slowdown))
    # A DRAM PIT must cost something but stay modest (paper: 2%-16%).
    assert -0.02 < slowdown < 0.20
