"""Table 5: remote misses and page-outs, adaptive configurations.

The paper's shape: the adaptive policies simultaneously cut remote
misses versus LANUMA and page-outs versus SCOMA-70; Dyn-FCFS performs
no page-outs at all.
"""

import pytest

from repro.harness.tables import table5
from repro.workloads import APPLICATIONS

from conftest import get_suite


def test_table5_adaptive_configurations(benchmark):
    suites = benchmark.pedantic(
        lambda: {app: get_suite(app) for app in APPLICATIONS},
        rounds=1, iterations=1)
    print()
    print(table5(suites).render())
    for app, suite in suites.items():
        lanuma = suite.remote_misses("lanuma")
        for policy in ("dyn-fcfs", "dyn-util", "dyn-lru"):
            # <= with a small tolerance: on communication-dominated apps
            # LANUMA and the adaptives are already close, and timing
            # shifts move a few misses either way.
            assert suite.remote_misses(policy) <= lanuma * 1.05, (app, policy)
        assert suite.page_outs("dyn-fcfs") == 0, app
        for policy in ("dyn-util", "dyn-lru"):
            assert (suite.page_outs(policy)
                    <= suite.page_outs("scoma-70")), (app, policy)
