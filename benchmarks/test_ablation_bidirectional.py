"""Ablation: the bidirectional adaptive policy (section 4.3's remark).

The paper observes that unidirectional demotion (Dyn-Util / Dyn-LRU)
can convert *reuse* pages to LA-NUMA mode, after which "cache capacity
evictions caused the data on those pages to be repeatedly refetched
from remote home nodes", and suggests R-NUMA-style promotion back to
S-COMA.  ``dyn-bidir`` implements that.  The scenario: a hot block
larger than L2 (so refetches miss the processor caches) interleaved
with a cold stream that demotes it every other iteration.
"""

import pytest

from repro.core.policies import DynBidirPolicy, make_policy
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.synthetic import SyntheticWorkload


def run(policy, cap=96):
    machine = Machine(MachineConfig(), policy=policy,
                      page_cache_override=[cap] * 8)
    wl = SyntheticWorkload("reuse_vs_stream", shared_kb=2048, iterations=6,
                           refs_per_cpu_per_iter=3000, cycles_per_ref=10)
    return machine.run(wl)


def test_bidirectional_promotion_recovers_reuse_pages(benchmark):
    def pair():
        return (run(make_policy("dyn-lru")),
                run(DynBidirPolicy(promote_threshold=48)))

    lru, bidir = benchmark.pedantic(pair, rounds=1, iterations=1)
    promotions = sum(n.mode_promotions for n in bidir.stats.nodes)
    print("\ndyn-lru:   %d cycles, %d remote misses"
          % (lru.stats.execution_cycles, lru.stats.remote_misses))
    print("dyn-bidir: %d cycles, %d remote misses, %d promotions"
          % (bidir.stats.execution_cycles, bidir.stats.remote_misses,
             promotions))
    assert promotions > 0
    assert bidir.stats.remote_misses < lru.stats.remote_misses
    assert bidir.stats.execution_cycles < lru.stats.execution_cycles * 0.85
