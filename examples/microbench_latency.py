#!/usr/bin/env python
"""Regenerate Table 1: the memory-latency microbenchmark.

Prints the paper's Table 1 next to the analytic composite of our
latency model and the value the simulator actually measures for each
scenario (uncontended accesses on an idle machine).
"""

from repro.harness.tables import table1


def main() -> int:
    print(table1().render())
    print("\n'Model' is the analytic composition of the calibrated "
          "component latencies;\n'Measured' is what the simulator's "
          "reference path produces for the scenario.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
