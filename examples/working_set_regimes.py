#!/usr/bin/env python
"""The section 6 working-set regimes, demonstrated live.

    "There is no significant performance difference for working sets
    that fit within the L1/L2 caches.  For working sets larger than the
    L1/L2 caches, S-COMA's page cache acts as a third level cache and
    outperforms LA-NUMA.  For working sets larger than the page cache,
    more paging occurs in S-COMA, and LA-NUMA performs better."

Runs a controlled synthetic block workload in each regime under both
pure policies and prints the ratio.
"""

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.synthetic import SyntheticWorkload

REGIMES = (
    ("working set fits L1/L2", 128, 0.5, None),
    ("working set fits the page cache", 1024, 1.0, None),
    ("working set exceeds the page cache", 1024, 1.0, 8),
)


def run(policy, shared_kb, fraction, cap):
    machine = Machine(MachineConfig(page_cache_frames=cap), policy=policy)
    workload = SyntheticWorkload(
        "block", shared_kb=shared_kb, sweep_fraction=fraction,
        iterations=4, refs_per_cpu_per_iter=3000,
        cycles_per_ref=20, random_order=True)
    return machine.run(workload).stats.execution_cycles


def main() -> int:
    print("%-38s %12s %12s %8s" % ("regime", "SCOMA", "LANUMA", "L/S"))
    for label, shared_kb, fraction, cap in REGIMES:
        scoma = run("scoma", shared_kb, fraction, cap)
        lanuma = run("lanuma", shared_kb, fraction, None)
        print("%-38s %12d %12d %8.2f"
              % (label, scoma, lanuma, lanuma / scoma))
    print("\nExpected shape: ~1.0, then >> 1 (page cache as an L3), "
          "then < 1 (paging overheads favour LA-NUMA).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
