#!/usr/bin/env python
"""Reproduce a Figure 7 slice: one application under all six policies.

Runs SCOMA, LANUMA, SCOMA-70 and the three adaptive run-time policies
for one application and prints the normalized execution times plus the
remote-miss / page-out tradeoff the adaptive policies navigate
(Tables 4 and 5 of the paper).

Usage::

    python examples/adaptive_policies.py [workload] [preset]
"""

import sys

from repro import APPLICATIONS
from repro.harness.report import CampaignProgress
from repro.harness.runner import PAPER_POLICIES
from repro.harness.session import Session


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lu"
    preset = sys.argv[2] if len(sys.argv) > 2 else "small"
    if workload not in APPLICATIONS:
        print("unknown workload %r; choose from: %s"
              % (workload, ", ".join(APPLICATIONS)))
        return 1

    print("Running %s (%s preset) under %d policies..."
          % (workload, preset, len(PAPER_POLICIES)))
    session = Session(progress=CampaignProgress())
    suite = session.run_workload_suite(workload, preset=preset)

    print("\n%-10s %12s %14s %10s" % ("policy", "normalized",
                                      "remote misses", "page-outs"))
    for policy in PAPER_POLICIES:
        print("%-10s %12.3f %14d %10d"
              % (policy, suite.normalized_time(policy),
                 suite.remote_misses(policy), suite.page_outs(policy)))

    print("\npage-cache caps (70%% of SCOMA client frames, per node): %s"
          % suite.page_cache_caps)

    best_adaptive = min(("dyn-fcfs", "dyn-util", "dyn-lru"),
                        key=suite.normalized_time)
    print("best adaptive policy: %s at %.3fx SCOMA"
          % (best_adaptive, suite.normalized_time(best_adaptive)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
