#!/usr/bin/env python
"""Quickstart: build a PRISM machine, run a workload, read the stats.

Builds the default 32-processor machine (8 SMP nodes x 4 CPUs), runs
the FFT kernel under the Dyn-LRU adaptive page-mode policy, and prints
the headline statistics next to a pure-S-COMA baseline run.

Usage::

    python examples/quickstart.py [workload] [preset]

e.g. ``python examples/quickstart.py radix small``.
"""

import sys

from repro import APPLICATIONS, Machine, MachineConfig, make_workload


def run(workload_name: str, policy: str, preset: str,
        page_cache_frames=None):
    config = MachineConfig(page_cache_frames=page_cache_frames)
    machine = Machine(config, policy=policy)
    result = machine.run(make_workload(workload_name, preset))
    return result


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft"
    preset = sys.argv[2] if len(sys.argv) > 2 else "small"
    if workload not in APPLICATIONS:
        print("unknown workload %r; choose from: %s"
              % (workload, ", ".join(APPLICATIONS)))
        return 1

    print("PRISM quickstart: %s (%s preset) on 8 nodes x 4 CPUs" %
          (workload, preset))

    baseline = run(workload, "scoma", preset)
    print("\nSCOMA (infinite page cache — the paper's optimum):")
    for key, value in baseline.stats.summary().items():
        print("  %-22s %s" % (key, value))

    # Give the adaptive run a constrained page cache: 70% of what the
    # SCOMA run used at each node, as in the paper's section 4.2.
    caps = [max(1, int(0.7 * n.scoma_client_frames_peak))
            for n in baseline.stats.nodes]
    adaptive = Machine(MachineConfig(), policy="dyn-lru",
                       page_cache_override=caps)
    result = adaptive.run(make_workload(workload, preset))
    print("\nDyn-LRU with the page cache capped at 70%% of SCOMA's:")
    for key, value in result.stats.summary().items():
        print("  %-22s %s" % (key, value))

    ratio = (result.stats.execution_cycles
             / baseline.stats.execution_cycles)
    saved = sum(n.scoma_client_frames_peak for n in baseline.stats.nodes)
    used = sum(caps)
    print("\nDyn-LRU runs at %.2fx the SCOMA execution time while "
          "holding at most %d client page frames (SCOMA peaked at %d)."
          % (ratio, used, saved))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
