#!/usr/bin/env python
"""Tutorial: write your own workload and study it under PRISM's policies.

A workload is a class with two methods:

* ``setup(layout, num_cpus)`` — create shared segments (globalized
  shmget/shmat) and private regions, and precompute whatever plans the
  generators need;
* ``generator(cpu_id, num_cpus)`` — yield the CPU's reference stream:
  reads/writes (by virtual address), compute gaps, barriers, locks.

This one implements a small parallel histogram: every CPU reads its
slice of a shared sample array and increments shared bucket counters
under per-bucket locks, then a reduction phase reads all buckets.
"""

import numpy as np

from repro import Machine, MachineConfig
from repro.harness.runner import derive_page_cache_caps
from repro.workloads.base import (SharedArray, Workload, barrier, compute,
                                  lock, unlock)


class HistogramWorkload(Workload):
    """Parallel histogram: read samples, lock-protected bucket updates."""

    name = "histogram"
    description = "Shared-bucket histogram (tutorial workload)"
    paper_problem = "n/a"

    def __init__(self, samples: int = 16384, buckets: int = 64,
                 seed: int = 7) -> None:
        super().__init__()
        self.n = samples
        self.buckets = buckets
        self.seed = seed
        self.problem = "%d samples, %d buckets" % (samples, buckets)

    def setup(self, layout, num_cpus: int) -> None:
        self.samples = SharedArray(layout, key=1, num_elems=self.n,
                                   elem_bytes=8)
        self.counts = SharedArray(layout, key=2, num_elems=self.buckets,
                                  elem_bytes=32)
        rng = np.random.RandomState(self.seed)
        self._bucket_of = rng.randint(0, self.buckets, self.n)

    def generator(self, cpu_id: int, num_cpus: int):
        mine = self.block_range(self.n, cpu_id, num_cpus)
        buckets = self._bucket_of[mine.start:mine.stop].tolist()
        for i, bucket in zip(mine, buckets):
            yield self.samples.read(i)
            yield compute(5)
            yield lock(bucket)
            yield self.counts.read(bucket)
            yield self.counts.write(bucket)
            yield unlock(bucket)
        yield barrier(0)
        # Reduction: everyone reads every bucket.
        for bucket in range(self.buckets):
            yield self.counts.read(bucket)
        yield barrier(1)


def main() -> int:
    print("custom workload under three page-mode policies:\n")
    baseline = Machine(MachineConfig(), policy="scoma")
    scoma = baseline.run(HistogramWorkload())
    caps = derive_page_cache_caps(scoma)

    print("%-9s %15s %14s %10s" % ("policy", "cycles", "remote misses",
                                   "page-outs"))
    print("%-9s %15d %14d %10d" % ("scoma", scoma.stats.execution_cycles,
                                   scoma.stats.remote_misses,
                                   scoma.stats.client_page_outs))
    for policy in ("lanuma", "dyn-lru"):
        machine = Machine(MachineConfig(), policy=policy,
                          page_cache_override=caps)
        result = machine.run(HistogramWorkload())
        print("%-9s %15d %14d %10d"
              % (policy, result.stats.execution_cycles,
                 result.stats.remote_misses,
                 result.stats.client_page_outs))

    print("\nhottest resources under SCOMA:")
    for name, busy in baseline.hottest_resources(3):
        print("  %-16s %4.1f%% busy" % (name, 100 * busy))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
