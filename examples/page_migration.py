#!/usr/bin/env python
"""Lazy home migration demo (section 3.5).

A producer-consumer phase shift: node 0's CPUs hammer pages homed at
node 1, so the migration policy moves the dynamic homes to node 0.
The demo shows (a) homes migrating without any TLB or page-table
invalidation, (b) a stale client getting its request forwarded via the
static home and learning the new dynamic home from the response, and
(c) the latency of the hot node's accesses dropping once it *is* the
home.
"""

from repro.core.modes import PageMode
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

GAP = 1_000_000


def main() -> int:
    config = MachineConfig(num_nodes=4, cpus_per_node=2,
                           enable_migration=True, migration_threshold=16)
    machine = Machine(config, policy="scoma")
    region = machine.layout.attach_shared(key=1, size_bytes=64 * 1024)

    # Pick a page homed at node 1.
    page_index = next(i for i in range(64)
                      if machine.static_home_of(region.gpage_base + i) == 1)
    gpage = region.gpage_base + page_index
    vbase = region.vbase + page_index * config.page_bytes

    clock = 0

    def access(cpu_index, vaddr, write=False):
        nonlocal clock
        clock += GAP
        end = machine._access(machine.cpus[cpu_index], vaddr, write, clock)
        return end - clock

    hot_cpu = 0        # node 0
    stale_cpu = 4      # node 2: will cache stale home info
    lines = config.lines_per_page

    print("page gpage=%d, static home = node %d"
          % (gpage, machine.static_home_of(gpage)))

    # The stale client touches the page once (caches home=1 in its PIT).
    access(stale_cpu, vbase)

    # Node 0 hammers the page until the home migrates to it.
    print("\nnode 0 hammering the page...")
    access(hot_cpu, vbase)                    # page fault + first miss
    before = access(hot_cpu, vbase + config.line_bytes)   # plain remote miss
    for sweep in range(3):
        for lip in range(lines):
            access(hot_cpu, vbase + lip * config.line_bytes, write=True)
    print("dynamic home is now node %d (after %d migration(s))"
          % (machine.dynamic_home_of(gpage), machine.migration.migrations))

    # A sibling CPU on node 0 misses on the page: the data is now homed
    # on this very node, so the miss is serviced locally.
    after = access(hot_cpu + 1, vbase + config.line_bytes)
    print("node 0 miss latency: %d cycles before (remote home) vs "
          "%d after (local home)" % (before, after))

    # The stale client still believes node 1 is the home; its request is
    # forwarded (old home -> static home -> dynamic home) and its PIT
    # learns the new home — no global coordination ever happened.
    fwd_before = machine.nodes[2].stats.forwarded_requests
    t_stale = access(stale_cpu, vbase + 32)
    fwd_after = machine.nodes[2].stats.forwarded_requests
    t_fresh = access(stale_cpu, vbase + 64)
    print("\nstale client (node 2): %d cycles with forwarding (%d forward), "
          "then %d cycles direct" % (t_stale, fwd_after - fwd_before, t_fresh))

    vpage = vbase // config.page_bytes
    print("\nnode 2's TLB still holds its translation: %s "
          "(no shootdown — translations are node private)"
          % (vpage in machine.cpus[stale_cpu].tlb))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
