#!/usr/bin/env python
"""Memory firewall demo (section 3.2).

In CC-NUMA, physical addresses name remote memory directly, so a faulty
node can scribble anywhere ("wild writes").  In PRISM every remote
access is checked against the home's Page Information Table, so a
capability list per PIT entry filters writers.

The demo shares a page between nodes 0 and 1, restricts its writer list
to node 0, then lets a "faulty" node 2 attempt a wild write: the home
controller rejects it and the page's contents (and the sharers' cached
state) survive intact.  A second act fail-stops a whole node and shows
the survivors continuing — the paper's natural fault containment
boundaries around each node.
"""

from repro.core.controller import WildWriteError
from repro.core.finegrain import Tag
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

GAP = 1_000_000


def main() -> int:
    config = MachineConfig(num_nodes=4, cpus_per_node=2)
    machine = Machine(config, policy="scoma")
    region = machine.layout.attach_shared(key=1, size_bytes=32 * 1024)

    page_index = next(i for i in range(32)
                      if machine.static_home_of(region.gpage_base + i) == 1)
    gpage = region.gpage_base + page_index
    vaddr = region.vbase + page_index * config.page_bytes

    clock = 0

    def access(cpu_index, addr, write=False):
        nonlocal clock
        clock += GAP
        return machine._access(machine.cpus[cpu_index], addr, write, clock)

    # Node 0 writes the page; node 1's CPU reads it (and is the home).
    access(0, vaddr, write=True)
    access(2, vaddr)          # node 1, cpu 0

    home = machine.nodes[1]
    dir_page = home.directory.page(gpage)
    home_entry = home.pit.entry_or_none(dir_page.home_frame)

    # The OS arms the firewall: only node 0 may write this page.
    home_entry.allowed_writers = {0, 1}
    print("firewall armed at home node 1: writers = %r"
          % sorted(home_entry.allowed_writers))

    # A faulty node 2 issues a wild write.
    try:
        access(4, vaddr, write=True)   # node 2, cpu 0
    except WildWriteError as exc:
        print("wild write rejected: %s" % exc)
    print("wild writes blocked at home: %d"
          % home.stats.wild_writes_blocked)

    # The legitimate writer still works, and the sharers' state is sane.
    access(0, vaddr, write=True)
    print("legitimate write from node 0 succeeded; home tag is now %s"
          % home_entry.tags.get(0).name)

    # Reads from anyone remain allowed (the firewall filters writes).
    access(6, vaddr)          # node 3 reads
    print("read from node 3 succeeded; sharers at home: %r"
          % sorted(dir_page.lines[0].sharers))

    # Part two: a whole node fail-stops.  Because physical addresses
    # never name remote memory, the survivors keep running; only pages
    # homed on the dead node are lost (their applications terminate).
    from repro.core.controller import NodeFailedError
    print("\nnode 3 fail-stops.")
    machine.fail_node(3)
    access(0, vaddr, write=True)
    print("traffic among surviving nodes continues unaffected")
    dead_page = next(i for i in range(32)
                     if machine.static_home_of(region.gpage_base + i) == 3)
    try:
        access(0, region.vbase + dead_page * config.page_bytes)
    except NodeFailedError as exc:
        print("access to a page homed on the dead node terminates the "
              "application: %s" % exc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
