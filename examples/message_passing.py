#!/usr/bin/env python
"""Command-mode message passing demo (section 3.2).

PRISM's Command-mode page frames give software a memory-mapped
interface to the coherence controller — usable as a low-overhead
message-passing path.  This demo pipes a work list from node 0 to
node 1 through a command channel and compares the sender-side cost per
message against handing the same data off through coherent shared
memory (write-invalidate + remote miss, per Table 1).
"""

from repro.kernel.msgqueue import MessageChannel, shared_memory_handoff_cost
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def main() -> int:
    machine = Machine(MachineConfig(num_nodes=4, cpus_per_node=2))
    channel = MessageChannel(machine, src_node=0, dst_node=1, capacity=16)

    clock = 0
    costs = []
    for item in range(8):
        done = channel.send({"task": item}, now=clock)
        costs.append(done - clock)
        clock = done + 100

    clock += 10 * machine.config.latency.net_latency
    received = []
    while True:
        out = channel.receive(clock)
        if out is None:
            break
        received.append(out[0]["task"])
        clock += 50

    print("sent 8 tasks over a command-mode channel, received: %r"
          % received)
    print("sender-side cost per message: %d cycles" % costs[-1])
    print("coherent shared-memory handoff of one line:  %d cycles"
          % shared_memory_handoff_cost(machine))
    print("command frames consumed: 1 per endpoint, no coherence traffic")
    assert received == list(range(8))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
