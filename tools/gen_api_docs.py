#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every module under ``repro``, collects module / class / function
docstring summaries, and renders a compact API reference.  Run from the
repository root::

    python tools/gen_api_docs.py > docs/API.md
"""

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def first_line(doc: "str | None") -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def describe_module(path: pathlib.Path) -> "list[str]":
    rel = path.relative_to(SRC.parent)
    module = str(rel.with_suffix("")).replace("/", ".")
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    if module.endswith("__main__"):
        return []
    tree = ast.parse(path.read_text())
    lines = ["## `%s`" % module, ""]
    summary = first_line(ast.get_docstring(tree))
    if summary:
        lines += [summary + ".", ""]
    rows = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            rows.append(("class `%s`" % node.name,
                         first_line(ast.get_docstring(node))))
            for member in node.body:
                if (isinstance(member, ast.FunctionDef)
                        and not member.name.startswith("_")):
                    rows.append(("`%s.%s()`" % (node.name, member.name),
                                 first_line(ast.get_docstring(member))))
        elif isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            rows.append(("`%s()`" % node.name,
                         first_line(ast.get_docstring(node))))
    if rows:
        lines += ["| item | summary |", "|---|---|"]
        lines += ["| %s | %s |" % (item, summary.replace("|", "\\|"))
                  for item, summary in rows]
        lines.append("")
    return lines


#: Hand-authored guide sections rendered ahead of the generated
#: per-module reference.
GUIDE = """\
## Running campaigns in parallel

The evaluation campaign is a grid of independent (workload, policy)
cells; the `repro.harness.session` module schedules them as a two-stage
DAG (every SCOMA run plus the uncapped policies fan out first, and each
workload's capped policies are scheduled the moment its SCOMA result —
and with it the per-node page-cache caps — lands).

```python
from repro.harness.session import ExperimentSpec, Session

session = Session(jobs=4, cache_dir=".prism-cache")
result = session.run(ExperimentSpec("fft", "scoma", preset="small"))
suite  = session.run_workload_suite("fft", preset="small")
suites = session.run_campaign(("fft", "lu"), preset="small")
```

* **`ExperimentSpec`** — a frozen dataclass naming one cell: `workload`,
  `policy`, `preset`, `config` (a `MachineConfig`, or `None` for the
  default), `page_cache_override` and `seed`.  Specs are immutable,
  content-hashable (`spec.cache_key()`), and serialize to plain dicts
  (`to_payload()` / `from_payload()`) for the worker handoff.
* **`Session(jobs=N)`** — `N` worker processes via `multiprocessing`
  (`jobs=1` runs in-process).  Outputs are deterministic: `--jobs 4` is
  byte-identical to `--jobs 1`; only the wall clock changes.
* **Result cache** — `Session(cache_dir=...)` keeps a content-addressed
  on-disk cache at `<dir>/<key[:2]>/<key>.json`, keyed by a stable
  SHA-256 of `(spec, MachineConfig, schema version)`.  A re-run after a
  config tweak only recomputes the cells whose inputs changed; consult
  `session.cache_hits` / `session.cache_misses`.
* **Progress** — pass `progress=CampaignProgress()` (from
  `repro.harness.report`) for live per-cell lines and a wall-clock
  summary.
* **CLI** — `python -m repro run|suite|evaluate` accept `--jobs N`,
  `--cache-dir DIR` (default `.prism-cache`) and `--no-cache`.

### Deprecation path

The free functions `run_one(...)`, `run_suite(...)` and
`run_all_suites(...)` in `repro.harness.runner` are deprecated: they
still work — each builds an `ExperimentSpec` internally and produces
identical results — but they emit a `DeprecationWarning`.  Migrate:

| old | new |
|---|---|
| `run_one(w, p, preset=s, config=c)` | `Session().run(ExperimentSpec(w, p, preset=s, config=c))` |
| `run_suite(w, preset=s)` | `Session().run_workload_suite(w, preset=s)` |
| `run_all_suites(apps, preset=s)` | `Session().run_campaign(apps, preset=s)` |
"""


def main() -> int:
    out = ["# API reference",
           "",
           "Generated from docstrings by `tools/gen_api_docs.py`;",
           "regenerate after changing the public API.",
           "",
           GUIDE]
    for path in sorted(SRC.rglob("*.py")):
        out += describe_module(path)
    sys.stdout.write("\n".join(out) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
