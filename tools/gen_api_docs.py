#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every module under ``repro``, collects module / class / function
docstring summaries, and renders a compact API reference.  Run from the
repository root::

    python tools/gen_api_docs.py > docs/API.md
"""

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def first_line(doc: "str | None") -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def describe_module(path: pathlib.Path) -> "list[str]":
    rel = path.relative_to(SRC.parent)
    module = str(rel.with_suffix("")).replace("/", ".")
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    if module.endswith("__main__"):
        return []
    tree = ast.parse(path.read_text())
    lines = ["## `%s`" % module, ""]
    summary = first_line(ast.get_docstring(tree))
    if summary:
        lines += [summary + ".", ""]
    rows = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            rows.append(("class `%s`" % node.name,
                         first_line(ast.get_docstring(node))))
            for member in node.body:
                if (isinstance(member, ast.FunctionDef)
                        and not member.name.startswith("_")):
                    rows.append(("`%s.%s()`" % (node.name, member.name),
                                 first_line(ast.get_docstring(member))))
        elif isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            rows.append(("`%s()`" % node.name,
                         first_line(ast.get_docstring(node))))
    if rows:
        lines += ["| item | summary |", "|---|---|"]
        lines += ["| %s | %s |" % (item, summary.replace("|", "\\|"))
                  for item, summary in rows]
        lines.append("")
    return lines


#: Hand-authored guide sections rendered ahead of the generated
#: per-module reference.
GUIDE = """\
## Running campaigns in parallel

The evaluation campaign is a grid of independent (workload, policy)
cells; the `repro.harness.session` module schedules them as a two-stage
DAG (every SCOMA run plus the uncapped policies fan out first, and each
workload's capped policies are scheduled the moment its SCOMA result —
and with it the per-node page-cache caps — lands).

```python
from repro.harness.session import ExperimentSpec, Session

session = Session(jobs=4, cache_dir=".prism-cache")
result = session.run(ExperimentSpec("fft", "scoma", preset="small"))
suite  = session.run_workload_suite("fft", preset="small")
suites = session.run_campaign(("fft", "lu"), preset="small")
```

* **`ExperimentSpec`** — a frozen dataclass naming one cell: `workload`,
  `policy`, `preset`, `config` (a `MachineConfig`, or `None` for the
  default), `page_cache_override` and `seed`.  Specs are immutable,
  content-hashable (`spec.cache_key()`), and serialize to plain dicts
  (`to_payload()` / `from_payload()`) for the worker handoff.
* **`Session(jobs=N)`** — `N` worker processes via `multiprocessing`
  (`jobs=1` runs in-process).  Outputs are deterministic: `--jobs 4` is
  byte-identical to `--jobs 1`; only the wall clock changes.
* **Result cache** — `Session(cache_dir=...)` keeps a content-addressed
  on-disk cache at `<dir>/<key[:2]>/<key>.json`, keyed by a stable
  SHA-256 of `(spec, MachineConfig, schema version)`.  A re-run after a
  config tweak only recomputes the cells whose inputs changed; consult
  `session.cache_hits` / `session.cache_misses`.
* **Progress** — pass `progress=CampaignProgress()` (from
  `repro.harness.report`) for live per-cell lines and a wall-clock
  summary.
* **CLI** — `python -m repro run|suite|evaluate` accept `--jobs N`,
  `--cache-dir DIR` (default `.prism-cache`) and `--no-cache`.

## Observability

`repro.obs` is the unified observability layer: a metrics registry
(counters, gauges, log-bucket latency histograms, bounded utilization
time series, all organized as labeled families like
`core.protocol_messages{kind=READ_REQ,node=3}`) plus a structured-event
sink with JSONL/CSV export.  Both are strictly opt-in — with no registry
installed, the instrumentation helpers return shared no-op objects and
the simulator's pre-resolved handles stay `None`, so the hot path pays
one pointer test and results are byte-identical either way.

```python
from repro import obs

with obs.collecting() as registry:
    machine.run(workload)
snapshot = registry.to_dict()          # JSON-safe, stable key order
```

* **Instrumented layers** — the simulator (access-latency histograms
  per policy, per-epoch resource-utilization series), the coherence
  core (protocol message mix, fetch latencies, cache-full decisions,
  migrations, PIT fast-lookup ratios) and the kernel (fault-service
  timers by fault kind, page-out counters, frame-pool gauges).
* **Campaign telemetry** — `Session(collect_metrics=True)` snapshots a
  fresh registry around every simulated cell; the snapshot lands on
  `RunResult.metrics` and rides along in the result cache (it is *not*
  part of the cache key).  `Session.run_instrumented(spec, sink=...)`
  runs one cell in-process with metrics and, optionally, a structured
  event trace.  Render with `repro.harness.tables.metrics_table` or
  export with `repro.harness.export.save_metrics` (`metrics.json`).
* **Structured events** — `repro.obs.events.EventSink` ring-buffers
  typed events (`access`, `fault`, `pageout`, `promote`, `migrate` per
  `EVENT_SCHEMA`) with monotonic sequence numbers that survive drops;
  `validate_event()` / `validate_jsonl()` check an exported trace end
  to end (strict: unknown fields and non-monotonic sequence numbers
  are rejected).  The `repro.sim.trace.TraceRecorder` forwards its
  machine hooks to a sink when constructed with one.
* **Causal tracing** — `repro.obs.tracing.TraceCollector` follows each
  coherence transaction end-to-end as a span tree (miss/upgrade/fault
  roots; queue-wait, network-hop, home-service, invalidation-fan-out,
  retransmit children) with deterministic ids and simulated-time
  stamps.  `compute_breakdown` charges every cycle of a transaction to
  exactly one critical-path segment (the per-trace segment cycles sum
  to the transaction latency), roll-ups land in the metrics registry
  as `trace.segment_cycles{segment=...,policy=...}`, and exports go
  out as schema-validated JSONL spans or Chrome/Perfetto
  `trace_event` JSON.
* **CLI** — `repro trace <workload>` records a traced run, prints the
  campaign-wide latency attribution and the `--top N` slowest
  transactions as span trees, and exports with `--out` / `--chrome`;
  `repro top` runs a campaign under a live terminal dashboard
  (per-cell p50/p99, cache counters, worker utilization, rolling
  critical-path mix); `repro run ... --trace-out FILE` writes a
  schema-valid JSONL event trace and `--metrics-out FILE` a metrics
  snapshot; `repro metrics <workload> --policy P` prints per-policy
  latency histograms and frame-pool occupancy from cached snapshots
  (re-simulating, then caching, cells that lack one) — `--filter
  NAME_GLOB` and `--format json|csv|table` switch to a flat,
  machine-readable per-metric listing; `--metrics` on
  `run`/`suite`/`evaluate` collects snapshots campaign-wide.  The
  end-of-campaign summary line reports result-cache hit/miss counters.

See [OBSERVABILITY.md](OBSERVABILITY.md) for the full tour — metrics,
events and tracing side by side, with a worked Perfetto export.

## Verification

`repro.verify` is the protocol conformance subsystem: a litmus-test DSL
with ~18 bundled tests (message-passing, store-buffer, IRIW, sibling
sharing, migration and pageout races across S-COMA / LA-NUMA /
CC-NUMA), a bounded schedule explorer plus a seeded randomized fuzzer
with automatic shrinking, a per-location sequential-consistency checker
over recorded read/write values, and mutation self-tests that prove the
whole stack is non-vacuous.  Run it with `repro verify [--suite litmus]
[--fuzz N --seed S] [--test NAME]`, or turn on machine-wide invariant
walks at every barrier with `repro run ... --check-invariants`.  See
[VERIFICATION.md](VERIFICATION.md) for the DSL, the checker's soundness
argument and extension recipes.

## Faults & chaos

`repro.faults` is the fault-injection and resilience subsystem: a
declarative `FaultPlan` DSL (drop / duplicate / delay / reorder message
classes with a probability inside a simulated-time window, pause and
resume nodes, partition links, hard-fail a node at a chosen cycle), a
deterministic seeded `FaultInjector` that applies the plan at every
network delivery, and the recovery machinery the protocol needs to
survive it — per-request timeouts with bounded exponential-backoff
retransmission (`RetryPolicy`), per-link sequence numbers with
receiver-side duplicate suppression, and graceful degradation that
prunes a hard-failed node from directory sharer lists and PIT
forwarding hints so survivors fail fast with
`UnreachableNodeError` instead of hanging.  `ChaosCampaign` samples
plans from one seed and runs the litmus suite under them; every run
must complete sequentially consistent or fail cleanly
(`NodeFailedError`) — never hang (simulated-time deadline), never
silently corrupt (SC checker).  With no plan installed the fault plane
costs one pointer test and results are byte-identical.  Run it with
`repro chaos --seed S [--rounds N] [--plan FILE] [--no-retry]`; all
injector activity surfaces as `faults.*` counters and `fault_inject` /
`node_fail` structured events.  See [FAULTS.md](FAULTS.md) for the
fault model, the plan JSON format and the verdict taxonomy.

## Performance

The reference path is aggressively optimised but every fast path is
required to leave simulated results byte-identical; see
[PERFORMANCE.md](PERFORMANCE.md) for the hot-path design rules, the
`tools/bench.py` throughput harness, the committed `BENCH_sim.json`
trajectory and the CI regression gate, and a cProfile recipe for
single cells.  Workload generators can compress constant-stride
reference sequences into block ops (`OP_READ_RUN`/`OP_WRITE_RUN`) via
`SharedArray.read_run`/`write_run` or `repro.workloads.base.coalesce`.
"""


def main() -> int:
    out = ["# API reference",
           "",
           "Generated from docstrings by `tools/gen_api_docs.py`;",
           "regenerate after changing the public API.",
           "",
           GUIDE]
    for path in sorted(SRC.rglob("*.py")):
        out += describe_module(path)
    sys.stdout.write("\n".join(out) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
