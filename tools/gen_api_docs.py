#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every module under ``repro``, collects module / class / function
docstring summaries, and renders a compact API reference.  Run from the
repository root::

    python tools/gen_api_docs.py > docs/API.md
"""

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def first_line(doc: "str | None") -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def describe_module(path: pathlib.Path) -> "list[str]":
    rel = path.relative_to(SRC.parent)
    module = str(rel.with_suffix("")).replace("/", ".")
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    if module.endswith("__main__"):
        return []
    tree = ast.parse(path.read_text())
    lines = ["## `%s`" % module, ""]
    summary = first_line(ast.get_docstring(tree))
    if summary:
        lines += [summary + ".", ""]
    rows = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            rows.append(("class `%s`" % node.name,
                         first_line(ast.get_docstring(node))))
            for member in node.body:
                if (isinstance(member, ast.FunctionDef)
                        and not member.name.startswith("_")):
                    rows.append(("`%s.%s()`" % (node.name, member.name),
                                 first_line(ast.get_docstring(member))))
        elif isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            rows.append(("`%s()`" % node.name,
                         first_line(ast.get_docstring(node))))
    if rows:
        lines += ["| item | summary |", "|---|---|"]
        lines += ["| %s | %s |" % (item, summary.replace("|", "\\|"))
                  for item, summary in rows]
        lines.append("")
    return lines


def main() -> int:
    out = ["# API reference",
           "",
           "Generated from docstrings by `tools/gen_api_docs.py`;",
           "regenerate after changing the public API.",
           ""]
    for path in sorted(SRC.rglob("*.py")):
        out += describe_module(path)
    sys.stdout.write("\n".join(out) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
