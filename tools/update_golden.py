#!/usr/bin/env python
"""Regenerate the golden tiny-preset statistics fixture.

Runs every (application, policy) cell at the ``tiny`` preset and writes
the full ``MachineStats.to_dict()`` of each to
``tests/integration/golden_tiny_stats.json``.  The committed fixture is
the reference that ``tests/integration/test_golden_stats.py`` diffs
against; rerun this script (and review the diff!) whenever an
intentional change shifts simulation results:

    PYTHONPATH=src python tools/update_golden.py
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURE = ROOT / "tests" / "integration" / "golden_tiny_stats.json"


def compute_golden(engine: str = "interp") -> "dict[str, dict]":
    """Simulate every (app, policy) cell at the tiny preset.

    ``engine`` picks the simulation core; any engine must reproduce
    the committed fixture byte for byte (the vector engine's identity
    gate in test_golden_stats.py runs this with ``engine="vector"``).
    """
    from dataclasses import replace

    from repro.core.policies import POLICY_NAMES
    from repro.sim.config import tiny_config
    from repro.sim.replay import build_machine
    from repro.workloads import ALL_APPLICATIONS, make_workload

    cells = {}
    for app in ALL_APPLICATIONS:
        for policy in POLICY_NAMES:
            machine = build_machine(
                replace(tiny_config(), engine=engine), policy=policy)
            machine.run(make_workload(app, preset="tiny"))
            cells["%s/%s" % (app, policy)] = machine.stats.to_dict()
    return cells


def main() -> int:
    cells = compute_golden()
    FIXTURE.write_text(json.dumps(cells, indent=1, sort_keys=True) + "\n")
    print("wrote %s (%d cells)" % (FIXTURE, len(cells)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
