#!/usr/bin/env python
"""Simulator host-throughput benchmark and regression gate.

Runs a pinned matrix of (workload, policy) cells on a small fixed
machine geometry (the same 2x2 machine ``benchmarks/
test_simulator_throughput.py`` uses), measures simulated references
per host second, and writes the result as a ``BENCH_sim.json``
trajectory point::

    {
      "schema": 1,
      "host": {"python": ..., "implementation": ..., "platform": ...},
      "rounds": 3,
      "cells": [
        {"cell": "block/scoma", "refs_per_sec": ..., "wall_s": ...,
         "cycles": ..., "references": ...},
        ...
      ]
    }

Each cell is timed ``--rounds`` times and the best (minimum) wall time
is reported, which filters scheduler noise for CI gating.

Usage::

    PYTHONPATH=src python tools/bench.py --out BENCH_sim.json
    PYTHONPATH=src python tools/bench.py --quick \
        --compare BENCH_sim.json --tolerance 0.10

``--compare`` exits nonzero when any cell's refs/sec fell more than
``--tolerance`` below the old file's value (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from dataclasses import replace

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.replay import build_machine


def _bench_config() -> MachineConfig:
    """The pinned machine geometry most cells run on."""
    return MachineConfig(num_nodes=2, cpus_per_node=2,
                         directory_cache_entries=256)


def _serial_config() -> MachineConfig:
    """One CPU total: the vector engine's unbounded-claim regime."""
    return MachineConfig(num_nodes=1, cpus_per_node=1,
                         directory_cache_entries=256)


def _wide_config() -> MachineConfig:
    """The paper-scale 32 nodes x 8 CPUs geometry."""
    return MachineConfig(num_nodes=32, cpus_per_node=8,
                         directory_cache_entries=1024)


def _synthetic(pattern: str, **kwargs):
    from repro.workloads.synthetic import SyntheticWorkload
    kwargs.setdefault("shared_kb", 64)
    kwargs.setdefault("refs_per_cpu_per_iter", 2000)
    kwargs.setdefault("iterations", 2)
    return SyntheticWorkload(pattern, **kwargs)


def _preset(app: str, preset: str):
    from repro.workloads import make_workload
    return make_workload(app, preset)


def _skew(num_cpus: int, scale: int = 1997):
    """A deterministic start-time skew (breaks CPU-clock lockstep)."""
    from repro.sim.engine import SchedulePerturbation
    return SchedulePerturbation(
        cpu_offsets=tuple((i * scale) % 16384 for i in range(num_cpus)))


class Cell:
    """One benchmark cell: policy + workload factory + machine shape.

    ``config`` picks the machine geometry, ``schedule`` an optional
    start-time perturbation, and ``arms`` the engines the matrix times
    (every arm beyond ``interp`` is recorded as ``name@<engine>``).
    """

    __slots__ = ("policy", "factory", "config", "schedule", "arms")

    def __init__(self, policy, factory, config=_bench_config,
                 schedule=None, arms=("interp", "vector")):
        self.policy = policy
        self.factory = factory
        self.config = config
        self.schedule = schedule
        self.arms = arms


def _hot(cpus: int, **kwargs):
    """A warmed-up block sweep whose per-CPU working set fits in L1
    (1 KB per CPU on the default geometry): the hit-dominated regime
    the vector engine accelerates."""
    kwargs.setdefault("shared_kb", cpus)
    kwargs.setdefault("iterations", 20)
    return _synthetic("block", **kwargs)


#: The pinned cell matrix.  The first block matches
#: benchmarks/test_simulator_throughput.py; the ``hot-*`` family is
#: hit-dominated (sub-1% miss rate after warm-up) and exists to gate
#: the vector engine's replay speedups across its scheduling regimes
#: (lockstep, skewed clocks, imbalanced work, single CPU — see
#: docs/PERFORMANCE.md); the ``*-32x8`` cells run the paper-scale
#: geometry.
CELLS = {
    "block/scoma": Cell("scoma", lambda: _synthetic("block")),
    "block/lanuma": Cell("lanuma", lambda: _synthetic("block")),
    "random/lanuma": Cell("lanuma", lambda: _synthetic("random")),
    "migratory/dyn-lru": Cell("dyn-lru", lambda: _synthetic("migratory")),
    "fft-tiny/scoma": Cell("scoma", lambda: _preset("fft", "tiny")),
    "fft-small/scoma": Cell("scoma", lambda: _preset("fft", "small")),
    "lu-tiny/scoma": Cell("scoma", lambda: _preset("lu", "tiny")),
    "hot-uniform/scoma": Cell("scoma", lambda: _hot(4)),
    "hot-skew/scoma": Cell("scoma", lambda: _hot(4),
                           schedule=lambda: _skew(4)),
    "hot-imbalance/scoma": Cell(
        "scoma", lambda: _hot(4, iterations=8, imbalance=7.0)),
    "hot-serial/scoma": Cell("scoma", lambda: _hot(1),
                             config=_serial_config),
    "hot-32x8/scoma": Cell(
        "scoma", lambda: _hot(256, iterations=4), config=_wide_config),
    "skew-32x8/scoma": Cell(
        "scoma", lambda: _hot(256, iterations=4), config=_wide_config,
        schedule=lambda: _skew(256)),
    # Serving family: Zipfian request mix (lock-free, barrier-batched)
    # and the lock-heavy 2PC transaction loop.
    "kvstore-tiny/scoma": Cell("scoma", lambda: _preset("kvstore", "tiny")),
    "txn2pc-tiny/scoma": Cell("scoma", lambda: _preset("txn2pc", "tiny")),
}

#: The CI subset: one synthetic hot-loop cell, one remote-heavy cell,
#: one real-kernel cell, one vector-regime cell, one serving cell.
#: Runs in a few seconds per round.
QUICK_CELLS = ("block/scoma", "random/lanuma", "fft-tiny/scoma",
               "hot-serial/scoma", "kvstore-tiny/scoma")


def run_cell(name: str, rounds: int,
             engine: str = "interp") -> "dict[str, object]":
    """Benchmark one cell under one engine; returns its record.

    Best-of-``rounds`` wall time.  For the vector arm the in-memory
    trace cache persists across rounds (workload signatures are
    content-addressed), so the reported number is warm-trace replay
    throughput — recording cost is bounded separately by the
    ``trace_compile`` gate in ci_check.sh.
    """
    cell = CELLS[name]
    config = replace(cell.config(), engine=engine)
    best_wall = None
    references = cycles = 0
    for _ in range(rounds):
        schedule = cell.schedule() if cell.schedule is not None else None
        machine = build_machine(config, policy=cell.policy,
                                schedule=schedule)
        workload = cell.factory()
        start = time.perf_counter()
        result = machine.run(workload)
        wall = time.perf_counter() - start
        references = result.stats.references
        cycles = result.stats.execution_cycles
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "cell": name if engine == "interp" else "%s@%s" % (name, engine),
        "engine": engine,
        "refs_per_sec": round(references / best_wall, 1),
        "wall_s": round(best_wall, 4),
        "cycles": cycles,
        "references": references,
    }


def trace_overhead(rounds: int, tolerance: float) -> int:
    """Gate the causal-tracing overhead on a hit-dominated hot loop.

    Times the cell best-of-``rounds`` untraced, then again under a
    :class:`~repro.obs.tracing.TraceCollector`; fails when the traced
    run is more than ``tolerance`` slower.  The tracer only opens
    spans on slow paths — cache hits never touch it — so the gate
    cell is a warmed-up block sweep whose working set fits in cache
    (miss rate under 1%).  The cold-miss cells of the main matrix
    would instead measure per-transaction span cost, which tracing
    makes no claim about.
    """
    from repro.obs import tracing

    name = "block-hot/scoma"
    policy = "scoma"

    def factory():
        return _synthetic("block", shared_kb=8, iterations=20)

    def one(traced: bool) -> float:
        if traced:
            collector = tracing.install(tracing.TraceCollector(seed=0))
        try:
            machine = Machine(_bench_config(), policy=policy)
            workload = factory()
            start = time.perf_counter()
            machine.run(workload)
            wall = time.perf_counter() - start
        finally:
            if traced:
                assert collector.finished > 0
                tracing.uninstall()
        return wall

    # Interleave the two arms (after one discarded warm-up each) so
    # slow host phases depress both equally; best-of filters the rest.
    one(False), one(True)
    plain = traced = None
    for _ in range(rounds):
        wall = one(False)
        plain = wall if plain is None or wall < plain else plain
        wall = one(True)
        traced = wall if traced is None or wall < traced else traced
    slowdown = traced / plain
    print("== tracing overhead gate (tolerance %.0f%%) ==" % (tolerance * 100))
    print("  %-20s untraced %8.3fs  traced %8.3fs  (%+.1f%%)"
          % (name, plain, traced, (slowdown - 1.0) * 100))
    if slowdown > 1.0 + tolerance:
        print("trace overhead: traced run is %.0f%% slower than untraced "
              "(limit %.0f%%)" % ((slowdown - 1.0) * 100, tolerance * 100))
        return 1
    print("trace overhead: OK")
    return 0


def geomean(values) -> float:
    """Geometric mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    import math
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _print_geomeans(records) -> None:
    """Per-arm geomean summary lines for the matrix just timed."""
    for engine in ("interp", "vector"):
        arm = [r["refs_per_sec"] for r in records
               if r.get("engine", "interp") == engine]
        if arm:
            print("  %-22s %28s %10.0f refs/s"
                  % ("geomean@%s" % engine, "(%d cells)" % len(arm),
                     geomean(arm)))


def host_metadata() -> "dict[str, str]":
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def compare(old: "dict[str, object]", new: "dict[str, object]",
            tolerance: float) -> int:
    """Gate ``new`` against ``old``; returns the process exit code.

    Cells are listed worst-delta first, so the biggest regression tops
    the report; the failure line names the offending cells and their
    drops (not just a count).  Cells without a baseline are reported
    as NEW and never gate.
    """
    old_cells = {c["cell"]: c for c in old.get("cells", [])}
    fresh, rated = [], []
    for record in new["cells"]:
        baseline = old_cells.get(record["cell"])
        if baseline is None:
            fresh.append(record)
        else:
            ratio = record["refs_per_sec"] / baseline["refs_per_sec"]
            rated.append((ratio, record, baseline))
    rated.sort(key=lambda entry: entry[0])
    print("\n== bench compare (tolerance %.0f%%, worst first) =="
          % (tolerance * 100))
    regressions = []
    for ratio, record, baseline in rated:
        label = "OK"
        if ratio < 1.0 - tolerance:
            label = "REGRESSION"
            regressions.append((record["cell"], ratio))
        print("  %-22s %-10s %10.0f refs/s vs %10.0f baseline (%+.1f%%)"
              % (record["cell"], label, record["refs_per_sec"],
                 baseline["refs_per_sec"], (ratio - 1.0) * 100))
    for record in fresh:
        print("  %-22s NEW        %10.0f refs/s (no baseline)"
              % (record["cell"], record["refs_per_sec"]))
    if regressions:
        print("bench compare: REGRESSION in %s (worst: %s, %.1f%% below "
              "baseline; tolerance %.0f%%)"
              % (", ".join(name for name, _ in regressions),
                 regressions[0][0], (1.0 - regressions[0][1]) * 100,
                 tolerance * 100))
        return 1
    print("bench compare: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator host-throughput benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI matrix (%s)"
                             % ", ".join(QUICK_CELLS))
    parser.add_argument("--cells", nargs="*", metavar="CELL",
                        choices=sorted(CELLS), default=None,
                        help="explicit cells to run (default: full matrix)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell; best is kept "
                             "(default: 3)")
    parser.add_argument("--engine", choices=("interp", "vector", "both"),
                        default="both",
                        help="engine arm(s) to time; 'both' (default) "
                             "records the vector arm as CELL@vector "
                             "next to the interp arm")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the trajectory JSON here "
                             "(e.g. BENCH_sim.json)")
    parser.add_argument("--compare", metavar="OLD", default=None,
                        help="gate against a previous trajectory file")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed refs/sec drop in --compare mode "
                             "(default: 0.10)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="instead of the matrix, gate the causal-"
                             "tracing slowdown on one cell")
    parser.add_argument("--trace-tolerance", type=float, default=0.15,
                        help="allowed traced-vs-untraced slowdown in "
                             "--trace-overhead mode (default: 0.15)")
    args = parser.parse_args(argv)

    if args.trace_overhead:
        return trace_overhead(args.rounds, args.trace_tolerance)

    if args.cells:
        names = args.cells
    elif args.quick:
        names = list(QUICK_CELLS)
    else:
        names = list(CELLS)

    print("== simulator throughput (%d round%s per cell) =="
          % (args.rounds, "s" if args.rounds != 1 else ""))
    records = []
    for name in names:
        if args.engine == "both":
            arms = CELLS[name].arms
        else:
            arms = (args.engine,)
        for engine in arms:
            record = run_cell(name, args.rounds, engine=engine)
            records.append(record)
            print("  %-22s %8d refs %8.3fs %10.0f refs/s"
                  % (record["cell"], record["references"],
                     record["wall_s"], record["refs_per_sec"]))
    _print_geomeans(records)

    payload = {
        "schema": 1,
        "host": host_metadata(),
        "rounds": args.rounds,
        "cells": records,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)

    if args.compare:
        with open(args.compare) as handle:
            old = json.load(handle)
        return compare(old, payload, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
