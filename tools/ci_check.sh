#!/usr/bin/env bash
# CI gate: tier-1 tests + a 2-worker mini-campaign smoke test.
#
# Usage: tools/ci_check.sh [extra pytest args...]
#
# The smoke test runs a real two-application campaign through the
# parallel scheduler twice against a throwaway cache directory: the
# first pass exercises the multiprocessing pool end-to-end, the second
# must be served entirely from the result cache and its rendered output
# must be byte-identical to the first.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
# Line-coverage floor rides along when pytest-cov is available; the CI
# image may not ship it, so gate on the import and never install here.
if python -c "import pytest_cov" 2> /dev/null; then
    python -m pytest -x -q \
        --cov=repro --cov-fail-under=80 --cov-report=term:skip-covered "$@"
else
    echo "pytest-cov not installed; skipping the 80% coverage floor"
    python -m pytest -x -q "$@"
fi

echo "== 2-worker mini-campaign smoke test =="
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

python -m repro evaluate --preset tiny --apps fft water-nsq --skip-pit \
    --jobs 2 --cache-dir "$workdir/cache" > "$workdir/cold.txt"
python -m repro evaluate --preset tiny --apps fft water-nsq --skip-pit \
    --jobs 2 --cache-dir "$workdir/cache" > "$workdir/warm.txt"

# Strip the nondeterministic progress/wall-clock lines, then the two
# campaign reports must match byte for byte.
for f in cold warm; do
    grep -v -e '^  \[' -e '^campaign:' "$workdir/$f.txt" > "$workdir/$f.tables"
done
if ! diff -u "$workdir/cold.tables" "$workdir/warm.tables"; then
    echo "FAIL: warm-cache campaign diverged from the cold run" >&2
    exit 1
fi
if ! grep -q 'cached' "$workdir/warm.txt"; then
    echo "FAIL: warm run did not hit the result cache" >&2
    exit 1
fi

echo "== observability smoke test =="
python -m repro run fft --preset tiny --no-cache \
    --trace-out "$workdir/trace.jsonl" \
    --metrics-out "$workdir/metrics.json" > /dev/null
python - "$workdir" <<'EOF'
import json
import sys

workdir = sys.argv[1]
from repro.obs import validate_jsonl

events = validate_jsonl(workdir + "/trace.jsonl")
assert events > 0, "trace.jsonl is empty"

snapshot = json.load(open(workdir + "/metrics.json"))
cell = snapshot["fft/scoma"]
assert cell is not None, "metrics.json has no snapshot for the cell"
families = sum(len(cell[s]) for s in
               ("counters", "gauges", "histograms", "series"))
assert families > 0, "metrics snapshot is empty"
print("observability smoke: %d events, %d metric families OK"
      % (events, families))
EOF
echo "== causal tracing smoke: record, validate, deterministic ids =="
# Record the same traced cell twice: the span exports must validate
# (schema + causal integrity) and be byte-identical across runs —
# span ids are derived from seeds, never from wall clock or id().
python -m repro trace fft --preset tiny --seed 3 --top 3 \
    --out "$workdir/spans1.jsonl" --chrome "$workdir/chrome.json" \
    > "$workdir/trace1.txt"
python -m repro trace fft --preset tiny --seed 3 --top 3 \
    --out "$workdir/spans2.jsonl" > /dev/null
if ! diff -u "$workdir/spans1.jsonl" "$workdir/spans2.jsonl"; then
    echo "FAIL: same-seed traced runs exported different span ids" >&2
    exit 1
fi
python - "$workdir" <<'EOF'
import json
import sys

workdir = sys.argv[1]
from repro.obs.tracing import validate_spans_jsonl

spans = validate_spans_jsonl(workdir + "/spans1.jsonl")
assert spans > 0, "span export is empty"
chrome = json.load(open(workdir + "/chrome.json"))
assert chrome["traceEvents"], "chrome export has no trace events"
report = open(workdir + "/trace1.txt").read()
assert "= duration" in report, "trace report lost the sum==duration check"
print("tracing smoke: %d spans validated, chrome export OK" % spans)
EOF

echo "== tracing overhead gate (hot loop, 15% tolerance) =="
python tools/bench.py --trace-overhead --rounds 5

echo "== protocol conformance: litmus suite + fixed-seed fuzz smoke =="
python -m repro verify --suite litmus
python -m repro verify --fuzz 40 --seed 0

echo "== chaos smoke: seeded fault-injection campaign, twice =="
# The campaign must pass (every verdict acceptable) and be perfectly
# reproducible: two invocations with the same seed diff clean.
python -m repro chaos --seed 7 --rounds 4 > "$workdir/chaos1.txt"
python -m repro chaos --seed 7 --rounds 4 > "$workdir/chaos2.txt"
if ! diff -u "$workdir/chaos1.txt" "$workdir/chaos2.txt"; then
    echo "FAIL: chaos campaign is not reproducible across invocations" >&2
    exit 1
fi

echo "== vector engine: stats identity vs interpreter (quick matrix) =="
# The trace-replay engine must be *byte-identical* to the interpreter
# on MachineStats — not approximately equal.  Runs a small real-kernel
# matrix under both engines and diffs the full stats dicts.
python - <<'EOF'
from dataclasses import replace

from repro.sim.config import tiny_config
from repro.sim.machine import Machine
from repro.sim.replay import VectorMachine
from repro.workloads import make_workload

cells = [("fft", "scoma"), ("fft", "lanuma"), ("lu", "dyn-lru"),
         ("water-nsq", "scoma"), ("radix", "lanuma")]
for app, policy in cells:
    interp = Machine(tiny_config(), policy=policy)
    a = interp.run(make_workload(app, "tiny")).stats.to_dict()
    vector = VectorMachine(replace(tiny_config(), engine="vector"),
                           policy=policy)
    b = vector.run(make_workload(app, "tiny")).stats.to_dict()
    if a != b:
        diff = {k: (a[k], b[k]) for k in a if a[k] != b[k]}
        raise SystemExit("vector stats diverged on %s/%s: %r"
                         % (app, policy, diff))
    refs = sum(c["references"] for c in a["cpus"])
    print("  %-12s %-8s identical (%d refs)" % (app, policy, refs))
print("vector stats identity: OK")
EOF

echo "== vector engine: traced run + live dashboard smoke =="
# Slow-path tracing must still attach under the vector engine, and the
# exported span schema must validate exactly as the interpreter's does.
python -m repro trace fft --preset tiny --seed 3 --engine vector \
    --out "$workdir/vspans.jsonl" > /dev/null
python - "$workdir" <<'EOF'
import sys
from repro.obs.tracing import validate_spans_jsonl
spans = validate_spans_jsonl(sys.argv[1] + "/vspans.jsonl")
assert spans > 0, "vector-engine trace exported no spans"
print("vector traced run: %d spans validated" % spans)
EOF
python -m repro top --apps fft --preset tiny --no-cache \
    --engine vector > "$workdir/top.txt"
grep -q 'fft' "$workdir/top.txt" || {
    echo "FAIL: repro top under --engine vector produced no cells" >&2
    exit 1
}

echo "== serving smoke: kvstore on both engines + seeded txn2pc chaos =="
# A tiny kvstore cell must produce byte-identical MachineStats on both
# engines, and its serving summary must report request latency.
python -m repro run kvstore --preset tiny --no-cache --metrics \
    > "$workdir/kv_interp.txt"
python -m repro run kvstore --preset tiny --no-cache --metrics \
    --engine vector > "$workdir/kv_vector.txt"
for f in kv_interp kv_vector; do
    grep -v -e 'refs/sec' -e 'host wall' "$workdir/$f.txt" \
        > "$workdir/$f.stable"
done
if ! diff -u "$workdir/kv_interp.stable" "$workdir/kv_vector.stable"; then
    echo "FAIL: kvstore serving run diverged across engines" >&2
    exit 1
fi
grep -q 'p50=' "$workdir/kv_interp.txt" || {
    echo "FAIL: kvstore --metrics reported no request latency" >&2
    exit 1
}
# One seeded 2PC chaos round, twice: verdicts must be acceptable and
# the reports byte-identical.
python -m repro chaos --test txn2pc --seed 11 --rounds 2 \
    > "$workdir/2pc1.txt"
python -m repro chaos --test txn2pc --seed 11 --rounds 2 \
    > "$workdir/2pc2.txt"
if ! diff -u "$workdir/2pc1.txt" "$workdir/2pc2.txt"; then
    echo "FAIL: txn2pc chaos campaign is not reproducible" >&2
    exit 1
fi

echo "== simulator throughput gate (quick matrix, 10% tolerance) =="
# Best-of-5 rounds, both engine arms (the vector arm gates as
# CELL@vector cells of the extended baseline): the gate runs right
# after the test suite, so the first rounds can be depressed by
# residual host load.
python tools/bench.py --quick --rounds 5 --out "$workdir/bench.json" \
    --compare BENCH_sim.json --tolerance 0.10

echo "ci_check: OK"
