"""The per-node kernel: virtual memory management and external paging.

PRISM runs an independent kernel on every node (section 3.3).  Each
kernel owns a *node-private* page table, per-mode frame pools, and the
run-time page-mode policy.  It cooperates with the local coherence
controller through the command-mode interface (PIT/tag installation)
and with remote kernels through paging messages — but never requires a
global TLB shootdown: unmapping a page only touches the local node's
CPUs, because translations are node private.

The fault paths implement section 3.3's External Paging rules:

* a home-node fault allocates and initializes a real frame and installs
  the PIT entry with all fine-grain tags Exclusive;
* a client-node fault first ensures the page is paged-in at the home
  (so a later cache miss can never trigger a remote page fault), then
  installs a frame in the mode chosen by the policy with tags Invalid;
* the home-page-status flag optimization makes repeat faults on a page
  skip the home round-trip.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.obs import tracing
from repro.core.modes import PageMode
from repro.core.policies import PageModePolicy
from repro.interconnect.messages import MessageKind


class NodeKernel:
    """One node's operating system kernel."""

    def __init__(self, node, machine, policy: PageModePolicy) -> None:
        self.node = node
        self.machine = machine
        self.policy = policy
        self.lat = machine.config.latency

        #: Node-private page table: vpage -> frame.
        self.page_table: "dict[int, int]" = {}
        #: vpage that maps each frame (for TLB shootdown on page-out).
        self._vpage_of_frame: "dict[int, int]" = {}

        #: LRU order over client S-COMA frames; refreshed on page-cache
        #: hits and faults ("considers only accesses from local
        #: processors", section 4.2).
        self._client_lru: "OrderedDict[int, None]" = OrderedDict()

        #: Sticky per-page mode set by demotions (and cleared by
        #: promotions); consulted by the policy at fault time.
        self.page_mode_override: "dict[int, PageMode]" = {}

        #: Home-page-status flags (section 3.3): pages known to be
        #: resident at their home.
        self.home_status: "set[int]" = set()

        # Pre-resolved metric handles (None when no registry is
        # installed, so the fault path pays one `is not None` test).
        registry = obs.current()
        if registry is not None:
            self._obs_fault = {
                kind: registry.histogram("kernel.fault_service_cycles",
                                         kind=kind)
                for kind in ("private", "home", "client")}
            self._obs_pageout = {
                False: registry.counter("kernel.page_outs", demote="false"),
                True: registry.counter("kernel.page_outs", demote="true")}
        else:
            self._obs_fault = None
            self._obs_pageout = None
        # Causal-tracing handle (None when no collector is installed).
        self._tracer = tracing.current()

        #: Remote refetch counters for LA-NUMA pages (dyn-bidir).
        self.refetch_counts: "dict[int, int]" = {}
        #: Frames queued for promotion to S-COMA mode; drained by the
        #: machine between references (a frame cannot be paged out in
        #: the middle of the access that is filling it).
        self.pending_promotions: "list[int]" = []

    # ------------------------------------------------------------------
    # Policy helpers.
    # ------------------------------------------------------------------

    @property
    def pit(self):
        """The local coherence controller's PIT (the Dyn-Util policy
        queries it for fine-grain tag counts)."""
        return self.node.pit

    def lru_client_frame(self) -> "int | None":
        """Least-recently-used client S-COMA frame, or None."""
        if not self._client_lru:
            return None
        return next(iter(self._client_lru))

    def client_scoma_frames(self):
        """All client S-COMA frames currently mapped at this node."""
        return self._client_lru.keys()

    def touch_lru(self, frame: int) -> None:
        """Refresh a client frame's recency (page-cache access)."""
        if frame in self._client_lru:
            self._client_lru.move_to_end(frame)

    # ------------------------------------------------------------------
    # Page faults.
    # ------------------------------------------------------------------

    def fault(self, vpage: int, now: int) -> "tuple[int, int]":
        """Service a page fault for ``vpage`` at time ``now``.

        Returns ``(frame, completion_time)``.
        """
        layout = self.machine.layout
        if not layout.is_mapped(vpage):
            raise RuntimeError(
                "segmentation fault: vpage %d unmapped at node %d"
                % (vpage, self.node.node_id))
        gpage = layout.gpage_of(vpage)
        if gpage is None:
            frame, done = self._fault_private(vpage, now)
            kind = "private"
        else:
            home = self.machine.dynamic_home_of(gpage)
            if home in self.machine.failed_nodes:
                from repro.core.controller import NodeFailedError
                raise NodeFailedError(
                    "page-in of gpage %d needs failed home node %d"
                    % (gpage, home))
            if home == self.node.node_id:
                frame, done = self._fault_home(vpage, gpage, now)
                kind = "home"
            else:
                frame, done = self._fault_client(vpage, gpage, home, now)
                kind = "client"
        if self._obs_fault is not None:
            self._obs_fault[kind].observe(done - now)
        return frame, done

    def _fault_private(self, vpage: int, now: int) -> "tuple[int, int]":
        frame = self.node.pools.alloc_real()
        self.node.pit.install(frame, gpage=-1,
                              static_home=self.node.node_id,
                              dynamic_home=self.node.node_id,
                              home_frame=frame, mode=PageMode.LOCAL)
        self.page_table[vpage] = frame
        self._vpage_of_frame[frame] = vpage
        self.node.stats.page_faults_local_home += 1
        self.node.stats.frames_allocated += 1
        return frame, now + self.lat.expected_fault_local

    def _fault_home(self, vpage: int, gpage: int, now: int) -> "tuple[int, int]":
        frame = self.ensure_home_mapping(gpage)
        self.page_table[vpage] = frame
        self._vpage_of_frame[frame] = vpage
        self.node.stats.page_faults_local_home += 1
        return frame, now + self.lat.expected_fault_local

    def ensure_home_mapping(self, gpage: int) -> int:
        """Page ``gpage`` in at this (home) node if not already resident.

        Returns the home frame.  Called locally by home faults and
        remotely (as the home-side kernel work) by client faults.
        """
        page = self.node.directory.page(gpage)
        if page is not None:
            return page.home_frame
        frame = self.node.pools.alloc_real()
        self.node.pit.install(frame, gpage=gpage,
                              static_home=self.machine.static_home_of(gpage),
                              dynamic_home=self.node.node_id,
                              home_frame=frame, mode=PageMode.SCOMA)
        self.node.directory.create_page(gpage, frame)
        self.node.stats.frames_allocated += 1
        return frame

    def _fault_client(self, vpage: int, gpage: int, home: int,
                      now: int) -> "tuple[int, int]":
        # The page may already be backed here without a page-table entry
        # (a home migration left our old home frame behind as a client
        # frame): just wire up the translation.
        existing = self.node.pit.entry_for_gpage(gpage)
        if existing is not None:
            self.page_table[vpage] = existing.frame
            self._vpage_of_frame[existing.frame] = vpage
            self.node.stats.page_faults_local_home += 1
            return existing.frame, now + self.lat.expected_fault_local

        mode = self.policy.initial_mode(self, gpage)
        pools = self.node.pools
        done = now

        if mode == PageMode.SCOMA and pools.page_cache_full():
            action = self.policy.decide_cache_full(self, gpage)
            if action.kind == "lanuma":
                mode = PageMode.LANUMA
            else:
                done = self.page_out_client(action.victim_frame, done,
                                            demote=action.demote)

        # Contact the home unless the home-page-status flag says the
        # page is already resident there (section 3.3 optimization,
        # enabled by config.home_status_flags).
        home_node = self.machine.nodes[home]
        home_frame = None
        if (self.machine.config.home_status_flags
                and gpage in self.home_status):
            dir_page = home_node.directory.page(gpage)
            home_frame = dir_page.home_frame if dir_page else None
            done += self.lat.expected_fault_local
            self.node.stats.page_faults_local_home += 1
        if home_frame is None:
            self.node.msglog.record(MessageKind.PAGE_IN_REQ)
            home_frame = home_node.kernel.ensure_home_mapping(gpage)
            home_node.kernel_resource.acquire(done, self.lat.fault_home_kernel)
            home_node.msglog.record(MessageKind.PAGE_IN_REPLY)
            if self._tracer is not None:
                self._tracer.add("page_in", "network", self.node.node_id,
                                 done, done + self.lat.expected_fault_remote,
                                 home=home)
            done += self.lat.expected_fault_remote
            self.home_status.add(gpage)
            self.node.stats.page_faults_remote_home += 1
        home_node.directory.page(gpage).clients.add(self.node.node_id)

        if mode == PageMode.SCOMA:
            frame = pools.alloc_real(client_scoma=True)
            self._client_lru[frame] = None
            self.node.stats.frames_allocated += 1
            peak = pools.client_scoma_peak
            if peak > self.node.stats.scoma_client_frames_peak:
                self.node.stats.scoma_client_frames_peak = peak
        else:
            # LA-NUMA and CC-NUMA client frames consume no local memory.
            frame = pools.alloc_imaginary()
            self.node.stats.imaginary_frames_allocated += 1
        self.node.pit.install(frame, gpage=gpage,
                              static_home=self.machine.static_home_of(gpage),
                              dynamic_home=home, home_frame=home_frame,
                              mode=mode)
        self.page_table[vpage] = frame
        self._vpage_of_frame[frame] = vpage
        return frame, done

    # ------------------------------------------------------------------
    # Page-outs and mode changes.
    # ------------------------------------------------------------------

    def page_out_client(self, frame: int, now: int, demote: bool = False) -> int:
        """Page out a client frame (S-COMA or LA-NUMA).

        Writes modified data back to the home, removes this node from
        the page's directory state, tears down the local translation
        (local TLBs only — no global shootdown), and frees the frame.
        If ``demote``, the page's future faults at this node allocate
        LA-NUMA frames.  Returns the completion time.
        """
        pit = self.node.pit
        entry = pit.entry_or_none(frame)
        if entry is None:
            raise KeyError("page_out of unmapped frame %d" % frame)
        if not entry.mode.is_global or entry.dynamic_home == self.node.node_id:
            raise ValueError("page_out_client needs a client frame")
        gpage = entry.gpage
        is_scoma = entry.mode == PageMode.SCOMA

        owned = self.node.controller.flush_client_page(entry, now)
        # Kernel work + the synchronous notification round-trip to the
        # home kernel ("informs the home node's kernel of the page out",
        # section 3.3) + per-owned-line write-back issue.
        cost = (self.lat.pageout_kernel
                + 2 * self.lat.net_latency
                + self.lat.pageout_per_line * owned)
        self.node.msglog.record(MessageKind.CLIENT_PAGE_OUT)

        # Tear down local translations: page table, per-CPU TLBs.
        vpage = self._vpage_of_frame.pop(frame, None)
        if vpage is not None:
            self.page_table.pop(vpage, None)
            for cpu in self.node.cpus:
                cpu.tlb.invalidate(vpage)

        pit.remove(frame)
        self.machine.retire_frame_utilization(entry)
        self._client_lru.pop(frame, None)
        self.node.pools.free(frame, client_scoma=is_scoma)
        if is_scoma:
            self.node.stats.client_page_outs += 1
        if self._obs_pageout is not None:
            self._obs_pageout[demote].inc()
        if demote:
            self.page_mode_override[gpage] = PageMode.LANUMA
            self.node.stats.mode_demotions += 1
        return now + cost

    def page_out_home(self, gpage: int, now: int) -> int:
        """Page a *home* page out (section 3.3's home-node page-out).

        The home requests every client to page out its copy and write
        modified data back, waits for all acknowledgements, writes the
        page "to disk", and removes the translation.  Returns the
        completion time.
        """
        node = self.node
        dir_page = node.directory.page(gpage)
        if dir_page is None:
            raise KeyError("gpage %d is not homed at node %d"
                           % (gpage, node.node_id))
        machine = self.machine
        lat = self.lat

        # Ask every client to page out; their flushes write dirty data
        # back and clear the directory.  The home blocks on the acks.
        last_ack = now
        for client_id in sorted(dir_page.clients):
            client = machine.nodes[client_id]
            node.msglog.record(MessageKind.PAGE_OUT_REQ)
            arrival = machine.network.send(node.node_id, client_id, now,
                                           MessageKind.PAGE_OUT_REQ)
            entry = client.pit.entry_for_gpage(gpage)
            done = arrival + lat.pageout_kernel
            if entry is not None:
                done = client.kernel.page_out_client(entry.frame, arrival)
            client.msglog.record(MessageKind.PAGE_OUT_ACK)
            ack = machine.network.send(client_id, node.node_id, done,
                                       MessageKind.PAGE_OUT_ACK)
            if ack > last_ack:
                last_ack = ack
        dir_page.clients.clear()

        # Reset any home-page-status flags (section 3.3): clients must
        # contact us again on their next fault.
        for other in machine.nodes:
            if other.node_id != node.node_id:
                node.msglog.record(MessageKind.STATUS_RESET)
                other.kernel.home_status.discard(gpage)

        # Flush home CPU caches, tear down translations, free the frame.
        frame = dir_page.home_frame
        entry = node.pit.entry_or_none(frame)
        base = frame * machine.config.lines_per_page
        for lip in range(machine.config.lines_per_page):
            node.controller._drop_local_copies(base + lip)
        vpage = self._vpage_of_frame.pop(frame, None)
        if vpage is not None:
            self.page_table.pop(vpage, None)
            for cpu in node.cpus:
                cpu.tlb.invalidate(vpage)
        node.pit.remove(frame)
        machine.retire_frame_utilization(entry)
        node.directory.remove_page(gpage)
        node.pools.free(frame)
        node.stats.home_page_outs += 1
        return last_ack + lat.pageout_kernel

    def note_lanuma_refetch(self, entry) -> None:
        """Count a remote fetch on a LA-NUMA page; queue a promotion if
        the policy supports it and the page is refetch-heavy
        (dyn-bidir).  The actual mode change happens between references
        via :meth:`drain_promotions`."""
        if not self.policy.promotes:
            return
        gpage = entry.gpage
        count = self.refetch_counts.get(gpage, 0) + 1
        if count >= self.policy.promote_threshold:
            self.refetch_counts[gpage] = 0
            self.pending_promotions.append(entry.frame)
        else:
            self.refetch_counts[gpage] = count

    def drain_promotions(self, now: int) -> int:
        """Apply queued LA-NUMA -> S-COMA promotions (dyn-bidir).

        Pages out the LA-NUMA frame and clears its mode override; the
        next fault re-maps the page in S-COMA mode.  Returns the time
        after the (kernel-side) work.
        """
        while self.pending_promotions:
            frame = self.pending_promotions.pop()
            entry = self.node.pit.entry_or_none(frame)
            if entry is None or entry.mode != PageMode.LANUMA:
                continue
            self.page_mode_override.pop(entry.gpage, None)
            now = self.page_out_client(frame, now)
            self.node.stats.mode_promotions += 1
        return now
