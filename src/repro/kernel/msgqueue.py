"""Command-mode message passing (section 3.2).

Command-mode page frames "implement a memory-mapped command interface
between the local processors and the coherence controller ... This
command interface may also be used to provide a low-overhead message
passing interface to software."

This module builds that software facility: a :class:`MessageChannel` is
a pair of command-mode frames (one per endpoint node).  A send is a
burst of uncached stores into the local command frame; the controller
forwards the payload to the peer's controller, which deposits it in the
receiver's command frame and the receiver polls it out with uncached
loads.  No cache coherence protocol runs — the cost is bus + controller
+ network occupancy only, which is what makes it "low-overhead"
relative to shared-memory handoff (miss + invalidate + miss).

Timing: ``send`` charges the sender's bus/controller/NI and the
receiver-side controller deposit; ``receive`` charges the receiver's
polling loads.  Payload *contents* are carried for real (the channel is
usable as a data path in tests/examples).
"""

from __future__ import annotations

from collections import deque

from repro.core.modes import PageMode
from repro.interconnect.messages import MessageKind
from repro.obs import tracing


class ChannelError(RuntimeError):
    """Misuse of a command-mode message channel."""


class MessageChannel:
    """A unidirectional command-mode channel between two nodes."""

    def __init__(self, machine, src_node: int, dst_node: int,
                 capacity: int = 64) -> None:
        if src_node == dst_node:
            raise ChannelError("channel endpoints must be distinct nodes")
        if capacity < 1:
            raise ChannelError("capacity must be positive")
        self.machine = machine
        self.src = machine.nodes[src_node]
        self.dst = machine.nodes[dst_node]
        self.capacity = capacity
        self.lat = machine.config.latency
        self._queue: "deque[object]" = deque()
        self.sends = 0
        self.receives = 0
        self.full_rejections = 0
        #: Duplicated deposits discarded by sequence-number dedup (only
        #: ever non-zero under a fault plan that duplicates COMMAND
        #: messages; see ``repro.faults``).
        self.dedup_drops = 0
        self._next_seq = 0
        self._last_accepted = -1

        # Each endpoint pins a command-mode frame; the controller
        # recognizes accesses to it as commands, not memory traffic.
        self.src_frame = self._alloc_command_frame(self.src)
        self.dst_frame = self._alloc_command_frame(self.dst)

    @staticmethod
    def _alloc_command_frame(node) -> int:
        frame = node.pools.alloc_real()
        node.pit.install(frame, gpage=-1, static_home=node.node_id,
                         dynamic_home=node.node_id, home_frame=frame,
                         mode=PageMode.COMMAND)
        node.stats.frames_allocated += 1
        return frame

    # -- data path ---------------------------------------------------------

    def send(self, payload, now: int) -> int:
        """Send ``payload`` at time ``now``; returns the completion time
        at the *sender* (the flight to the receiver is asynchronous).

        Raises :class:`ChannelError` when the receive queue is full
        (back-pressure is software's problem, as on real NIs).
        """
        if len(self._queue) >= self.capacity:
            self.full_rejections += 1
            raise ChannelError("channel full (capacity %d)" % self.capacity)
        lat = self.lat
        # Causal tracing: a send is its own root span; its context rides
        # in the queue so the receive can link back across CPUs.
        tracer = tracing.current()
        span = (tracer.begin("channel_send", "msg", self.src.node_id, now,
                             dst=self.dst.node_id)
                if tracer is not None else None)
        # Uncached stores of the payload into the command frame.
        t = self.src.bus.request(now)
        t = self.src.bus.transfer(t)
        # The controller picks the command up and injects the message.
        t = self.src.controller.resource.acquire(t, lat.ctrl_dispatch)
        self.src.msglog.record(MessageKind.COMMAND)
        arrival = self.machine.network.send(self.src.node_id,
                                            self.dst.node_id, t,
                                            MessageKind.COMMAND)
        # Receiver-side controller deposits into the command frame
        # (off the sender's critical path).
        seq = self._next_seq
        self._next_seq = seq + 1
        context = tracer.context() if tracer is not None else None
        self.dst.controller.resource.acquire(arrival, lat.ctrl_dispatch)
        self._queue.append((payload, arrival + lat.ctrl_dispatch, seq,
                            context))
        faults = getattr(self.machine, "faults", None)
        if faults is not None and faults.consume_duplicate():
            # The fault plane delivered this deposit twice: the copy
            # carries the same sequence number and is queued for real —
            # ``receive`` discards it (idempotent delivery).
            self.dst.controller.resource.acquire(arrival, lat.ctrl_dispatch)
            self._queue.append((payload, arrival + lat.ctrl_dispatch, seq,
                                context))
        self.sends += 1
        if span is not None:
            tracer.end(span, t)
        return t

    def receive(self, now: int) -> "tuple[object, int] | None":
        """Poll for a message at time ``now``.

        Returns ``(payload, completion_time)`` if a message has arrived
        by ``now`` (plus the polling load cost), else ``None``.
        """
        lat = self.lat
        t = self.dst.bus.request(now)
        t = self.dst.bus.transfer(t)
        while self._queue:
            payload, ready, seq, context = self._queue[0]
            if ready > now:
                return None
            self._queue.popleft()
            if seq <= self._last_accepted:
                # A duplicated deposit (fault plane): same sequence
                # number as an already-accepted message — discard it.
                self.dedup_drops += 1
                faults = getattr(self.machine, "faults", None)
                if faults is not None:
                    faults.count_dedup_drop()
                continue
            self._last_accepted = seq
            self.receives += 1
            if context is not None:
                tracer = tracing.current()
                if tracer is not None:
                    # The receive belongs to the *receiver's* causal
                    # chain; link back to the send rather than mutating
                    # the sender's completed trace.
                    tracer.add_root(
                        "channel_recv", "msg", self.dst.node_id, ready, t,
                        link_trace="%016x" % context[0],
                        link_span="%016x" % context[1])
            return payload, t
        return None

    def pending(self) -> int:
        """Messages queued at the receiver."""
        return len(self._queue)


def shared_memory_handoff_cost(machine) -> int:
    """The cost the channel competes against: handing one line of data
    through coherent shared memory (producer write-invalidate + consumer
    remote miss), per Table 1."""
    lat = machine.config.latency
    return lat.expected_2party_write_shared + lat.expected_remote_clean
