"""Per-node page frame pools (section 3.3, "Page Mode Binding").

The OS maintains a pool of free page frames for each mode and allocates
from the pool matching the faulting page's mode.  *Real* frames occupy
local memory; *imaginary* frames (LA-NUMA mode) are pure name space and
are drawn from a disjoint number range so a frame number alone
identifies its kind.

The page-cache capacity limit that drives the paper's SCOMA-70 and
adaptive experiments applies to *client S-COMA frames* — S-COMA frames
backing pages whose home is elsewhere.  Home frames and private frames
are not limited in the paper's runs (and are not here, unless
``total_frames`` is set).
"""

from __future__ import annotations

#: Imaginary frame numbers start here; real frames count up from zero.
IMAGINARY_BASE = 1 << 40


def is_imaginary(frame: int) -> bool:
    """Does ``frame`` come from the imaginary number range?"""
    return frame >= IMAGINARY_BASE


class FramePools:
    """Frame allocator for one node."""

    def __init__(self, node_id: int,
                 page_cache_frames: "int | None" = None,
                 total_frames: "int | None" = None) -> None:
        self.node_id = node_id
        self.page_cache_frames = page_cache_frames
        self.total_frames = total_frames

        self._next_real = 0
        self._next_imaginary = IMAGINARY_BASE
        self._free_real: "list[int]" = []
        self._free_imaginary: "list[int]" = []

        self.real_in_use = 0
        self.imaginary_in_use = 0
        #: Client S-COMA frames currently in use (page-cache occupancy).
        self.client_scoma_in_use = 0
        self.client_scoma_peak = 0

        self.real_allocated_total = 0
        self.imaginary_allocated_total = 0

    # -- queries ---------------------------------------------------------

    def page_cache_full(self) -> bool:
        """Is the client page cache at its configured capacity?"""
        if self.page_cache_frames is None:
            return False
        return self.client_scoma_in_use >= self.page_cache_frames

    def real_available(self) -> bool:
        """Is there room for another real frame?"""
        if self.total_frames is None:
            return True
        return self.real_in_use < self.total_frames

    def occupancy(self) -> "dict[str, int]":
        """Current pool occupancy and cumulative totals.

        The observability layer publishes these as per-node
        ``kernel.frame_pool.*`` gauges at the end of a run.
        """
        return {
            "real_in_use": self.real_in_use,
            "imaginary_in_use": self.imaginary_in_use,
            "client_scoma_in_use": self.client_scoma_in_use,
            "client_scoma_peak": self.client_scoma_peak,
            "real_allocated_total": self.real_allocated_total,
            "imaginary_allocated_total": self.imaginary_allocated_total,
        }

    # -- allocation ------------------------------------------------------

    def alloc_real(self, client_scoma: bool = False) -> int:
        """Allocate a real frame.

        ``client_scoma`` marks the frame as a client page-cache frame
        and charges it against the page-cache capacity; the caller must
        check :meth:`page_cache_full` first (the kernel's fault handler
        pages out or demotes a victim before retrying).
        """
        if not self.real_available():
            raise MemoryError("node %d out of real frames" % self.node_id)
        if client_scoma and self.page_cache_full():
            raise MemoryError("node %d page cache full" % self.node_id)
        if self._free_real:
            frame = self._free_real.pop()
        else:
            frame = self._next_real
            self._next_real += 1
        self.real_in_use += 1
        self.real_allocated_total += 1
        if client_scoma:
            self.client_scoma_in_use += 1
            if self.client_scoma_in_use > self.client_scoma_peak:
                self.client_scoma_peak = self.client_scoma_in_use
        return frame

    def alloc_imaginary(self) -> int:
        """Allocate an imaginary (LA-NUMA) frame: name space only."""
        if self._free_imaginary:
            frame = self._free_imaginary.pop()
        else:
            frame = self._next_imaginary
            self._next_imaginary += 1
        self.imaginary_in_use += 1
        self.imaginary_allocated_total += 1
        return frame

    def free(self, frame: int, client_scoma: bool = False) -> None:
        """Return a frame to its pool (mirror of the alloc flags)."""
        if is_imaginary(frame):
            self._free_imaginary.append(frame)
            self.imaginary_in_use -= 1
            if self.imaginary_in_use < 0:
                raise RuntimeError("imaginary frame double free")
        else:
            self._free_real.append(frame)
            self.real_in_use -= 1
            if self.real_in_use < 0:
                raise RuntimeError("real frame double free")
            if client_scoma:
                self.client_scoma_in_use -= 1
                if self.client_scoma_in_use < 0:
                    raise RuntimeError("client S-COMA accounting underflow")
