"""Global naming and binding (sections 3.3-3.4).

PRISM exposes shared memory through globalized System V calls: a global
IPC server hands out global segment identifiers (GSIDs) for unique keys
(``shmget``), and processes attach virtual-address regions to global
segments (``shmat``).  Global binding — attaching virtual addresses to
global addresses — happens once per *segment*, at user-controlled
granularity, instead of per page at fault time; after binding, all
translations are node-local.

The simulator keeps one machine-wide :class:`AddressSpaceLayout` because
the application loader attaches every process at identical virtual
addresses (section 3.3).  Homes for shared pages are assigned round
robin across the nodes, as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.messages import MessageKind, MessageLog


@dataclass
class GlobalSegment:
    """A global segment created via the globalized ``shmget``."""

    gsid: int
    key: int
    size_bytes: int
    gpage_base: int
    num_pages: int
    attach_count: int = 0


class GlobalIpcServer:
    """The machine-wide IPC server that names global segments.

    Creation requests are idempotent on the key, as with System V IPC.
    The server also owns the global page number space: segments receive
    disjoint, page-aligned global page ranges.
    """

    def __init__(self, num_nodes: int, page_bytes: int) -> None:
        self.num_nodes = num_nodes
        self.page_bytes = page_bytes
        self._segments_by_key: "dict[int, GlobalSegment]" = {}
        self._segments_by_gsid: "dict[int, GlobalSegment]" = {}
        self._next_gsid = 1
        self._next_gpage = 0
        self.log = MessageLog()

    def shmget(self, key: int, size_bytes: int) -> GlobalSegment:
        """Create (or look up) the global segment for ``key``."""
        self.log.record(MessageKind.SEG_CREATE)
        seg = self._segments_by_key.get(key)
        if seg is not None:
            if seg.size_bytes < size_bytes:
                raise ValueError(
                    "segment key %d exists with smaller size" % key)
            return seg
        num_pages = -(-size_bytes // self.page_bytes)
        seg = GlobalSegment(gsid=self._next_gsid, key=key,
                            size_bytes=size_bytes,
                            gpage_base=self._next_gpage,
                            num_pages=num_pages)
        self._next_gsid += 1
        self._next_gpage += num_pages
        self._segments_by_key[key] = seg
        self._segments_by_gsid[seg.gsid] = seg
        return seg

    def shmat(self, gsid: int) -> GlobalSegment:
        """Increment the attach count for a segment."""
        self.log.record(MessageKind.SEG_ATTACH)
        seg = self._segments_by_gsid.get(gsid)
        if seg is None:
            raise KeyError("no global segment with gsid %d" % gsid)
        seg.attach_count += 1
        return seg

    def segment(self, gsid: int) -> "GlobalSegment | None":
        """Look a segment up by GSID."""
        return self._segments_by_gsid.get(gsid)

    def home_of(self, gpage: int) -> int:
        """Static home node of a global page: round robin (section 4.2)."""
        return gpage % self.num_nodes


@dataclass
class Region:
    """A contiguous virtual-address region bound to one segment."""

    vbase: int
    size_bytes: int
    #: ``None`` for node-private regions; otherwise the attached GSID.
    gsid: "int | None"
    gpage_base: int = -1

    @property
    def vend(self) -> int:
        """One past the region's last virtual address."""
        return self.vbase + self.size_bytes


class AddressSpaceLayout:
    """The (identical-everywhere) virtual address space of a workload.

    Maps virtual page numbers to either a global page (shared regions)
    or "private" (node-local memory).  Built by the workload via
    :meth:`attach_shared` and :meth:`add_private`; queried on every page
    fault by the node kernels.
    """

    def __init__(self, ipc: GlobalIpcServer, page_bytes: int) -> None:
        self.ipc = ipc
        self.page_bytes = page_bytes
        self.regions: "list[Region]" = []
        #: vpage -> gpage for shared pages; private pages are absent.
        self._vpage_to_gpage: "dict[int, int]" = {}
        self._private_vpages: "set[int]" = set()
        self._next_vbase = self.page_bytes  # leave page 0 unmapped

    def _carve(self, size_bytes: int) -> int:
        vbase = self._next_vbase
        pages = -(-size_bytes // self.page_bytes)
        self._next_vbase += pages * self.page_bytes
        return vbase

    def attach_shared(self, key: int, size_bytes: int) -> Region:
        """shmget + shmat: create/look up a segment and bind a region."""
        seg = self.ipc.shmget(key, size_bytes)
        self.ipc.shmat(seg.gsid)
        vbase = self._carve(seg.num_pages * self.page_bytes)
        region = Region(vbase=vbase, size_bytes=seg.num_pages * self.page_bytes,
                        gsid=seg.gsid, gpage_base=seg.gpage_base)
        self.regions.append(region)
        vpage0 = vbase // self.page_bytes
        for i in range(seg.num_pages):
            self._vpage_to_gpage[vpage0 + i] = seg.gpage_base + i
        return region

    def add_private(self, size_bytes: int) -> Region:
        """Reserve a node-private region (stacks, per-process data)."""
        vbase = self._carve(size_bytes)
        pages = -(-size_bytes // self.page_bytes)
        region = Region(vbase=vbase, size_bytes=pages * self.page_bytes,
                        gsid=None)
        self.regions.append(region)
        vpage0 = vbase // self.page_bytes
        for i in range(pages):
            self._private_vpages.add(vpage0 + i)
        return region

    def gpage_of(self, vpage: int) -> "int | None":
        """Global page backing ``vpage``; ``None`` for private pages."""
        return self._vpage_to_gpage.get(vpage)

    def is_mapped(self, vpage: int) -> bool:
        """Is ``vpage`` inside any attached region?"""
        return vpage in self._vpage_to_gpage or vpage in self._private_vpages

    @property
    def total_shared_pages(self) -> int:
        """Shared (globally backed) pages in the layout."""
        return len(self._vpage_to_gpage)
