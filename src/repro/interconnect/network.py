"""Interconnection network model.

The paper uses a fixed one-way end-to-end latency of 120 cycles and
explicitly does *not* model contention inside the network switches
("Latency and contention is accounted for at all system resources
except the processor internals and network switches").  We therefore
model the network as: per-node network-interface (NI) occupancy — which
*is* a system resource — plus a flat flight latency.
"""

from __future__ import annotations

from repro.interconnect.messages import MessageKind
from repro.sim.engine import Resource
from repro.sim.latency import LatencyModel


class Network:
    """Flat-latency network with per-node NI injection occupancy."""

    #: Cycles a message occupies the sending NI (header + line data fit
    #: in a handful of flits on a 16-byte datapath).
    NI_OCCUPANCY = 8

    def __init__(self, num_nodes: int, lat: LatencyModel) -> None:
        self.lat = lat
        self.interfaces = [Resource("node%d.ni" % n) for n in range(num_nodes)]
        self.messages = 0
        self.hops_charged = 0
        #: Optional per-hop jitter source (``() -> int`` extra flight
        #: cycles), installed by the machine when it runs under a
        #: :class:`~repro.sim.engine.SchedulePerturbation`.
        self.jitter = None
        #: Optional fault plane (a
        #: :class:`~repro.faults.injector.FaultInjector`), installed by
        #: the machine when it runs under a fault plan.  None keeps the
        #: fault-free path at a single pointer test.
        self.faults = None
        #: Optional causal-trace collector (a
        #: :class:`~repro.obs.tracing.TraceCollector`), installed by
        #: ``TraceCollector.bind_machine``.  Every hop taken inside an
        #: active transaction becomes a ``network`` child span; with no
        #: collector this is one pointer test.
        self.tracer = None

    def send(self, src_node: int, dst_node: int, now: int,
             kind: "MessageKind" = MessageKind.DATA_REPLY) -> int:
        """One message hop; returns its arrival time at ``dst_node``.

        Intra-node "hops" (src == dst) are free — the controller talks
        to itself through the bus, which the caller already charged.
        ``kind`` classifies the hop for the fault plane's rule matching
        (ignored — not even read — on the fault-free path).
        """
        if src_node == dst_node:
            return now
        if self.faults is not None:
            return self.faults.deliver(self, src_node, dst_node, now, kind)
        self.messages += 1
        self.hops_charged += 1
        # NI occupancy is carved out of the one-way latency so that an
        # uncontended hop costs exactly ``net_latency`` end to end.
        injected = self.interfaces[src_node].acquire(now, self.NI_OCCUPANCY)
        arrival = injected + self.lat.net_latency - self.NI_OCCUPANCY
        if self.jitter is not None:
            arrival += self.jitter()
        if self.tracer is not None:
            self.tracer.add("net:" + kind.name, "network", src_node,
                            now, arrival, dst=dst_node)
        return arrival

    def multicast(self, src_node: int, dst_nodes: "list[int]", now: int,
                  kind: "MessageKind" = MessageKind.DATA_REPLY) -> "list[int]":
        """Send to several nodes; injections serialize at the source NI.

        Returns per-destination arrival times, in ``dst_nodes`` order.
        """
        arrivals = []
        for dst in dst_nodes:
            arrivals.append(self.send(src_node, dst, now, kind))
        return arrivals
