"""Inter-node protocol message vocabulary.

The simulator resolves transactions atomically, so messages are not
queued objects in the hot path; they are *accounted* — every protocol
step increments a per-node counter keyed by :class:`MessageKind`, and
the paging / migration layers construct :class:`Message` records where
the extra structure is useful (tests, traces, the command interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, auto

from repro.obs import tracing


class MessageKind(IntEnum):
    """Every message type the nodes exchange."""

    # Coherence protocol.
    READ_REQ = auto()          # client -> home: shared copy wanted
    READ_EXCL_REQ = auto()     # client -> home: exclusive copy wanted
    UPGRADE_REQ = auto()       # client -> home: shared -> exclusive
    DATA_REPLY = auto()        # home/owner -> client: line data
    ACK = auto()               # generic acknowledgement
    INVALIDATE = auto()        # home -> sharer
    INTERVENTION = auto()      # home -> owner: fetch / downgrade
    WRITEBACK = auto()         # owner -> home: dirty line
    REPLACEMENT_HINT = auto()  # owner -> home: clean exclusive dropped
    FORWARD = auto()           # stale home -> static home -> dynamic home

    # External paging (section 3.3).
    PAGE_IN_REQ = auto()       # client kernel -> home kernel
    PAGE_IN_REPLY = auto()     # home kernel -> client kernel
    PAGE_OUT_REQ = auto()      # home kernel -> client kernels
    PAGE_OUT_ACK = auto()
    CLIENT_PAGE_OUT = auto()   # client kernel -> home kernel
    STATUS_RESET = auto()      # home unmapped: reset home-page-status

    # Global naming (section 3.4).
    SEG_CREATE = auto()        # kernel -> global IPC server
    SEG_ATTACH = auto()
    SEG_REPLY = auto()

    # Lazy migration (section 3.5).
    MIGRATE_REQ = auto()       # static home -> old/new dynamic homes
    MIGRATE_ACK = auto()

    # Command-mode interface (section 3.2).
    COMMAND = auto()           # processor -> controller, memory mapped


@dataclass
class Message:
    """A structured protocol message (used off the hot path)."""

    kind: MessageKind
    src_node: int
    dst_node: int
    gpage: int = -1
    line_in_page: int = -1
    #: Frame-number hint for the receiver's reverse translation; a
    #: correct guess lets the receiver skip the PIT hash search.
    frame_guess: "int | None" = None
    payload: dict = field(default_factory=dict)
    #: Per-link sequence number stamped by a :class:`SequenceTracker`
    #: when the fault plane is active (``-1`` = unsequenced).
    seq: int = -1
    #: Causal-trace context: the transaction (trace) and the span that
    #: caused this message.  Auto-stamped from the active span of the
    #: installed :class:`~repro.obs.tracing.TraceCollector` when left
    #: at the defaults (``0`` = untraced).
    trace_id: int = 0
    span_id: int = 0

    def __post_init__(self) -> None:
        if self.src_node < 0 or self.dst_node < 0:
            raise ValueError("message endpoints must be valid node ids")
        if self.trace_id == 0:
            context = tracing.active_context()
            if context is not None:
                self.trace_id, self.span_id = context


class SequenceTracker:
    """Per-link sequence numbers with receiver-side dedup.

    Under a fault plan, every (src, dst) link stamps its messages with a
    monotonically increasing sequence number and the receiver remembers
    the highest number it has *accepted*.  Because a link delivers its
    accepted messages in stamp order (a retransmission reuses the
    original stamp), a duplicate or replayed message always arrives with
    ``seq <= accepted`` and is discarded — protocol handlers run at most
    once per stamp, which is what makes duplication idempotent.
    """

    __slots__ = ("_next", "_accepted", "dedup_drops")

    def __init__(self) -> None:
        self._next: "dict[tuple[int, int], int]" = {}
        self._accepted: "dict[tuple[int, int], int]" = {}
        self.dedup_drops = 0

    def stamp(self, src: int, dst: int) -> int:
        """Assign the next sequence number for the src->dst link."""
        link = (src, dst)
        seq = self._next.get(link, 0)
        self._next[link] = seq + 1
        return seq

    def accept(self, src: int, dst: int, seq: int) -> bool:
        """Receiver-side check: ``True`` for a fresh message, ``False``
        (counted in :attr:`dedup_drops`) for a duplicate/replay."""
        link = (src, dst)
        if seq <= self._accepted.get(link, -1):
            self.dedup_drops += 1
            return False
        self._accepted[link] = seq
        return True

    def seen(self, src: int, dst: int, seq: int) -> bool:
        """Would :meth:`accept` reject this stamp? (no side effects)."""
        return seq <= self._accepted.get((src, dst), -1)


class MessageLog:
    """Per-node counters of protocol messages sent, by kind."""

    __slots__ = ("sent",)

    def __init__(self) -> None:
        self.sent: "dict[MessageKind, int]" = {}

    def record(self, kind: MessageKind, count: int = 1) -> None:
        """Count ``count`` sends of ``kind``."""
        self.sent[kind] = self.sent.get(kind, 0) + count

    def total(self) -> int:
        """All messages sent."""
        return sum(self.sent.values())

    def get(self, kind: MessageKind) -> int:
        """Messages of one kind sent."""
        return self.sent.get(kind, 0)
