"""``repro.obs``: the unified observability layer.

Three substrates, all strictly opt-in:

* **Metrics** (:mod:`repro.obs.registry`) — counters, gauges,
  log-bucket histograms and bounded time series, organized as labeled
  families in a :class:`MetricsRegistry`;
* **Events** (:mod:`repro.obs.events`) — a typed, ordered, ring-buffered
  structured-event sink with JSONL/CSV export and schema validation;
* **Causal tracing** (:mod:`repro.obs.tracing`) — span trees following
  each coherence transaction end to end, with deterministic ids, an
  exact critical-path latency breakdown, and JSONL / Chrome trace
  export.

Instrumented code calls the module-level helpers (:func:`counter`,
:func:`gauge`, :func:`histogram`, :func:`series`, :func:`timer`).  With
no registry installed they return shared no-op objects, so the
uninstrumented hot path costs one global load and a ``None`` check; the
simulator's per-reference path goes further and pre-resolves its
handles at machine construction (see ``Machine.__init__``), paying a
single attribute test per reference.

Install a registry process-wide with :func:`install` / :func:`uninstall`
or, more commonly, scoped::

    from repro import obs

    with obs.collecting() as registry:
        machine.run(workload)
    snapshot = registry.to_dict()

The campaign harness does exactly this around each cell when a
:class:`~repro.harness.session.Session` is created with
``collect_metrics=True``, and stores the snapshot in the result cache
next to the cell's statistics.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager

from repro.obs.events import (EVENT_SCHEMA, EventSink, validate_event,
                              validate_jsonl)
from repro.obs.registry import (LATENCY_BUCKETS_CYCLES,
                                TIME_BUCKETS_SECONDS, Counter, Gauge,
                                Histogram, MetricsRegistry, Series,
                                find_metrics, metric_key, parse_key,
                                quantile, series_quantile)

__all__ = [
    "EVENT_SCHEMA", "EventSink", "LATENCY_BUCKETS_CYCLES",
    "TIME_BUCKETS_SECONDS", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "Series", "collecting", "counter", "current",
    "enabled", "find_metrics", "gauge", "histogram", "install",
    "metric_key", "parse_key", "quantile", "series", "series_quantile",
    "timer", "uninstall", "validate_event", "validate_jsonl",
]

#: The process-wide registry, or None (observability disabled).
_REGISTRY: "MetricsRegistry | None" = None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


def uninstall() -> None:
    """Remove the installed registry (helpers become no-ops again)."""
    global _REGISTRY
    _REGISTRY = None


def current() -> "MetricsRegistry | None":
    """The installed registry, or None."""
    return _REGISTRY


def enabled() -> bool:
    """Is a registry installed?"""
    return _REGISTRY is not None


@contextmanager
def collecting(registry: "MetricsRegistry | None" = None):
    """Install a registry for the duration of a ``with`` block.

    Yields the registry (a fresh one unless given) and restores the
    previously installed registry — if any — on exit.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = previous


# ---------------------------------------------------------------------------
# No-op fallbacks: shared singletons, zero allocation on the disabled path.
# ---------------------------------------------------------------------------

class _NoopMetric:
    """Absorbs every metric operation; shared across all call sites."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def sample(self, time, value) -> None:
        pass


class _NoopTimer:
    """A context manager that times nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NOOP_METRIC = _NoopMetric()
NOOP_TIMER = _NoopTimer()


class _Timer:
    """Times a ``with`` block into a histogram (wall-clock seconds)."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(_time.perf_counter() - self._started)


# ---------------------------------------------------------------------------
# Module-level instrumentation helpers.
# ---------------------------------------------------------------------------

def counter(name: str, **labels):
    """The named counter, or a shared no-op when disabled."""
    registry = _REGISTRY
    if registry is None:
        return NOOP_METRIC
    return registry.counter(name, **labels)


def gauge(name: str, **labels):
    """The named gauge, or a shared no-op when disabled."""
    registry = _REGISTRY
    if registry is None:
        return NOOP_METRIC
    return registry.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels):
    """The named histogram, or a shared no-op when disabled."""
    registry = _REGISTRY
    if registry is None:
        return NOOP_METRIC
    return registry.histogram(name, buckets=buckets, **labels)


def series(name: str, **labels):
    """The named time series, or a shared no-op when disabled."""
    registry = _REGISTRY
    if registry is None:
        return NOOP_METRIC
    return registry.series(name, **labels)


def timer(name: str, **labels):
    """A context manager timing its block into a seconds histogram
    (log buckets from 1 ms); a shared no-op when disabled."""
    registry = _REGISTRY
    if registry is None:
        return NOOP_TIMER
    return _Timer(registry.histogram(name, buckets=TIME_BUCKETS_SECONDS,
                                     **labels))
