"""Causal span tracing for coherence transactions.

A :class:`TraceCollector` follows each coherence transaction end-to-end
through the simulated machine.  A cache miss (or upgrade, page fault,
page-out) opens a **root span**; the controller, network, fault
injector, VM and message-queue layers contribute **child spans** (queue
waits, request/reply hops, home service, invalidation fan-out,
retransmit back-off), all stamped with *simulated* begin/end times so
the reconstructed tree is a causal, cycle-accurate account of where the
transaction's latency went.

Like the rest of :mod:`repro.obs`, tracing is strictly opt-in.  With no
collector installed every instrumentation site pays one pointer test
(``if tracer is not None``) and simulated results are byte-identical to
an uninstrumented run.  Install a collector for the current process
with :func:`install`/:func:`uninstall` or the :func:`collecting`
context manager, *before* constructing the :class:`~repro.sim.machine.
Machine` (the machine binds the collector's root-span hooks at
construction time)::

    from repro.obs import tracing

    with tracing.collecting(seed=0) as collector:
        machine = Machine(config, policy="scoma")
        machine.run(workload)
    for trace in collector.slowest(5):
        print(format_tree(trace))
        print(trace.breakdown)       # segment -> cycles, sums to duration

Identifiers are **deterministic**: ``span_id`` mixes the collector seed
with a per-node monotonic counter through a splitmix64-style finalizer
(never wall clock), so two same-seed runs produce identical span trees
— CI diffs the JSONL exports byte for byte.

The critical-path analyzer (:func:`compute_breakdown`) partitions the
root span's ``[begin, end)`` window into elementary intervals and
charges each interval to the *innermost* covering span's segment kind,
so the per-segment cycles of every trace sum exactly to the
transaction's simulated latency, even when sibling spans overlap
(invalidation fan-out).  Roll-ups land in the installed
:class:`~repro.obs.registry.MetricsRegistry` as
``trace.segment_cycles{segment=...,policy=...}`` histograms.

Exports: :meth:`TraceCollector.write_spans` (JSONL, one span per line,
validated by :func:`validate_spans_jsonl` against :data:`SPAN_SCHEMA`)
and :meth:`TraceCollector.write_chrome` (Chrome / Perfetto
``trace_event`` JSON; open it at ``ui.perfetto.dev``).  Timestamps are
simulated cycles rendered in the viewer's microsecond field.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from heapq import heappop, heappush

#: Segment kinds the critical-path analyzer can charge cycles to.
#: ``local`` is the root-span residual (bus protocol work on the
#: requesting node not covered by any child span); ``queue`` covers
#: waits on busy resources (controller dispatch, bus, DRAM port);
#: ``mem`` is the data-supply phase of a locally-served miss (DRAM
#: read or dirty-sibling cache intervention).
SEGMENTS = ("local", "tlb", "fault", "pageout", "queue", "network",
            "home", "inval", "retry", "msg", "mem")

#: Default bound on retained traces (oldest evicted first; the slowest
#: transactions survive eviction in a separate top-N set).
MAX_TRACES = 20_000

#: Default capacity of the slowest-transaction set.
TOP_CAPACITY = 64

_MASK64 = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """Deterministic 64-bit id from integer parts (splitmix64-style)."""
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = ((x ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9) & _MASK64
        x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Span:
    """One timed operation inside a trace (simulated-time begin/end)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "node", "cpu", "begin", "end", "attrs")

    def __init__(self, trace_id, span_id, parent_id, name, kind, node,
                 cpu, begin, end, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.node = node
        self.cpu = cpu
        self.begin = begin
        self.end = end
        self.attrs = attrs

    @property
    def duration(self):
        return self.end - self.begin

    def to_dict(self) -> dict:
        """JSON-safe dict matching :data:`SPAN_SCHEMA` (hex ids)."""
        return {
            "trace": "%016x" % self.trace_id,
            "span": "%016x" % self.span_id,
            "parent": "%016x" % self.parent_id if self.parent_id else "",
            "name": self.name,
            "kind": self.kind,
            "node": self.node,
            "cpu": self.cpu,
            "begin": self.begin,
            "end": self.end,
            "attrs": self.attrs if self.attrs is not None else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Span(%s kind=%s node=%d [%s..%s])"
                % (self.name, self.kind, self.node, self.begin, self.end))


class Trace:
    """A completed transaction: root span plus its causal children."""

    __slots__ = ("trace_id", "spans", "error", "breakdown")

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.spans: "list[Span]" = []
        self.error = ""
        #: segment kind -> cycles; computed once when the trace
        #: completes, values sum exactly to :attr:`duration`.
        self.breakdown: "dict[str, int]" = {}

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def duration(self):
        root = self.spans[0]
        return root.end - root.begin


def compute_breakdown(trace: Trace) -> "dict[str, int]":
    """Charge every cycle of the root window to the innermost span.

    Partitions ``[root.begin, root.end)`` at every child boundary and
    attributes each elementary interval to the deepest covering span
    (ties: later begin, then later creation order).  Child windows are
    clipped to the root window, so the returned cycles **sum exactly**
    to the root duration — the invariant ``repro trace`` prints and the
    tests assert.
    """
    spans = trace.spans
    root = spans[0]
    lo, hi = root.begin, root.end
    if hi <= lo:
        return {}
    by_id = {span.span_id: span for span in spans}
    depths: "dict[int, int]" = {root.span_id: 0}

    def depth_of(span: Span) -> int:
        known = depths.get(span.span_id)
        if known is not None:
            return known
        parent = by_id.get(span.parent_id)
        depth = 1 if parent is None else depth_of(parent) + 1
        depths[span.span_id] = depth
        return depth

    points = {lo, hi}
    covers = []  # (depth, clipped_begin, order, clipped_end, kind)
    for order, span in enumerate(spans):
        if order == 0:
            continue
        begin = span.begin if span.begin > lo else lo
        end = span.end if span.end < hi else hi
        if end <= begin:
            continue
        covers.append((depth_of(span), begin, order, end, span.kind))
        points.add(begin)
        points.add(end)
    bounds = sorted(points)
    out: "dict[str, int]" = {}
    for left, right in zip(bounds, bounds[1:]):
        best_key = (0, lo, 0)
        best_kind = root.kind
        for depth, begin, order, end, kind in covers:
            if begin <= left and end >= right:
                key = (depth, begin, order)
                if key > best_key:
                    best_key = key
                    best_kind = kind
        out[best_kind] = out.get(best_kind, 0) + (right - left)
    return out


def format_tree(trace: Trace) -> str:
    """Render a trace as an indented ascii span tree."""
    children: "dict[int, list[Span]]" = {}
    for span in trace.spans:
        children.setdefault(span.parent_id, []).append(span)
    lines: "list[str]" = []

    def walk(span: Span, depth: int) -> None:
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                "%s=%s" % (key, span.attrs[key])
                for key in sorted(span.attrs))
        lines.append("%s%-14s %-8s node%-3d [%s..%s] +%s%s"
                     % ("  " * depth, span.name, span.kind, span.node,
                        span.begin, span.end, span.end - span.begin,
                        attrs))
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    walk(trace.spans[0], 0)
    if trace.error:
        lines.append("  ! transaction aborted: %s" % trace.error)
    return "\n".join(lines)


class TraceCollector:
    """Collects spans into causal traces with deterministic ids.

    One collector serves one single-threaded simulation: transactions
    resolve atomically through synchronous call chains, so at most one
    root span is open at a time and the active-span *stack* mirrors the
    call stack.  Completed traces land in a bounded ring (oldest
    evicted first, counted in :attr:`evicted`); the slowest
    transactions are additionally retained in a bounded top-N set, and
    per-segment latency roll-ups are accumulated incrementally so
    eviction never loses aggregate data.
    """

    def __init__(self, seed: int = 0, max_traces: int = MAX_TRACES,
                 top: int = TOP_CAPACITY) -> None:
        self.seed = seed
        self.max_traces = max_traces
        self.top_capacity = top
        self.traces: "deque[Trace]" = deque()
        self.started = 0
        self.finished = 0
        self.span_count = 0
        self.evicted = 0
        self.errors = 0
        self._stack: "list[Span]" = []
        self._open: "Trace | None" = None
        self._pending_tlb: "tuple | None" = None
        self._counters: "dict[int, int]" = {}
        self._heap: "list[tuple]" = []
        self._heap_seq = 0
        self._segments: "dict[str, list[int]]" = {}
        self._registry = None
        self._seg_hists: "dict[str, object]" = {}
        self._policy = ""
        self._bound: "list[tuple[object, str]]" = []

    # -- span lifecycle ----------------------------------------------------

    def _new_id(self, node: int) -> "tuple[int, int]":
        slot = node + 1
        count = self._counters.get(slot, 0) + 1
        self._counters[slot] = count
        return slot, count

    def begin(self, name: str, kind: str, node: int, begin,
              cpu: int = -1, **attrs) -> Span:
        """Open a span at simulated time ``begin`` and push it on the
        active stack (a new root when the stack is empty)."""
        slot, count = self._new_id(node)
        span_id = _mix(self.seed, slot, count)
        stack = self._stack
        if stack:
            parent = stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = _mix(self.seed, slot, count, 0x7ACE)
            parent_id = 0
            self._open = Trace(trace_id)
            self.started += 1
        span = Span(trace_id, span_id, parent_id, name, kind, node,
                    cpu, begin, begin, attrs or None)
        self._open.spans.append(span)
        stack.append(span)
        self.span_count += 1
        pending = self._pending_tlb
        if pending is not None:
            self._pending_tlb = None
            # A TLB reload immediately preceded this root: stretch the
            # transaction window back to cover it and record it as the
            # first child, so the breakdown charges a ``tlb`` segment.
            if parent_id == 0 and pending[1] == begin:
                span.begin = pending[0]
                span.end = pending[0]
                self.add("tlb_reload", "tlb", node, pending[0], pending[1])
        return span

    def note_tlb(self, begin, end) -> None:
        """Stash the TLB-reload window the access path just charged.

        Consumed by the next root span that opens exactly at ``end``
        (the TLB miss that preceded a cache miss); discarded otherwise
        (the reference hit in cache after the reload)."""
        self._pending_tlb = (begin, end)

    def end(self, span: Span, end) -> None:
        """Close ``span`` at simulated time ``end``.

        Lenient pop-until-found: any spans opened after ``span`` that
        were never closed are closed at the same time.  When the stack
        empties the trace is complete and its breakdown is computed.
        """
        stack = self._stack
        while stack:
            top = stack.pop()
            top.end = end
            if top is span:
                break
        if not stack and self._open is not None:
            self._finish(self._open)
            self._open = None

    def add(self, name: str, kind: str, node: int, begin, end,
            cpu: int = -1, **attrs) -> "Span | None":
        """Record an already-completed child of the active span.

        Returns ``None`` (and records nothing) when no transaction is
        active — instrumentation sites call this unconditionally and
        rootless work is simply not traced.
        """
        stack = self._stack
        if not stack:
            return None
        parent = stack[-1]
        slot, count = self._new_id(node)
        span = Span(parent.trace_id, _mix(self.seed, slot, count),
                    parent.span_id, name, kind, node, cpu, begin, end,
                    attrs or None)
        self._open.spans.append(span)
        self.span_count += 1
        return span

    def add_root(self, name: str, kind: str, node: int, begin, end,
                 cpu: int = -1, **attrs) -> Span:
        """Record a standalone single-span trace (or, when a
        transaction is active, a child of it).

        Used for cross-CPU message receives: the receive belongs to a
        *different* causal chain than the send, so it gets its own
        trace linked back to the sender via ``link_trace``/``link_span``
        attrs rather than mutating the sender's completed trace.
        """
        if self._stack:
            return self.add(name, kind, node, begin, end, cpu=cpu, **attrs)
        slot, count = self._new_id(node)
        trace_id = _mix(self.seed, slot, count, 0x7ACE)
        span = Span(trace_id, _mix(self.seed, slot, count), 0, name,
                    kind, node, cpu, begin, end, attrs or None)
        trace = Trace(trace_id)
        trace.spans.append(span)
        self.started += 1
        self.span_count += 1
        self._finish(trace)
        return span

    def annotate(self, **attrs) -> None:
        """Merge attrs onto the innermost active span (no-op when no
        transaction is active)."""
        stack = self._stack
        if not stack:
            return
        span = stack[-1]
        if span.attrs is None:
            span.attrs = dict(attrs)
        else:
            span.attrs.update(attrs)

    def count(self, key: str, amount: int = 1) -> None:
        """Increment a counter attr on the innermost active span."""
        stack = self._stack
        if not stack:
            return
        span = stack[-1]
        if span.attrs is None:
            span.attrs = {key: amount}
        else:
            span.attrs[key] = span.attrs.get(key, 0) + amount

    def context(self) -> "tuple[int, int] | None":
        """``(trace_id, span_id)`` of the innermost active span."""
        stack = self._stack
        if not stack:
            return None
        span = stack[-1]
        return (span.trace_id, span.span_id)

    def unwind(self, error: str = "error") -> None:
        """Close all open spans after an exception escaped mid-
        transaction.

        Open spans are closed at the latest simulated time the trace
        has seen, the root is tagged with the ``error`` attr, and the
        (partial) trace is kept — chaos post-mortems want exactly the
        tree of the transaction that hung.
        """
        stack = self._stack
        if not stack:
            return
        trace = self._open
        latest = stack[0].begin
        for span in trace.spans:
            if span.end > latest:
                latest = span.end
        while stack:
            span = stack.pop()
            if span.end < span.begin or span.end < latest:
                span.end = latest if latest > span.begin else span.begin
        trace.error = error
        root = trace.spans[0]
        if root.attrs is None:
            root.attrs = {"error": error}
        else:
            root.attrs["error"] = error
        self.errors += 1
        self._finish(trace)
        self._open = None

    def _finish(self, trace: Trace) -> None:
        self.finished += 1
        parts = compute_breakdown(trace)
        trace.breakdown = parts
        segments = self._segments
        for kind, cycles in parts.items():
            entry = segments.get(kind)
            if entry is None:
                segments[kind] = [cycles, 1]
            else:
                entry[0] += cycles
                entry[1] += 1
        registry = self._registry
        if registry is not None:
            hists = self._seg_hists
            for kind, cycles in parts.items():
                hist = hists.get(kind)
                if hist is None:
                    hist = registry.histogram("trace.segment_cycles",
                                              segment=kind,
                                              policy=self._policy)
                    hists[kind] = hist
                hist.observe(cycles)
        ring = self.traces
        if len(ring) >= self.max_traces:
            ring.popleft()
            self.evicted += 1
        ring.append(trace)
        heap = self._heap
        self._heap_seq += 1
        heappush(heap, (trace.duration, -self._heap_seq, trace))
        if len(heap) > self.top_capacity:
            heappop(heap)

    # -- machine binding ---------------------------------------------------

    def bind_machine(self, machine) -> None:
        """Install root-span hooks on a machine's slow paths.

        Wraps ``Machine._miss`` / ``Machine._upgrade`` and every node
        kernel's ``fault`` / ``page_out_client`` at *instance* level
        (the same shadowing technique as
        :class:`repro.sim.trace.TraceRecorder`), and points
        ``machine.network.tracer`` here.  The per-reference fast path
        (`_access`) is untouched — cache hits are never traced, which
        is what keeps the traced-run overhead within the bench gate.
        """
        from repro import obs

        self._registry = obs.current()
        self._policy = machine.policy.name
        machine.network.tracer = self
        collector = self

        miss = machine._miss

        def traced_miss(cpu, frame, lip, line, is_write, now, _miss=miss):
            root = collector.begin("miss", "local", cpu.node.node_id, now,
                                   cpu=cpu.cpu_id, write=int(is_write))
            try:
                t = _miss(cpu, frame, lip, line, is_write, now)
            except BaseException as exc:
                collector.unwind(error=type(exc).__name__)
                raise
            collector.end(root, t)
            return t

        machine._miss = traced_miss
        self._bound.append((machine, "_miss"))

        upgrade = machine._upgrade

        def traced_upgrade(cpu, frame, lip, line, now, _upgrade=upgrade):
            root = collector.begin("upgrade", "local", cpu.node.node_id,
                                   now, cpu=cpu.cpu_id, write=1)
            try:
                t = _upgrade(cpu, frame, lip, line, now)
            except BaseException as exc:
                collector.unwind(error=type(exc).__name__)
                raise
            collector.end(root, t)
            return t

        machine._upgrade = traced_upgrade
        self._bound.append((machine, "_upgrade"))

        for node in machine.nodes:
            self._bind_kernel(node.kernel)

    def _bind_kernel(self, kernel) -> None:
        collector = self
        node_id = kernel.node.node_id

        fault = kernel.fault

        def traced_fault(vpage, now, _fault=fault):
            root = collector.begin("fault", "fault", node_id, now,
                                   vpage=vpage)
            try:
                frame, done = _fault(vpage, now)
            except BaseException as exc:
                collector.unwind(error=type(exc).__name__)
                raise
            collector.end(root, done)
            return frame, done

        kernel.fault = traced_fault
        self._bound.append((kernel, "fault"))

        pageout = kernel.page_out_client

        def traced_pageout(frame, now, demote=False, _pageout=pageout):
            span = collector.begin("page_out", "pageout", node_id, now,
                                   frame=frame)
            try:
                t = _pageout(frame, now, demote)
            except BaseException as exc:
                collector.unwind(error=type(exc).__name__)
                raise
            collector.end(span, t)
            return t

        kernel.page_out_client = traced_pageout
        self._bound.append((kernel, "page_out_client"))

    def detach(self) -> None:
        """Remove the instance-level hooks installed by
        :meth:`bind_machine` (restores the original methods) and clear
        the tracer handles the machine's layers captured at
        construction, so the whole machine reverts to the no-op path."""
        for owner, name in self._bound:
            try:
                delattr(owner, name)
            except AttributeError:  # pragma: no cover - already clean
                pass
            if name == "_miss" and getattr(owner, "network", None) is not None:
                owner.network.tracer = None
                owner._tracer = None
                for node in owner.nodes:
                    node.controller._tracer = None
                    node.kernel._tracer = None
        self._bound = []

    # -- reporting ---------------------------------------------------------

    def slowest(self, n: int = 5) -> "list[Trace]":
        """The ``n`` slowest completed transactions, slowest first."""
        items = sorted(self._heap, key=lambda item: (-item[0], -item[1]))
        return [item[2] for item in items[:n]]

    def errored(self) -> "list[Trace]":
        """Retained traces whose transaction aborted with an error."""
        return [trace for trace in self.traces if trace.error]

    def rollup(self) -> "dict[str, dict[str, int]]":
        """Aggregate ``segment -> {"cycles", "count"}`` over *all*
        completed traces (eviction-proof)."""
        return {kind: {"cycles": entry[0], "count": entry[1]}
                for kind, entry in sorted(self._segments.items())}

    def publish(self, registry) -> None:
        """Write summary gauges into a metrics registry."""
        policy = self._policy
        registry.gauge("trace.transactions", policy=policy).set(self.finished)
        registry.gauge("trace.spans", policy=policy).set(self.span_count)
        registry.gauge("trace.evicted", policy=policy).set(self.evicted)
        registry.gauge("trace.errors", policy=policy).set(self.errors)

    # -- export ------------------------------------------------------------

    def to_spans_jsonl(self) -> str:
        """All retained traces as JSONL, one span per line, roots
        first within each trace (schema: :data:`SPAN_SCHEMA`)."""
        lines = []
        for trace in self.traces:
            for span in trace.spans:
                lines.append(json.dumps(span.to_dict(), sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_spans(self, path) -> int:
        """Write the JSONL span export; returns the span count."""
        text = self.to_spans_jsonl()
        with open(path, "w") as fh:
            fh.write(text)
        return sum(len(trace.spans) for trace in self.traces)

    def to_chrome(self) -> dict:
        """Chrome / Perfetto ``trace_event`` JSON (complete events).

        ``ts``/``dur`` carry simulated cycles in the viewer's
        microsecond field; ``pid`` is the node, ``tid`` the cpu.
        """
        events = []
        for trace in self.traces:
            for span in trace.spans:
                events.append({
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.begin,
                    "dur": span.end - span.begin,
                    "pid": span.node,
                    "tid": span.cpu if span.cpu >= 0 else 0,
                    "args": span.to_dict(),
                })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "tool": "repro trace",
                "seed": self.seed,
                "clock": "simulated cycles (rendered as us)",
            },
        }

    def write_chrome(self, path) -> int:
        """Write the Chrome trace JSON; returns the event count."""
        doc = self.to_chrome()
        with open(path, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        return len(doc["traceEvents"])


#: JSONL span export schema: field name -> allowed types.  Exactly
#: these fields, no extras; ``parent`` is "" for root spans.
SPAN_SCHEMA = {
    "trace": str,
    "span": str,
    "parent": str,
    "name": str,
    "kind": str,
    "node": int,
    "cpu": int,
    "begin": (int, float),
    "end": (int, float),
    "attrs": dict,
}


def validate_span(span: dict) -> None:
    """Validate one exported span dict against :data:`SPAN_SCHEMA`.

    Raises ``ValueError`` on missing/extra fields, type mismatches,
    unknown segment kinds or ``end < begin``.
    """
    if not isinstance(span, dict):
        raise ValueError("span must be an object, got %r" % type(span))
    missing = set(SPAN_SCHEMA) - set(span)
    if missing:
        raise ValueError("span missing field(s) %s" % sorted(missing))
    extra = set(span) - set(SPAN_SCHEMA)
    if extra:
        raise ValueError("span has unexpected field(s) %s" % sorted(extra))
    for field, types in SPAN_SCHEMA.items():
        value = span[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError("span field %r has %r, expected %s"
                             % (field, value, types))
    if span["kind"] not in SEGMENTS:
        raise ValueError("unknown span kind %r" % span["kind"])
    if span["end"] < span["begin"]:
        raise ValueError("span %s ends (%s) before it begins (%s)"
                         % (span["span"], span["end"], span["begin"]))


def validate_spans_jsonl(path) -> int:
    """Validate a JSONL span export end to end; returns the span count.

    Beyond per-span schema checks, verifies causal integrity: each
    trace has exactly one root, the root appears before its children,
    and every parent id resolves within its own trace.
    """
    count = 0
    seen: "dict[str, set[str]]" = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError as exc:
                raise ValueError("line %d: bad JSON: %s" % (lineno, exc))
            try:
                validate_span(span)
            except ValueError as exc:
                raise ValueError("line %d: %s" % (lineno, exc))
            trace = span["trace"]
            members = seen.get(trace)
            if span["parent"] == "":
                if members is not None:
                    raise ValueError(
                        "line %d: second root in trace %s" % (lineno, trace))
                seen[trace] = {span["span"]}
            else:
                if members is None:
                    raise ValueError(
                        "line %d: child before root in trace %s"
                        % (lineno, trace))
                if span["parent"] not in members:
                    raise ValueError(
                        "line %d: parent %s not (yet) in trace %s"
                        % (lineno, span["parent"], trace))
                members.add(span["span"])
            count += 1
    return count


# -- module-global collector (mirrors repro.obs install/current) -----------

_COLLECTOR: "TraceCollector | None" = None


def install(collector: TraceCollector) -> TraceCollector:
    """Make ``collector`` the process-wide trace collector."""
    global _COLLECTOR
    if _COLLECTOR is not None:
        raise RuntimeError("a trace collector is already installed")
    _COLLECTOR = collector
    return collector


def uninstall() -> None:
    """Remove the process-wide collector (no-op when none installed)."""
    global _COLLECTOR
    _COLLECTOR = None


def current() -> "TraceCollector | None":
    """The installed collector, or ``None`` (the no-op path)."""
    return _COLLECTOR


def enabled() -> bool:
    """Whether a trace collector is installed."""
    return _COLLECTOR is not None


def active_context() -> "tuple[int, int] | None":
    """``(trace_id, span_id)`` of the innermost active span of the
    installed collector — what gets stamped onto new ``Message``\\ s."""
    collector = _COLLECTOR
    if collector is None:
        return None
    return collector.context()


@contextmanager
def collecting(seed: int = 0, max_traces: int = MAX_TRACES,
               top: int = TOP_CAPACITY):
    """Context manager: install a fresh collector, yield it, uninstall."""
    collector = install(TraceCollector(seed=seed, max_traces=max_traces,
                                       top=top))
    try:
        yield collector
    finally:
        uninstall()
