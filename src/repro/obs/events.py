"""Structured event sink: typed, ordered, exportable simulation events.

Complements the metrics registry: where metrics aggregate, events keep
the *ordered stream* (the substrate later correctness tooling — e.g.
race detection over DSM event logs — needs).  Every event is a plain
dict carrying a process-monotonic sequence number and a ``kind`` from
:data:`EVENT_SCHEMA`; the sink is a bounded ring buffer (oldest events
are overwritten, with an accurate ``dropped`` count) and exports JSONL
(one event per line, sorted keys) or CSV (one section per kind).

Producers: :class:`~repro.sim.trace.TraceRecorder` forwards its machine
hooks here when constructed with a sink; the CLI's ``run --trace-out``
wires that up end to end.  Consumers validate with
:func:`validate_event` / :func:`validate_jsonl`.
"""

from __future__ import annotations

import json
from collections import deque

#: Required payload fields (and their types) per event kind.  ``seq``
#: and ``kind`` are implicit on every event.  ``bool`` fields must be
#: checked before ``int`` (bool subclasses int).
EVENT_SCHEMA: "dict[str, dict[str, type]]" = {
    "access": {"time": int, "cpu": int, "vaddr": int, "write": bool,
               "latency": int},
    "fault": {"time": int, "node": int, "vpage": int, "gpage": int,
              "mode": str, "remote_home": bool},
    "pageout": {"time": int, "node": int, "frame": int, "demoted": bool},
    "promote": {"time": int, "node": int, "gpage": int},
    "migrate": {"gpage": int, "old_home": int, "new_home": int},
    # Value records produced by the verification tap
    # (``repro.verify.tracker``): every read's observed value and every
    # write's installed value, with the tap's per-location write
    # ``version`` — the substrate the sequential-consistency checker
    # validates against a legal writes-serialization order.
    "read": {"time": int, "cpu": int, "vaddr": int, "value": int,
             "version": int},
    "write": {"time": int, "cpu": int, "vaddr": int, "value": int,
              "version": int},
    # Fault plane (``repro.faults``): one event per injected message
    # fault (action in drop/duplicate/delay/reorder/retransmit) and one
    # per node death (also recorded by ``Machine.fail_node`` itself via
    # the ``node_fail`` trace hook).
    "fault_inject": {"time": int, "action": str, "msg": str, "src": int,
                     "dst": int},
    "node_fail": {"time": int, "node": int},
}


class EventSink:
    """A bounded ring buffer of structured events.

    ``capacity`` bounds memory: once full, each new event overwrites
    the oldest one and increments :attr:`dropped`.  Sequence numbers
    keep counting across drops, so consumers can detect gaps.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self.dropped = 0
        self._seq = 0
        self._buffer: "deque[dict]" = deque(maxlen=capacity)

    def emit(self, kind: str, **fields) -> "dict[str, object]":
        """Record one event; returns the stored event dict."""
        if kind not in EVENT_SCHEMA:
            raise ValueError("unknown event kind %r (want one of %s)"
                             % (kind, ", ".join(sorted(EVENT_SCHEMA))))
        event = {"seq": self._seq, "kind": kind}
        event.update(fields)
        self._seq += 1
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        return event

    @property
    def events(self) -> "list[dict]":
        """The retained events, oldest first."""
        return list(self._buffer)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (retained + dropped)."""
        return self._seq

    def summary(self) -> "dict[str, int]":
        """Retained-event counts by kind, plus the dropped count."""
        counts: "dict[str, int]" = {}
        for event in self._buffer:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        counts["dropped"] = self.dropped
        return counts

    # -- export ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """All retained events as JSONL (sorted keys, one per line)."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self._buffer)

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns the event count."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._buffer)

    def to_csv(self) -> str:
        """Retained events as CSV, one section per event kind."""
        lines = []
        for kind in sorted(EVENT_SCHEMA):
            events = [e for e in self._buffer if e["kind"] == kind]
            if not events:
                continue
            fields = ["seq"] + sorted(EVENT_SCHEMA[kind])
            lines.append("# %s" % kind)
            lines.append(",".join(fields))
            for event in events:
                lines.append(",".join(str(event.get(f, "")) for f in fields))
        return "\n".join(lines)


def validate_event(event: "dict[str, object]",
                   last_seq: "int | None" = None) -> None:
    """Check one event dict against :data:`EVENT_SCHEMA`.

    Strict: every schema field must be present with the right type,
    and no field outside the schema (plus the implicit ``seq`` and
    ``kind``) may appear — an extra field means the producer and the
    schema have drifted, which is exactly what consumers need to hear
    about.  ``last_seq``, when given, additionally requires
    ``event["seq"] > last_seq`` (gaps are fine — they mark ring drops
    — but a stalled or backwards sequence is not).

    Raises :class:`ValueError` naming the first problem found.
    """
    if not isinstance(event, dict):
        raise ValueError("event must be a dict, got %r" % type(event))
    kind = event.get("kind")
    if kind not in EVENT_SCHEMA:
        raise ValueError("unknown event kind %r" % kind)
    seq = event.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ValueError("event %r has bad seq %r" % (kind, seq))
    if last_seq is not None and seq <= last_seq:
        raise ValueError("%s event: sequence went backwards (%d after %d)"
                         % (kind, seq, last_seq))
    schema = EVENT_SCHEMA[kind]
    extra = set(event) - set(schema) - {"seq", "kind"}
    if extra:
        raise ValueError("%s event (seq %d) has unknown fields: %s"
                         % (kind, seq, ", ".join(sorted(extra))))
    for field, want in schema.items():
        if field not in event:
            raise ValueError("%s event (seq %d) missing field %r"
                             % (kind, seq, field))
        value = event[field]
        if want is bool:
            ok = isinstance(value, bool)
        elif want is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, want)
        if not ok:
            raise ValueError("%s event (seq %d) field %r: expected %s, "
                             "got %r" % (kind, seq, field, want.__name__,
                                         value))


def validate_jsonl(path: str) -> int:
    """Validate a JSONL trace file; returns the number of events.

    Checks each line parses, conforms to the schema, and that sequence
    numbers are strictly increasing (gaps are fine — they mark ring
    drops — but reordering is not).
    """
    count = 0
    last_seq = -1
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise ValueError("%s:%d: not JSON: %s"
                                 % (path, lineno, exc)) from None
            try:
                validate_event(event, last_seq=last_seq)
            except ValueError as exc:
                raise ValueError("%s:%d: %s"
                                 % (path, lineno, exc)) from None
            last_seq = event["seq"]
            count += 1
    return count
