"""Process-wide metrics registry: counters, gauges, histograms, series.

A :class:`MetricsRegistry` is a flat namespace of metric *families*: a
family is a metric name plus a set of labels (``misses{policy=scoma,
level=l2}``).  Four metric kinds cover the simulator's needs:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — last-write-wins instantaneous values (occupancy);
* :class:`Histogram` — fixed log-scale buckets for latency
  distributions (cycles or seconds);
* :class:`Series` — bounded ``(time, value)`` samples for per-epoch
  utilization curves (stride-doubling keeps memory bounded while
  preserving the whole run's shape).

Snapshots (:meth:`MetricsRegistry.to_dict`) are plain JSON-safe dicts
keyed by ``name{label=value,...}`` strings with sorted labels, so they
hash and diff stably; :meth:`MetricsRegistry.from_dict` inverts them for
offline rendering (``repro metrics``).

Instrumented code should normally go through :mod:`repro.obs`'s
module-level helpers, which degrade to shared no-op objects when no
registry is installed — the hot path pays one ``None`` check.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil

#: Default latency buckets (cycles): log2 scale from 1 to 64Ki.  Covers
#: L1 hits (1-2 cy) through contended multi-party faults (tens of
#: thousands of cycles).
LATENCY_BUCKETS_CYCLES = tuple(1 << i for i in range(17))

#: Default wall-clock buckets (seconds): log2 scale from 1 ms to ~2 min.
TIME_BUCKETS_SECONDS = tuple(0.001 * (1 << i) for i in range(18))

#: Snapshot schema version (bump on incompatible layout changes).
SNAPSHOT_SCHEMA = 1

#: Series capacity before stride-doubling kicks in.
SERIES_MAX_POINTS = 2048


def metric_key(name: str, labels: "dict[str, object]") -> str:
    """Canonical family key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    body = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, body)


def parse_key(key: str) -> "tuple[str, dict[str, str]]":
    """Invert :func:`metric_key` (label values come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: "dict[str, str]" = {}
    for pair in body[:-1].split(","):
        if pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        self.value += amount


class Gauge:
    """An instantaneous value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus overflow).

    ``buckets`` are inclusive upper bounds in ascending order; an
    observation larger than the last bound lands in the overflow slot,
    so ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets=LATENCY_BUCKETS_CYCLES) -> None:
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError("buckets must be non-empty and ascending")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_n(self, value, n: int) -> None:
        """Record ``n`` observations of the same ``value``.

        Snapshot-identical to calling :meth:`observe` ``n`` times; the
        replay engine uses it to charge a whole batch of equal-latency
        cache hits with one bucket update.
        """
        self.counts[bisect_left(self.buckets, value)] += n
        self.sum += value * n
        self.count += n

    def quantile(self, q: float):
        """Approximate q-quantile (upper bound of the covering bucket)."""
        return quantile({"buckets": list(self.buckets),
                         "counts": self.counts, "count": self.count}, q)


class Series:
    """A bounded time series of ``(time, value)`` samples.

    When :data:`SERIES_MAX_POINTS` is reached, every other retained
    point is discarded and the sampling stride doubles — the series
    keeps covering the whole run at progressively coarser resolution
    instead of silently truncating the tail.
    """

    __slots__ = ("points", "stride", "_skip")

    def __init__(self) -> None:
        self.points: "list[list]" = []
        self.stride = 1
        self._skip = 0

    def sample(self, time, value) -> None:
        """Record one sample (subject to the current stride)."""
        self._skip += 1
        if self._skip < self.stride:
            return
        self._skip = 0
        self.points.append([time, value])
        if len(self.points) >= SERIES_MAX_POINTS:
            self.points = self.points[::2]
            self.stride *= 2


class MetricsRegistry:
    """A namespace of labeled metric families.

    The accessors are get-or-create: ``registry.counter("x", mode="a")``
    returns the same :class:`Counter` on every call with the same name
    and labels.
    """

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}
        self._series: "dict[str, Series]" = {}

    # -- family accessors ------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter family member for ``name`` + ``labels``."""
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge family member for ``name`` + ``labels``."""
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        """The histogram family member for ``name`` + ``labels``."""
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                buckets if buckets is not None else LATENCY_BUCKETS_CYCLES)
        return metric

    def series(self, name: str, **labels) -> Series:
        """The time-series family member for ``name`` + ``labels``."""
        key = metric_key(name, labels)
        metric = self._series.get(key)
        if metric is None:
            metric = self._series[key] = Series()
        return metric

    # -- snapshots -------------------------------------------------------

    def to_dict(self) -> "dict[str, object]":
        """JSON-safe snapshot of every metric (stable key order after a
        ``sort_keys`` dump); invert with :meth:`from_dict`."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {
                k: {"buckets": list(h.buckets), "counts": list(h.counts),
                    "sum": h.sum, "count": h.count}
                for k, h in self._histograms.items()},
            "series": {k: {"stride": s.stride,
                           "points": [list(p) for p in s.points]}
                       for k, s in self._series.items()},
        }

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for key, value in data.get("counters", {}).items():
            counter = registry._counters[key] = Counter()
            counter.value = value
        for key, value in data.get("gauges", {}).items():
            gauge = registry._gauges[key] = Gauge()
            gauge.value = value
        for key, h in data.get("histograms", {}).items():
            hist = registry._histograms[key] = Histogram(h["buckets"])
            hist.counts = list(h["counts"])
            hist.sum = h["sum"]
            hist.count = h["count"]
        for key, s in data.get("series", {}).items():
            series = registry._series[key] = Series()
            series.stride = s["stride"]
            series.points = [list(p) for p in s["points"]]
        return registry

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._series))


# ---------------------------------------------------------------------------
# Snapshot helpers (operate on to_dict() output, no registry needed).
# ---------------------------------------------------------------------------

def find_metrics(section: "dict[str, object]",
                 name: str) -> "list[tuple[dict[str, str], object]]":
    """All ``(labels, value)`` members of family ``name`` in a snapshot
    section (``snapshot["counters"]``, ``snapshot["histograms"]``...)."""
    out = []
    for key, value in sorted(section.items()):
        base, labels = parse_key(key)
        if base == name:
            out.append((labels, value))
    return out


def quantile(hist: "dict[str, object]", q: float):
    """Approximate q-quantile of a snapshot histogram dict.

    Returns the upper bound of the bucket containing the quantile (the
    conventional upper-bound estimate for fixed-bucket histograms), or
    0 for an empty histogram.  Overflow observations report the last
    bound (a floor, flagged nowhere — keep an eye on the overflow
    count when it matters).

    Every edge is defined rather than raised: a missing ``count`` key
    is recomputed from ``counts`` (series-style partial snapshots), an
    empty histogram reports 0 at every q, and the rank is floored at
    one sample so a single-sample (or all-equal) histogram reports its
    one populated bucket at every q — including q=0 with empty leading
    buckets.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % q)
    counts = hist.get("counts") or ()
    total = hist.get("count")
    if total is None:
        total = sum(counts)
    if not total:
        return 0
    rank = q * total
    if rank < 1:
        rank = 1
    seen = 0
    buckets = hist["buckets"]
    for bound, count in zip(buckets, counts):
        seen += count
        if seen >= rank:
            return bound
    return buckets[-1]


def series_quantile(points: "list[list]", q: float):
    """Exact q-quantile of a series snapshot's sample values.

    ``points`` is the ``[[time, value], ...]`` list of a
    :class:`Series` snapshot.  Nearest-rank on the sorted values:
    an empty series reports 0, a single sample reports that sample,
    and all-equal samples report the common value at every q.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % q)
    values = sorted(p[1] for p in points)
    if not values:
        return 0
    rank = int(ceil(q * len(values)))
    if rank < 1:
        rank = 1
    if rank > len(values):
        rank = len(values)
    return values[rank - 1]
