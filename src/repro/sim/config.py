"""Machine configuration for the simulated PRISM system.

The paper simulates a 32-processor machine built from eight 4-way SMP
nodes (PowerPC processors, 4096-byte pages, 8-KB L1 / 32-KB L2 caches
scaled down to expose capacity effects).  Because this reproduction runs
the memory system in pure Python, the default configuration scales the
caches, page size and problem sizes down *together* so that the
working-set : cache : page-cache ratios stay in the paper's regime (see
DESIGN.md section 2).  Every parameter is overridable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.sim.latency import LatencyModel, paper_latency_model


@dataclass
class CacheConfig:
    """Geometry of one level of a set-associative cache."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache size %d is not a multiple of line*assoc (%d*%d)"
                % (self.size_bytes, self.line_bytes, self.associativity))

    @property
    def num_lines(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of associativity sets."""
        return self.num_lines // self.associativity

    def to_dict(self) -> "dict[str, int]":
        """The geometry as a plain dict (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, int]") -> "CacheConfig":
        """Rebuild a geometry from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class MachineConfig:
    """Full configuration of a simulated PRISM machine."""

    num_nodes: int = 8
    cpus_per_node: int = 4

    page_bytes: int = 1024
    line_bytes: int = 32

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024, 32, 2))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(8192, 32, 4))

    tlb_entries: int = 64

    #: Entries in the home directory cache (the paper models an 8K-entry
    #: cache in front of a DRAM directory).
    directory_cache_entries: int = 8192

    #: SRAM PIT by default (2 cycles).  Section 4.3 studies a DRAM PIT
    #: (10 cycles); set ``latency.pit_access = 10`` for that experiment.
    latency: LatencyModel = field(default_factory=paper_latency_model)

    #: Section 4.3 mitigation: include client frame numbers in the
    #: directory entries, so invalidations and interventions arriving at
    #: client nodes use the fast PIT path instead of the hash search —
    #: "at the price of increased directory sizes".
    directory_caches_client_frames: bool = False

    #: Per-node S-COMA page-cache capacity, in client frames.  ``None``
    #: means unbounded (the paper's SCOMA "infinite page cache").
    page_cache_frames: "int | None" = None

    #: Maximum real frames per node for *all* allocations.  ``None``
    #: means unbounded; only the page cache limit above is enforced in
    #: the paper's experiments.
    total_frames_per_node: "int | None" = None

    #: Enable the home-page-status flag optimization (section 3.3): a
    #: client that paged a page in before skips the home round-trip on
    #: repeat faults.  The paper *proposes* this optimization; Table 1
    #: charges the full remote cost per client fault, so it is off by
    #: default and studied separately in the ablation benchmarks.
    home_status_flags: bool = False

    #: Enable lazy home migration (section 3.5).  Off for the paper's
    #: main experiments.
    enable_migration: bool = False
    #: Remote-miss count at which the home considers migrating a page.
    migration_threshold: int = 64

    #: Execution engine for the simulation core.  ``"interp"`` is the
    #: per-reference interpreter loop; ``"vector"`` is the
    #: trace-compile-then-replay engine (``repro.sim.replay``), which
    #: batches cache hits through numpy and drops to the interpreter's
    #: slow path for everything else.  Both produce byte-identical
    #: :class:`~repro.sim.stats.MachineStats`, so the engine choice is
    #: deliberately *excluded* from :meth:`config_hash` (results cache
    #: across engines).
    engine: str = "interp"

    def __post_init__(self) -> None:
        if self.engine not in ("interp", "vector"):
            raise ValueError("engine must be 'interp' or 'vector', got %r"
                             % (self.engine,))
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.cpus_per_node < 1:
            raise ValueError("need at least one cpu per node")
        if self.page_bytes % self.line_bytes:
            raise ValueError("page size must be a multiple of the line size")
        for level, cache in (("l1", self.l1), ("l2", self.l2)):
            if cache.line_bytes != self.line_bytes:
                raise ValueError(
                    "%s line size %d does not match machine line size %d"
                    % (level, cache.line_bytes, self.line_bytes))
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1 (inclusive)")

    @property
    def num_cpus(self) -> int:
        """Total processors (nodes x CPUs per node)."""
        return self.num_nodes * self.cpus_per_node

    @property
    def lines_per_page(self) -> int:
        """Cache lines per page (the fine-grain tag count)."""
        return self.page_bytes // self.line_bytes

    def with_policy_limits(self, page_cache_frames: "int | None") -> "MachineConfig":
        """Copy of this config with a different page-cache capacity."""
        return replace(self, page_cache_frames=page_cache_frames)

    def to_dict(self) -> "dict[str, object]":
        """The full configuration as nested plain dicts (JSON-safe).

        Every field — including the nested :class:`CacheConfig` levels
        and the :class:`~repro.sim.latency.LatencyModel` — flattens to
        ints/bools/None, so the result round-trips through JSON exactly.
        Used for the experiment-cache key, worker handoff and
        persistence; invert with :meth:`from_dict`.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "MachineConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        data = dict(data)
        data["l1"] = CacheConfig.from_dict(data["l1"])
        data["l2"] = CacheConfig.from_dict(data["l2"])
        data["latency"] = LatencyModel.from_dict(data["latency"])
        return cls(**data)

    def config_hash(self) -> str:
        """A stable content hash of this configuration.

        Two configs hash equal iff every *result-affecting* field
        (including nested cache geometry and latency components) is
        equal; the hash is stable across processes and Python versions,
        making it usable as an on-disk cache-key component.  ``engine``
        is excluded: the interpreter and the vectorized replay engine
        produce byte-identical statistics (a property the golden
        snapshot and equivalence tests enforce), so cached results are
        shared across engines.
        """
        payload = self.to_dict()
        payload.pop("engine", None)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_config(**overrides) -> MachineConfig:
    """The scaled default machine: 8 nodes x 4 CPUs, 1KB L1 / 8KB L2."""
    return replace(MachineConfig(), **overrides) if overrides else MachineConfig()


def paper_scale_config(**overrides) -> MachineConfig:
    """Geometry matching the paper exactly: 4KB pages, 8KB L1 / 32KB L2.

    Usable, but an order of magnitude slower to simulate than
    :func:`default_config` because problem sizes must scale up with it.
    """
    cfg = MachineConfig(
        page_bytes=4096,
        line_bytes=32,
        l1=CacheConfig(8 * 1024, 32, 2),
        l2=CacheConfig(32 * 1024, 32, 4),
        tlb_entries=128,
    )
    return replace(cfg, **overrides) if overrides else cfg


def tiny_config(**overrides) -> MachineConfig:
    """A 2-node, 2-CPU machine for unit tests: tiny caches, tiny pages."""
    cfg = MachineConfig(
        num_nodes=2,
        cpus_per_node=2,
        page_bytes=256,
        line_bytes=32,
        l1=CacheConfig(256, 32, 2),
        l2=CacheConfig(512, 32, 2),
        tlb_entries=8,
        directory_cache_entries=64,
    )
    return replace(cfg, **overrides) if overrides else cfg
