"""The simulated PRISM machine.

Glues together the substrates — CPUs with L1/L2 hierarchies and TLBs,
split-transaction buses, node memories, PITs, directories, coherence
controllers, per-node kernels, and the network — and runs workloads
over them with a discrete-event loop.

Execution model: every CPU runs a reference generator; the machine
interleaves CPUs in timestamp order (each CPU's next reference resolves
atomically, with contention modelled by resource next-free times — see
``repro.sim.engine``).  Barriers and locks park CPUs and wake them from
the releasing CPU's event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter

from repro.core.controller import CoherenceController
from repro.core.directory import Directory, DirState
from repro.core.finegrain import Tag
from repro.core.migration import MigrationManager
from repro.core.modes import PageMode
from repro.core.policies import PageModePolicy, make_policy
from repro.interconnect.messages import MessageLog
from repro.interconnect.network import Network
from repro.kernel.frames import FramePools
from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.kernel.vm import NodeKernel
from repro.mem.bus import MemoryBus, NodeMemory
from repro.mem.cache import CacheHierarchy, LineState, NodePresence
from repro.mem.tlb import Tlb
from repro import obs
from repro.obs import tracing
from repro.sim.config import MachineConfig
from repro.sim.engine import Barrier, LockTable, Resource, sample_utilization
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_READ_RUN, OP_UNLOCK, OP_WRITE, OP_WRITE_RUN)
from repro.sim.stats import CpuStats, MachineStats, NodeStats

# Hoisted line states and page modes: the reference fast path compares
# against plain module globals instead of resolving enum attributes per
# access.
_INVALID = LineState.INVALID
_SHARED = LineState.SHARED
_EXCLUSIVE = LineState.EXCLUSIVE
_MODIFIED = LineState.MODIFIED
_SCOMA = PageMode.SCOMA
_LANUMA = PageMode.LANUMA
_CCNUMA = PageMode.CCNUMA
_PM_LOCAL = PageMode.LOCAL


class Cpu:
    """One simulated processor."""

    __slots__ = ("cpu_id", "local_id", "node", "hierarchy", "tlb", "stats",
                 "time", "gen", "done", "run_state")

    def __init__(self, cpu_id: int, local_id: int, node: "Node",
                 config: MachineConfig) -> None:
        self.cpu_id = cpu_id
        self.local_id = local_id
        self.node = node
        self.hierarchy = CacheHierarchy(config.l1, config.l2)
        self.tlb = Tlb(config.tlb_entries)
        self.stats = CpuStats(cpu_id)
        self.time = 0
        self.gen = None
        self.done = False
        #: Suspended block op: (is_write, next_addr, stride, remaining),
        #: or None.  Set when a run op is preempted mid-run because the
        #: CPU's clock passed another CPU's event time.
        self.run_state = None


class Node:
    """One SMP node: CPUs, bus, memory, controller, kernel."""

    def __init__(self, node_id: int, machine: "Machine") -> None:
        config = machine.config
        self.node_id = node_id
        self.machine = machine
        self.stats = NodeStats(node_id)
        self.msglog = MessageLog()
        self.bus = MemoryBus(node_id, config.latency)
        self.memory = NodeMemory(node_id, config.latency)
        self.presence = NodePresence()
        self.pools = FramePools(node_id,
                                page_cache_frames=config.page_cache_frames,
                                total_frames=config.total_frames_per_node)
        from repro.core.pit import PageInformationTable
        self.pit = PageInformationTable(node_id, config.lines_per_page)
        self.directory = Directory(node_id, config.lines_per_page,
                                   config.directory_cache_entries)
        self.kernel_resource = Resource("node%d.kernel" % node_id)
        self.cpus: "list[Cpu]" = []
        self.controller = CoherenceController(self, machine)
        self.kernel: "NodeKernel | None" = None  # set by the machine


class DeadlineExceeded(RuntimeError):
    """The run passed its simulated-time deadline.

    Raised by the event loop when ``Machine(deadline=...)`` is set and a
    CPU's clock crosses it, and by the fault plane when a lost message
    would make a requester wait forever.  The chaos harness
    (``repro.faults.campaign``) uses it as the hang oracle: a resilient
    protocol either finishes or fails cleanly before any sane deadline.
    """


@dataclass
class RunResult:
    """Outcome of one workload run."""

    workload: str
    policy: str
    config: MachineConfig
    stats: MachineStats
    #: Metrics-registry snapshot collected during the run (see
    #: ``repro.obs``), or None when observability was disabled.
    metrics: "dict[str, object] | None" = None

    @property
    def execution_cycles(self) -> int:
        """Wall-clock cycles of the parallel phase."""
        return self.stats.execution_cycles


class Machine:
    """A simulated PRISM machine."""

    def __init__(self, config: "MachineConfig | None" = None,
                 policy: "PageModePolicy | str" = "scoma",
                 page_cache_override: "list[int] | None" = None,
                 schedule=None, faults=None,
                 deadline: "int | None" = None) -> None:
        """Build a machine.

        ``page_cache_override`` gives a per-node client page-cache
        capacity (in frames), as the SCOMA-70 experiment requires (70%
        of each node's SCOMA-run client frame count); it takes
        precedence over ``config.page_cache_frames``.

        ``schedule`` takes a
        :class:`~repro.sim.engine.SchedulePerturbation` that skews CPU
        start times and jitters network hop latencies — the protocol
        conformance suite (``repro.verify``) uses it to explore event
        orderings.  ``None`` (the default) is the unperturbed schedule
        and costs the hot path nothing.

        ``faults`` takes a :class:`~repro.faults.injector.FaultInjector`
        (or a bare :class:`~repro.faults.plan.FaultPlan`, wrapped with
        the default seed) and routes every inter-node hop through the
        fault plane; ``deadline`` bounds the run in simulated cycles
        (:class:`DeadlineExceeded` past it — the chaos hang oracle).
        Both default to ``None``, which keeps the fault-free fast paths
        and byte-identical results.
        """
        self.config = config if config is not None else MachineConfig()
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        if (page_cache_override is not None
                and len(page_cache_override) != self.config.num_nodes):
            raise ValueError("page_cache_override must have one entry per node")
        if self.config.enable_migration and self.policy.name == "ccnuma":
            raise ValueError(
                "CC-NUMA encodes home locations in physical addresses, so "
                "lazy home migration is impossible (section 5)")
        self._page_cache_override = page_cache_override
        #: Optional schedule perturbation; must be set before nodes are
        #: built so the controllers can hoist the jitter hook.
        self.schedule = schedule
        if schedule is not None:
            schedule.reset()
        #: Optional fault plane (``repro.faults``); like ``schedule``,
        #: must be set before nodes are built so the controllers can
        #: hoist the hook.  A bare FaultPlan is wrapped in an injector.
        if faults is not None:
            from repro.faults.injector import FaultInjector
            from repro.faults.plan import FaultPlan
            if isinstance(faults, FaultPlan):
                faults = FaultInjector(faults)
        self.faults = faults
        #: Simulated-cycle budget; None = unbounded.
        self.deadline = deadline
        cfg = self.config
        lat = cfg.latency

        page = cfg.page_bytes
        if page & (page - 1):
            raise ValueError("page size must be a power of two")
        line = cfg.line_bytes
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self._page_shift = page.bit_length() - 1
        self._line_shift = line.bit_length() - 1
        self._lpp = cfg.lines_per_page
        self._lip_mask = self._lpp - 1
        # Hoisted hit latencies: the reference fast path reads these
        # instead of chasing config.latency per access.
        self._lat_l1_hit = lat.l1_hit
        self._lat_l2_hit = lat.l2_hit
        self._lat_tlb_miss = lat.tlb_miss
        self._lat_bus_request = lat.bus_request
        self._lat_bus_data = lat.bus_data
        self._lat_intervention = lat.intervention
        # DRAM port occupancy of a local miss service: the 36-cycle
        # local-memory figure minus the bus phases charged separately.
        self._lat_serve_mem = (lat.local_memory - lat.bus_request
                               - lat.bus_data)

        self.network = Network(cfg.num_nodes, lat)
        if schedule is not None:
            self.network.jitter = schedule.next_jitter
        if faults is not None:
            self.network.faults = faults
        self.ipc = GlobalIpcServer(cfg.num_nodes, cfg.page_bytes)
        self.layout = AddressSpaceLayout(self.ipc, cfg.page_bytes)
        self.migration = MigrationManager(self)

        self.nodes: "list[Node]" = []
        self.cpus: "list[Cpu]" = []
        for n in range(cfg.num_nodes):
            node = Node(n, self)
            if page_cache_override is not None:
                node.pools.page_cache_frames = page_cache_override[n]
            node.kernel = NodeKernel(node, self, self.policy)
            for c in range(cfg.cpus_per_node):
                cpu = Cpu(len(self.cpus), c, node, cfg)
                node.cpus.append(cpu)
                self.cpus.append(cpu)
            self.nodes.append(node)

        self.locks = LockTable(cost=lat.lock_cost)
        self._barriers: "dict[int, Barrier]" = {}
        self._ref_gap = 3
        #: Called as ``hook(release_time)`` at every barrier release
        #: (verification: invariant walks at synchronization points).
        #: None keeps the barrier path a single attribute test.
        self._barrier_hook = None
        #: Workload-bound taps (closed after _finalize); see
        #: _bind_workload_taps.
        self._taps = []
        #: Nodes that have fail-stopped (section 3.3 failure model).
        self.failed_nodes: "set[int]" = set()
        self.stats = MachineStats(
            nodes=[n.stats for n in self.nodes],
            cpus=[c.stats for c in self.cpus])

        # Observability: pre-resolve the per-reference histogram handle
        # so the hot path pays one attribute test when disabled.
        self._obs = obs.current()
        self._obs_access = (
            self._obs.histogram("sim.access_latency_cycles",
                                policy=self.policy.name)
            if self._obs is not None else None)

        if faults is not None:
            faults.bind(self)

        # Causal tracing: opt-in like obs.  With no collector installed
        # the slow paths stay unwrapped, the network hook stays None
        # and simulated results are byte-identical.
        self._tracer = tracing.current()
        if self._tracer is not None:
            self._tracer.bind_machine(self)

    # ------------------------------------------------------------------
    # Home lookup.
    # ------------------------------------------------------------------

    def static_home_of(self, gpage: int) -> int:
        """The page's fixed static home (round robin)."""
        return self.ipc.home_of(gpage)

    def dynamic_home_of(self, gpage: int) -> int:
        """The page's current dynamic home (migratable)."""
        return self.migration.home_of(gpage)

    # ------------------------------------------------------------------
    # Running workloads.
    # ------------------------------------------------------------------

    def run(self, workload) -> RunResult:
        """Set up ``workload`` and simulate it to completion."""
        workload.setup(self.layout, len(self.cpus))
        self._bind_workload_taps(workload)
        return self._run_interp(workload)

    def _bind_workload_taps(self, workload) -> None:
        """Give ``workload`` its post-setup machine hook.

        A workload exposing ``bind_machine(machine)`` (the serving
        family's metrics tap, the 2PC chaos channel driver) is called
        here, after :meth:`setup` built its segments but before any op
        executes.  A returned object with a ``close()`` method is
        closed after the run's stats are finalized.
        """
        bind = getattr(workload, "bind_machine", None)
        if bind is None:
            return
        tap = bind(self)
        if tap is not None and hasattr(tap, "close"):
            self._taps.append(tap)

    def _run_interp(self, workload) -> RunResult:
        """The interpreter's simulate-to-completion tail (post-setup)."""
        # Instructions executed around each memory reference (address
        # arithmetic, loop control) — keeps issue rates realistic for an
        # in-order CPU instead of back-to-back memory operations.
        self._ref_gap = getattr(workload, "cycles_per_ref", 3)
        for cpu in self.cpus:
            cpu.gen = workload.generator(cpu.cpu_id, len(self.cpus))
        start = perf_counter()
        self._event_loop()
        wall = perf_counter() - start
        self._finalize()
        for tap in self._taps:
            tap.close()
        if self._obs is not None:
            # Host-side throughput, next to the simulated telemetry:
            # how fast the host chewed through this run's references.
            self._obs.gauge("host.wall_seconds").set(round(wall, 6))
            self._obs.gauge("host.refs_per_sec").set(
                round(self.stats.references / wall, 1) if wall > 0 else 0.0)
        return RunResult(workload=workload.name, policy=self.policy.name,
                         config=self.config, stats=self.stats)

    def on_barrier_release(self, hook) -> None:
        """Install ``hook(release_time)`` to run at every barrier
        release (``None`` uninstalls).  The verification layer hangs
        machine-wide invariant walks here: barrier releases are the
        points where every CPU is quiescent, so cross-node state must
        be consistent."""
        self._barrier_hook = hook

    def _event_loop(self) -> None:
        if self.faults is not None or self.deadline is not None:
            # Fault plans and deadlines need per-event checks, which the
            # fused-handoff fast loop below skips by design; they take a
            # separate loop so the fault-free path stays untouched.
            return self._event_loop_guarded()
        schedule = self.schedule
        if schedule is None:
            heap = [(0, cpu.cpu_id) for cpu in self.cpus]
        else:
            heap = [(schedule.cpu_offset(cpu.cpu_id), cpu.cpu_id)
                    for cpu in self.cpus]
        heapq.heapify(heap)
        self._heap = heap
        cpus = self.cpus
        run_cpu = self._run_cpu
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        remaining = len(cpus)
        while heap:
            t, cid = heappop(heap)
            cpu = cpus[cid]
            if cpu.done:
                continue
            if t > cpu.time:
                cpu.time = t
            while True:
                status = run_cpu(cpu, heap[0][0] if heap else None)
                if status == "ready":
                    # Hand off to the next runnable CPU with a single
                    # heap sift (push + pop fused); with one runnable
                    # CPU this bounces straight back without churn.
                    t, cid = heappushpop(heap, (cpu.time, cid))
                    cpu = cpus[cid]
                    if cpu.done:
                        break
                    if t > cpu.time:
                        cpu.time = t
                    continue
                if status == "done":
                    remaining -= 1
                break
        if remaining:
            # CPUs killed externally (fail_node mid-run) are marked done
            # without ever returning "done", so ``remaining`` alone
            # over-counts; only genuinely blocked CPUs are a deadlock.
            stuck = [c.cpu_id for c in self.cpus if not c.done]
            if stuck:
                raise RuntimeError(
                    "deadlock: CPUs %r blocked with empty event heap "
                    "(mismatched barriers or locks in the workload?)" % stuck)

    def _event_loop_guarded(self) -> None:
        """The event loop under a fault plan and/or a deadline.

        Functionally the same scheduler, minus the fused fast handoff:
        every step goes through the heap so the loop can apply scheduled
        node failures, stall CPUs of paused nodes, and enforce the
        simulated-time deadline at each event.
        """
        schedule = self.schedule
        if schedule is None:
            heap = [(0, cpu.cpu_id) for cpu in self.cpus]
        else:
            heap = [(schedule.cpu_offset(cpu.cpu_id), cpu.cpu_id)
                    for cpu in self.cpus]
        heapq.heapify(heap)
        self._heap = heap
        cpus = self.cpus
        faults = self.faults
        deadline = self.deadline
        heappop = heapq.heappop
        heappush = heapq.heappush
        remaining = len(cpus)
        while heap:
            t, cid = heappop(heap)
            if deadline is not None and t > deadline:
                raise DeadlineExceeded(
                    "simulated-time deadline %d exceeded at cycle %d"
                    % (deadline, t))
            if faults is not None:
                faults.on_tick(self, t)
                release = faults.release_time(cpus[cid].node.node_id, t)
                if release > t:
                    # The CPU's node is paused: it stalls until the
                    # pause window ends, then resumes where it was.
                    heappush(heap, (release, cid))
                    continue
            cpu = cpus[cid]
            if cpu.done:
                continue
            if t > cpu.time:
                cpu.time = t
            status = self._run_cpu(cpu, heap[0][0] if heap else None)
            if status == "ready":
                heappush(heap, (cpu.time, cid))
            elif status == "done":
                remaining -= 1
        if remaining:
            stuck = [c.cpu_id for c in self.cpus if not c.done]
            if stuck:
                raise RuntimeError(
                    "deadlock: CPUs %r blocked with empty event heap "
                    "(mismatched barriers or locks in the workload?)" % stuck)

    def _wake(self, cpu_id: int, when: int) -> None:
        cpu = self.cpus[cpu_id]
        cpu.time = when
        heapq.heappush(self._heap, (when, cpu_id))

    def _run_cpu(self, cpu: Cpu, limit: "int | None") -> str:
        """Advance ``cpu`` until its clock passes ``limit`` or it blocks.

        Returns "ready" (requeue), "blocked" (a barrier/lock/wake will
        requeue it) or "done".
        """
        gen = cpu.gen
        time = cpu.time
        stats = cpu.stats
        # Hot locals: bound methods and fields resolved once per entry
        # instead of per reference.  self._access stays an attribute
        # load here (not hoisted at construction) so TraceRecorder's
        # instance-level wrapping keeps working.
        access = self._access
        ref_gap = self._ref_gap
        obs_access = self._obs_access
        run = cpu.run_state
        while limit is None or time <= limit:
            if run is not None:
                # Expand a block op inline: one generator resume bought
                # `count` references; the limit check per reference
                # keeps cross-CPU FCFS resource ordering exact.
                is_write, addr, stride, count = run
                while count:
                    issued = time + ref_gap
                    time = access(cpu, addr, is_write, issued)
                    stats.references += 1
                    if is_write:
                        stats.writes += 1
                    else:
                        stats.reads += 1
                    if obs_access is not None:
                        obs_access.observe(time - issued)
                    addr += stride
                    count -= 1
                    if limit is not None and time > limit:
                        break
                if count:
                    cpu.run_state = (is_write, addr, stride, count)
                    cpu.time = time
                    return "ready"
                run = cpu.run_state = None
                continue
            op = next(gen, None)
            if op is None:
                cpu.done = True
                cpu.time = time
                stats.finish_time = time
                return "done"
            kind = op[0]
            if kind == OP_READ:
                issued = time + ref_gap
                time = access(cpu, op[1], False, issued)
                stats.references += 1
                stats.reads += 1
                if obs_access is not None:
                    obs_access.observe(time - issued)
            elif kind == OP_WRITE:
                issued = time + ref_gap
                time = access(cpu, op[1], True, issued)
                stats.references += 1
                stats.writes += 1
                if obs_access is not None:
                    obs_access.observe(time - issued)
            elif kind == OP_COMPUTE:
                time += op[1]
            elif kind == OP_READ_RUN:
                if op[3] > 0:
                    run = (False, op[1], op[2], op[3])
            elif kind == OP_WRITE_RUN:
                if op[3] > 0:
                    run = (True, op[1], op[2], op[3])
            elif kind == OP_BARRIER:
                stats.barrier_waits += 1
                barrier = self._barriers.get(op[1])
                if barrier is None:
                    barrier = Barrier(parties=len(self.cpus),
                                      cost=self.config.latency.barrier_cost)
                    self._barriers[op[1]] = barrier
                cpu.time = time
                released = barrier.arrive(cpu.cpu_id, time)
                if released is not None:
                    for rcid, rtime in released:
                        self._wake(rcid, rtime)
                    if self._obs is not None:
                        self._sample_epoch(released[0][1])
                    if self._barrier_hook is not None:
                        self._barrier_hook(released[0][1])
                return "blocked"
            elif kind == OP_LOCK:
                granted = self.locks.acquire(op[1], cpu.cpu_id, time)
                if granted is None:
                    cpu.time = time
                    return "blocked"
                stats.lock_acquires += 1
                time = granted
            elif kind == OP_UNLOCK:
                woken = self.locks.release(op[1], cpu.cpu_id, time)
                time += 1
                if woken is not None:
                    wcid, wtime = woken
                    self.cpus[wcid].stats.lock_acquires += 1
                    self._wake(wcid, wtime)
            else:
                raise ValueError("unknown op %r from workload" % (op,))
        cpu.time = time
        return "ready"

    # ------------------------------------------------------------------
    # The memory reference path.
    # ------------------------------------------------------------------

    def _access(self, cpu: Cpu, vaddr: int, is_write: bool, now: int) -> int:
        vpage = vaddr >> self._page_shift
        tlb = cpu.tlb
        if vpage == tlb.last_vpage:
            # Front-line TLB memo: same page as the previous reference.
            # The entry is already MRU, so skipping the LRU touch is
            # exact; the hit is still counted.
            frame = tlb.last_frame
            tlb.hits += 1
        else:
            # Tlb.lookup spelled out inline (same LRU touch, counters
            # and memo refresh) — one call less per new-page reference.
            frame = tlb._map.get(vpage)
            if frame is not None:
                tlb._map.move_to_end(vpage)
                tlb.hits += 1
                tlb.last_vpage = vpage
                tlb.last_frame = frame
            else:
                tlb.misses += 1
                kernel = cpu.node.kernel
                frame = kernel.page_table.get(vpage)
                if frame is None:
                    frame, now = kernel.fault(vpage, now)
                else:
                    if self._tracer is not None:
                        self._tracer.note_tlb(now, now + self._lat_tlb_miss)
                    now += self._lat_tlb_miss
                    cpu.stats.tlb_misses += 1
                tlb.insert(vpage, frame)
        lip = (vaddr >> self._line_shift) & self._lip_mask
        line = frame * self._lpp + lip

        # Front-line cache probe: one flat-dict lookup resolves the
        # dominant L1-hit case; the per-set LRU touch and hit counter
        # keep the replacement behaviour identical to Cache.lookup.
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1
        state = l1.flat.get(line)
        if state is not None:
            l1._sets[line % l1.num_sets].move_to_end(line)
            l1.hits += 1
            cpu.stats.l1_hits += 1
            if is_write and state != _MODIFIED:
                if state == _EXCLUSIVE:
                    hierarchy.write_hit(line)
                else:
                    return self._upgrade(cpu, frame, lip, line, now)
            return now + self._lat_l1_hit
        l1.misses += 1
        # The L2 half of CacheHierarchy.probe_l2, inlined the same way.
        l2 = hierarchy.l2
        state = l2.flat.get(line)
        if state is not None:
            l2._sets[line % l2.num_sets].move_to_end(line)
            l2.hits += 1
            hierarchy._promote_to_l1(line, state)
            cpu.stats.l2_hits += 1
            if is_write and state != _MODIFIED:
                if state == _EXCLUSIVE:
                    hierarchy.write_hit(line)
                else:
                    return self._upgrade(cpu, frame, lip, line, now)
            return now + self._lat_l2_hit
        l2.misses += 1
        return self._miss(cpu, frame, lip, line, is_write, now)

    def _upgrade(self, cpu: Cpu, frame: int, lip: int, line: int,
                 now: int) -> int:
        """Write to a SHARED copy in this CPU's cache."""
        node = cpu.node
        dense = node.pit.dense_real
        entry = (dense[frame] if frame < len(dense)
                 else node.pit.entry_or_none(frame))
        mode = entry.mode
        t = node.bus.request(now)
        remote = False
        if mode == _SCOMA:
            if entry.tags.get(lip) != 2:  # Tag.EXCLUSIVE
                t = node.controller.fetch(entry, lip, True, True, t)
                remote = True
            node.kernel.touch_lru(frame)
        elif mode.is_remote_backed:
            # No tags behind imaginary/CC-NUMA frames: any upgrade must
            # ask the home (even if the node happens to own the line).
            t = node.controller.fetch(entry, lip, True, True, t)
            remote = True
        # Local mode (and post-grant cleanup): invalidate sibling copies.
        self._invalidate_siblings(node, cpu, line)
        cpu.hierarchy.write_hit(line)
        if remote:
            t = node.kernel.drain_promotions(t)
            if self.migration.enabled:
                self.migration.drain()
        return t

    def _miss(self, cpu: Cpu, frame: int, lip: int, line: int,
              is_write: bool, now: int) -> int:
        node = cpu.node
        dense = node.pit.dense_real
        entry = (dense[frame] if frame < len(dense)
                 else node.pit.entry_or_none(frame))
        if entry is None:
            raise RuntimeError("miss on unmapped frame %d at node %d"
                               % (frame, node.node_id))
        entry.touched |= 1 << lip
        mode = entry.mode
        fill_state = _MODIFIED if is_write else _SHARED
        remote = False

        if mode == _SCOMA:
            tag = entry.tags.tags[lip]
            if tag == 2:  # EXCLUSIVE: page cache services the miss
                t = self._serve_local(cpu, line, is_write, now, entry)
                node.stats.local_misses += 1
                if not is_write and line not in node.presence._holders:
                    fill_state = _EXCLUSIVE
            elif tag == 1:  # SHARED
                if is_write:
                    t = node.bus.request(now)
                    t = node.controller.fetch(entry, lip, True, True, t)
                    self._invalidate_siblings(node, cpu, line)
                    remote = True
                else:
                    t = self._serve_local(cpu, line, is_write, now, entry)
                    node.stats.local_misses += 1
            else:  # INVALID
                t = node.bus.request(now)
                t = node.controller.fetch(entry, lip, is_write, False, t)
                node.memory.write(t)  # line lands in the page cache too
                remote = True
            node.kernel.touch_lru(frame)
        elif mode == _LANUMA or mode == _CCNUMA:
            if line in node.presence._holders:
                sib_state = self._max_sibling_state(node, line)
                if is_write:
                    if sib_state >= _EXCLUSIVE:
                        # Node-exclusive: sibling cache supplies locally.
                        t = self._serve_local(cpu, line, True, now, entry)
                        node.stats.local_misses += 1
                    else:
                        t = node.bus.request(now)
                        t = node.controller.fetch(entry, lip, True, True, t)
                        self._invalidate_siblings(node, cpu, line)
                        remote = True
                else:
                    t = self._serve_local(cpu, line, False, now, entry)
                    node.stats.local_misses += 1
            else:
                t = node.bus.request(now)
                t = node.controller.fetch(entry, lip, is_write, False, t)
                remote = True
        elif mode == _PM_LOCAL:
            t = self._serve_local(cpu, line, is_write, now, entry)
            node.stats.local_misses += 1
            if not is_write and line not in node.presence._holders:
                fill_state = _EXCLUSIVE
        else:
            raise RuntimeError("access to frame in mode %s" % mode.name)

        lost = cpu.hierarchy.fill(line, fill_state)
        node.presence.add(line, cpu.local_id)
        if lost:
            self._handle_lost(node, cpu, lost, t)
        if remote:
            t = node.kernel.drain_promotions(t)
            if self.migration.enabled:
                self.migration.drain()
        return t

    def _serve_local(self, cpu: Cpu, line: int, is_write: bool, now: int,
                     entry) -> int:
        """Service a miss from local memory or a sibling CPU's cache.

        Uncontended cost: 36 cycles clean (Table 1 "line in local
        memory"), 61 when a dirty sibling copy must be pulled out by a
        bus intervention.
        """
        node = cpu.node
        bus = node.bus
        tracer = self._tracer
        # Address phase, data phase and DRAM port occupancy are inlined
        # Resource.acquire calls (same FCFS arithmetic) — this function
        # runs once per local miss and the call overhead was measurable.
        bus.transactions += 1
        res = bus.address_path
        start = res.next_free if res.next_free > now else now
        if tracer is not None and start > now:
            tracer.add("bus_wait", "queue", node.node_id, now, start)
        t = start + self._lat_bus_request
        res.next_free = t
        res.busy_cycles += self._lat_bus_request
        res.acquisitions += 1
        dirty_sibling = None
        holders = node.presence._holders.get(line)
        if holders:
            for cid in holders:
                if node.cpus[cid].hierarchy.state(line) == _MODIFIED:
                    dirty_sibling = cid
                    break
        if dirty_sibling is not None:
            if tracer is not None:
                tracer.add("intervention", "mem", node.node_id, t,
                           t + self._lat_intervention)
            t += self._lat_intervention
            if entry.mode.is_remote_backed and not is_write:
                # No local memory behind the frame: the dirty data is
                # written back to the home as part of the share.
                node.controller.share_dirty_lanuma(entry, line & self._lip_mask, t)
            else:
                node.memory.write(t)
        else:
            memory = node.memory
            res = memory.port
            start = res.next_free if res.next_free > t else t
            if tracer is not None:
                if start > t:
                    tracer.add("mem_wait", "queue", node.node_id, t, start)
                tracer.add("dram", "mem", node.node_id, start,
                           start + self._lat_serve_mem)
            t = start + self._lat_serve_mem
            res.next_free = t
            res.busy_cycles += self._lat_serve_mem
            res.acquisitions += 1
            memory.reads += 1
        res = bus.data_path
        start = res.next_free if res.next_free > t else t
        if tracer is not None and start > t:
            tracer.add("data_wait", "queue", node.node_id, t, start)
        t = start + self._lat_bus_data
        res.next_free = t
        res.busy_cycles += self._lat_bus_data
        res.acquisitions += 1
        if is_write:
            self._invalidate_siblings(node, cpu, line)
        elif dirty_sibling is not None:
            node.cpus[dirty_sibling].hierarchy.downgrade(line)
        return t

    def _invalidate_siblings(self, node: Node, cpu: Cpu, line: int) -> None:
        holders = node.presence._holders.get(line)
        if not holders:
            return
        keep = cpu.local_id
        for cid in list(holders):
            if cid != keep:
                node.cpus[cid].hierarchy.invalidate(line)
                node.presence.remove(line, cid)

    def _max_sibling_state(self, node: Node, line: int) -> LineState:
        best = _INVALID
        for cid in node.presence._holders.get(line, ()):
            state = node.cpus[cid].hierarchy.state(line)
            if state > best:
                best = state
        return best

    def _handle_lost(self, node: Node, cpu: Cpu, lost, now: int) -> None:
        """Process lines evicted from a CPU hierarchy during a fill."""
        pit = node.pit
        dense = pit.dense_real
        dense_len = len(dense)
        local_id = cpu.local_id
        for vline, vstate in lost:
            node.presence.remove(vline, local_id)
            vframe = vline // self._lpp
            ventry = (dense[vframe] if vframe < dense_len
                      else pit.entry_or_none(vframe))
            if ventry is None:
                continue
            if vstate == _MODIFIED:
                if ventry.mode.is_remote_backed:
                    node.controller.evict_writeback(
                        ventry, vline & self._lip_mask, now)
                else:
                    node.memory.write(now)
            elif (ventry.mode.is_remote_backed
                  and vstate == _EXCLUSIVE
                  and vline not in node.presence._holders):
                node.controller.replacement_hint(
                    ventry, vline & self._lip_mask, now)

    # ------------------------------------------------------------------
    # Finalization.
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int, now: int = -1) -> None:
        """Fail-stop a node (section 3.3's failure model).

        The node's CPUs halt and its resources become unreachable.
        Surviving nodes keep running: their translations are private and
        their physical addresses never name the dead node's memory, so
        only transactions that *need* the dead node (pages homed or
        owned there) fail — with :class:`NodeFailedError`, the simulated
        analogue of terminating the applications using that node.

        Survivor state is scrubbed eagerly rather than lazily at each
        later miss: the dead node is pruned from every surviving
        directory's sharer lists (a SHARED line with no sharers left
        reverts to HOME_EXCL, like a replacement hint would) and from
        client lists, and surviving PIT entries whose dynamic-home hint
        still points at the corpse are reset to the true home so later
        requests don't chase a forwarding chain through it.  A line
        *owned* by the dead node stays owned — the only valid copy died
        with it, and touching it keeps raising ``NodeFailedError``.

        ``now`` is the simulated failure time (for the obs event;
        ``-1`` when failed outside a run).
        """
        if not 0 <= node_id < len(self.nodes):
            raise ValueError("no node %d" % node_id)
        if node_id in self.failed_nodes:
            return
        self.failed_nodes.add(node_id)
        for cpu in self.nodes[node_id].cpus:
            cpu.done = True
        sharers_pruned = 0
        hints_reset = 0
        for node in self.nodes:
            if node.node_id in self.failed_nodes:
                continue
            for dir_page in node.directory.pages():
                dir_page.clients.discard(node_id)
                home_entry = (node.pit.entry_or_none(dir_page.home_frame)
                              if dir_page.home_frame is not None else None)
                home_tags = home_entry.tags if home_entry is not None else None
                for lip, dl in enumerate(dir_page.lines):
                    if node_id in dl.sharers:
                        dl.sharers.discard(node_id)
                        sharers_pruned += 1
                        if dl.state == DirState.SHARED and not dl.sharers:
                            dl.state = DirState.HOME_EXCL
                            dl.owner = -1
                            if home_tags is not None:
                                home_tags.set(lip, Tag.EXCLUSIVE)
            for entry in node.pit.frames():
                if entry.gpage >= 0 and entry.dynamic_home == node_id:
                    true_home = self.dynamic_home_of(entry.gpage)
                    if true_home != node_id:
                        entry.dynamic_home = true_home
                        entry.home_frame = None
                        hints_reset += 1
        obs.counter("sim.node_failures", node=str(node_id)).inc()
        obs.gauge("sim.failed_nodes").set(len(self.failed_nodes))
        if sharers_pruned or hints_reset:
            obs.counter("sim.failover_sharers_pruned").inc(sharers_pruned)
            obs.counter("sim.failover_hints_reset").inc(hints_reset)

    def shared_resources(self) -> "list[Resource]":
        """Every shared hardware resource (buses, memory ports,
        controllers, kernels, network interfaces)."""
        resources: "list[Resource]" = []
        for node in self.nodes:
            resources += (node.bus.address_path, node.bus.data_path,
                          node.memory.port, node.controller.resource,
                          node.kernel_resource)
        resources += self.network.interfaces
        return resources

    def resource_report(self) -> "dict[str, float]":
        """Busy fraction of every shared hardware resource over the run.

        Useful for locating the bottleneck of a workload/policy pair
        (home controller saturation, bus pressure, NI injection...).
        """
        total = self.stats.execution_cycles
        return {resource.name: resource.utilization(total)
                for resource in self.shared_resources()}

    def hottest_resources(self, top: int = 5) -> "list[tuple[str, float]]":
        """The ``top`` busiest resources, descending."""
        report = self.resource_report()
        ranked = sorted(report.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:top]

    def retire_frame_utilization(self, entry) -> None:
        """Account a retired frame's utilization (Table 3)."""
        if not entry.mode.is_real:
            return
        self.stats.frames_allocated_total += 1
        self.stats.touched_line_fraction_sum += (
            entry.touched_lines() / self._lpp)

    def _finalize(self) -> None:
        self.stats.execution_cycles = max(
            (c.stats.finish_time for c in self.cpus), default=0)
        for node in self.nodes:
            for entry in node.pit.frames():
                self.retire_frame_utilization(entry)
            self.stats.directory_cache_hits += node.directory.cache.hits
            self.stats.directory_cache_misses += node.directory.cache.misses
        if self._obs is not None:
            self._publish_final_metrics()

    # ------------------------------------------------------------------
    # Observability (active only with a metrics registry installed).
    # ------------------------------------------------------------------

    def _sample_epoch(self, now: int) -> None:
        """Per-epoch telemetry, taken at each barrier release: resource
        utilization curves and page-cache occupancy per node."""
        sample_utilization(self._obs, self.shared_resources(), now)
        for node in self.nodes:
            self._obs.series("kernel.page_cache_frames",
                             node=node.node_id).sample(
                now, node.pools.client_scoma_in_use)

    def _publish_final_metrics(self) -> None:
        """End-of-run roll-ups: protocol message mix, PIT traffic and
        hit ratio, frame-pool occupancy gauges."""
        registry = self._obs
        pit_lookups = pit_hash = 0
        for node in self.nodes:
            for kind in sorted(node.msglog.sent, key=lambda k: k.name):
                registry.counter("core.protocol_messages",
                                 kind=kind.name).inc(node.msglog.sent[kind])
            pit_lookups += node.pit.lookups
            pit_hash += node.pit.hash_lookups
            registry.gauge("core.pit_fast_ratio", node=node.node_id).set(
                round(node.pit.fast_ratio(), 4))
            for pool, value in node.pools.occupancy().items():
                registry.gauge("kernel.frame_pool." + pool,
                               node=node.node_id).set(value)
        registry.counter("core.pit_lookups").inc(pit_lookups)
        registry.counter("core.pit_hash_lookups").inc(pit_hash)
        registry.gauge("core.pit_fast_ratio").set(
            round(1.0 - pit_hash / pit_lookups, 4) if pit_lookups else 1.0)
        registry.gauge("sim.execution_cycles").set(
            self.stats.execution_cycles)
        if self._tracer is not None:
            self._tracer.publish(registry)
