"""Discrete-event primitives for the PRISM simulator.

The machine model (``repro.sim.machine``) advances per-CPU clocks and
resolves each memory reference atomically; contention at shared hardware
is modelled with :class:`Resource` objects that serialize access FCFS
("next free time" semantics).  Synchronization between the simulated
CPUs uses :class:`Barrier` and :class:`LockTable`.

This approximation — one outstanding miss per CPU, transactions resolved
atomically at their issue order — matches the blocking, in-order
processors of the paper's era and keeps the simulator fast enough to run
SPLASH-style kernels in pure Python.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


class Resource:
    """A shared hardware resource with FCFS occupancy.

    ``acquire(now, duration)`` returns the time at which the requested
    use *completes*; the wait (if the resource is busy) is the contention
    the paper's simulator accounts for "at all system resources".
    """

    __slots__ = ("name", "next_free", "busy_cycles", "acquisitions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.next_free = 0
        self.busy_cycles = 0
        self.acquisitions = 0

    def acquire(self, now: int, duration: int) -> int:
        """Occupy the resource for ``duration`` cycles starting no
        earlier than ``now``; returns the completion time."""
        start = self.next_free if self.next_free > now else now
        end = start + duration
        self.next_free = end
        self.busy_cycles += duration
        self.acquisitions += 1
        return end

    def peek_wait(self, now: int) -> int:
        """Cycles a request arriving at ``now`` would wait before use."""
        return self.next_free - now if self.next_free > now else 0

    def utilization(self, total_cycles: int) -> float:
        """Busy fraction of the resource over ``total_cycles``.

        A zero-cycle window has no meaningful busy fraction and reports
        0.0; fractions above 1.0 (overlapping charges) clamp to 1.0.  A
        *negative* window is always a caller bug (an end time before a
        start time), so it raises :class:`ValueError` instead of being
        silently reported as an idle resource.
        """
        if total_cycles < 0:
            raise ValueError(
                "utilization window must be non-negative, got %d cycles"
                % total_cycles)
        if total_cycles == 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Resource(%r, next_free=%d)" % (self.name, self.next_free)


def sample_utilization(registry, resources, now: int) -> None:
    """Record each resource's cumulative busy fraction at ``now`` into a
    per-resource time series (``sim.resource_utilization{resource=...}``).

    The machine calls this at epoch boundaries (barrier releases) when a
    metrics registry is installed, turning the end-of-run
    ``resource_report()`` scalar into a utilization curve over the run.
    """
    for resource in resources:
        registry.series("sim.resource_utilization",
                        resource=resource.name).sample(
            now, round(resource.utilization(now), 4))


class SchedulePerturbation:
    """Bounded, deterministic perturbation of the simulator's schedule.

    The machine resolves references atomically in per-CPU clock order,
    so the *interleaving* of a run is a function of two things: where
    each CPU's clock starts, and how long remote transactions take.
    This object perturbs exactly those two inputs:

    * ``cpu_offsets`` — per-CPU start-time skews (cycles).  CPU ``i``
      begins the run at ``cpu_offsets[i % len]`` instead of 0.
    * ``net_jitter``  — extra flight cycles added to successive network
      hops, consumed cyclically (hop ``k`` pays ``net_jitter[k % len]``).

    Both are explicit tuples rather than a PRNG stream so a schedule is
    (a) fully deterministic, (b) trivially serializable into a failure
    report, and (c) *shrinkable* — the fuzzer minimizes a reproducing
    schedule by zeroing and halving entries (see ``repro.verify.fuzz``).

    Perturbation changes simulated timing (and therefore statistics);
    what it must never change is the *values* reads observe relative to
    a legal serialization — that is what ``repro.verify`` checks.
    """

    __slots__ = ("cpu_offsets", "net_jitter", "_hop")

    def __init__(self, cpu_offsets=(), net_jitter=()) -> None:
        self.cpu_offsets = tuple(int(x) for x in cpu_offsets)
        self.net_jitter = tuple(int(x) for x in net_jitter)
        if any(x < 0 for x in self.cpu_offsets):
            raise ValueError("cpu offsets must be non-negative")
        if any(x < 0 for x in self.net_jitter):
            raise ValueError("network jitter must be non-negative")
        self._hop = 0

    def reset(self) -> None:
        """Rewind the jitter stream (call before reusing a schedule)."""
        self._hop = 0

    def cpu_offset(self, cpu_id: int) -> int:
        """Start-time skew for one CPU."""
        if not self.cpu_offsets:
            return 0
        return self.cpu_offsets[cpu_id % len(self.cpu_offsets)]

    def next_jitter(self) -> int:
        """Extra flight cycles for the next network hop."""
        if not self.net_jitter:
            return 0
        value = self.net_jitter[self._hop % len(self.net_jitter)]
        self._hop += 1
        return value

    @property
    def is_trivial(self) -> bool:
        """True when the schedule perturbs nothing."""
        return not any(self.cpu_offsets) and not any(self.net_jitter)

    @classmethod
    def random(cls, rng, num_cpus: int, max_cpu_skew: int = 2000,
               max_net_jitter: int = 200,
               jitter_slots: int = 16) -> "SchedulePerturbation":
        """Draw a bounded random schedule from ``rng`` (a
        ``random.Random``)."""
        offsets = tuple(rng.randrange(max_cpu_skew + 1)
                        for _ in range(num_cpus))
        jitter = tuple(rng.randrange(max_net_jitter + 1)
                       for _ in range(jitter_slots))
        return cls(cpu_offsets=offsets, net_jitter=jitter)

    def describe(self) -> str:
        """Compact human-readable rendering (failure reports)."""
        return ("cpu_offsets=%r net_jitter=%r"
                % (list(self.cpu_offsets), list(self.net_jitter)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SchedulePerturbation(%s)" % self.describe()


@dataclass
class Barrier:
    """An engine-level barrier across ``parties`` simulated CPUs.

    CPUs arrive at possibly different simulated times; all of them leave
    at ``max(arrival times) + cost``.
    """

    parties: int
    cost: int = 0
    waiting: "list[int]" = field(default_factory=list)   # cpu ids
    arrival_max: int = 0
    episodes: int = 0

    def arrive(self, cpu_id: int, now: int) -> "list[tuple[int, int]] | None":
        """Register an arrival.

        Returns ``None`` while the barrier is still filling.  When the
        last party arrives, returns ``[(cpu_id, release_time), ...]`` for
        every waiting CPU (including the caller) and resets the barrier
        for reuse.
        """
        if now > self.arrival_max:
            self.arrival_max = now
        self.waiting.append(cpu_id)
        if len(self.waiting) < self.parties:
            return None
        release = self.arrival_max + self.cost
        released = [(cpu, release) for cpu in self.waiting]
        self.waiting = []
        self.arrival_max = 0
        self.episodes += 1
        return released


class LockTable:
    """Simulated locks with FCFS handoff.

    An acquire of a free lock is granted immediately (plus ``cost``
    cycles of read-modify-write traffic).  An acquire of a held lock
    *blocks* the CPU: the machine parks it until the holder releases, at
    which point :meth:`release` hands the lock to the first waiter and
    returns its wake-up time.
    """

    def __init__(self, cost: int = 0) -> None:
        self.cost = cost
        self._holder: "dict[int, int]" = {}
        # FCFS waiter queues; deque so a contended handoff pops the
        # head in O(1) instead of list.pop(0)'s O(n) shift.
        self._waiters: "dict[int, deque[int]]" = {}
        self.acquires = 0
        self.contended_acquires = 0

    def acquire(self, lock_id: int, cpu_id: int, now: int) -> "int | None":
        """Try to acquire ``lock_id`` at time ``now``.

        Returns the grant time, or ``None`` if the lock is held (the CPU
        is queued and will be woken by the holder's release).
        """
        if lock_id in self._holder:
            waiters = self._waiters.get(lock_id)
            if waiters is None:
                waiters = self._waiters[lock_id] = deque()
            waiters.append(cpu_id)
            self.contended_acquires += 1
            return None
        self._holder[lock_id] = cpu_id
        self.acquires += 1
        return now + self.cost

    def release(self, lock_id: int, cpu_id: int, now: int) -> "tuple[int, int] | None":
        """Release ``lock_id``.

        If a CPU is waiting, hand it the lock and return
        ``(next_cpu_id, grant_time)``; otherwise return ``None``.
        """
        holder = self._holder.get(lock_id)
        if holder != cpu_id:
            raise RuntimeError(
                "cpu %d releasing lock %d held by %r" % (cpu_id, lock_id, holder))
        waiters = self._waiters.get(lock_id)
        if waiters:
            next_cpu = waiters.popleft()
            if not waiters:
                del self._waiters[lock_id]
            self._holder[lock_id] = next_cpu
            self.acquires += 1
            return next_cpu, now + self.cost
        del self._holder[lock_id]
        return None

    def holder(self, lock_id: int) -> "int | None":
        """The CPU currently holding ``lock_id``, if any."""
        return self._holder.get(lock_id)
