"""Event tracing for the simulated machine.

This is the *event* substrate ("what happened, in order"); the
*causal* substrate ("why was this access slow") is
:mod:`repro.obs.tracing`, which follows each coherence transaction as
a span tree with a critical-path latency breakdown.

A :class:`TraceRecorder` hooks a machine and records structured events:
memory references (with their resolved level and latency), page faults,
page-outs, mode demotions/promotions and home migrations.  Tracing is
opt-in — the hooks wrap the hot path, so expect a run to slow down
while recording.

Storage is a **bounded ring buffer**: when more than ``max_events``
events arrive, the *oldest* events are overwritten (and counted in
``dropped``) so the recorder always holds the most recent window of the
run.  Earlier versions silently stopped recording at the cap instead —
keeping the tail is almost always what post-mortem analysis wants, and
the ``dropped`` counter stays an exact count of what was lost.

The recorder can also forward every event to a structured
:class:`~repro.obs.events.EventSink`, which adds monotonic sequence
numbers and JSONL/CSV export — the substrate behind the CLI's
``run --trace-out FILE``::

    from repro.obs.events import EventSink

    sink = EventSink()
    machine = Machine(config, policy="dyn-lru")
    with TraceRecorder(machine, kinds={"fault", "pageout"},
                       sink=sink) as trace:
        machine.run(workload)
    sink.write_jsonl("trace.jsonl")

Events are plain namedtuples in memory; ``summary()`` aggregates them
and ``to_csv()`` renders them for offline analysis.
"""

from __future__ import annotations

from collections import Counter, deque, namedtuple

AccessEvent = namedtuple(
    "AccessEvent", "time cpu vaddr write latency")
FaultEvent = namedtuple(
    "FaultEvent", "time node vpage gpage mode remote_home")
PageOutEvent = namedtuple(
    "PageOutEvent", "time node frame demoted")
PromoteEvent = namedtuple(
    "PromoteEvent", "time node gpage")
MigrateEvent = namedtuple(
    "MigrateEvent", "gpage old_home new_home")
NodeFailEvent = namedtuple(
    "NodeFailEvent", "time node")

KINDS = ("access", "fault", "pageout", "promote", "migrate", "node_fail")

#: Structured-event kind for each in-memory event type (the sink's
#: schema field names match the namedtuple fields).
_KIND_OF = {
    AccessEvent: "access",
    FaultEvent: "fault",
    PageOutEvent: "pageout",
    PromoteEvent: "promote",
    MigrateEvent: "migrate",
    NodeFailEvent: "node_fail",
}

class TraceRecorder:
    """Records machine events while active (use as a context manager)."""

    def __init__(self, machine, kinds: "set[str] | None" = None,
                 max_events: int = 1_000_000, sink=None) -> None:
        unknown = (set(kinds) - set(KINDS)) if kinds else set()
        if unknown:
            raise ValueError("unknown trace kinds: %s" % sorted(unknown))
        self.machine = machine
        self.kinds = set(kinds) if kinds is not None else set(KINDS)
        self.max_events = max_events
        self.sink = sink
        self._events: "deque[tuple]" = deque(maxlen=max_events)
        self.dropped = 0
        self._saved: "list[tuple]" = []

    @property
    def events(self) -> "list[tuple]":
        """The retained events, oldest first (the most recent
        ``max_events`` of the run)."""
        return list(self._events)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "TraceRecorder":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def attach(self) -> None:
        """Install the recording hooks on the machine."""
        machine = self.machine
        if "access" in self.kinds:
            self._wrap(machine, "_access", self._on_access)
        if self.kinds & {"fault", "pageout", "promote"}:
            for node in machine.nodes:
                kernel = node.kernel
                if "fault" in self.kinds:
                    self._wrap(kernel, "fault", self._on_fault)
                if "pageout" in self.kinds:
                    self._wrap(kernel, "page_out_client", self._on_pageout)
        if "migrate" in self.kinds:
            self._wrap(machine.migration, "migrate", self._on_migrate)
        if "node_fail" in self.kinds:
            self._wrap(machine, "fail_node", self._on_node_fail)

    def detach(self) -> None:
        # _wrap installed instance attributes shadowing the (class)
        # methods; deleting them restores the original hot path.
        for owner, name, _original in self._saved:
            try:
                delattr(owner, name)
            except AttributeError:  # pragma: no cover - already clean
                pass
        self._saved = []

    def _wrap(self, owner, name: str, hook) -> None:
        original = getattr(owner, name)
        self._saved.append((owner, name, original))

        def wrapper(*args, **kwargs):
            result = original(*args, **kwargs)
            hook(owner, original, args, kwargs, result)
            return result

        setattr(owner, name, wrapper)

    def _record(self, event) -> None:
        if len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(event)
        if self.sink is not None:
            self.sink.emit(_KIND_OF[type(event)], **event._asdict())

    # -- hooks ---------------------------------------------------------------

    def _on_access(self, _machine, _orig, args, _kwargs, result) -> None:
        cpu, vaddr, is_write, now = args
        self._record(AccessEvent(now, cpu.cpu_id, vaddr, bool(is_write),
                                 result - now))

    def _on_fault(self, kernel, _orig, args, _kwargs, result) -> None:
        vpage, now = args
        frame, done = result
        entry = kernel.node.pit.entry_or_none(frame)
        gpage = entry.gpage if entry is not None else -1
        mode = entry.mode.name if entry is not None else "?"
        remote = (gpage >= 0 and
                  kernel.machine.dynamic_home_of(gpage) != kernel.node.node_id)
        self._record(FaultEvent(now, kernel.node.node_id, vpage, gpage,
                                mode, remote))

    def _on_pageout(self, kernel, _orig, args, kwargs, _result) -> None:
        frame = args[0]
        now = args[1]
        demote = kwargs.get("demote", args[2] if len(args) > 2 else False)
        self._record(PageOutEvent(now, kernel.node.node_id, frame,
                                  bool(demote)))

    def _on_migrate(self, migration, _orig, args, _kwargs, _result) -> None:
        gpage, new_home = args
        self._record(MigrateEvent(gpage, -1, new_home))

    def _on_node_fail(self, _machine, _orig, args, kwargs, _result) -> None:
        node_id = args[0] if args else kwargs["node_id"]
        now = kwargs.get("now", args[1] if len(args) > 1 else -1)
        self._record(NodeFailEvent(now, node_id))

    # -- reporting -----------------------------------------------------------

    def summary(self) -> "dict[str, int]":
        """Retained-event counts by type (plus the dropped count)."""
        counts = Counter(type(event).__name__ for event in self._events)
        counts["dropped"] = self.dropped
        return dict(counts)

    def accesses(self) -> "list[AccessEvent]":
        """Just the access events, in order."""
        return [e for e in self._events if isinstance(e, AccessEvent)]

    def latency_histogram(self, buckets=(2, 15, 100, 700, 2500)) -> "dict[str, int]":
        """Bucket access latencies (cycles): hits, L2, local, remote,
        fault-ish, contended."""
        labels = ["<=%d" % b for b in buckets] + [">%d" % buckets[-1]]
        hist = dict.fromkeys(labels, 0)
        for event in self.accesses():
            for bound, label in zip(buckets, labels):
                if event.latency <= bound:
                    hist[label] += 1
                    break
            else:
                hist[labels[-1]] += 1
        return hist

    def to_csv(self) -> str:
        """All retained events as CSV (one section per event type)."""
        lines = []
        by_type: "dict[str, list]" = {}
        for event in self._events:
            by_type.setdefault(type(event).__name__, []).append(event)
        for name in sorted(by_type):
            events = by_type[name]
            lines.append("# %s" % name)
            lines.append(",".join(events[0]._fields))
            for event in events:
                lines.append(",".join(str(v) for v in event))
        return "\n".join(lines)
