"""Trace-compile-then-replay execution engine (``engine = "vector"``).

The interpreter (:class:`~repro.sim.machine.Machine`) resolves every
memory reference with a Python dispatch loop, even though the dominant
case — an L1 hit — is pure arithmetic.  This module lowers each
workload's per-CPU op stream *once* into dense numpy arrays (address,
read/write flag, compute gap, segment table), caches the result
content-addressed alongside the harness's ResultCache, and replays it
with a vectorized dispatcher:

* between synchronization points, each CPU's next references are
  translated in blocks — virtual pages through the CPU's *live* TLB
  map, line states through a dense int8 mirror of its L1 (kept in sync
  by hooks on every :class:`~repro.mem.cache.Cache` mutation);
* maximal prefixes that are provably plain L1 hits are charged with
  array arithmetic (one batch update for clocks, hit counters, LRU
  touches and the latency histogram);
* everything else — L2 hits, misses, upgrades, TLB misses, barriers,
  locks and protocol events — drops into the *existing* interpreter
  slow path (``Machine._access`` and friends), so all coherence, fault
  and tracing machinery is reused unchanged.

Byte-identity with the interpreter is a hard invariant, enforced by the
golden tiny-matrix snapshot and property tests: a reference is claimed
into a batch only under exactly the interpreter's per-reference
conditions (same limit checks, same LRU touches, same counters, same
clock arithmetic).  The mirror may *under*-approximate (predict a miss
for what turns out to be a hit — the slow path then handles it
identically, just slower); it must never over-approximate, which the
mutation hooks guarantee.

Select with ``MachineConfig.engine = "vector"`` (CLI ``--engine``), or
build through :func:`build_machine`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
from bisect import bisect_right
from collections import OrderedDict
from time import perf_counter

import numpy as np

from repro.kernel.frames import IMAGINARY_BASE
from repro.mem.cache import SHADOW_IMAG_OFFSET
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine, RunResult
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_READ_RUN, OP_UNLOCK, OP_WRITE, OP_WRITE_RUN)

#: Segment-terminator codes in the compiled segment table.
END_STREAM = 0
END_BARRIER = 1
END_LOCK = 2
END_UNLOCK = 3

_END_OF = {OP_BARRIER: END_BARRIER, OP_LOCK: END_LOCK,
           OP_UNLOCK: END_UNLOCK}

#: Max references examined per vectorized claim.
_WINDOW = 4096
#: A claim shorter than this suggests a fine hit/miss interleave where
#: numpy overhead beats the win; fall back to the scalar loop for the
#: next ``_SCALAR_RUN`` references before trying to vectorize again.
_SHORT_CLAIM = 8
_SCALAR_RUN = 64


# ----------------------------------------------------------------------
# Recording: op streams -> dense arrays.
# ----------------------------------------------------------------------

def compile_stream(gen) -> "tuple[np.ndarray, ...]":
    """Lower one CPU's op stream to ``(addr, w, gap, segs, mg, mt)``.

    ``addr``/``w``/``gap`` hold one entry per memory reference (run ops
    are unrolled; ``gap[i]`` is the compute-cycle total between
    reference ``i-1`` and ``i``).  ``segs`` is an ``(S, 5)`` int64 table
    of ``(ref_start, ref_end, tail_gap, end_kind, end_arg)`` rows — one
    per synchronization-bounded segment, where ``tail_gap`` is the
    compute total between the last reference and the terminator and
    ``end_kind`` is one of the ``END_*`` codes.

    Gap totals built from more than one compute op keep their chunk
    structure: the interpreter re-checks the scheduling limit between
    compute ops, so a CPU suspended mid-gap requeues at the *partial*
    sum, and at equal heap keys those intermediate times decide
    cross-CPU order.  ``mg`` is an ``(M, 2)`` table of ``(ref_index,
    chunk)`` rows (in stream order) for every multi-chunk gap; ``mt``
    is the same for multi-chunk tail gaps, keyed by segment index.
    Zero-cycle computes are dropped — they never move the clock, so no
    suspension point can be observed at them.  The compiled form
    expands back to exactly the recorded reference sequence.
    """
    addr_chunks: "list[np.ndarray]" = []
    w_chunks: "list[np.ndarray]" = []
    gap_chunks: "list[np.ndarray]" = []
    cur_addr: "list[int]" = []
    cur_w: "list[int]" = []
    cur_gap: "list[int]" = []
    segs: "list[tuple[int, int, int, int, int]]" = []
    mg_rows: "list[tuple[int, int]]" = []
    mt_rows: "list[tuple[int, int]]" = []
    pending: "list[int]" = []
    total = 0
    seg_start = 0

    def flush_singles() -> None:
        if cur_addr:
            addr_chunks.append(np.array(cur_addr, dtype=np.int64))
            w_chunks.append(np.array(cur_w, dtype=np.uint8))
            gap_chunks.append(np.array(cur_gap, dtype=np.int64))
            del cur_addr[:], cur_w[:], cur_gap[:]

    def take_gap(ref_index: int) -> int:
        if len(pending) > 1:
            mg_rows.extend((ref_index, chunk) for chunk in pending)
        gap = sum(pending)
        del pending[:]
        return gap

    for op in gen:
        kind = op[0]
        if kind == OP_READ or kind == OP_WRITE:
            cur_addr.append(op[1])
            cur_w.append(1 if kind == OP_WRITE else 0)
            cur_gap.append(take_gap(total))
            total += 1
        elif kind == OP_COMPUTE:
            if op[1]:
                pending.append(op[1])
        elif kind == OP_READ_RUN or kind == OP_WRITE_RUN:
            count = op[3]
            if count > 0:
                flush_singles()
                addr_chunks.append(
                    op[1] + op[2] * np.arange(count, dtype=np.int64))
                w_chunks.append(np.full(
                    count, 1 if kind == OP_WRITE_RUN else 0,
                    dtype=np.uint8))
                gap = np.zeros(count, dtype=np.int64)
                gap[0] = take_gap(total)
                gap_chunks.append(gap)
                total += count
        elif kind in _END_OF:
            flush_singles()
            if len(pending) > 1:
                mt_rows.extend((len(segs), chunk) for chunk in pending)
            segs.append((seg_start, total, sum(pending), _END_OF[kind],
                         op[1]))
            seg_start = total
            del pending[:]
        else:
            raise ValueError("unknown op %r from workload" % (op,))
    flush_singles()
    if len(pending) > 1:
        mt_rows.extend((len(segs), chunk) for chunk in pending)
    segs.append((seg_start, total, sum(pending), END_STREAM, 0))

    empty64 = np.empty(0, dtype=np.int64)
    addr = np.concatenate(addr_chunks) if addr_chunks else empty64
    w = (np.concatenate(w_chunks) if w_chunks
         else np.empty(0, dtype=np.uint8))
    gap = np.concatenate(gap_chunks) if gap_chunks else empty64
    return (addr, w, gap, np.array(segs, dtype=np.int64).reshape(-1, 5),
            np.array(mg_rows, dtype=np.int64).reshape(-1, 2),
            np.array(mt_rows, dtype=np.int64).reshape(-1, 2))


def _sig_value(value, depth: int = 0):
    """JSON-safe fingerprint of one workload attribute (None = skip).

    Primitives embed directly; numpy arrays embed as a content hash;
    Shared/PrivateArray-likes embed their address geometry; containers
    recurse (bounded).  Unknown objects are skipped — the attributes
    that *determine* a bundled workload's reference stream (problem
    sizes, seeds, precomputed plans, segment bases) are all covered.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return ["nd", list(value.shape), str(value.dtype),
                hashlib.sha256(np.ascontiguousarray(value).tobytes())
                .hexdigest()[:16]]
    if (hasattr(value, "vbase") and hasattr(value, "elem_bytes")
            and hasattr(value, "num_elems")):
        return ["arr", value.vbase, value.elem_bytes, value.num_elems]
    if depth >= 4:
        return None
    if isinstance(value, (list, tuple)):
        return [_sig_value(v, depth + 1) for v in value]
    if isinstance(value, dict):
        return {str(k): _sig_value(v, depth + 1)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return None


def trace_signature(workload, num_cpus: int) -> str:
    """Content address of a workload's compiled trace.

    Covers the workload class, every fingerprintable attribute (set up
    state included — call after ``workload.setup``) and the CPU count.
    Virtual addresses bake the layout in, so the page size that shaped
    ``setup`` is covered through the segment base addresses.
    """
    body = {
        "schema": 1,
        "class": type(workload).__name__,
        "name": getattr(workload, "name", ""),
        "num_cpus": num_cpus,
        "attrs": {key: _sig_value(value)
                  for key, value in sorted(vars(workload).items())},
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CompiledTrace:
    """Per-CPU compiled arrays for one (workload, num_cpus) pair."""

    __slots__ = ("signature", "per_cpu")

    def __init__(self, signature: str, per_cpu) -> None:
        self.signature = signature
        #: One ``(addr, w, gap, segs, mg, mt)`` tuple per CPU.
        self.per_cpu = list(per_cpu)

    @property
    def references(self) -> int:
        """Total recorded references across every CPU."""
        return sum(len(arrs[0]) for arrs in self.per_cpu)


class TraceCache:
    """Content-addressed cache of compiled traces.

    Two tiers: a small in-memory LRU (traces can be tens of MB) and an
    optional on-disk tier laid out like the harness ResultCache
    (``<root>/<sig[:2]>/<sig>.npz``, atomic writes).  The disk tier is
    enabled by :meth:`set_root` — the Session points it at
    ``<cache_dir>/traces`` so compiled traces live alongside cached
    results.
    """

    def __init__(self, root: "str | None" = None,
                 memory_entries: int = 8) -> None:
        self.root = root
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, CompiledTrace]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def set_root(self, root: "str | None") -> None:
        """Point (or disable, with None) the on-disk tier."""
        self.root = root

    def _path(self, sig: str) -> str:
        return os.path.join(self.root, sig[:2], sig + ".npz")

    def get_or_compile(self, workload, num_cpus: int) -> CompiledTrace:
        """The compiled trace for ``workload`` (recording on a miss)."""
        sig = trace_signature(workload, num_cpus)
        trace = self._memory.get(sig)
        if trace is not None:
            self._memory.move_to_end(sig)
            self.hits += 1
            return trace
        trace = self._load_disk(sig)
        if trace is None:
            self.misses += 1
            trace = CompiledTrace(sig, [
                compile_stream(workload.generator(cid, num_cpus))
                for cid in range(num_cpus)])
            self._store_disk(trace)
        else:
            self.hits += 1
        self._memory[sig] = trace
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
        return trace

    def _load_disk(self, sig: str) -> "CompiledTrace | None":
        if self.root is None:
            return None
        try:
            with np.load(self._path(sig)) as data:
                ncpus = int(data["ncpus"])
                per_cpu = [
                    (data["c%d_addr" % i], data["c%d_w" % i],
                     data["c%d_gap" % i],
                     data["c%d_segs" % i].reshape(-1, 5),
                     data["c%d_mg" % i].reshape(-1, 2),
                     data["c%d_mt" % i].reshape(-1, 2))
                    for i in range(ncpus)]
        except (OSError, KeyError, ValueError):
            return None
        return CompiledTrace(sig, per_cpu)

    def _store_disk(self, trace: CompiledTrace) -> None:
        if self.root is None:
            return
        path = self._path(trace.signature)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        arrays = {"ncpus": np.int64(len(trace.per_cpu))}
        for i, (addr, w, gap, segs, mg, mt) in enumerate(trace.per_cpu):
            arrays["c%d_addr" % i] = addr
            arrays["c%d_w" % i] = w
            arrays["c%d_gap" % i] = gap
            arrays["c%d_segs" % i] = segs
            arrays["c%d_mg" % i] = mg
            arrays["c%d_mt" % i] = mt
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


#: Process-wide default trace cache (in-memory until a Session with an
#: on-disk result cache points the disk tier somewhere).
_DEFAULT_CACHE = TraceCache()


def default_trace_cache() -> TraceCache:
    """The process-wide :class:`TraceCache`."""
    return _DEFAULT_CACHE


def set_trace_cache_dir(root: "str | None") -> None:
    """Enable (or disable) the default cache's on-disk tier."""
    _DEFAULT_CACHE.set_root(root)


# ----------------------------------------------------------------------
# Replay: segment views + cursors + the vectorized machine.
# ----------------------------------------------------------------------

class _SegView:
    """One synchronization-bounded segment, pre-derived for a machine.

    Numpy views feed the vectorized claims; the plain-list twins feed
    the scalar fallback (python ints keep the interpreter slow path's
    integer arithmetic fast and exact).
    """

    __slots__ = ("n", "addr", "wb", "vpage", "lip", "cum", "cum_l",
                 "priv", "addr_l", "w_l", "gap_l", "gchunks", "multi",
                 "tail_gap", "tail_chunks", "end_kind", "end_arg")

    def __init__(self, addr, w, gap, vpage, lip, cum, priv, gchunks,
                 multi, tail_gap, tail_chunks, end_kind, end_arg) -> None:
        self.n = len(addr)
        self.addr = addr
        self.wb = w.view(bool)
        self.vpage = vpage
        self.lip = lip
        #: cum[j] = sum over i<=j of (gap[i] + ref_gap + l1_hit): the
        #: batched-hit clock, strictly increasing.
        self.cum = cum
        self.cum_l = cum.tolist()
        #: Per-reference "page is CPU-private machine-wide" mask, or
        #: None when the over-claim optimization is disabled (see
        #: VectorMachine._overclaim).
        self.priv = priv
        self.addr_l = addr.tolist()
        self.w_l = w.tolist()
        self.gap_l = gap.tolist()
        #: ``{pos: [chunk, ...]}`` for references whose compute gap
        #: came from several compute ops (None when the segment has
        #: none): the scalar path must charge those chunk by chunk,
        #: because the interpreter re-checks the limit between chunks.
        self.gchunks = gchunks
        #: Bool mask twin of ``gchunks`` (None when no multi-chunk
        #: gaps): over-claims must stop at a multi-chunk gap.
        self.multi = multi
        self.tail_gap = tail_gap
        self.tail_chunks = tail_chunks
        self.end_kind = end_kind
        self.end_arg = end_arg


class _Cursor:
    """Replay position of one CPU."""

    __slots__ = ("seg", "pos", "gap_taken", "gap_pos", "scalar_budget",
                 "pend_view", "pend_from", "pend_end", "pend_tb",
                 "pend_cumb", "pend_gap")

    def __init__(self) -> None:
        self.seg = 0
        self.pos = 0
        #: The pre-reference compute gap of ``pos`` has been charged
        #: (the CPU suspended between the gap and the reference).
        self.gap_taken = False
        #: Chunks of a multi-chunk gap already charged (the CPU can
        #: suspend between chunks, mid-gap).
        self.gap_pos = 0
        #: Remaining references to run scalar before retrying a claim.
        self.scalar_budget = 0
        #: Pending over-claimed batch: references whose state effects
        #: are already applied but whose interpreter suspension points
        #: the clock must still walk through (see _drain_pending).
        #: ``pend_end == 0`` means no pending batch.
        self.pend_view = None
        self.pend_from = 0
        self.pend_end = 0
        self.pend_tb = 0
        self.pend_cumb = 0
        self.pend_gap = False

    def advance(self) -> None:
        self.seg += 1
        self.pos = 0
        self.gap_taken = False


class VectorMachine(Machine):
    """A :class:`Machine` whose CPUs replay compiled traces.

    Identical substrates, identical event loop and slow paths; only
    ``run`` (compiles instead of holding generators) and ``_run_cpu``
    (vector claims + scalar fallback instead of generator dispatch)
    differ.  Statistics are byte-identical to the interpreter's.
    """

    def __init__(self, config: "MachineConfig | None" = None,
                 policy="scoma", page_cache_override=None,
                 schedule=None, faults=None,
                 deadline: "int | None" = None,
                 trace_cache: "TraceCache | None" = None) -> None:
        super().__init__(config, policy=policy,
                         page_cache_override=page_cache_override,
                         schedule=schedule, faults=faults,
                         deadline=deadline)
        self._trace_cache = (trace_cache if trace_cache is not None
                             else _DEFAULT_CACHE)
        # Dense L1 mirrors: the claim reads states with one gather.
        # Attached while the caches are empty, kept in sync by the
        # Cache mutation hooks (repro.mem.cache).
        imag_line_base = IMAGINARY_BASE * self._lpp
        for cpu in self.cpus:
            cpu.hierarchy.l1.attach_shadow(
                np.zeros(4096, dtype=np.int8), imag_line_base)
        self._segviews: "list[list[_SegView]]" = []
        self._cursors: "list[_Cursor]" = []
        self._claim_step = 0
        # Over-claim eligibility: hits on pages referenced by exactly
        # one CPU may be charged past the scheduler limit, because no
        # other CPU can observe or perturb the state they touch — no
        # sibling probe, invalidation or intervention ever names their
        # lines, and with unbounded page caches, no migration and no
        # fault plan, no kernel pageout/shootdown can evict them from
        # under the claim either.  Their timestamps are computed with
        # the exact interpreter arithmetic, so every visible action
        # keeps its simulated time and results stay byte-identical.
        cfg = self.config
        self._overclaim = (self.faults is None
                           and not cfg.enable_migration
                           and cfg.page_cache_frames is None
                           and cfg.total_frames_per_node is None
                           and page_cache_override is None)
        #: Set when an instance-level ``_access`` wrap (a value tap or
        #: serving tap) forces the interpreter op path; see run().
        self._interp_mode = False

    # -- running -------------------------------------------------------

    def run(self, workload) -> RunResult:
        """Compile (or fetch) the workload's trace, then replay it."""
        workload.setup(self.layout, len(self.cpus))
        self._bind_workload_taps(workload)
        if "_access" in self.__dict__:
            # A tap wrapped _access at instance level and must see every
            # reference, but the vectorized claim path batches L1 hits
            # without ever calling _access.  Fall back to the
            # interpreter's op path for this run — stats stay identical
            # by the engines' byte-identity contract; only host speed
            # changes.
            self._interp_mode = True
            return self._run_interp(workload)
        self._ref_gap = getattr(workload, "cycles_per_ref", 3)
        self._claim_step = self._ref_gap + self._lat_l1_hit
        trace = self._trace_cache.get_or_compile(workload, len(self.cpus))
        private_pages = None
        if self._overclaim and len(trace.per_cpu) > 1:
            shift = self._page_shift
            per_cpu_pages = [np.unique(arrs[0] >> shift)
                             for arrs in trace.per_cpu]
            pages, counts = np.unique(np.concatenate(per_cpu_pages),
                                      return_counts=True)
            private_pages = pages[counts == 1]
        self._segviews = [self._build_views(arrs, private_pages)
                          for arrs in trace.per_cpu]
        self._cursors = [_Cursor() for _ in self.cpus]
        start = perf_counter()
        self._event_loop()
        wall = perf_counter() - start
        self._finalize()
        for tap in self._taps:
            tap.close()
        if self._obs is not None:
            self._obs.gauge("host.wall_seconds").set(round(wall, 6))
            self._obs.gauge("host.refs_per_sec").set(
                round(self.stats.references / wall, 1) if wall > 0 else 0.0)
        return RunResult(workload=workload.name, policy=self.policy.name,
                         config=self.config, stats=self.stats)

    def _build_views(self, arrs, private_pages) -> "list[_SegView]":
        """Derive per-segment views for this machine's geometry."""
        addr, w, gap, segs, mg, mt = arrs
        vpage = addr >> self._page_shift
        lip = (addr >> self._line_shift) & self._lip_mask
        priv = (np.isin(vpage, private_pages)
                if private_pages is not None else None)
        gdict: "dict[int, list[int]]" = {}
        for ref, chunk in mg.tolist():
            gdict.setdefault(ref, []).append(chunk)
        multi_all = None
        if gdict:
            multi_all = np.zeros(len(addr), dtype=bool)
            multi_all[list(gdict)] = True
        tdict: "dict[int, list[int]]" = {}
        for sidx, chunk in mt.tolist():
            tdict.setdefault(sidx, []).append(chunk)
        step = self._claim_step
        views = []
        rows = segs.tolist()
        for sidx, (start, end, tail_gap, end_kind, end_arg) in \
                enumerate(rows):
            if multi_all is not None and multi_all[start:end].any():
                gchunks = {ref - start: gdict[ref] for ref in gdict
                           if start <= ref < end}
                multi = multi_all[start:end]
            else:
                gchunks = None
                multi = None
            views.append(_SegView(
                addr[start:end], w[start:end], gap[start:end],
                vpage[start:end], lip[start:end],
                np.cumsum(gap[start:end] + step),
                priv[start:end] if priv is not None else None,
                gchunks, multi, tail_gap, tdict.get(sidx),
                end_kind, end_arg))
        return views

    # -- the replay dispatcher -----------------------------------------

    def _event_loop(self) -> None:
        """The interpreter's scheduler with an inlined drain turn.

        Identical turn structure and heap keys to ``Machine._event_loop``
        (the guarded variant is inherited unchanged); the only addition
        is a fast path for CPUs whose cursor is mid pending-drain — the
        by far most common turn in lockstep phases — which replicates
        ``_drain_pending``'s arithmetic without the ``_run_cpu``
        dispatch overhead.
        """
        if self._interp_mode:
            return Machine._event_loop(self)
        if self.faults is not None or self.deadline is not None:
            return super()._event_loop()
        schedule = self.schedule
        if schedule is None:
            heap = [(0, cpu.cpu_id) for cpu in self.cpus]
        else:
            heap = [(schedule.cpu_offset(cpu.cpu_id), cpu.cpu_id)
                    for cpu in self.cpus]
        heapq.heapify(heap)
        self._heap = heap
        cpus = self.cpus
        cursors = self._cursors
        step = self._claim_step
        run_cpu = self._run_cpu
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        remaining = len(cpus)
        while heap:
            t, cid = heappop(heap)
            cpu = cpus[cid]
            if cpu.done:
                continue
            if t > cpu.time:
                cpu.time = t
            while True:
                rs = cursors[cid]
                if rs.pend_end and heap:
                    # Inline _drain_pending (keep the two in sync!).
                    limit = heap[0][0]
                    seg = rs.pend_view
                    cum = seg.cum_l
                    tb = rs.pend_tb
                    cumb = rs.pend_cumb
                    p = rs.pend_from
                    end = rs.pend_end
                    new_p = bisect_right(cum, limit - tb + cumb + step,
                                         p, end)
                    if new_p > p:
                        r = tb + cum[new_p - 1] - cumb
                        if new_p == end:
                            rs.pend_end = 0
                            rs.pend_view = None
                            rs.pend_gap = False
                            cpu.time = r
                            # Batch exhausted: the turn continues in
                            # normal replay below (run_cpu re-checks
                            # r <= limit exactly as the interpreter).
                        else:
                            rs.pend_from = new_p
                            if r <= limit:
                                r = tb + cum[new_p] - cumb - step
                                rs.pend_gap = True
                            else:
                                rs.pend_gap = False
                            cpu.time = r
                            t, cid = heappushpop(heap, (r, cid))
                            cpu = cpus[cid]
                            if cpu.done:
                                break
                            if t > cpu.time:
                                cpu.time = t
                            continue
                    elif not rs.pend_gap:
                        rs.pend_gap = True
                        r = tb + cum[p] - cumb - step
                        cpu.time = r
                        t, cid = heappushpop(heap, (r, cid))
                        cpu = cpus[cid]
                        if cpu.done:
                            break
                        if t > cpu.time:
                            cpu.time = t
                        continue
                status = run_cpu(cpu, heap[0][0] if heap else None)
                if status == "ready":
                    t, cid = heappushpop(heap, (cpu.time, cid))
                    cpu = cpus[cid]
                    if cpu.done:
                        break
                    if t > cpu.time:
                        cpu.time = t
                    continue
                if status == "done":
                    remaining -= 1
                break
        if remaining:
            stuck = [c.cpu_id for c in self.cpus if not c.done]
            if stuck:
                raise RuntimeError(
                    "deadlock: CPUs %r blocked with empty event heap "
                    "(mismatched barriers or locks in the workload?)"
                    % stuck)

    def _run_cpu(self, cpu, limit: "int | None") -> str:
        """Advance ``cpu`` along its compiled trace (see Machine)."""
        if self._interp_mode:
            return Machine._run_cpu(self, cpu, limit)
        rs = self._cursors[cpu.cpu_id]
        segs = self._segviews[cpu.cpu_id]
        stats = cpu.stats
        time = cpu.time
        # Attribute load kept per entry (not hoisted at construction)
        # so TraceCollector's instance-level wrapping keeps working.
        access = self._access
        ref_gap = self._ref_gap
        obs_access = self._obs_access
        while limit is None or time <= limit:
            if rs.pend_end:
                # An over-claimed batch is already executed; walk the
                # clock through the interpreter's exact suspension
                # points so cross-CPU tie-breaking stays identical.
                time, drained = self._drain_pending(rs, limit)
                if drained:
                    continue
                cpu.time = time
                return "ready"
            if rs.seg >= len(segs):  # pragma: no cover - defensive
                break
            seg = segs[rs.seg]
            pos = rs.pos
            if pos < seg.n:
                if (not rs.gap_taken and rs.scalar_budget <= 0
                        and rs.gap_pos == 0):
                    claimed, due = self._claim(cpu, seg, pos, time, limit)
                    if not claimed:
                        # A claim that opens on a miss paid its numpy
                        # setup for nothing; stay scalar for a stretch
                        # so miss-dominated phases approach interpreter
                        # cost instead of re-arming every reference.
                        rs.scalar_budget = _SCALAR_RUN
                    if claimed:
                        rs.pos = pos + claimed
                        if claimed < _SHORT_CLAIM:
                            rs.scalar_budget = _SCALAR_RUN
                        cum_l = seg.cum_l
                        cum_before = cum_l[pos - 1] if pos else 0
                        if due >= claimed:
                            time += cum_l[pos + claimed - 1] - cum_before
                            continue
                        # The batch ran past the limit on CPU-private
                        # pages: report the interpreter's clock, not
                        # the batch's end time.
                        rs.pend_view = seg
                        rs.pend_from = pos + due
                        rs.pend_end = pos + claimed
                        rs.pend_tb = time
                        rs.pend_cumb = cum_before
                        rs.pend_gap = False
                        if due:
                            reported = (time + cum_l[pos + due - 1]
                                        - cum_before)
                            if reported > limit:
                                cpu.time = reported
                                return "ready"
                        continue
                # Scalar fallback: exactly the interpreter's
                # per-reference path (gap op, then _access).
                if not rs.gap_taken:
                    gch = seg.gchunks
                    if gch is None or (chunks := gch.get(pos)) is None:
                        rs.gap_taken = True
                        gap = seg.gap_l[pos]
                        if gap:
                            time += gap
                            continue
                    else:
                        # Multi-chunk gap: charge one compute op per
                        # loop pass so a mid-gap suspension requeues
                        # at the partial sum, as the interpreter does.
                        gp = rs.gap_pos
                        if gp < len(chunks):
                            rs.gap_pos = gp + 1
                            time += chunks[gp]
                            continue
                        rs.gap_pos = 0
                        rs.gap_taken = True
                is_write = seg.w_l[pos]
                issued = time + ref_gap
                time = access(cpu, seg.addr_l[pos], is_write, issued)
                stats.references += 1
                if is_write:
                    stats.writes += 1
                else:
                    stats.reads += 1
                if obs_access is not None:
                    obs_access.observe(time - issued)
                rs.pos = pos + 1
                rs.gap_taken = False
                if rs.scalar_budget > 0:
                    rs.scalar_budget -= 1
                continue
            # Segment terminator (mirrors the interpreter's op cases).
            if not rs.gap_taken:
                tch = seg.tail_chunks
                if tch is not None:
                    gp = rs.gap_pos
                    if gp < len(tch):
                        rs.gap_pos = gp + 1
                        time += tch[gp]
                        continue
                    rs.gap_pos = 0
                    rs.gap_taken = True
                else:
                    rs.gap_taken = True
                    if seg.tail_gap:
                        time += seg.tail_gap
                        continue
            kind = seg.end_kind
            if kind == END_BARRIER:
                stats.barrier_waits += 1
                barrier = self._barriers.get(seg.end_arg)
                if barrier is None:
                    from repro.sim.engine import Barrier
                    barrier = Barrier(
                        parties=len(self.cpus),
                        cost=self.config.latency.barrier_cost)
                    self._barriers[seg.end_arg] = barrier
                cpu.time = time
                rs.advance()
                released = barrier.arrive(cpu.cpu_id, time)
                if released is not None:
                    for rcid, rtime in released:
                        self._wake(rcid, rtime)
                    if self._obs is not None:
                        self._sample_epoch(released[0][1])
                    if self._barrier_hook is not None:
                        self._barrier_hook(released[0][1])
                return "blocked"
            if kind == END_LOCK:
                granted = self.locks.acquire(seg.end_arg, cpu.cpu_id, time)
                rs.advance()
                if granted is None:
                    cpu.time = time
                    return "blocked"
                stats.lock_acquires += 1
                time = granted
                continue
            if kind == END_UNLOCK:
                woken = self.locks.release(seg.end_arg, cpu.cpu_id, time)
                time += 1
                if woken is not None:
                    wcid, wtime = woken
                    self.cpus[wcid].stats.lock_acquires += 1
                    self._wake(wcid, wtime)
                rs.advance()
                continue
            # END_STREAM
            cpu.done = True
            cpu.time = time
            stats.finish_time = time
            return "done"
        cpu.time = time
        return "ready"

    def _drain_pending(self, rs: _Cursor,
                       limit: "int | None") -> "tuple[int, bool]":
        """Walk the clock through an over-claimed batch's turns.

        The batch's state effects (cache/TLB/counter updates) were
        applied eagerly by ``_claim`` — safe, because the pages are
        CPU-private — but the scheduler must still observe exactly the
        suspension times the interpreter would have reported, or
        cross-CPU tie-breaking (lock FCFS order, resource queues) can
        flip at equal simulated times.  Each call replays one turn of
        the interpreter's arithmetic: execute every pending reference
        whose completion fits ``limit``, then (as the interpreter
        does) consume the *next* reference's compute gap if the clock
        is still within the turn.  Returns ``(time, drained)`` where
        ``drained`` means the batch is exhausted and normal replay
        resumes at ``time``.
        """
        seg = rs.pend_view
        cum = seg.cum_l
        tb, cumb = rs.pend_tb, rs.pend_cumb
        p, end = rs.pend_from, rs.pend_end
        step = self._claim_step
        if limit is None:
            rs.pend_end = 0
            rs.pend_view = None
            return tb + cum[end - 1] - cumb, True
        # Reference j completes this turn iff t_{j-1} + gap_j <= limit,
        # i.e. cum[j] - cumb - step <= limit - tb — a prefix.
        bound = limit - tb + cumb + step
        new_p = bisect_right(cum, bound, p, end)
        if new_p > p:
            rs.pend_gap = False
            reported = tb + cum[new_p - 1] - cumb
            if new_p == end:
                rs.pend_end = 0
                rs.pend_view = None
                return reported, True
            rs.pend_from = new_p
            if reported <= limit:
                # Interpreter would also consume the next reference's
                # gap before suspending (time += gap; continue; the
                # following issue check then fails).
                reported = tb + cum[new_p] - cumb - step
                rs.pend_gap = True
            return reported, False
        if not rs.pend_gap:
            rs.pend_gap = True
            return tb + cum[p] - cumb - step, False
        # pragma: no cover — loop entry guarantees time <= limit, so a
        # consumed gap implies the next issue fits and new_p > p above.
        return tb + cum[p] - cumb - step, False

    def _claim(self, cpu, seg: _SegView, pos: int, t0: int,
               limit: "int | None") -> "tuple[int, int]":
        """Charge a maximal batch of plain L1 hits from ``seg[pos:]``.

        Returns ``(claimed, due)``: ``claimed`` references were
        executed (their state effects and counters applied), of which
        the first ``due`` fit within ``limit`` under exactly the
        interpreter's condition ``t_before + gap <= limit``.  When
        ``due < claimed`` the excess references were over-claimed on
        CPU-private pages (see ``_overclaim``) and the caller must
        replay the clock through the pending-drain automaton.
        ``claimed == 0`` means the next reference is not provably a
        hit (or not yet due under ``limit``) and must go through the
        scalar path.  Every claimed reference satisfies the
        interpreter's hit conditions: its page is in the live TLB and
        its line is L1-resident in a state that needs no upgrade.
        """
        window = seg.n - pos
        if window > _WINDOW:
            window = _WINDOW
        cum = seg.cum
        cum_before = int(cum[pos - 1]) if pos else 0
        due = window
        if limit is not None:
            # Reference j executes this turn iff t_{j-1} + gap_j <=
            # limit, i.e. cum[pos+j] - cum_before - step <= limit - t0
            # — a prefix, since cum increases.
            bound = limit - t0 + self._claim_step + cum_before
            due = int(np.searchsorted(cum[pos:pos + window], bound,
                                      side="right"))
            if due < window:
                if seg.priv is not None:
                    # Past the limit, only contiguously CPU-private
                    # references may extend the claim (see _overclaim).
                    # A multi-chunk gap ends it too: the drain
                    # automaton charges gaps whole, but the limit can
                    # land between that gap's chunks, where the
                    # interpreter suspends at the partial sum — only
                    # the chunk-exact scalar walk reproduces that.
                    blocked = ~seg.priv[pos + due:pos + window]
                    if seg.multi is not None:
                        blocked |= seg.multi[pos + due:pos + window]
                    shared = np.flatnonzero(blocked)
                    window = due + (int(shared[0]) if shared.size
                                    else window - due)
                else:
                    window = due
            if window == 0:
                return 0, 0
        vp = seg.vpage[pos:pos + window]
        uniq, first_idx = np.unique(vp, return_index=True)
        tlb_map = cpu.tlb._map
        frames = np.empty(len(uniq), dtype=np.int64)
        cut = window
        for k, page in enumerate(uniq.tolist()):
            frame = tlb_map.get(page)
            if frame is None:
                first = int(first_idx[k])
                if first < cut:
                    cut = first
                frames[k] = -1
            else:
                frames[k] = frame
        if cut == 0:
            return 0, 0
        if cut < window:
            window = cut
            vp = vp[:window]
        fr = frames[np.searchsorted(uniq, vp)]
        line = fr * self._lpp + seg.lip[pos:pos + window]
        l1 = cpu.hierarchy.l1
        shadow = l1.shadow
        size = len(shadow)
        line_max = int(line.max())
        if line_max < size and line_max < SHADOW_IMAG_OFFSET:
            st = shadow[line]
        else:
            # Mixed / imaginary-frame lines: apply the mirror's index
            # fold (see repro.mem.cache); unmirrorable lines read as 0.
            imag_base = l1.shadow_imag_line
            imag = line >= imag_base
            idx = np.where(imag, line - imag_base + SHADOW_IMAG_OFFSET,
                           line)
            valid = (np.where(imag, idx < (SHADOW_IMAG_OFFSET << 1),
                              line < SHADOW_IMAG_OFFSET)
                     & (idx < size))
            st = np.where(valid, shadow[np.minimum(idx, size - 1)],
                          np.int8(0))
        wmask = seg.wb[pos:pos + window]
        ok = (st > 0) & (~wmask | (st >= 2))
        bad = np.flatnonzero(~ok)
        claimed = int(bad[0]) if bad.size else window
        if claimed == 0:
            return 0, 0
        line = line[:claimed]
        st = st[:claimed]
        wmask = wmask[:claimed]
        vp = vp[:claimed]
        # EXCLUSIVE-state writes take the same write_hit the
        # interpreter takes (repeats are idempotent: no counters).
        for j in np.flatnonzero(wmask & (st == 2)).tolist():
            cpu.hierarchy.write_hit(int(line[j]))
        # L1 LRU: per-hit move_to_end touches collapse to touching each
        # distinct line once, in last-occurrence order — exactly the
        # sequential result.
        rev = line[::-1]
        uline, uidx = np.unique(rev, return_index=True)
        sets = l1._sets
        num_sets = l1.num_sets
        for lid in uline[np.argsort(uidx)[::-1]].tolist():
            sets[lid % num_sets].move_to_end(lid)
        # TLB LRU: only page *transitions* touch the map (the same-page
        # memo path doesn't); same last-occurrence collapse.
        tlb = cpu.tlb
        prev = np.empty_like(vp)
        prev[0] = tlb.last_vpage
        prev[1:] = vp[:-1]
        trans = vp[prev != vp]
        if trans.size:
            upage, pidx = np.unique(trans[::-1], return_index=True)
            for page in upage[np.argsort(pidx)[::-1]].tolist():
                tlb_map.move_to_end(page)
        tlb.hits += claimed
        tlb.last_vpage = int(vp[-1])
        tlb.last_frame = int(fr[claimed - 1])
        l1.hits += claimed
        stats = cpu.stats
        stats.l1_hits += claimed
        stats.references += claimed
        writes = int(np.count_nonzero(wmask))
        stats.writes += writes
        stats.reads += claimed - writes
        if self._obs_access is not None:
            self._obs_access.observe_n(self._lat_l1_hit, claimed)
        return claimed, due


def build_machine(config: "MachineConfig | None" = None,
                  **kwargs) -> Machine:
    """Build the machine ``config.engine`` selects.

    ``"interp"`` (default) gives the per-reference interpreter,
    ``"vector"`` the trace-replay engine; both accept the same keyword
    arguments and produce byte-identical statistics.
    """
    cfg = config if config is not None else MachineConfig()
    if getattr(cfg, "engine", "interp") == "vector":
        return VectorMachine(cfg, **kwargs)
    return Machine(cfg, **kwargs)
