"""Machine-wide coherence invariant checker.

Walks every directory entry, fine-grain tag array, PIT entry and CPU
cache in a machine and cross-checks them.  Used by the integration and
property-based tests (and handy when developing protocol changes):

* ``HOME_EXCL``   — no client node holds a copy; home tags Exclusive.
* ``SHARED``      — no node holds Exclusive tags; no CPU holds the line
  Modified or Exclusive; every node with a copy appears in the sharer
  set (the sharer set may be a superset: stale sharers are legal).
* ``CLIENT_EXCL`` — exactly the owner node holds the line (S-COMA tag
  Exclusive, or cached copies for LA-NUMA frames); no other node has
  any copy.
* at most one CPU machine-wide holds a line Modified, and then no other
  CPU holds any copy of it;
* PIT reverse mappings are consistent with forward mappings;
* node presence sets agree with the CPU caches.
"""

from __future__ import annotations

from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.core.modes import PageMode
from repro.mem.cache import LineState


class InvariantViolation(RuntimeError):
    """A machine-wide coherence invariant failed mid-run.

    Raised by the barrier-release checks installed with
    :func:`install_barrier_checks` (``repro run --check-invariants``
    and the litmus runner).  ``problems`` carries every violation the
    walk found; ``when`` is the simulated release time it fired at.
    """

    def __init__(self, problems: "list[str]", when: int) -> None:
        self.problems = list(problems)
        self.when = when
        preview = "; ".join(self.problems[:3])
        if len(self.problems) > 3:
            preview += "; ... (%d total)" % len(self.problems)
        super().__init__(
            "coherence invariants violated at cycle %d: %s"
            % (when, preview))


def install_barrier_checks(machine) -> None:
    """Run :func:`check_machine` at every barrier release of ``machine``
    and raise :class:`InvariantViolation` on the first failure.

    Barrier releases are the natural checkpoints: every CPU is parked,
    no transaction is mid-flight, so directories, tags, PITs and caches
    must agree machine-wide.
    """

    def hook(release_time: int) -> None:
        problems = check_machine(machine)
        if problems:
            raise InvariantViolation(problems, release_time)

    machine.on_barrier_release(hook)


def check_machine(machine) -> "list[str]":
    """Returns a list of human-readable invariant violations (empty if
    the machine is coherent)."""
    problems: "list[str]" = []
    problems += _check_presence(machine)
    problems += _check_pit_maps(machine)
    problems += _check_directory(machine)
    return problems


def _check_presence(machine) -> "list[str]":
    problems = []
    for node in machine.nodes:
        derived: "dict[int, set[int]]" = {}
        for cpu in node.cpus:
            for cache in (cpu.hierarchy.l1, cpu.hierarchy.l2):
                for line in cache.resident_lines():
                    derived.setdefault(line, set()).add(cpu.local_id)
        recorded = node.presence._holders
        for line, cpus in derived.items():
            if recorded.get(line, set()) != cpus:
                problems.append(
                    "node %d line %d: presence %r != caches %r"
                    % (node.node_id, line, recorded.get(line, set()), cpus))
        for line in recorded:
            if line not in derived:
                problems.append("node %d line %d: stale presence entry"
                                % (node.node_id, line))
    return problems


def _check_pit_maps(machine) -> "list[str]":
    problems = []
    for node in machine.nodes:
        for entry in node.pit.frames():
            if entry.mode.is_global:
                back = node.pit._by_gpage.get(entry.gpage)
                if back != entry.frame:
                    problems.append(
                        "node %d: gpage %d reverse-maps to %r, not frame %d"
                        % (node.node_id, entry.gpage, back, entry.frame))
    return problems


def _node_copy_kind(machine, node, gpage: int, lip: int) -> "tuple[bool, bool, int]":
    """(has_copy, node_exclusive, max_cpu_state) for one node/line."""
    entry = node.pit.by_gpage(gpage, None)
    # by_gpage charges statistics; compensate to keep checks side-effect
    # free for the counters the tests look at.
    node.pit.lookups -= 1
    node.pit.hash_lookups -= 1
    if entry is None:
        return False, False, int(LineState.INVALID)
    line = entry.frame * machine.config.lines_per_page + lip
    max_state = int(LineState.INVALID)
    for cid in node.presence.holders(line):
        state = int(node.cpus[cid].hierarchy.state(line))
        if state > max_state:
            max_state = state
    if entry.tags is not None:
        tag = entry.tags.get(lip)
        has = tag in (Tag.SHARED, Tag.EXCLUSIVE) or max_state > 0
        return has, tag == Tag.EXCLUSIVE, max_state
    return max_state > 0, max_state >= int(LineState.EXCLUSIVE), max_state


def _check_directory(machine) -> "list[str]":
    problems = []
    lpp = machine.config.lines_per_page
    for home in machine.nodes:
        for page in home.directory.pages():
            gpage = page.gpage
            home_entry = home.pit.entry_or_none(page.home_frame)
            if home_entry is None:
                problems.append("home %d: gpage %d has no home PIT entry"
                                % (home.node_id, gpage))
                continue
            for lip in range(lpp):
                dl = page.lines[lip]
                home_tag = (home_entry.tags.get(lip)
                            if home_entry.tags is not None else None)
                holders = []
                modified_cpus = 0
                exclusive_nodes = []
                for node in machine.nodes:
                    if node.node_id == home.node_id:
                        continue
                    has, excl, max_state = _node_copy_kind(
                        machine, node, gpage, lip)
                    if has:
                        holders.append(node.node_id)
                    if excl:
                        exclusive_nodes.append(node.node_id)
                    if max_state == int(LineState.MODIFIED):
                        modified_cpus += 1
                where = "gpage %d line %d (home %d)" % (gpage, lip,
                                                        home.node_id)
                if dl.state == DirState.HOME_EXCL:
                    if holders:
                        problems.append("%s: HOME_EXCL but clients %r hold "
                                        "copies" % (where, holders))
                    if home_tag not in (None, Tag.EXCLUSIVE):
                        problems.append("%s: HOME_EXCL but home tag %s"
                                        % (where, home_tag.name))
                elif dl.state == DirState.SHARED:
                    if exclusive_nodes:
                        problems.append("%s: SHARED but %r exclusive"
                                        % (where, exclusive_nodes))
                    stale = [n for n in holders if n not in dl.sharers]
                    if stale:
                        problems.append("%s: nodes %r hold copies but are "
                                        "not sharers" % (where, stale))
                    if home_tag == Tag.EXCLUSIVE and dl.sharers:
                        problems.append("%s: SHARED with sharers but home "
                                        "tag E" % where)
                elif dl.state == DirState.CLIENT_EXCL:
                    others = [n for n in holders if n != dl.owner]
                    if others:
                        problems.append("%s: CLIENT_EXCL(%d) but %r also "
                                        "hold copies" % (where, dl.owner,
                                                         others))
                    if home_tag == Tag.EXCLUSIVE:
                        problems.append("%s: CLIENT_EXCL but home tag E"
                                        % where)
                if modified_cpus > 1:
                    problems.append("%s: %d CPUs hold the line MODIFIED"
                                    % (where, modified_cpus))
    return problems
