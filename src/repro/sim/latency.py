"""Latency model for the simulated PRISM machine.

All values are in processor cycles, following Table 1 of the paper.  The
paper reports *composite* end-to-end latencies measured by a
memory-latency microbenchmark; the simulator charges *component*
latencies as a transaction walks through the machine (bus, coherence
controller, PIT, directory, network, DRAM).  The component values below
are calibrated so that the composites land on (or near) the paper's
Table 1 numbers.  The derived properties compute the expected composite
values analytically; ``benchmarks/test_table1_latencies.py`` verifies
that the simulator actually produces them.

Table 1 of the paper (for reference):

===============================================  ================
Memory access type                               Latency (cycles)
===============================================  ================
L1 miss, L2 hit                                  12
Uncached, line in local memory                   36
Uncached, line in remote memory                  573
2-party read/write to a modified line            608
3-party read/write to a modified line            866
2-party write to shared line                     608
(3+n)-party write to shared line                 1142 + 80n
TLB miss                                         30
In-core page fault, local home                   2300
In-core page fault, remote home                  4400
===============================================  ================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class LatencyModel:
    """Component latencies (cycles) charged by the simulator.

    The defaults are calibrated against Table 1 of the paper; see the
    ``expected_*`` properties for the resulting composite latencies.
    """

    # Processor-side hierarchy.
    l1_hit: int = 1
    l2_hit: int = 12          # total L1-miss/L2-hit latency (Table 1)
    tlb_miss: int = 30        # hardware TLB reload (Table 1)

    # Node memory bus (split-transaction, fully pipelined).
    bus_request: int = 10     # arbitration + address phase
    bus_data: int = 16        # data phase for one cache line
    local_memory: int = 36    # uncached access satisfied by local DRAM

    # Coherence controller.
    ctrl_dispatch: int = 85   # protocol dispatcher + FSM handler occupancy
    intervention: int = 35    # bus intervention to pull a line from a cache
    inval_issue: int = 80     # per-extra-sharer invalidation issue cost
    writeback_issue: int = 20 # issuing a (non-blocking) write-back

    # Page Information Table.
    pit_access: int = 2       # SRAM PIT lookup (10 for a DRAM PIT, section 4.3)
    pit_hash: int = 20        # reverse translation via hash search

    # Directory (DRAM-backed with a cache).
    dir_cache_hit: int = 2
    dir_cache_miss: int = 22

    # Interconnect.
    net_latency: int = 120    # one-way end-to-end network latency

    # Cache fill at the requester after data returns.
    cache_fill: int = 12

    # Kernel paging costs (charged by the OS layer, not the controller).
    fault_kernel: int = 1950      # kernel fault-handler work at the faulting node
    fault_pit_insert: int = 350   # command-mode PIT/tag installation traffic
    fault_home_kernel: int = 1860 # home-node kernel work for a client page-in
    pageout_kernel: int = 800     # kernel work to page out a client frame
    pageout_per_line: int = 24    # per owned line: tag sweep + write-back issue
    barrier_cost: int = 40        # barrier release overhead per processor
    lock_cost: int = 30           # uncontended lock acquire/release overhead

    def to_dict(self) -> "dict[str, int]":
        """All component latencies as a plain dict (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, int]") -> "LatencyModel":
        """Rebuild a model from :meth:`to_dict` output."""
        return cls(**data)

    # ------------------------------------------------------------------
    # Composite (Table 1) latencies derived from the components.
    # ------------------------------------------------------------------

    @property
    def expected_l2_hit(self) -> int:
        """'L1 miss, L2 hit' row of Table 1."""
        return self.l2_hit

    @property
    def expected_local_memory(self) -> int:
        """'Uncached, line in local memory' row of Table 1."""
        return self.local_memory

    def _request_leg(self) -> int:
        """Client bus + client controller + PIT + network to home."""
        return (self.bus_request + self.ctrl_dispatch + self.pit_access
                + self.net_latency)

    def _response_leg(self) -> int:
        """Network back + client controller + data phase + cache fill."""
        return (self.net_latency + self.ctrl_dispatch + self.bus_data
                + self.cache_fill)

    def _home_base(self, dir_hit: bool = True) -> int:
        """Home controller dispatch + reverse PIT + directory access."""
        dir_cost = self.dir_cache_hit if dir_hit else self.dir_cache_miss
        return self.ctrl_dispatch + self.pit_access + dir_cost

    @property
    def expected_remote_clean(self) -> int:
        """'Uncached, line in remote memory' row of Table 1 (~573)."""
        return (self._request_leg() + self._home_base()
                + self.local_memory + self._response_leg())

    @property
    def expected_2party_modified(self) -> int:
        """'2-party read/write to a modified line' row (~608).

        The home's copy is dirty in a home-node processor cache, so the
        home controller must intervene on its local bus.
        """
        return self.expected_remote_clean + self.intervention

    @property
    def expected_3party_modified(self) -> int:
        """'3-party read/write to a modified line' row (~866).

        The line is dirty at a third node; the home forwards the request
        and the owner supplies the data directly to the requester.  The
        owner is a *client* node, so its reverse translation of the
        global address goes through the PIT hash search (the directory
        does not cache client frame numbers, section 4.1).
        """
        return (self._request_leg() + self._home_base()
                + self.net_latency                       # forward to owner
                + self.ctrl_dispatch + self.pit_hash     # owner controller
                + self.bus_request + self.intervention   # pull from cache
                + self.local_memory + self.bus_data      # line transfer
                + self._response_leg())

    @property
    def expected_2party_write_shared(self) -> int:
        """'2-party write to shared line' row (~608).

        Only the home (and possibly the requester) share the line; the
        home invalidates its own copy via a local intervention before
        granting exclusivity.
        """
        return self.expected_remote_clean + self.intervention

    def expected_write_shared(self, extra_sharers: int) -> int:
        """'(3+n)-party write to shared line' row (~1142 + 80n).

        ``extra_sharers`` is the paper's *n*: sharers beyond the home and
        one remote client.  The home issues invalidations serially and
        the completion waits for the last acknowledgement round-trip.
        """
        base = (self._request_leg() + self._home_base()
                + self.intervention                       # kill home copy
                + self.inval_issue                        # first client inval
                + 2 * self.net_latency                    # inval + ack flight
                + self.ctrl_dispatch + self.pit_hash      # sharer controller
                + self.bus_request                        # sharer bus inval
                + self.ctrl_dispatch                      # home gathers acks
                + self.local_memory                       # supply the data
                + self._response_leg())
        return base + self.inval_issue * extra_sharers

    @property
    def expected_fault_local(self) -> int:
        """'In-core page fault, local home' row (~2300)."""
        return self.fault_kernel + self.fault_pit_insert

    @property
    def expected_fault_remote(self) -> int:
        """'In-core page fault, remote home' row (~4400)."""
        return (self.fault_kernel + self.fault_pit_insert
                + 2 * self.net_latency + self.fault_home_kernel)


def paper_latency_model() -> LatencyModel:
    """The latency model calibrated against Table 1 of the paper."""
    return LatencyModel()


#: Table 1 of the paper, used by tests and EXPERIMENTS.md comparisons.
PAPER_TABLE1 = {
    "l2_hit": 12,
    "local_memory": 36,
    "remote_clean": 573,
    "2party_modified": 608,
    "3party_modified": 866,
    "2party_write_shared": 608,
    "write_shared_base": 1142,
    "write_shared_per_sharer": 80,
    "tlb_miss": 30,
    "fault_local": 2300,
    "fault_remote": 4400,
}
