"""Statistics collected during a simulation run.

The counters here are exactly the quantities the paper reports:

* execution time (cycles of the parallel phase) — Figure 7,
* page frames allocated and per-frame utilization — Table 3,
* remote misses that fetch data from a remote node — Tables 4 and 5,
* client page-outs — Tables 4 and 5,

plus supporting counters (faults, PIT traffic, migrations) used by the
extension experiments.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class NodeStats:
    """Per-node counters."""

    node_id: int

    # Paging.
    page_faults_local_home: int = 0
    page_faults_remote_home: int = 0
    client_page_outs: int = 0
    home_page_outs: int = 0
    mode_demotions: int = 0      # S-COMA frame converted to LA-NUMA mode
    mode_promotions: int = 0     # LA-NUMA page converted back to S-COMA

    # Frames.
    frames_allocated: int = 0            # cumulative distinct allocations
    scoma_client_frames_peak: int = 0    # peak client S-COMA frames in use
    imaginary_frames_allocated: int = 0

    # Coherence.
    remote_misses: int = 0       # misses serviced with data from a remote node
    remote_upgrades: int = 0     # ownership grants that moved no data
    local_misses: int = 0        # misses serviced by local memory/page cache
    writebacks_remote: int = 0   # dirty lines written back to a remote home
    invalidations_received: int = 0
    interventions_received: int = 0

    # PIT.
    pit_lookups: int = 0
    pit_hash_lookups: int = 0

    # Migration (section 3.5).
    homes_migrated_in: int = 0
    forwarded_requests: int = 0

    # Memory firewall (section 3.2).
    wild_writes_blocked: int = 0


@dataclass
class CpuStats:
    """Per-CPU counters."""

    cpu_id: int
    references: int = 0
    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    tlb_misses: int = 0
    barrier_waits: int = 0
    lock_acquires: int = 0
    finish_time: int = 0


@dataclass
class MachineStats:
    """Machine-wide statistics for one run."""

    nodes: "list[NodeStats]" = field(default_factory=list)
    cpus: "list[CpuStats]" = field(default_factory=list)

    #: Execution time of the run = max CPU finish time (cycles).
    execution_cycles: int = 0

    #: (frame-utilization bookkeeping) total allocated frames and, for
    #: each, how many of its lines were ever touched.  Filled in by the
    #: machine at the end of a run.
    frames_allocated_total: int = 0
    touched_line_fraction_sum: float = 0.0

    directory_cache_hits: int = 0
    directory_cache_misses: int = 0

    @property
    def remote_misses(self) -> int:
        """Machine-wide remote misses (Tables 4/5)."""
        return sum(n.remote_misses for n in self.nodes)

    @property
    def client_page_outs(self) -> int:
        """Machine-wide client page-outs (Tables 4/5)."""
        return sum(n.client_page_outs for n in self.nodes)

    @property
    def page_faults(self) -> int:
        """Machine-wide page faults (local + remote home)."""
        return sum(n.page_faults_local_home + n.page_faults_remote_home
                   for n in self.nodes)

    @property
    def average_utilization(self) -> float:
        """Average fraction of touched lines per allocated frame (Table 3)."""
        if not self.frames_allocated_total:
            return 0.0
        return self.touched_line_fraction_sum / self.frames_allocated_total

    @property
    def references(self) -> int:
        """Machine-wide memory references executed."""
        return sum(c.references for c in self.cpus)

    def to_dict(self) -> "dict[str, object]":
        """Every counter as nested plain dicts.

        All fields are ints/floats, so the result survives JSON (and
        pickle) byte-exactly; this is the wire format parallel campaign
        workers return and the result cache stores.  Invert with
        :meth:`from_dict`.
        """
        return {
            "nodes": [asdict(n) for n in self.nodes],
            "cpus": [asdict(c) for c in self.cpus],
            "execution_cycles": self.execution_cycles,
            "frames_allocated_total": self.frames_allocated_total,
            "touched_line_fraction_sum": self.touched_line_fraction_sum,
            "directory_cache_hits": self.directory_cache_hits,
            "directory_cache_misses": self.directory_cache_misses,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "MachineStats":
        """Rebuild machine statistics from :meth:`to_dict` output."""
        return cls(
            nodes=[NodeStats(**n) for n in data["nodes"]],
            cpus=[CpuStats(**c) for c in data["cpus"]],
            execution_cycles=data["execution_cycles"],
            frames_allocated_total=data["frames_allocated_total"],
            touched_line_fraction_sum=data["touched_line_fraction_sum"],
            directory_cache_hits=data["directory_cache_hits"],
            directory_cache_misses=data["directory_cache_misses"],
        )

    def summary(self) -> "dict[str, float]":
        """A flat dict of headline numbers, for reports and tests."""
        return {
            "execution_cycles": self.execution_cycles,
            "references": self.references,
            "remote_misses": self.remote_misses,
            "client_page_outs": self.client_page_outs,
            "page_faults": self.page_faults,
            "frames_allocated": self.frames_allocated_total,
            "average_utilization": round(self.average_utilization, 3),
        }
