"""Operation vocabulary emitted by workload reference generators.

A workload supplies one generator per simulated CPU; each yielded tuple
is one of:

* ``(OP_COMPUTE, cycles)``   — local computation, no memory traffic.
* ``(OP_READ, vaddr)``       — load from a virtual address.
* ``(OP_WRITE, vaddr)``      — store to a virtual address.
* ``(OP_BARRIER, barrier_id)`` — global barrier across all CPUs.
* ``(OP_LOCK, lock_id)``     — acquire a lock (blocks if held).
* ``(OP_UNLOCK, lock_id)``   — release a lock.

Plain integers (not an Enum) keep the hot dispatch loop fast.
"""

OP_COMPUTE = 0
OP_READ = 1
OP_WRITE = 2
OP_BARRIER = 3
OP_LOCK = 4
OP_UNLOCK = 5

OP_NAMES = {
    OP_COMPUTE: "compute",
    OP_READ: "read",
    OP_WRITE: "write",
    OP_BARRIER: "barrier",
    OP_LOCK: "lock",
    OP_UNLOCK: "unlock",
}
