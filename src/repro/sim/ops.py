"""Operation vocabulary emitted by workload reference generators.

A workload supplies one generator per simulated CPU; each yielded tuple
is one of:

* ``(OP_COMPUTE, cycles)``   — local computation, no memory traffic.
* ``(OP_READ, vaddr)``       — load from a virtual address.
* ``(OP_WRITE, vaddr)``      — store to a virtual address.
* ``(OP_BARRIER, barrier_id)`` — global barrier across all CPUs.
* ``(OP_LOCK, lock_id)``     — acquire a lock (blocks if held).
* ``(OP_UNLOCK, lock_id)``   — release a lock.
* ``(OP_READ_RUN, base, stride, count)``  — ``count`` loads from
  ``base, base+stride, ...`` (virtual addresses).
* ``(OP_WRITE_RUN, base, stride, count)`` — the store equivalent.

The run ops are *block* operations: the machine expands them inline in
its dispatch loop, so a strided sweep costs one generator resume (and
one yielded tuple) instead of one per reference, while simulating the
exact same per-reference sequence — including preemption between any
two references of the run when another CPU's clock falls earlier.

Plain integers (not an Enum) keep the hot dispatch loop fast.
"""

OP_COMPUTE = 0
OP_READ = 1
OP_WRITE = 2
OP_BARRIER = 3
OP_LOCK = 4
OP_UNLOCK = 5
OP_READ_RUN = 6
OP_WRITE_RUN = 7

OP_NAMES = {
    OP_COMPUTE: "compute",
    OP_READ: "read",
    OP_WRITE: "write",
    OP_BARRIER: "barrier",
    OP_LOCK: "lock",
    OP_UNLOCK: "unlock",
    OP_READ_RUN: "read_run",
    OP_WRITE_RUN: "write_run",
}


def expand_op(op):
    """Expand one op into its per-reference equivalent (a list of ops).

    Run ops unroll into ``count`` single-reference ops; every other op
    is returned as-is.  Used by analysis tooling and the block-op
    equivalence tests — the machine itself expands runs inline.
    """
    kind = op[0]
    if kind == OP_READ_RUN or kind == OP_WRITE_RUN:
        single = OP_READ if kind == OP_READ_RUN else OP_WRITE
        _, base, stride, count = op
        return [(single, base + i * stride) for i in range(count)]
    return [op]
