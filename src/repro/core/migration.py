"""Lazy page migration (section 3.5).

Each page has a fixed *static home* and a migratable *dynamic home*.
The dynamic home holds the directory and enforces coherence; the static
home tracks where the dynamic home currently is and coordinates
migrations.  Because PRISM's global addresses do not encode node
locations and virtual-to-physical translations are node private, a home
can migrate without invalidating any address translation: clients with
stale PIT information simply have their requests forwarded (old dynamic
home -> static home -> current dynamic home) and learn the new home
from the response.

The migration *policy* here follows the paper's hint (hardware counters
of coherence traffic per page, as in the SGI Origin2000): when a page
has absorbed ``threshold`` remote requests and one remote node issued
the majority of them, the home migrates to that node.
"""

from __future__ import annotations

from repro import obs
from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.core.modes import PageMode
from repro.interconnect.messages import MessageKind


class MigrationManager:
    """Machine-wide coordinator for lazy home migration."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.enabled = machine.config.enable_migration
        self.threshold = machine.config.migration_threshold
        #: gpage -> current dynamic home (kept by each static home; a
        #: single dict because the static home mapping is a pure
        #: function of gpage).
        self.dynamic_home: "dict[int, int]" = {}
        #: Per-page requester counters at the current dynamic home.
        self._requesters: "dict[int, dict[int, int]]" = {}
        #: Migrations decided during a transaction, applied between
        #: references (a directory cannot move mid-transaction).
        self.pending: "list[tuple[int, int]]" = []
        self.migrations = 0

    def home_of(self, gpage: int) -> int:
        """Current dynamic home of ``gpage``."""
        home = self.dynamic_home.get(gpage)
        if home is None:
            return self.machine.static_home_of(gpage)
        return home

    def note_request(self, gpage: int, requester: int, dir_page) -> None:
        """Called by the home controller on every remote request."""
        if not self.enabled:
            return
        counts = self._requesters.setdefault(gpage, {})
        counts[requester] = counts.get(requester, 0) + 1
        total = sum(counts.values())
        if total < self.threshold:
            return
        top_node, top_count = max(counts.items(), key=lambda kv: kv[1])
        counts.clear()
        if top_count * 2 > total and top_node != self.home_of(gpage):
            self.pending.append((gpage, top_node))

    def drain(self) -> None:
        """Apply queued migrations (called between references)."""
        while self.pending:
            gpage, target = self.pending.pop()
            self.migrate(gpage, target)

    def migrate(self, gpage: int, new_home_id: int) -> None:
        """Move the dynamic home of ``gpage`` to ``new_home_id``.

        Coordination involves only the static home and the two dynamic
        homes — no other node is contacted and no translations are
        invalidated (the essence of *lazy* migration).
        """
        machine = self.machine
        old_home_id = self.home_of(gpage)
        if new_home_id == old_home_id:
            return
        old_home = machine.nodes[old_home_id]
        new_home = machine.nodes[new_home_id]
        static_id = machine.static_home_of(gpage)
        machine.nodes[static_id].msglog.record(MessageKind.MIGRATE_REQ, 2)

        dir_page = old_home.directory.remove_page(gpage)
        old_entry = old_home.pit.entry_or_none(dir_page.home_frame)

        # The new home needs a real, tagged frame behind the page.
        new_entry = None
        for entry in (new_home.pit.by_gpage(gpage, None),):
            if entry is not None:
                new_entry = entry
        if new_entry is not None and new_entry.mode == PageMode.LANUMA:
            # Re-back the page with a real frame: page out the imaginary
            # mapping first, then allocate.
            new_home.kernel.page_out_client(new_entry.frame, 0)
            new_entry = None
        if new_entry is None:
            frame = new_home.pools.alloc_real()
            new_entry = new_home.pit.install(
                frame, gpage=gpage, static_home=static_id,
                dynamic_home=new_home_id, home_frame=frame,
                mode=PageMode.SCOMA)
            new_home.stats.frames_allocated += 1
        else:
            # Promote the client S-COMA frame into the home frame.
            new_home.kernel._client_lru.pop(new_entry.frame, None)
            new_home.pools.client_scoma_in_use -= 1
            new_entry.dynamic_home = new_home_id
            new_entry.home_frame = new_entry.frame

        # Transfer line states: the old home becomes an ordinary client.
        new_tags = new_entry.tags
        old_tags = old_entry.tags if old_entry is not None else None
        for lip, dl in enumerate(dir_page.lines):
            if dl.state == DirState.HOME_EXCL:
                # Data moves with the page; old home keeps a shared copy.
                dl.state = DirState.SHARED
                dl.sharers = {old_home_id}
                if old_tags is not None:
                    old_tags.set(lip, Tag.SHARED)
                new_tags.set(lip, Tag.SHARED)
            elif dl.state == DirState.SHARED:
                dl.sharers.add(old_home_id)
                dl.sharers.discard(new_home_id)
                if old_tags is not None:
                    old_tags.set(lip, Tag.SHARED)
                new_tags.set(lip, Tag.SHARED)
            else:  # CLIENT_EXCL
                if dl.owner == new_home_id:
                    # The new home already owns the line exclusively.
                    dl.state = DirState.HOME_EXCL
                    dl.owner = -1
                    new_tags.set(lip, Tag.EXCLUSIVE)
                elif new_tags is not None:
                    new_tags.set(lip, Tag.INVALID)
                if old_tags is not None:
                    old_tags.set(lip, Tag.INVALID)

        # Old home's frame becomes a client S-COMA frame.
        if old_entry is not None:
            old_entry.dynamic_home = new_home_id
            old_entry.home_frame = new_entry.frame
            old_home.kernel._client_lru[old_entry.frame] = None
            old_home.pools.client_scoma_in_use += 1
            dir_page.clients.add(old_home_id)
        dir_page.clients.discard(new_home_id)

        new_home.directory.adopt_page(dir_page, new_entry.frame)
        self.dynamic_home[gpage] = new_home_id
        self._requesters.pop(gpage, None)
        new_home.stats.homes_migrated_in += 1
        machine.nodes[static_id].msglog.record(MessageKind.MIGRATE_ACK, 2)
        self.migrations += 1
        obs.counter("core.migrations").inc()
