"""The PRISM coherence controller (sections 3.1-3.2, 3.4).

One controller per node.  It dispatches on the *mode* of the frame a
bus transaction touches (Figure 4): Local-mode transactions are ignored,
S-COMA transactions consult the fine-grain tags, LA-NUMA transactions
always translate through the PIT and converse with the home node, and
Command-mode transactions carry OS requests.

The controller implements both sides of the inter-node protocol:

* the *client side* (:meth:`fetch`): translate the physical address to
  a global address, route the request to the (possibly stale) dynamic
  home, and complete the bus transaction when data/ownership returns;
* the *home side* (:meth:`home_service`): reverse-translate, walk the
  full-map directory, supply data from home memory, intervene on local
  caches, forward to a third-party owner, or fan out invalidations.

Timing: every step charges the matching component of the
:class:`~repro.sim.latency.LatencyModel` against the real resources
(controller occupancy, buses, memory ports, network interfaces), so
uncontended transactions reproduce Table 1 and contended ones stretch.
"""

from __future__ import annotations

from repro import obs
from repro.obs import tracing
from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.core.modes import PageMode
from repro.interconnect.messages import MessageKind
from repro.mem.cache import LineState
from repro.sim.engine import Resource


class ProtocolError(RuntimeError):
    """An inter-node protocol invariant was violated."""


class NodeFailedError(RuntimeError):
    """The transaction needed a node that has failed.

    PRISM's failure model (section 3.3): each node is an independent
    failure unit; when one fails, "the rest of the nodes may continue
    running, although applications using resources on the failed node
    may be terminated".  A transaction whose home or owner is the dead
    node raises this error — the simulated analogue of terminating the
    affected application — while traffic among surviving nodes is
    untouched, because physical addresses never name remote memory.
    """


class UnreachableNodeError(NodeFailedError):
    """Bounded retransmission gave up on a node.

    Raised by the fault plane (``repro.faults``) when a message stays
    undeliverable after every retry — the destination hard-failed, or a
    partition/drop rule outlasted the :class:`RetryPolicy` budget.  It
    subclasses :class:`NodeFailedError` because that is exactly how the
    protocol treats an unreachable peer: the transaction fails cleanly
    and the survivors keep running.
    """


class WildWriteError(RuntimeError):
    """A remote write was rejected by the PIT memory firewall.

    Section 3.2: every remote access is checked against the PIT, so a
    capability list per entry filters wild writes from faulty nodes —
    the fault-containment property CC-NUMA's global physical addresses
    cannot provide.
    """


class CoherenceController:
    """Coherence controller of one node."""

    def __init__(self, node, machine) -> None:
        self.node = node
        self.machine = machine
        self.lat = machine.config.latency
        self.lpp = machine.config.lines_per_page
        self.resource = Resource("node%d.ctrl" % node.node_id)
        # Hoisted latency components for the per-transaction paths.
        lat = self.lat
        self._lat_dispatch = lat.ctrl_dispatch
        self._lat_dispatch_pit = lat.ctrl_dispatch + lat.pit_access
        self._ni_occ = machine.network.NI_OCCUPANCY
        self._net_flight = lat.net_latency - self._ni_occ
        # Hop-jitter hook, hoisted from the network (set when the
        # machine runs under a schedule perturbation; None keeps the
        # inlined send sites at a single test each).
        self._jitter = machine.network.jitter
        # Fault plane, hoisted likewise: None keeps the inlined send
        # sites; an injector reroutes them through Network.send so every
        # hop is judged (drop/retry/delay/duplicate) exactly once.
        self._faults = getattr(machine, "faults", None)
        # Pre-resolved observability handles (None when disabled, so the
        # protocol paths pay one attribute test each).
        registry = obs.current()
        if registry is not None:
            self._obs_fetch = registry.histogram("core.fetch_latency_cycles")
            self._obs_messages = registry.counter("core.remote_transactions")
        else:
            self._obs_fetch = None
            self._obs_messages = None
        # Causal tracing handle (None when no collector is installed;
        # every span site below pays one pointer test).
        self._tracer = tracing.current()

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------

    def fetch(self, entry, lip: int, want_excl: bool, has_copy: bool,
              now: int) -> int:
        """Run a remote transaction for line ``lip`` of ``entry``'s page.

        ``want_excl`` requests exclusivity (write); ``has_copy`` marks an
        upgrade (the node already holds the data).  The caller has
        already charged the local bus address phase.  Returns the
        completion time at the requesting CPU.
        """
        lat = self.lat
        node = self.node
        machine = self.machine
        gpage = entry.gpage
        tracer = self._tracer
        if entry.tags is not None:
            prior = entry.tags.get(lip)
            entry.tags.set(lip, Tag.TRANSIT)
        else:
            prior = None

        # Client controller dispatch + forward PIT translation.
        # CC-NUMA frames bypass the PIT: the physical address directly
        # identifies the memory location at the home (section 3.2).
        pit_free = entry.mode == PageMode.CCNUMA
        res = self.resource
        occ = self._lat_dispatch if pit_free else self._lat_dispatch_pit
        start = res.next_free if res.next_free > now else now
        if tracer is not None and start > now:
            tracer.add("ctrl_queue", "queue", node.node_id, now, start)
        t = start + occ
        res.next_free = t
        res.busy_cycles += occ
        res.acquisitions += 1
        if not pit_free:
            node.pit.lookups += 1
        if has_copy:
            kind = MessageKind.UPGRADE_REQ
        elif want_excl:
            kind = MessageKind.READ_EXCL_REQ
        else:
            kind = MessageKind.READ_REQ
        sent = node.msglog.sent
        sent[kind] = sent.get(kind, 0) + 1

        # Route to the home, following (possibly stale) dynamic-home
        # info; misdirected requests bounce via the static home
        # (section 3.5).
        home_id = entry.dynamic_home
        true_home = machine.migration.dynamic_home.get(gpage)
        if true_home is None:
            true_home = machine.static_home_of(gpage)
        if true_home in machine.failed_nodes:
            raise NodeFailedError(
                "gpage %d is homed at failed node %d" % (gpage, true_home))
        # Network.send inlined (same NI occupancy + flight arithmetic).
        network = machine.network
        node_id = node.node_id
        if home_id != node_id:
            if self._faults is not None:
                t = self._faults.deliver(network, node_id, home_id, t, kind)
            else:
                sent_at = t
                network.messages += 1
                network.hops_charged += 1
                ni = network.interfaces[node_id]
                start = ni.next_free if ni.next_free > t else t
                injected = start + self._ni_occ
                ni.next_free = injected
                ni.busy_cycles += self._ni_occ
                ni.acquisitions += 1
                t = injected + self._net_flight
                if self._jitter is not None:
                    t += self._jitter()
                if tracer is not None:
                    tracer.add("req:" + kind.name, "network", node_id,
                               sent_at, t, dst=home_id)
        if home_id != true_home:
            t = self._reroute(entry, home_id, true_home, t)
            home_id = true_home
        home = machine.nodes[home_id]

        home_span = (tracer.begin("home_service", "home", home_id, t,
                                  gpage=gpage)
                     if tracer is not None else None)
        t, sender_id, granted_excl = home.controller.home_service(
            requester=node.node_id, gpage=gpage, lip=lip,
            want_excl=want_excl, has_copy=has_copy,
            frame_guess=entry.home_frame, arrival=t, pit_free=pit_free)
        if home_span is not None:
            tracer.end(home_span, t)

        # Cache the home frame number for future fast reverse
        # translation, and the confirmed dynamic home.
        dir_page = home.directory.page(gpage)
        if dir_page is not None:
            entry.home_frame = dir_page.home_frame
        entry.dynamic_home = home_id

        # Response flight + client-side completion (send, dispatch and
        # data phase inlined as in the request path).
        if sender_id != node_id:
            if self._faults is not None:
                t = self._faults.deliver(network, sender_id, node_id, t,
                                         MessageKind.DATA_REPLY)
            else:
                sent_at = t
                network.messages += 1
                network.hops_charged += 1
                ni = network.interfaces[sender_id]
                start = ni.next_free if ni.next_free > t else t
                injected = start + self._ni_occ
                ni.next_free = injected
                ni.busy_cycles += self._ni_occ
                ni.acquisitions += 1
                t = injected + self._net_flight
                if self._jitter is not None:
                    t += self._jitter()
                if tracer is not None:
                    tracer.add("reply:DATA_REPLY", "network", sender_id,
                               sent_at, t, dst=node_id)
        occ = self._lat_dispatch
        start = res.next_free if res.next_free > t else t
        if tracer is not None and start > t:
            tracer.add("ctrl_queue", "queue", node_id, t, start)
        t = start + occ
        res.next_free = t
        res.busy_cycles += occ
        res.acquisitions += 1
        t = node.bus.transfer(t)
        t += lat.cache_fill

        if entry.tags is not None:
            final = Tag.EXCLUSIVE if granted_excl else Tag.SHARED
            if has_copy and not granted_excl:  # pragma: no cover
                final = prior if prior is not None else Tag.SHARED
            entry.tags.set(lip, final)
        if has_copy:
            node.stats.remote_upgrades += 1
        else:
            node.stats.remote_misses += 1
            if entry.mode == PageMode.LANUMA:
                node.kernel.note_lanuma_refetch(entry)
        if self._obs_fetch is not None:
            self._obs_fetch.observe(t - now)
            self._obs_messages.inc()
        return t

    def _reroute(self, entry, stale_home: int, true_home: int, t: int) -> int:
        """Forward a misdirected request to the current dynamic home."""
        lat = self.lat
        machine = self.machine
        stale = machine.nodes[stale_home]
        t = stale.controller.resource.acquire(t, lat.ctrl_dispatch)
        stale.msglog.record(MessageKind.FORWARD)
        self.node.stats.forwarded_requests += 1
        static = entry.static_home
        if static not in (stale_home, true_home):
            t = machine.network.send(stale_home, static, t,
                                     MessageKind.FORWARD)
            static_node = machine.nodes[static]
            t = static_node.controller.resource.acquire(t, lat.ctrl_dispatch)
            static_node.msglog.record(MessageKind.FORWARD)
            t = machine.network.send(static, true_home, t,
                                     MessageKind.FORWARD)
        else:
            t = machine.network.send(stale_home, true_home, t,
                                     MessageKind.FORWARD)
        entry.home_frame = None  # any cached guess is stale
        return t

    # ------------------------------------------------------------------
    # Home side.
    # ------------------------------------------------------------------

    def home_service(self, requester: int, gpage: int, lip: int,
                     want_excl: bool, has_copy: bool,
                     frame_guess: "int | None",
                     arrival: int,
                     pit_free: bool = False) -> "tuple[int, int, bool]":
        """Service a coherence request at this (dynamic home) node.

        Returns ``(data_ready_time, sender_node, granted_exclusive)``;
        the data response departs from ``sender_node`` (the home, or the
        third-party owner for cache-to-cache transfers).  ``pit_free``
        marks CC-NUMA transactions, whose physical addresses identify
        home memory directly and skip the reverse translation.
        """
        lat = self.lat
        node = self.node
        res = self.resource
        occ = self._lat_dispatch
        start = res.next_free if res.next_free > arrival else arrival
        t = start + occ
        res.next_free = t
        res.busy_cycles += occ
        res.acquisitions += 1

        entry = node.pit.by_gpage(gpage, frame_guess)
        if entry is None:
            raise ProtocolError(
                "home node %d has no PIT entry for gpage %d (external "
                "paging must keep home pages resident)" % (node.node_id, gpage))
        if pit_free:
            node.pit.lookups -= 1
            node.pit.hash_lookups -= 1
        elif frame_guess is not None and entry.frame == frame_guess:
            t += lat.pit_access
        else:
            t += lat.pit_hash

        # Memory firewall: the PIT capability check rejects writes from
        # nodes not on the page's writer list (section 3.2).
        if want_excl and not node.pit.write_allowed(entry.frame, requester):
            node.stats.wild_writes_blocked += 1
            obs.counter("core.wild_writes_blocked").inc()
            raise WildWriteError(
                "node %d may not write gpage %d (home %d firewall)"
                % (requester, gpage, node.node_id))

        dir_page = node.directory.page(gpage)
        if dir_page is None:
            raise ProtocolError("no directory for gpage %d at home %d"
                                % (gpage, node.node_id))
        dl = dir_page.lines[lip]
        hit = node.directory.cache.access(gpage, lip)
        t += lat.dir_cache_hit if hit else lat.dir_cache_miss
        dir_page.remote_refs += 1
        migration = self.machine.migration
        if migration.enabled:
            migration.note_request(gpage, requester, dir_page)

        home_tags = entry.tags
        home_line = entry.frame * self.lpp + lip

        if dl.state == DirState.CLIENT_EXCL and dl.owner != requester:
            return self._three_party(dl, dir_page, gpage, lip, want_excl,
                                     requester, home_tags, t)

        if dl.state == DirState.SHARED and want_excl:
            return self._write_to_shared(dl, gpage, lip, requester,
                                         home_tags, home_line, t)

        # Remaining cases: HOME_EXCL, SHARED read, or the defensive
        # CLIENT_EXCL-with-owner==requester case (home memory valid).
        return self._home_supply(dl, lip, want_excl, requester,
                                 home_tags, home_line, t)

    # -- home supplies from its own memory ------------------------------

    def _home_supply(self, dl, lip: int, want_excl: bool, requester: int,
                     home_tags, home_line: int, t: int) -> "tuple[int, int, bool]":
        lat = self.lat
        node = self.node
        if requester == node.node_id:
            # A home CPU re-acquiring its own page's line (tags were
            # Invalid after a client took the line away and returned
            # it, or a defensive re-grant).  Home memory is valid.
            t = node.memory.port.acquire(t, lat.local_memory)
            node.memory.reads += 1
            if want_excl or not dl.sharers:
                if home_tags is not None:
                    home_tags.set(lip, Tag.EXCLUSIVE)
                dl.state = DirState.HOME_EXCL
                dl.owner = -1
                dl.sharers = set()
                return t, node.node_id, True
            if home_tags is not None:
                home_tags.set(lip, Tag.SHARED)
            return t, node.node_id, False
        dirty_cpu = self._local_modified_holder(home_line)
        if dirty_cpu is not None:
            # 2-party access to a modified line: intervene on the home
            # bus to pull the dirty data out of the home CPU's cache.
            t = node.bus.request(t)
            t += lat.intervention - lat.bus_request
            node.stats.interventions_received += 1
            if want_excl:
                self._drop_local_copies(home_line)
            else:
                node.cpus[dirty_cpu].hierarchy.downgrade(home_line)
        elif want_excl:
            # 2-party write to a shared/home line: the home invalidates
            # its own copy before granting exclusivity.
            t += lat.intervention
            self._drop_local_copies(home_line)

        t = node.memory.port.acquire(t, lat.local_memory)
        node.memory.reads += 1
        if dirty_cpu is not None:
            # The pulled dirty data drains to memory from the write
            # buffer after the supply (off the critical path).
            node.memory.write(t)

        if want_excl:
            if home_tags is not None:
                home_tags.set(lip, Tag.INVALID)
            dl.state = DirState.CLIENT_EXCL
            dl.owner = requester
            dl.sharers = set()
            return t, node.node_id, True
        if home_tags is not None:
            home_tags.set(lip, Tag.SHARED)
        if dl.state != DirState.SHARED:
            dl.state = DirState.SHARED
            dl.owner = -1
        # Home CPU copies of an exclusive line become shared.
        for cid in self.node.presence.holders(home_line):
            node.cpus[cid].hierarchy.downgrade(home_line)
        dl.sharers.add(requester)
        return t, node.node_id, False

    # -- 3-party transfer -----------------------------------------------

    def _three_party(self, dl, dir_page, gpage: int, lip: int,
                     want_excl: bool, requester: int,
                     home_tags, t: int) -> "tuple[int, int, bool]":
        lat = self.lat
        machine = self.machine
        owner_id = dl.owner
        if owner_id in machine.failed_nodes:
            raise NodeFailedError(
                "gpage %d line %d is owned by failed node %d"
                % (gpage, lip, owner_id))
        owner = machine.nodes[owner_id]
        self.node.msglog.record(MessageKind.INTERVENTION)

        t = machine.network.send(self.node.node_id, owner_id, t,
                                 MessageKind.INTERVENTION)
        t = owner.controller.resource.acquire(t, lat.ctrl_dispatch)
        owner_entry = owner.pit.by_gpage(gpage, None)
        t += owner.controller._client_reverse_cost(owner_entry)
        if owner_entry is None:
            raise ProtocolError(
                "directory says node %d owns gpage %d line %d but it has "
                "no mapping" % (owner_id, gpage, lip))
        owner.stats.interventions_received += 1

        owner_line = owner_entry.frame * self.lpp + lip
        t = owner.bus.request(t)
        t += lat.intervention
        t = owner.memory.port.acquire(t, lat.local_memory)
        t = owner.bus.transfer(t)

        requester_is_home = requester == self.node.node_id
        if want_excl:
            # Ownership moves to the requester; owner drops everything.
            owner.controller._drop_local_copies(owner_line)
            if owner_entry.tags is not None:
                owner_entry.tags.set(lip, Tag.INVALID)
            owner.stats.invalidations_received += 1
            if requester_is_home:
                dl.state = DirState.HOME_EXCL
                dl.owner = -1
                dl.sharers = set()
                if home_tags is not None:
                    home_tags.set(lip, Tag.EXCLUSIVE)
            else:
                dl.owner = requester
                dl.sharers = set()
            return t, owner_id, True

        # Read: owner keeps a shared copy and writes the dirty data back
        # to the home ("sharing writeback"); home memory becomes valid.
        for cid in owner.presence.holders(owner_line):
            owner.cpus[cid].hierarchy.downgrade(owner_line)
        if owner_entry.tags is not None:
            owner_entry.tags.set(lip, Tag.SHARED)
        owner.msglog.record(MessageKind.WRITEBACK)
        self.node.memory.write(t)  # home memory update, off critical path
        if home_tags is not None:
            home_tags.set(lip, Tag.SHARED)
        dl.state = DirState.SHARED
        dl.sharers = {owner_id}
        if not requester_is_home:
            dl.sharers.add(requester)
        dl.owner = -1
        return t, owner_id, False

    # -- write to a widely shared line ----------------------------------

    def _write_to_shared(self, dl, gpage: int, lip: int, requester: int,
                         home_tags, home_line: int,
                         t: int) -> "tuple[int, int, bool]":
        lat = self.lat
        machine = self.machine
        node = self.node
        requester_is_home = requester == node.node_id

        if not requester_is_home:
            # Invalidate the home's own copy first.
            t += lat.intervention
            self._drop_local_copies(home_line)
            if home_tags is not None:
                home_tags.set(lip, Tag.INVALID)

        # Serialized invalidation issue; acknowledgements gathered.
        # Failed sharers hold no live copies; their invalidations are
        # acknowledged by timeout at the home (no message exchanged).
        sharers = [s for s in dl.sharers
                   if s != requester and s not in machine.failed_nodes]
        dl.sharers.difference_update(machine.failed_nodes)
        issue = t
        last_ack = t
        tracer = self._tracer
        for s in sharers:
            issue = self.resource.acquire(issue, lat.inval_issue)
            node.msglog.record(MessageKind.INVALIDATE)
            inval_span = (tracer.begin("invalidate", "inval",
                                       node.node_id, issue, target=s)
                          if tracer is not None else None)
            arr = machine.network.send(node.node_id, s, issue,
                                       MessageKind.INVALIDATE)
            ack_ready = machine.nodes[s].controller.handle_invalidate(
                gpage, lip, arr)
            ack = machine.network.send(s, node.node_id, ack_ready,
                                       MessageKind.ACK)
            if inval_span is not None:
                tracer.end(inval_span, ack)
            if ack > last_ack:
                last_ack = ack
        if sharers:
            t = self.resource.acquire(last_ack, lat.ctrl_dispatch)

        t = node.memory.port.acquire(t, lat.local_memory)
        node.memory.reads += 1

        if requester_is_home:
            dl.state = DirState.HOME_EXCL
            dl.owner = -1
            if home_tags is not None:
                home_tags.set(lip, Tag.EXCLUSIVE)
        else:
            dl.state = DirState.CLIENT_EXCL
            dl.owner = requester
        dl.sharers = set()
        return t, node.node_id, True

    def handle_invalidate(self, gpage: int, lip: int, arrival: int) -> int:
        """Invalidate this node's copy of a line (home -> sharer).

        Invalidations carry no frame hint, so reverse translation takes
        the PIT hash path (section 4.1).  Returns the ack-ready time.
        """
        lat = self.lat
        node = self.node
        t = self.resource.acquire(arrival, lat.ctrl_dispatch)
        entry = node.pit.by_gpage(gpage, None)
        t += self._client_reverse_cost(entry)
        node.stats.invalidations_received += 1
        node.msglog.record(MessageKind.ACK)
        if entry is None:
            return t  # stale sharer: page already gone locally
        t = node.bus.request(t)
        line = entry.frame * self.lpp + lip
        self._drop_local_copies(line)
        if entry.tags is not None:
            entry.tags.set(lip, Tag.INVALID)
        return t

    # ------------------------------------------------------------------
    # Paging support (called by the kernel).
    # ------------------------------------------------------------------

    def flush_client_page(self, entry, now: int) -> int:
        """Flush a client frame for page-out (section 3.3).

        Invalidates all locally cached lines of the frame, writes
        modified data back to the home, and removes this node from the
        page's directory state.  Returns the number of *owned* lines
        written back (the kernel charges per-line cost for these).
        """
        machine = self.machine
        node = self.node
        gpage = entry.gpage
        home = machine.nodes[machine.dynamic_home_of(gpage)]
        dir_page = home.directory.page(gpage)
        home_entry = (home.pit.entry_or_none(dir_page.home_frame)
                      if dir_page is not None else None)
        home_tags = home_entry.tags if home_entry is not None else None

        owned = 0
        base = entry.frame * self.lpp
        for lip in range(self.lpp):
            line = base + lip
            dirty = self._drop_local_copies(line)
            if dir_page is None:
                continue
            dl = dir_page.lines[lip]
            if entry.tags is not None:
                tag = entry.tags.get(lip)
                if tag == Tag.EXCLUSIVE:
                    owned += 1
                    self._return_line_home(dl, lip, home, home_tags, now)
                elif tag == Tag.SHARED:
                    self._leave_sharers(dl, lip, home_tags)
                entry.tags.set(lip, Tag.INVALID)
            else:
                if dl.state == DirState.CLIENT_EXCL and dl.owner == node.node_id:
                    if dirty:
                        owned += 1
                    self._return_line_home(dl, lip, home, home_tags, now)
                elif node.node_id in dl.sharers:
                    self._leave_sharers(dl, lip, home_tags)
        home.controller.resource.acquire(now, self.lat.ctrl_dispatch)
        return owned

    def _return_line_home(self, dl, lip: int, home, home_tags, now: int) -> None:
        """Write an owned line back to the home; home becomes exclusive."""
        self.node.msglog.record(MessageKind.WRITEBACK)
        self.node.stats.writebacks_remote += 1
        home.memory.write(now)
        dl.state = DirState.HOME_EXCL
        dl.owner = -1
        dl.sharers = set()
        if home_tags is not None:
            home_tags.set(lip, Tag.EXCLUSIVE)

    def _leave_sharers(self, dl, lip: int, home_tags) -> None:
        dl.sharers.discard(self.node.node_id)
        if dl.state == DirState.SHARED and not dl.sharers:
            dl.state = DirState.HOME_EXCL
            dl.owner = -1
            if home_tags is not None:
                home_tags.set(lip, Tag.EXCLUSIVE)

    # ------------------------------------------------------------------
    # Eviction traffic (called by the machine's replacement handling).
    # ------------------------------------------------------------------

    def evict_writeback(self, entry, lip: int, now: int) -> None:
        """A dirty LA-NUMA line left the last local cache: write it back
        to the home.  Posted (off the CPU's critical path); only
        resource occupancy is charged."""
        machine = self.machine
        node = self.node
        home = machine.nodes[machine.dynamic_home_of(entry.gpage)]
        dir_page = home.directory.page(entry.gpage)
        node.msglog.record(MessageKind.WRITEBACK)
        node.stats.writebacks_remote += 1
        arrival = machine.network.send(node.node_id, home.node_id, now,
                                       MessageKind.WRITEBACK)
        home.controller.resource.acquire(arrival, self.lat.writeback_issue)
        home.memory.write(arrival)
        if dir_page is None:
            return
        dl = dir_page.lines[lip]
        if dl.state == DirState.CLIENT_EXCL and dl.owner == node.node_id:
            dl.state = DirState.HOME_EXCL
            dl.owner = -1
            dl.sharers = set()
            home_entry = home.pit.entry_or_none(dir_page.home_frame)
            if home_entry is not None and home_entry.tags is not None:
                home_entry.tags.set(lip, Tag.EXCLUSIVE)

    def replacement_hint(self, entry, lip: int, now: int) -> None:
        """A clean exclusive LA-NUMA line left the last local cache:
        tell the home it owns the line again (home memory is valid)."""
        machine = self.machine
        node = self.node
        home = machine.nodes[machine.dynamic_home_of(entry.gpage)]
        dir_page = home.directory.page(entry.gpage)
        if dir_page is None:
            return
        dl = dir_page.lines[lip]
        if dl.state != DirState.CLIENT_EXCL or dl.owner != node.node_id:
            return
        node.msglog.record(MessageKind.REPLACEMENT_HINT)
        machine.network.send(node.node_id, home.node_id, now,
                             MessageKind.REPLACEMENT_HINT)
        dl.state = DirState.HOME_EXCL
        dl.owner = -1
        dl.sharers = set()
        home_entry = home.pit.entry_or_none(dir_page.home_frame)
        if home_entry is not None and home_entry.tags is not None:
            home_entry.tags.set(lip, Tag.EXCLUSIVE)

    def share_dirty_lanuma(self, entry, lip: int, now: int) -> None:
        """A dirty LA-NUMA line is being shared between sibling CPUs
        (read snarf): with no local memory behind the frame, the data is
        written back to the home and the node keeps shared copies."""
        machine = self.machine
        node = self.node
        home = machine.nodes[machine.dynamic_home_of(entry.gpage)]
        dir_page = home.directory.page(entry.gpage)
        node.msglog.record(MessageKind.WRITEBACK)
        node.stats.writebacks_remote += 1
        home.memory.write(machine.network.send(node.node_id, home.node_id,
                                               now, MessageKind.WRITEBACK))
        if dir_page is None:
            return
        dl = dir_page.lines[lip]
        if dl.state == DirState.CLIENT_EXCL and dl.owner == node.node_id:
            dl.state = DirState.SHARED
            dl.sharers = {node.node_id}
            dl.owner = -1
            home_entry = home.pit.entry_or_none(dir_page.home_frame)
            if home_entry is not None and home_entry.tags is not None:
                home_entry.tags.set(lip, Tag.SHARED)

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------

    def _client_reverse_cost(self, entry) -> int:
        """Reverse-translation cost for a message arriving at a client.

        Normally the hash search (the directory carries no client frame
        numbers, section 4.1); with the section 4.3 mitigation enabled
        (``config.directory_caches_client_frames``) the message carries
        a frame hint and the fast path applies.  CC-NUMA frames skip
        the PIT entirely.
        """
        if entry is not None and entry.mode == PageMode.CCNUMA:
            self.node.pit.lookups -= 1
            self.node.pit.hash_lookups -= 1
            return 0
        if self.machine.config.directory_caches_client_frames:
            self.node.pit.hash_lookups -= 1
            return self.lat.pit_access
        return self.lat.pit_hash

    def _local_modified_holder(self, line: int) -> "int | None":
        """Local CPU (id) holding ``line`` MODIFIED, if any."""
        for cid in self.node.presence.holders(line):
            if self.node.cpus[cid].hierarchy.state(line) == LineState.MODIFIED:
                return cid
        return None

    def _drop_local_copies(self, line: int) -> bool:
        """Invalidate every local CPU copy of ``line``; True if any was
        dirty."""
        node = self.node
        dirty = False
        holders = node.presence.holders(line)
        if holders:
            for cid in list(holders):
                if node.cpus[cid].hierarchy.invalidate(line):
                    dirty = True
            node.presence.drop_line(line)
        return dirty
