"""Fine-grain access tags for S-COMA mode frames (section 3.2).

The coherence controller keeps a two-bit tag for every cache line of a
frame in S-COMA mode.  The tag encodes the *node-level* state of the
line in the local page cache:

* ``T`` (Transit)   — a transaction is in flight; bus retries are
  asserted for any access.
* ``E`` (Exclusive) — this node holds the only copy machine-wide; all
  local accesses proceed under the local bus protocol.
* ``S`` (Shared)    — other nodes may hold copies; local reads proceed,
  local writes stall while the controller obtains exclusivity.
* ``I`` (Invalid)   — any access stalls while the controller obtains a
  copy from the home.

Home-node frames are initialized all-``E`` at page-in; client frames
all-``I``.  The tags also double as the paper's utilization probe: a
line whose tag ever left ``I`` (clients) or was ever accessed (home)
counts as *touched* for Table 3.
"""

from __future__ import annotations

from enum import IntEnum


class Tag(IntEnum):
    """The 2-bit per-line tag states (module docstring)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    TRANSIT = 3


class FineGrainTags:
    """Tag array for one S-COMA frame."""

    __slots__ = ("tags",)

    def __init__(self, lines_per_page: int, initial: Tag = Tag.INVALID) -> None:
        self.tags = bytearray([int(initial)] * lines_per_page)

    def get(self, line_in_page: int) -> Tag:
        """Tag of one line."""
        return Tag(self.tags[line_in_page])

    def set(self, line_in_page: int, tag: Tag) -> None:
        """Set one line's tag."""
        self.tags[line_in_page] = int(tag)

    def count(self, tag: Tag) -> int:
        """Number of lines currently in ``tag`` state (Dyn-Util uses
        the Invalid count to pick demotion victims)."""
        return self.tags.count(int(tag))

    def lines_in(self, tag: Tag) -> "list[int]":
        """Line indices currently in ``tag`` state."""
        value = int(tag)
        return [i for i, t in enumerate(self.tags) if t == value]

    def __len__(self) -> int:
        return len(self.tags)

    def __iter__(self):
        return (Tag(t) for t in self.tags)
