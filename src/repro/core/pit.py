"""The Page Information Table (sections 3.2, 4.1, Figure 5).

Every node's coherence controller owns a PIT with one entry per local
page frame.  An entry records the global page backed by the frame, the
page's home (split into *static* and *dynamic* home for lazy migration,
section 3.5), a cached guess of the frame number at the home, the
frame's mode, the fine-grain tags (S-COMA frames only), and — for the
fault-containment extension — a writer capability list.

Forward translation (physical -> global) is a table lookup at
``pit_access`` cycles.  Reverse translation (global -> physical) uses a
guessed frame number carried in the message when available (requests to
the home carry the home frame number cached in the client's PIT) and
falls back to a hash search at ``pit_hash`` cycles otherwise — exactly
the asymmetry section 4.1 describes: home nodes enjoy the fast path,
invalidations arriving at client nodes take the hash path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.finegrain import FineGrainTags, Tag
from repro.core.modes import PageMode
from repro.kernel.frames import IMAGINARY_BASE


@dataclass
class PitEntry:
    """One Page Information Table entry (Figure 5)."""

    frame: int
    gpage: int
    static_home: int
    dynamic_home: int
    home_frame: "int | None"
    mode: PageMode
    tags: "FineGrainTags | None" = None
    #: Bitmask of lines ever accessed through this frame (Table 3's
    #: page-utilization probe).
    touched: int = 0
    #: Home-page-status flag (section 3.3): while set, faults on this
    #: page need not contact the home again.
    home_status: bool = True
    #: Optional capability list for the memory-firewall extension; None
    #: means "no filtering".
    allowed_writers: "set[int] | None" = None

    def touch(self, line_in_page: int) -> None:
        """Mark a line as accessed (Table 3 utilization probe)."""
        self.touched |= 1 << line_in_page

    def touched_lines(self) -> int:
        """How many distinct lines were ever accessed."""
        return bin(self.touched).count("1")


class PageInformationTable:
    """Per-node PIT with forward and reverse translation."""

    def __init__(self, node_id: int, lines_per_page: int) -> None:
        self.node_id = node_id
        self.lines_per_page = lines_per_page
        self._by_frame: "dict[int, PitEntry]" = {}
        self._by_gpage: "dict[int, int]" = {}   # the "hash table"
        # Dense frame -> entry tables mirroring _by_frame, one per frame
        # number range (real frames count from 0, imaginary frames from
        # IMAGINARY_BASE).  The simulator's per-reference paths resolve
        # frames with a single list index here; the modeled
        # pit_access/pit_hash latencies are charged by the callers as
        # before — this is host-speed bookkeeping only.
        self.dense_real: "list[PitEntry | None]" = []
        self.dense_imag: "list[PitEntry | None]" = []
        self.lookups = 0
        self.hash_lookups = 0

    def _dense_set(self, frame: int, entry: "PitEntry | None") -> None:
        if frame < IMAGINARY_BASE:
            dense = self.dense_real
        else:
            dense = self.dense_imag
            frame -= IMAGINARY_BASE
        if frame >= len(dense):
            dense.extend([None] * (frame + 1 - len(dense)))
        dense[frame] = entry

    # -- installation / removal ----------------------------------------

    def install(self, frame: int, gpage: int, static_home: int,
                dynamic_home: int, home_frame: "int | None",
                mode: PageMode) -> PitEntry:
        """Insert a translation (OS command-mode interface)."""
        if frame in self._by_frame:
            raise KeyError("frame %d already mapped" % frame)
        if mode.is_remote_backed and dynamic_home == self.node_id:
            raise ValueError(
                "%s frames may not be used at the home node (section 3.3)"
                % mode.name)
        tags = None
        if mode == PageMode.SCOMA:
            initial = (Tag.EXCLUSIVE if dynamic_home == self.node_id
                       else Tag.INVALID)
            tags = FineGrainTags(self.lines_per_page, initial)
        entry = PitEntry(frame=frame, gpage=gpage, static_home=static_home,
                         dynamic_home=dynamic_home, home_frame=home_frame,
                         mode=mode, tags=tags)
        self._by_frame[frame] = entry
        self._dense_set(frame, entry)
        if mode.is_global:
            if gpage in self._by_gpage:
                raise KeyError("gpage %d already mapped at node %d"
                               % (gpage, self.node_id))
            self._by_gpage[gpage] = frame
        return entry

    def remove(self, frame: int) -> PitEntry:
        """Remove a translation (page-out / demotion)."""
        entry = self._by_frame.pop(frame)
        self._dense_set(frame, None)
        if entry.mode.is_global:
            self._by_gpage.pop(entry.gpage, None)
        return entry

    # -- translation ---------------------------------------------------

    def by_frame(self, frame: int) -> "PitEntry | None":
        """Forward translation: physical frame -> entry."""
        self.lookups += 1
        return self._by_frame.get(frame)

    def by_gpage(self, gpage: int,
                 guess_frame: "int | None" = None) -> "PitEntry | None":
        """Reverse translation: global page -> entry.

        ``guess_frame`` models the frame-number hint carried in protocol
        messages; a correct guess avoids the hash search (and its extra
        latency, accounted by the caller via :attr:`hash_lookups`).
        """
        self.lookups += 1
        if guess_frame is not None:
            entry = self._by_frame.get(guess_frame)
            if entry is not None and entry.gpage == gpage:
                return entry
        self.hash_lookups += 1
        frame = self._by_gpage.get(gpage)
        if frame is None:
            return None
        return self._by_frame[frame]

    def entry_or_none(self, frame: int) -> "PitEntry | None":
        """Forward lookup without charging a statistics lookup (used by
        bookkeeping paths that model no hardware access)."""
        if frame < IMAGINARY_BASE:
            dense = self.dense_real
        else:
            dense = self.dense_imag
            frame -= IMAGINARY_BASE
        return dense[frame] if frame < len(dense) else None

    def entry_for_gpage(self, gpage: int) -> "PitEntry | None":
        """Reverse lookup without charging a statistics lookup (used by
        kernel bookkeeping, e.g. reattaching to a frame left behind by a
        home migration)."""
        frame = self._by_gpage.get(gpage)
        if frame is None:
            return None
        return self._by_frame[frame]

    def fast_ratio(self) -> float:
        """Fraction of charged lookups that avoided the hash search.

        1.0 when no lookups were charged (nothing was slow).  The
        observability layer publishes this per node at the end of a run
        (``core.pit_fast_ratio`` — the section 4.1/4.3 asymmetry as a
        single number).
        """
        if not self.lookups:
            return 1.0
        return 1.0 - (self.hash_lookups / self.lookups)

    def frames(self) -> "list[PitEntry]":
        """All entries (one per mapped frame)."""
        return list(self._by_frame.values())

    def __len__(self) -> int:
        return len(self._by_frame)

    def __contains__(self, frame: int) -> bool:
        return frame in self._by_frame

    # -- memory firewall (fault-containment extension) ------------------

    def write_allowed(self, frame: int, writer_node: int) -> bool:
        """Check a remote write against the frame's capability list.

        Since every remote access is checked against the PIT anyway, a
        capability list per entry filters wild writes from faulty nodes
        (section 3.2 "memory firewall").
        """
        entry = self._by_frame.get(frame)
        if entry is None:
            return False
        if entry.allowed_writers is None:
            return True
        return writer_node in entry.allowed_writers
