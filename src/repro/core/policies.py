"""Page-mode selection policies (sections 3.3 and 4.2).

A policy decides, per client page fault, whether to back the faulting
global page with an S-COMA frame (local page-cache memory) or a LA-NUMA
frame (imaginary, remote-backed), and what to do when the page cache is
full.  The six policies of the paper's evaluation:

* ``scoma``    — always S-COMA, unbounded page cache (the "optimal"
  configuration: no capacity misses go remote).
* ``lanuma``   — always LA-NUMA at clients (CC-NUMA-like behaviour).
* ``scoma-70`` — S-COMA with the page cache capped (at 70% of the SCOMA
  run's client-frame count); on overflow the LRU client frame is paged
  out (no mode change).
* ``dyn-fcfs`` — S-COMA until the cache fills, LA-NUMA afterwards; no
  page-outs.  Implementable purely in the OS.
* ``dyn-util`` — on overflow, demote the client frame with the most
  Invalid fine-grain tags (a controller query) to LA-NUMA mode and
  reuse its frame.
* ``dyn-lru``  — on overflow, demote the least-recently-used client
  frame to LA-NUMA mode and reuse its frame.

Plus one extension the paper defers to future work (section 4.3):

* ``dyn-bidir`` — ``dyn-lru`` with R-NUMA-style *promotion*: a LA-NUMA
  page that keeps refetching lines from its home is converted back to
  S-COMA mode.

All decisions are node-local: converting a page between modes never
requires coordination with other nodes (the key PRISM property).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.finegrain import Tag
from repro.core.modes import PageMode


@dataclass
class FullCacheAction:
    """What to do when a client fault finds the page cache full."""

    #: "lanuma" (allocate an imaginary frame) or "evict" (page out
    #: ``victim_frame`` first, then allocate S-COMA).
    kind: str
    victim_frame: "int | None" = None
    #: When evicting: also set the victim page's mode to LA-NUMA so its
    #: future faults at this node allocate imaginary frames.
    demote: bool = False


ALLOC_LANUMA = FullCacheAction("lanuma")


class PageModePolicy:
    """Base class; see module docstring for the concrete policies."""

    name = "abstract"
    #: Does this policy ever promote LA-NUMA pages back to S-COMA?
    promotes = False

    def initial_mode(self, kernel, gpage: int) -> PageMode:
        """Desired mode for a faulting client page, before capacity
        checks.  Honors a previous demotion recorded by the kernel."""
        if kernel.page_mode_override.get(gpage) == PageMode.LANUMA:
            return PageMode.LANUMA
        return PageMode.SCOMA

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        raise NotImplementedError

    def decide_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        """Run :meth:`on_cache_full` and publish the outcome as a
        ``core.cache_full_actions{policy,action}`` counter (action is
        "lanuma", "demote", or "evict")."""
        action = self.on_cache_full(kernel, gpage)
        if action.kind == "lanuma":
            outcome = "lanuma"
        elif action.demote:
            outcome = "demote"
        else:
            outcome = "evict"
        obs.counter("core.cache_full_actions",
                    policy=self.name, action=outcome).inc()
        return action

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class ScomaPolicy(PageModePolicy):
    """SCOMA / SCOMA-70: always S-COMA; LRU page-out on overflow."""

    def __init__(self, name: str = "scoma") -> None:
        self.name = name

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        victim = kernel.lru_client_frame()
        if victim is None:
            # No client frame to evict (capacity 0): fall back to
            # LA-NUMA rather than deadlock.
            return ALLOC_LANUMA
        return FullCacheAction("evict", victim_frame=victim, demote=False)


class LanumaPolicy(PageModePolicy):
    """Pure LA-NUMA clients (CC-NUMA-equivalent performance)."""

    name = "lanuma"

    def initial_mode(self, kernel, gpage: int) -> PageMode:
        return PageMode.LANUMA

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        return ALLOC_LANUMA  # pragma: no cover - never S-COMA at clients


class CcnumaPolicy(PageModePolicy):
    """Pure CC-NUMA clients (the section 3.2 extension mode).

    Client frames bypass the PIT: physical addresses directly identify
    memory at the home node.  This recovers a conventional CC-NUMA
    machine — at the price of global physical addresses (no lazy
    migration, no memory firewall for these pages).
    """

    name = "ccnuma"

    def initial_mode(self, kernel, gpage: int) -> PageMode:
        return PageMode.CCNUMA

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        return ALLOC_LANUMA  # pragma: no cover - never S-COMA at clients


class DynFcfsPolicy(PageModePolicy):
    """S-COMA first-come-first-served, LA-NUMA once the cache is full."""

    name = "dyn-fcfs"

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        return ALLOC_LANUMA


class DynUtilPolicy(PageModePolicy):
    """Demote the client frame with the most Invalid fine-grain tags.

    The OS queries the coherence controller for per-frame Invalid-tag
    counts (hardware support the paper calls out); frames with any line
    in Transit are skipped.
    """

    name = "dyn-util"

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        best_frame = None
        best_invalid = -1
        for frame in kernel.client_scoma_frames():
            entry = kernel.pit.entry_or_none(frame)
            if entry is None or entry.tags is None:
                continue
            if entry.tags.count(Tag.TRANSIT):
                continue
            invalid = entry.tags.count(Tag.INVALID)
            if invalid > best_invalid:
                best_invalid = invalid
                best_frame = frame
        if best_frame is None:
            return ALLOC_LANUMA
        return FullCacheAction("evict", victim_frame=best_frame, demote=True)


class DynLruPolicy(PageModePolicy):
    """Demote the least-recently-used client frame to LA-NUMA mode."""

    name = "dyn-lru"

    def on_cache_full(self, kernel, gpage: int) -> FullCacheAction:
        victim = kernel.lru_client_frame()
        if victim is None:
            return ALLOC_LANUMA
        return FullCacheAction("evict", victim_frame=victim, demote=True)


class DynBidirPolicy(DynLruPolicy):
    """``dyn-lru`` plus promotion of refetch-heavy LA-NUMA pages.

    The controller counts remote fetches per LA-NUMA page; when a page
    exceeds ``promote_threshold`` refetches, the kernel clears its
    LA-NUMA override and unmaps it, so the next fault re-maps it in
    S-COMA mode (evicting an LRU victim if needed) — the bidirectional
    adaptation of Falsafi & Wood's R-NUMA, done with purely node-local
    mechanisms.
    """

    name = "dyn-bidir"
    promotes = True

    def __init__(self, promote_threshold: int = 48) -> None:
        self.promote_threshold = promote_threshold


_POLICIES = {
    "scoma": lambda: ScomaPolicy("scoma"),
    "scoma-70": lambda: ScomaPolicy("scoma-70"),
    "lanuma": lambda: LanumaPolicy(),
    "ccnuma": lambda: CcnumaPolicy(),
    "dyn-fcfs": lambda: DynFcfsPolicy(),
    "dyn-util": lambda: DynUtilPolicy(),
    "dyn-lru": lambda: DynLruPolicy(),
    "dyn-bidir": lambda: DynBidirPolicy(),
}

POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(name: str) -> PageModePolicy:
    """Instantiate a policy by its paper name (e.g. ``"dyn-lru"``)."""
    key = name.strip().lower()
    try:
        factory = _POLICIES[key]
    except KeyError:
        raise ValueError("unknown policy %r; choose from %s"
                         % (name, ", ".join(POLICY_NAMES))) from None
    return factory()
