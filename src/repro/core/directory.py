"""Full-map cache-line directory kept at each page's (dynamic) home.

The directory records, per cache line of a globally shared page, which
nodes hold copies and which node (if any) holds the line exclusively.
The paper models the directory as DRAM fronted by an 8K-entry cache
(hit: 2 cycles, miss: 22 cycles); :class:`DirectoryCache` reproduces
that timing split.

Directory state per line:

* ``HOME_EXCL``   — only the home's memory copy is valid (no remote
  copies, although the home node's own CPUs may cache it).
* ``SHARED``      — one or more client nodes (and the home) hold
  read-only copies.
* ``CLIENT_EXCL`` — exactly one client node owns the line, possibly
  dirty; the home memory copy is stale.

Per page, the directory also records the client list used by external
paging (section 3.3) and the reference counters that drive lazy home
migration (section 3.5).
"""

from __future__ import annotations

from collections import OrderedDict
from enum import IntEnum


class DirState(IntEnum):
    """Directory line states (module docstring)."""

    HOME_EXCL = 0
    SHARED = 1
    CLIENT_EXCL = 2


class DirLine:
    """Directory entry for one cache line."""

    __slots__ = ("state", "owner", "sharers")

    def __init__(self) -> None:
        self.state = DirState.HOME_EXCL
        self.owner = -1
        self.sharers: "set[int]" = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DirLine(%s, owner=%d, sharers=%r)" % (
            self.state.name, self.owner, self.sharers)


class DirectoryPage:
    """Directory state for all lines of one global page."""

    __slots__ = ("gpage", "home_frame", "lines", "clients", "remote_refs")

    def __init__(self, gpage: int, home_frame: int, lines_per_page: int) -> None:
        self.gpage = gpage
        self.home_frame = home_frame
        self.lines = [DirLine() for _ in range(lines_per_page)]
        #: Client nodes that have the page mapped (external paging).
        self.clients: "set[int]" = set()
        #: Remote coherence requests serviced for this page; the lazy
        #: migration policy reads this counter (section 3.5).
        self.remote_refs = 0


class DirectoryCache:
    """LRU cache over directory entries, modelling hit/miss timing."""

    __slots__ = ("capacity", "_keys", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._keys: "OrderedDict[tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, gpage: int, line_in_page: int) -> bool:
        """Touch the entry for (gpage, line); returns True on a hit."""
        key = (gpage, line_in_page)
        if key in self._keys:
            self._keys.move_to_end(key)
            self.hits += 1
            return True
        if len(self._keys) >= self.capacity:
            self._keys.popitem(last=False)
        self._keys[key] = None
        self.misses += 1
        return False


class Directory:
    """Per-node directory for the pages homed (dynamically) here."""

    def __init__(self, node_id: int, lines_per_page: int,
                 cache_entries: int) -> None:
        self.node_id = node_id
        self.lines_per_page = lines_per_page
        self._pages: "dict[int, DirectoryPage]" = {}
        self.cache = DirectoryCache(cache_entries)

    def create_page(self, gpage: int, home_frame: int) -> DirectoryPage:
        """Create the directory for a page homed here."""
        if gpage in self._pages:
            raise KeyError("directory for gpage %d already exists" % gpage)
        page = DirectoryPage(gpage, home_frame, self.lines_per_page)
        self._pages[gpage] = page
        return page

    def page(self, gpage: int) -> "DirectoryPage | None":
        """Directory of ``gpage``, if homed here."""
        return self._pages.get(gpage)

    def line(self, gpage: int, line_in_page: int) -> "DirLine | None":
        """One line's directory entry, if the page is homed here."""
        page = self._pages.get(gpage)
        if page is None:
            return None
        return page.lines[line_in_page]

    def remove_page(self, gpage: int) -> DirectoryPage:
        """Detach a page's directory (page-out or home migration)."""
        return self._pages.pop(gpage)

    def adopt_page(self, page: DirectoryPage, home_frame: int) -> None:
        """Install a migrated page's directory at this (new) home."""
        if page.gpage in self._pages:
            raise KeyError("gpage %d already homed here" % page.gpage)
        page.home_frame = home_frame
        self._pages[page.gpage] = page

    def pages(self) -> "list[DirectoryPage]":
        """All pages homed here."""
        return list(self._pages.values())

    def __contains__(self, gpage: int) -> bool:
        return gpage in self._pages

    def __len__(self) -> int:
        return len(self._pages)
