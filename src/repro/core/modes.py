"""Page frame modes (section 3.2 of the paper).

A *mode* is associated with every page frame and dictates how the
coherence controller handles bus transactions touching that frame:

* ``LOCAL``   — private local memory; the controller takes no action.
* ``SCOMA``   — the frame is part of the local page cache for globally
  shared pages; the controller consults 2-bit fine-grain tags per line.
* ``LANUMA``  — an *imaginary* frame that addresses no memory; the
  controller acts as the memory behind it, translating to a global
  address via the PIT and conversing with the home node.
* ``COMMAND`` — memory-mapped command interface between the OS and the
  controller (used for PIT/tag installation during paging).
* ``CCNUMA``  — the optional extension mode of section 3.2: physical
  addresses directly identify memory at the home node, bypassing the
  PIT.  Used by the pure CC-NUMA machine configuration.

The paper encodes the mode either in high-order physical address bits
or in the frame's PIT entry; this model uses the PIT-entry style, which
is what allows a frame's mode to change dynamically.
"""

from __future__ import annotations

from enum import IntEnum


class PageMode(IntEnum):
    """The per-frame modes the controller dispatches on."""

    LOCAL = 0
    SCOMA = 1
    LANUMA = 2
    COMMAND = 3
    CCNUMA = 4

    @property
    def is_global(self) -> bool:
        """Does the mode back a *globally shared* page?"""
        return self in (PageMode.SCOMA, PageMode.LANUMA, PageMode.CCNUMA)

    @property
    def is_real(self) -> bool:
        """Does a frame in this mode occupy *local* physical memory?

        CC-NUMA client frames name memory at the home node directly, so
        like LA-NUMA frames they consume no local memory.
        """
        return self in (PageMode.LOCAL, PageMode.SCOMA)

    @property
    def is_imaginary(self) -> bool:
        """Is this the imaginary (LA-NUMA) frame kind?"""
        return self == PageMode.LANUMA

    @property
    def is_remote_backed(self) -> bool:
        """Is the frame's data held at the (remote) home — i.e. no
        local page-cache copy exists for the controller to consult?"""
        return self in (PageMode.LANUMA, PageMode.CCNUMA)


def parse_mode(name: str) -> PageMode:
    """Parse a mode name like ``"scoma"`` or ``"la-numa"``."""
    key = name.strip().lower().replace("-", "").replace("_", "")
    table = {
        "local": PageMode.LOCAL,
        "scoma": PageMode.SCOMA,
        "lanuma": PageMode.LANUMA,
        "command": PageMode.COMMAND,
        "ccnuma": PageMode.CCNUMA,
    }
    try:
        return table[key]
    except KeyError:
        raise ValueError("unknown page mode %r" % name) from None
