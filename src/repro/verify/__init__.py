"""Protocol conformance subsystem: litmus tests, schedule fuzzing, and
a sequential-consistency checker.

The simulator resolves every memory reference atomically in timestamp
order, so a *correct* machine is sequentially consistent per location:
every read must observe the value of the latest write in resolution
order.  This package turns that into an executable oracle:

* :mod:`repro.verify.litmus`   — a tiny litmus-test DSL (per-CPU
  programs of loads/stores/delays with expected-outcome predicates) and
  the bundled suite covering S-COMA, LA-NUMA, CC-NUMA, sibling
  invalidation, dynamic home migration and page-out races.
* :mod:`repro.verify.tracker`  — the value tap: wraps the machine's
  reference hot path and records every read's *observed* value and
  every write's installed value into an EventSink history.
* :mod:`repro.verify.checker`  — validates a recorded history against
  the legal writes-serialization order.
* :mod:`repro.verify.runner`   — runs litmus tests under bounded
  schedule perturbation (CPU start-time skew + network jitter) with
  machine-wide invariant walks at every barrier.
* :mod:`repro.verify.fuzz`     — a deterministic randomized schedule
  fuzzer with automatic shrinking to a minimal reproducing schedule.
* :mod:`repro.verify.mutations` — protocol mutations (e.g. skip an
  invalidation) used to prove the checkers are not vacuous.
"""

from repro.verify.checker import check_history
from repro.verify.fuzz import FuzzFailure, fuzz, shrink
from repro.verify.litmus import (LITMUS_SUITE, LitmusTest, Thread, delay,
                                 ld, st, suite_by_name)
from repro.verify.mutations import MUTATIONS, apply_mutation
from repro.verify.runner import (LitmusResult, SuiteResult, bounded_schedules,
                                 run_litmus, run_suite)
from repro.verify.tracker import ValueTracker

__all__ = [
    "LITMUS_SUITE", "LitmusTest", "Thread", "ld", "st", "delay",
    "suite_by_name", "ValueTracker", "check_history", "LitmusResult",
    "SuiteResult", "bounded_schedules", "run_litmus", "run_suite",
    "FuzzFailure", "fuzz", "shrink", "MUTATIONS", "apply_mutation",
]
