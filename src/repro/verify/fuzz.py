"""Randomized schedule fuzzing with automatic shrinking.

:func:`fuzz` draws bounded random :class:`SchedulePerturbation`\\ s from
a seeded PRNG and cycles them across the litmus suite — same seed, same
schedules, same verdicts.  When a schedule makes a test fail,
:func:`shrink` greedily minimizes it (zeroing, then halving, entries)
to the smallest schedule that still reproduces the failure, so a bug
report points at the one skew or jitter hop that matters rather than a
wall of random numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.engine import SchedulePerturbation
from repro.verify.litmus import LITMUS_SUITE, LitmusTest
from repro.verify.runner import run_litmus


@dataclass
class FuzzFailure:
    """One reproduced-and-shrunk fuzz failure."""

    test: LitmusTest
    round: int
    schedule: SchedulePerturbation
    shrunk: SchedulePerturbation
    violations: "list[str]"

    def describe(self) -> str:
        text = ("%s (round %d)\n  original: %s\n  shrunk:   %s"
                % (self.test.name, self.round, self.schedule.describe(),
                   self.shrunk.describe()))
        for violation in self.violations:
            text += "\n  %s" % violation
        return text


def fuzz(rounds: int, seed: int,
         tests: "tuple[LitmusTest, ...]" = LITMUS_SUITE,
         max_cpu_skew: int = 2000,
         max_net_jitter: int = 200) -> "list[FuzzFailure]":
    """Run ``rounds`` random schedules across ``tests``; returns the
    failures found, each with a shrunk reproducing schedule."""
    rng = random.Random(seed)
    failures = []
    for i in range(rounds):
        test = tests[i % len(tests)]
        schedule = SchedulePerturbation.random(
            rng, test.num_cpus, max_cpu_skew=max_cpu_skew,
            max_net_jitter=max_net_jitter)
        result = run_litmus(test, schedule)
        if not result.ok:
            failures.append(FuzzFailure(
                test=test, round=i, schedule=schedule,
                shrunk=shrink(test, schedule),
                violations=result.violations))
    return failures


def _fails(test: LitmusTest, schedule: SchedulePerturbation) -> bool:
    schedule.reset()
    return not run_litmus(test, schedule).ok


def _replace(schedule: SchedulePerturbation, kind: str, index: int,
             value: int) -> SchedulePerturbation:
    offsets = list(schedule.cpu_offsets)
    jitter = list(schedule.net_jitter)
    (offsets if kind == "cpu" else jitter)[index] = value
    return SchedulePerturbation(cpu_offsets=offsets, net_jitter=jitter)


def shrink(test: LitmusTest, schedule: SchedulePerturbation,
           max_passes: int = 8) -> SchedulePerturbation:
    """Greedily minimize a failing schedule.

    Each pass first tries to *zero* every nonzero entry (dropping it
    from the schedule entirely), then to *halve* what remains; a change
    is kept only if the test still fails under it.  Passes repeat until
    a fixpoint (or ``max_passes``).  If ``schedule`` does not actually
    fail (a flaky report), it is returned unchanged.
    """
    if not _fails(test, schedule):
        return schedule
    current = schedule
    for _ in range(max_passes):
        changed = False
        for kind, entries in (("cpu", current.cpu_offsets),
                              ("net", current.net_jitter)):
            for index in range(len(entries)):
                value = (current.cpu_offsets if kind == "cpu"
                         else current.net_jitter)[index]
                if value == 0:
                    continue
                for smaller in (0, value // 2):
                    if smaller == value:
                        continue
                    candidate = _replace(current, kind, index, smaller)
                    if _fails(test, candidate):
                        current = candidate
                        changed = True
                        break
        if not changed:
            break
    return current
