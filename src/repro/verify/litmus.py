"""Litmus-test DSL and the bundled conformance suite.

A litmus test is a handful of named shared locations plus short
per-thread programs of loads, stores and delays, with an optional
*forbidden outcome* predicate over the values the loads observed.  The
classic shapes (message passing, store buffering, IRIW, coherence
read-read) all have outcomes that sequential consistency forbids; this
simulator resolves references atomically, so a correct machine must
never produce them — under *any* schedule perturbation.

Execution protocol (see :class:`LitmusWorkload`): every CPU first reads
every location once (the warm-up — it seeds SHARED copies machine-wide,
so a protocol that fails to invalidate leaves detectable stale copies),
then a global barrier, then the thread programs, then a final barrier.
Machine-wide invariants are checked at each barrier release and every
read's observed value is validated against the write serialization —
the forbidden predicates are a third, shape-specific net on top.

The bundled :data:`LITMUS_SUITE` covers S-COMA, LA-NUMA and CC-NUMA
modes, same-page and same-line fine-grain tag interactions, intra-node
sibling invalidation, lazy home migration and page-out pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.ops import OP_COMPUTE, OP_READ, OP_WRITE
from repro.workloads.base import SharedArray, Workload, barrier


def ld(loc: str) -> "tuple[str, str]":
    """A load of location ``loc`` (binds the next register)."""
    return ("ld", loc)


def st(loc: str, value: int) -> "tuple[str, str, int]":
    """A store of ``value`` to location ``loc``.

    ``value`` must be positive: 0 is reserved for the initial value of
    every location.
    """
    if value <= 0:
        raise ValueError("store values must be positive (0 = initial)")
    return ("st", loc, value)


def delay(cycles: int) -> "tuple[str, int]":
    """A local compute delay (widens or shifts the race window)."""
    return ("delay", cycles)


@dataclass(frozen=True)
class Thread:
    """One CPU's program: a tuple of :func:`ld`/:func:`st`/:func:`delay`
    ops, executed in order between the warm-up and final barriers."""

    ops: "tuple[tuple, ...]"

    def __init__(self, *ops) -> None:
        object.__setattr__(self, "ops", tuple(ops))

    @property
    def store_values(self) -> "tuple[int, ...]":
        """Planned store values, in program order."""
        return tuple(op[2] for op in self.ops if op[0] == "st")

    @property
    def num_loads(self) -> int:
        """Loads (= registers) this thread binds."""
        return sum(1 for op in self.ops if op[0] == "ld")


@dataclass(frozen=True)
class LitmusTest:
    """One conformance scenario.

    ``forbidden`` takes the per-thread register tuples (one tuple of
    observed *litmus values* per thread, loads in program order) and
    returns True for an outcome sequential consistency forbids.  Tests
    without a meaningful shape predicate leave it None and rely on the
    generic value checker and invariant walks.

    ``loc_stride`` spaces the locations in the shared segment: one page
    apart by default (each location gets its own directory page and
    home), one line apart for same-page tag interactions, or less for
    same-line false-sharing shapes (those must not use ``forbidden`` —
    register extraction is per coherence unit, not per byte).
    """

    name: str
    description: str
    locations: "tuple[str, ...]"
    threads: "tuple[Thread, ...]"
    forbidden: "object" = None
    policy: str = "scoma"
    num_nodes: int = 4
    cpus_per_node: int = 1
    #: Explicit thread -> cpu_id placement; None spreads one thread per
    #: node (cpu 0 of node 0, cpu 0 of node 1, ...).
    placement: "tuple[int, ...] | None" = None
    #: Byte distance between consecutive locations; None = page_bytes.
    loc_stride: "int | None" = None
    #: MachineConfig field overrides (enable_migration, page caches...).
    config_overrides: "dict" = field(default_factory=dict)

    def __post_init__(self) -> None:
        for thread in self.threads:
            for op in thread.ops:
                if op[0] in ("ld", "st") and op[1] not in self.locations:
                    raise ValueError("%s: unknown location %r"
                                     % (self.name, op[1]))
        if len(self.cpu_of_thread()) != len(set(self.cpu_of_thread())):
            raise ValueError("%s: two threads share a CPU" % self.name)
        if max(self.cpu_of_thread()) >= self.num_cpus:
            raise ValueError("%s: placement exceeds %d CPUs"
                             % (self.name, self.num_cpus))

    @property
    def num_cpus(self) -> int:
        return self.num_nodes * self.cpus_per_node

    def cpu_of_thread(self) -> "tuple[int, ...]":
        """CPU id running each thread."""
        if self.placement is not None:
            return self.placement
        if len(self.threads) <= self.num_nodes:
            return tuple(i * self.cpus_per_node
                         for i in range(len(self.threads)))
        return tuple(range(len(self.threads)))

    def build_config(self) -> MachineConfig:
        """The tiny machine this test runs on."""
        cfg = MachineConfig(
            num_nodes=self.num_nodes,
            cpus_per_node=self.cpus_per_node,
            page_bytes=256,
            line_bytes=32,
            l1=CacheConfig(256, 32, 2),
            l2=CacheConfig(512, 32, 2),
            tlb_entries=8,
            directory_cache_entries=64,
            **self.config_overrides)
        return cfg


class LitmusWorkload(Workload):
    """Drives one :class:`LitmusTest` as a machine workload."""

    def __init__(self, test: LitmusTest) -> None:
        super().__init__()
        self.test = test
        self.name = "litmus:" + test.name
        self.arr = None
        self._addr = {}

    def setup(self, layout, num_cpus: int) -> None:
        test = self.test
        stride = (test.loc_stride if test.loc_stride is not None
                  else test.build_config().page_bytes)
        self.arr = SharedArray(layout, key=0x11734,
                               num_elems=len(test.locations),
                               elem_bytes=stride)
        self._addr = {loc: self.arr.addr(i)
                      for i, loc in enumerate(test.locations)}

    def addr_of(self, loc: str) -> int:
        """Virtual address of a named location (for checkers)."""
        return self._addr[loc]

    def generator(self, cpu_id: int, num_cpus: int):
        test = self.test
        addr = self._addr
        # Warm-up: every CPU reads every location once, seeding SHARED
        # copies machine-wide.  The runner skips these first
        # len(locations) reads per CPU when binding registers.
        for loc in test.locations:
            yield (OP_READ, addr[loc])
        yield barrier(0)
        program = dict(zip(test.cpu_of_thread(), test.threads))
        thread = program.get(cpu_id)
        if thread is not None:
            for op in thread.ops:
                if op[0] == "ld":
                    yield (OP_READ, addr[op[1]])
                elif op[0] == "st":
                    yield (OP_WRITE, addr[op[1]])
                else:
                    yield (OP_COMPUTE, op[1])
        yield barrier(1)


# ---------------------------------------------------------------------------
# The bundled suite.
# ---------------------------------------------------------------------------

def _mp_threads() -> "tuple[Thread, ...]":
    return (Thread(st("x", 1), st("flag", 1)),
            Thread(ld("flag"), ld("x")))


def _mp_forbidden(regs) -> bool:
    return regs[1] == (1, 0)


def _sb_forbidden(regs) -> bool:
    return regs[0] == (0,) and regs[1] == (0,)


def _iriw_forbidden(regs) -> bool:
    return regs[2] == (1, 0) and regs[3] == (1, 0)


def _corr_forbidden(regs) -> bool:
    return regs[1][1] < regs[1][0]


def _sibling_mp_forbidden(regs) -> bool:
    return (1, 0) in (regs[1], regs[2])


def _mp(name: str, policy: str, **kwargs) -> LitmusTest:
    return LitmusTest(
        name=name,
        description="message passing (%s): seeing the flag implies "
                    "seeing the data" % policy,
        locations=("x", "flag"),
        threads=_mp_threads(),
        forbidden=_mp_forbidden,
        policy=policy,
        **kwargs)


def _sb(name: str, policy: str, **kwargs) -> LitmusTest:
    return LitmusTest(
        name=name,
        description="store buffering (%s): both threads cannot miss "
                    "each other's store" % policy,
        locations=("x", "y"),
        threads=(Thread(st("x", 1), ld("y")),
                 Thread(st("y", 1), ld("x"))),
        forbidden=_sb_forbidden,
        policy=policy,
        **kwargs)


def _iriw(name: str, policy: str, **kwargs) -> LitmusTest:
    return LitmusTest(
        name=name,
        description="independent reads of independent writes (%s): the "
                    "two readers must agree on the write order" % policy,
        locations=("x", "y"),
        threads=(Thread(st("x", 1)),
                 Thread(st("y", 1)),
                 Thread(ld("x"), ld("y")),
                 Thread(ld("y"), ld("x"))),
        forbidden=_iriw_forbidden,
        policy=policy,
        **kwargs)


LITMUS_SUITE: "tuple[LitmusTest, ...]" = (
    # Classic shapes, one per page mode.
    _mp("mp_scoma", "scoma"),
    _mp("mp_lanuma", "lanuma"),
    _mp("mp_ccnuma", "ccnuma"),
    _sb("sb_scoma", "scoma"),
    _sb("sb_lanuma", "lanuma"),
    _iriw("iriw_scoma", "scoma"),
    _iriw("iriw_lanuma", "lanuma"),
    LitmusTest(
        name="corr_scoma",
        description="coherence read-read: two reads of one location "
                    "never observe writes out of order",
        locations=("x",),
        threads=(Thread(st("x", 1), delay(120), st("x", 2)),
                 Thread(ld("x"), delay(60), ld("x"))),
        forbidden=_corr_forbidden),
    # Timing-window variants: delays shift the race past the remote
    # fetch latency, so jitter lands hops on both sides of the window.
    LitmusTest(
        name="mp_delay_scoma",
        description="message passing with the store pair and load pair "
                    "pulled apart by compute delays",
        locations=("x", "flag"),
        threads=(Thread(st("x", 1), delay(400), st("flag", 1)),
                 Thread(ld("flag"), delay(150), ld("x"))),
        forbidden=_mp_forbidden),
    LitmusTest(
        name="sb_delay_scoma",
        description="store buffering with asymmetric delays between "
                    "the store and the load",
        locations=("x", "y"),
        threads=(Thread(st("x", 1), delay(250), ld("y")),
                 Thread(st("y", 1), delay(50), ld("x"))),
        forbidden=_sb_forbidden),
    # Fine-grain tag interactions: locations sharing one page (distinct
    # lines) and sharing one line (checker-only — registers are bound
    # per coherence unit, so the shape predicate does not apply).
    LitmusTest(
        name="mp_samepage_scoma",
        description="message passing with data and flag on distinct "
                    "lines of one page (per-line tags, one directory "
                    "page)",
        locations=("x", "flag"),
        threads=_mp_threads(),
        forbidden=_mp_forbidden,
        loc_stride=32),
    LitmusTest(
        name="mp_sameline_scoma",
        description="writer and reader racing on one cache line (false "
                    "sharing; generic value checker only)",
        locations=("x", "flag"),
        threads=_mp_threads(),
        loc_stride=8),
    # Intra-node sibling invalidation: writer and one reader share a
    # node (bus-level _invalidate_siblings), second reader is remote.
    LitmusTest(
        name="sibling_mp_scoma",
        description="message passing against a same-node sibling reader "
                    "and a remote reader",
        locations=("x", "flag"),
        threads=(Thread(st("x", 1), st("flag", 1)),
                 Thread(ld("flag"), ld("x")),
                 Thread(ld("flag"), ld("x"))),
        forbidden=_sibling_mp_forbidden,
        num_nodes=2,
        cpus_per_node=2,
        placement=(0, 1, 2)),
    LitmusTest(
        name="sibling_corw_scoma",
        description="same-node sibling reads a line its neighbour "
                    "rewrites (local bus upgrade path)",
        locations=("x",),
        threads=(Thread(st("x", 1), delay(80), st("x", 2)),
                 Thread(ld("x"), delay(40), ld("x"))),
        forbidden=_corr_forbidden,
        num_nodes=2,
        cpus_per_node=2,
        placement=(0, 1)),
    # Dynamic home migration: one remote node dominates traffic to a
    # page, forcing the home to migrate mid-program while others read
    # (stale-PIT requests exercise static-home forwarding).
    # The home-node writer repeatedly invalidates node 1's copy; node
    # 1's re-fetches dominate the page's requester counters, so the
    # home migrates (and ping-pongs) mid-test.  Node 2 reads late, off
    # a by-then-stale PIT entry, exercising static-home forwarding.
    LitmusTest(
        name="migration_race_scoma",
        description="home writer and remote reader ping-pong a page's "
                    "dynamic home while a third node reads through a "
                    "stale translation",
        locations=("x",),
        threads=(Thread(*[op for v in range(1, 9)
                          for op in (st("x", v), delay(100))]),
                 Thread(*[op for _ in range(8)
                          for op in (ld("x"), delay(100))]),
                 Thread(delay(6000), ld("x"), delay(800), ld("x"))),
        config_overrides={"enable_migration": True,
                          "migration_threshold": 3}),
    LitmusTest(
        name="migration_mp_scoma",
        description="message passing where the data page's home "
                    "migrates toward the polling reader mid-test",
        locations=("x", "flag"),
        threads=(Thread(*([op for v in range(1, 9)
                           for op in (st("x", v), delay(100))]
                          + [st("flag", 1)])),
                 Thread(*([op for _ in range(8)
                           for op in (ld("x"), delay(100))]
                          + [ld("flag"), ld("x")]))),
        forbidden=lambda regs: (regs[1][-2] == 1 and regs[1][-1] != 8),
        config_overrides={"enable_migration": True,
                          "migration_threshold": 3}),
    # Page-out pressure: a one-frame client page cache forces page-outs
    # (flush_client_page write-backs) between every location touch.
    LitmusTest(
        name="pageout_race_scoma",
        description="client page cache of one frame thrashes four "
                    "pages while a writer updates them",
        locations=("a", "b", "c", "d"),
        threads=(Thread(*[op for v in range(2)
                          for loc in ("a", "b", "c", "d")
                          for op in (st(loc, 4 * v + "abcd".index(loc) + 1),
                                     delay(30))]),
                 Thread(*[op for _ in range(2)
                          for loc in ("a", "b", "c", "d")
                          for op in (ld(loc), delay(45))])),
        num_nodes=2,
        config_overrides={"page_cache_frames": 1}),
    LitmusTest(
        name="pageout_mp_scoma",
        description="message passing across a page-out: the flag page "
                    "evicts the data page from the client cache",
        locations=("x", "flag"),
        threads=(Thread(st("x", 1), st("flag", 1)),
                 Thread(ld("flag"), ld("x"))),
        forbidden=_mp_forbidden,
        num_nodes=2,
        config_overrides={"page_cache_frames": 1}),
)


def suite_by_name() -> "dict[str, LitmusTest]":
    """The bundled suite, keyed by test name."""
    return {test.name: test for test in LITMUS_SUITE}
