"""The value tap: observed-value history for every memory reference.

The simulator models timing, not data — caches hold line *states*, not
bytes.  To check coherence we therefore attach a shadow value model to
the reference path and record what each read *would have observed*:

* every write installs a fresh value (a global version number) for its
  line, in resolution order;
* a read that **misses** fetches current data, so it observes the
  line's latest version (and refreshes this CPU's shadow copy);
* a read that **hits** observes whatever version this CPU's copy held
  when it was last filled or written.

In a coherent machine the two cases agree: a cached copy only survives
while no other write intervenes (the protocol invalidates it
otherwise), so every hit observes the latest version too.  A protocol
bug that fails to invalidate (or wrongly serves a local copy) leaves a
CPU hitting a *stale* shadow copy, and the recorded read value diverges
from the latest write — which :func:`repro.verify.checker.check_history`
then flags.

The tap wraps ``Machine._access`` as an *instance* attribute (the same
idiom :class:`repro.sim.trace.TraceRecorder` uses — the machine looks
``_access`` up per ``_run_cpu`` entry precisely so this works) and
costs nothing when not attached.
"""

from __future__ import annotations


class ValueTracker:
    """Record read/write value events of one machine into a sink.

    Attach before ``machine.run`` so every cache fill happens under
    tracking; call :meth:`detach` afterwards.  Keys are *virtual* line
    numbers (``vaddr >> line_shift``) — global across nodes and stable
    across home migration and page-out, unlike physical frames.
    """

    def __init__(self, machine, sink) -> None:
        self.machine = machine
        self.sink = sink
        #: Global write counter; doubles as the value each write
        #: installs, so values are unique and ordered by construction.
        self.version = 0
        #: vline -> version of the latest write (missing = initial 0).
        self.latest: "dict[int, int]" = {}
        #: (cpu_id, vline) -> version this CPU's cached copy holds.
        self.cpu_copy: "dict[tuple[int, int], int]" = {}
        self._line_shift = machine._line_shift
        self._page_shift = machine._page_shift
        self._lpp = machine._lpp
        self._lip_mask = machine._lip_mask
        self._orig_access = machine._access
        machine._access = self._on_access

    def detach(self) -> None:
        """Restore the machine's unwrapped reference path."""
        try:
            del self.machine._access
        except AttributeError:
            pass

    def _on_access(self, cpu, vaddr: int, is_write: bool, now: int) -> int:
        vline = vaddr >> self._line_shift
        if is_write:
            t = self._orig_access(cpu, vaddr, True, now)
            self.version += 1
            version = self.version
            self.latest[vline] = version
            self.cpu_copy[(cpu.cpu_id, vline)] = version
            self.sink.emit("write", time=t, cpu=cpu.cpu_id, vaddr=vaddr,
                           value=version, version=version)
            return t
        # Classify hit/miss BEFORE resolving: the access itself fills
        # the cache, so probing afterwards would call every read a hit.
        # The probe reads the kernel page table and the flat cache dicts
        # directly — no TLB/LRU/counter state is disturbed.
        hit = False
        frame = cpu.node.kernel.page_table.get(vaddr >> self._page_shift)
        if frame is not None:
            line = frame * self._lpp + (vline & self._lip_mask)
            hierarchy = cpu.hierarchy
            hit = (line in hierarchy.l1.flat or line in hierarchy.l2.flat)
        t = self._orig_access(cpu, vaddr, False, now)
        key = (cpu.cpu_id, vline)
        current = self.latest.get(vline, 0)
        if hit:
            observed = self.cpu_copy.get(key, current)
        else:
            observed = current
            self.cpu_copy[key] = current
        self.sink.emit("read", time=t, cpu=cpu.cpu_id, vaddr=vaddr,
                       value=observed, version=observed)
        return t
