"""Per-location sequential-consistency checker over a value history.

Consumes the ``read``/``write`` events a
:class:`~repro.verify.tracker.ValueTracker` recorded into an
:class:`~repro.obs.events.EventSink` and validates them against the one
legal serialization this simulator admits: resolution (event) order.

Soundness: the machine resolves each reference atomically, and a
write-invalidate protocol completes every invalidation within the
resolving call — so under a correct protocol *every* read observes the
latest write in event order.  Any divergence recorded by the tracker is
therefore a real coherence violation (a CPU served a value its copy
should no longer have held), never a benign reordering.
"""

from __future__ import annotations


def check_history(events, line_shift: int) -> "list[str]":
    """Validate a value history; returns violation messages (empty = ok).

    ``events`` is any iterable of event dicts (other kinds are
    ignored); ``line_shift`` is ``log2(line_bytes)`` of the machine
    that produced them, used to group addresses into coherence units.

    Checks, in event order:

    * every read observes the latest write to its line (version 0 — the
      initial value — before any write);
    * write versions are strictly increasing globally (tap integrity:
      a non-monotonic version means the history itself is corrupt).
    """
    problems: "list[str]" = []
    latest: "dict[int, int]" = {}
    last_version = 0
    for event in events:
        kind = event.get("kind")
        if kind == "write":
            version = event["version"]
            if version <= last_version:
                problems.append(
                    "corrupt history: write version %d after %d (seq %d)"
                    % (version, last_version, event.get("seq", -1)))
            last_version = version
            latest[event["vaddr"] >> line_shift] = version
        elif kind == "read":
            vline = event["vaddr"] >> line_shift
            expected = latest.get(vline, 0)
            observed = event["value"]
            if observed != expected:
                problems.append(
                    "stale read: cpu %d observed version %d at vaddr %#x "
                    "(line %d) but the latest write is version %d "
                    "(t=%d, seq %d)"
                    % (event["cpu"], observed, event["vaddr"], vline,
                       expected, event["time"], event.get("seq", -1)))
    return problems
