"""Litmus execution: one test, one schedule, three nets.

:func:`run_litmus` builds the test's tiny machine, attaches the value
tap, installs machine-wide invariant walks at every barrier release,
runs the workload under an optional schedule perturbation, and then
checks three independent oracles:

1. the generic per-location SC checker over the recorded history
   (:func:`repro.verify.checker.check_history`);
2. the coherence invariant walks (directory/tags/PIT/caches agree at
   every barrier — a raised walk is reported, not propagated);
3. the test's shape-specific forbidden-outcome predicate over the
   registers its loads bound.

:func:`bounded_schedules` enumerates a small deterministic set of
perturbations (start-time skews and network jitter patterns) and
:func:`run_suite` runs every test under every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import EventSink
from repro.sim.engine import SchedulePerturbation
from repro.sim.invariants import InvariantViolation, install_barrier_checks
from repro.sim.machine import Machine
from repro.verify.checker import check_history
from repro.verify.litmus import LITMUS_SUITE, LitmusTest, LitmusWorkload
from repro.verify.tracker import ValueTracker


@dataclass
class LitmusResult:
    """Outcome of one litmus test under one schedule."""

    test: LitmusTest
    schedule: "SchedulePerturbation | None"
    violations: "list[str]"
    #: Per-thread tuples of observed litmus values, loads in program
    #: order (empty tuples for threads without loads).
    registers: "tuple[tuple[int, ...], ...]"

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        sched = (self.schedule.describe()
                 if self.schedule is not None else "unperturbed")
        status = "ok" if self.ok else "FAIL"
        text = "%-22s %-4s regs=%r [%s]" % (self.test.name, status,
                                            self.registers, sched)
        for violation in self.violations:
            text += "\n    %s" % violation
        return text


def run_litmus(test: LitmusTest,
               schedule: "SchedulePerturbation | None" = None,
               check_invariants: bool = True) -> LitmusResult:
    """Run one litmus test under one schedule and check all oracles."""
    machine = Machine(test.build_config(), policy=test.policy,
                      schedule=schedule)
    sink = EventSink(capacity=100_000)
    tracker = ValueTracker(machine, sink)
    invariant_problems: "list[str]" = []
    if check_invariants:
        install_barrier_checks(machine)
    workload = LitmusWorkload(test)
    try:
        machine.run(workload)
    except InvariantViolation as exc:
        invariant_problems = exc.problems
    except RuntimeError as exc:
        # Protocol errors and engine deadlocks are conformance failures
        # too — a mutation may crash the machine instead of corrupting
        # values, and the suite must report that, not die.
        invariant_problems = ["machine raised %s: %s"
                              % (type(exc).__name__, exc)]
    finally:
        tracker.detach()

    violations = list(invariant_problems)
    if sink.dropped:
        violations.append("history truncated: %d events dropped"
                          % sink.dropped)
    violations += check_history(sink.events, machine._line_shift)
    registers = _bind_registers(test, sink.events)
    if test.forbidden is not None and not violations:
        if test.forbidden(registers):
            violations.append("forbidden outcome: registers %r"
                              % (registers,))
    return LitmusResult(test=test, schedule=schedule,
                        violations=violations, registers=registers)


def _bind_registers(test: LitmusTest, events) -> "tuple[tuple[int, ...], ...]":
    """Map the recorded history back to per-thread litmus registers.

    The tracker's write values are global version numbers; each CPU's
    writes appear in program order, so the n-th write event of a CPU is
    its thread's n-th planned store — which recovers the version ->
    litmus-value mapping.  Reads bind registers the same way, after
    skipping each CPU's ``len(locations)`` warm-up reads.
    """
    thread_of_cpu = {cpu: i for i, cpu in enumerate(test.cpu_of_thread())}
    value_of = {0: 0}  # version -> litmus value; 0 is the initial value
    writes_seen: "dict[int, int]" = {}
    reads: "dict[int, list[int]]" = {}
    for event in events:
        kind = event.get("kind")
        cpu = event.get("cpu")
        if kind == "write":
            thread = test.threads[thread_of_cpu[cpu]]
            index = writes_seen.get(cpu, 0)
            writes_seen[cpu] = index + 1
            if index < len(thread.store_values):
                value_of[event["version"]] = thread.store_values[index]
        elif kind == "read":
            reads.setdefault(cpu, []).append(event["version"])
    skip = len(test.locations)
    registers = []
    for i, cpu in enumerate(test.cpu_of_thread()):
        observed = reads.get(cpu, [])[skip:]
        registers.append(tuple(value_of.get(v, v) for v in observed))
    return tuple(registers)


def bounded_schedules(num_cpus: int) -> "list[SchedulePerturbation]":
    """A small deterministic set of perturbations for one test.

    Covers: the unperturbed order, forward and reverse CPU start-time
    staggers at two magnitudes (below and above the remote-fetch
    latency), constant and alternating network jitter, and a combined
    skew+jitter schedule.
    """
    def stagger(step):
        return tuple(i * step for i in range(num_cpus))

    def rstagger(step):
        return tuple((num_cpus - 1 - i) * step for i in range(num_cpus))

    return [
        SchedulePerturbation(),
        SchedulePerturbation(cpu_offsets=stagger(137)),
        SchedulePerturbation(cpu_offsets=rstagger(137)),
        SchedulePerturbation(cpu_offsets=stagger(1009)),
        SchedulePerturbation(cpu_offsets=rstagger(1009)),
        SchedulePerturbation(net_jitter=(60,)),
        SchedulePerturbation(net_jitter=(0, 90, 30, 150)),
        SchedulePerturbation(cpu_offsets=stagger(251),
                             net_jitter=(45, 0, 110)),
    ]


@dataclass
class SuiteResult:
    """Every (test, schedule) outcome of one suite run."""

    results: "list[LitmusResult]"

    @property
    def failures(self) -> "list[LitmusResult]":
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        tests = {r.test.name for r in self.results}
        text = ("litmus suite: %d tests x schedules = %d runs, %d failures"
                % (len(tests), len(self.results), len(self.failures)))
        for failure in self.failures:
            text += "\n" + failure.describe()
        return text


def run_suite(tests: "tuple[LitmusTest, ...]" = LITMUS_SUITE,
              explore: bool = True) -> SuiteResult:
    """Run litmus tests; ``explore`` adds the bounded schedule set per
    test (otherwise each runs once, unperturbed)."""
    results = []
    for test in tests:
        schedules = (bounded_schedules(test.num_cpus) if explore
                     else [None])
        for schedule in schedules:
            results.append(run_litmus(test, schedule))
    return SuiteResult(results=results)
