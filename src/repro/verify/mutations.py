"""Protocol mutations: prove the conformance checkers are not vacuous.

Each mutation is a deliberately introduced protocol bug, applied as a
temporary class-level patch inside a context manager.  The self-test
(``tests/verify/test_mutations.py``) asserts that the litmus suite
*fails* under every mutation — if flipping a protocol transition goes
unnoticed, the checkers are decoration, not verification.

The three mutations span the detection mechanisms:

* ``skip-client-invalidate`` — a client node acks a home invalidation
  without actually dropping its copies or clearing its tags.  Readers
  on that node keep hitting the stale copy; the *value checker*
  catches the stale reads.
* ``skip-sibling-invalidate`` — a write no longer invalidates same-node
  sibling CPU caches.  Caught by the value checker (stale sibling
  reads) and by the *invariant walk* (presence/cache disagreement).
* ``skip-tag-invalidate`` — the fine-grain tag array silently ignores
  transitions to Invalid, leaving tags that claim copies the protocol
  revoked.  Primarily caught by the barrier *invariant walk*
  (directory/tag cross-checks).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.controller import CoherenceController
from repro.core.finegrain import FineGrainTags, Tag
from repro.interconnect.messages import MessageKind
from repro.sim.machine import Machine


def _handle_invalidate_no_drop(self, gpage, lip, arrival):
    # Same timing and accounting as the real handler, but the copy
    # survives: no _drop_local_copies, no tag clear.
    lat = self.lat
    node = self.node
    t = self.resource.acquire(arrival, lat.ctrl_dispatch)
    entry = node.pit.by_gpage(gpage, None)
    t += self._client_reverse_cost(entry)
    node.stats.invalidations_received += 1
    node.msglog.record(MessageKind.ACK)
    if entry is None:
        return t
    t = node.bus.request(t)
    return t


def _invalidate_siblings_noop(self, node, cpu, line):
    return None


def _tags_set_ignore_invalid(self, line_in_page, tag):
    if tag == Tag.INVALID:
        return
    self.tags[line_in_page] = int(tag)


#: name -> (class, attribute, replacement)
MUTATIONS: "dict[str, tuple[type, str, object]]" = {
    "skip-client-invalidate": (
        CoherenceController, "handle_invalidate",
        _handle_invalidate_no_drop),
    "skip-sibling-invalidate": (
        Machine, "_invalidate_siblings", _invalidate_siblings_noop),
    "skip-tag-invalidate": (
        FineGrainTags, "set", _tags_set_ignore_invalid),
}


@contextmanager
def apply_mutation(name: str):
    """Apply one named mutation for the duration of the ``with`` block.

    The original method is always restored, even if the block raises.
    """
    try:
        cls, attr, replacement = MUTATIONS[name]
    except KeyError:
        raise ValueError("unknown mutation %r (want one of %s)"
                         % (name, ", ".join(sorted(MUTATIONS)))) from None
    original = getattr(cls, attr)
    setattr(cls, attr, replacement)
    try:
        yield
    finally:
        setattr(cls, attr, original)
