"""Workload characterization.

Analyzes a workload's reference streams *without* running the machine:
footprints, shared fractions, read/write mix, sharing degree (how many
CPUs touch each shared page), and per-CPU balance.  Used by the test
suite to pin down each kernel's character, and useful when designing
new workloads (``python -m repro analyze <workload>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.sim.ops import OP_BARRIER, OP_LOCK, OP_READ, OP_WRITE


@dataclass
class WorkloadProfile:
    """Static profile of one workload at one CPU count."""

    name: str
    num_cpus: int
    page_bytes: int

    references: int = 0
    reads: int = 0
    writes: int = 0
    barriers: int = 0
    lock_acquires: int = 0

    shared_refs: int = 0
    private_refs: int = 0

    #: Distinct pages touched, by kind.
    shared_pages: int = 0
    private_pages: int = 0

    #: Distribution of sharing degree: how many CPUs reference each
    #: shared page (1 = effectively private data placed in a shared
    #: segment, num_cpus = fully shared).
    sharing_histogram: "dict[int, int]" = field(default_factory=dict)

    #: Pages written by more than one CPU (invalidation traffic risk).
    write_shared_pages: int = 0

    #: References of the busiest / laziest CPU (load balance).
    max_cpu_refs: int = 0
    min_cpu_refs: int = 0

    @property
    def shared_fraction(self) -> float:
        """Fraction of references to globally shared pages."""
        if not self.references:
            return 0.0
        return self.shared_refs / self.references

    @property
    def write_fraction(self) -> float:
        """Fraction of references that are stores."""
        if not self.references:
            return 0.0
        return self.writes / self.references

    @property
    def avg_sharing_degree(self) -> float:
        """Mean number of CPUs touching each shared page."""
        total = sum(self.sharing_histogram.values())
        if not total:
            return 0.0
        weighted = sum(degree * count
                       for degree, count in self.sharing_histogram.items())
        return weighted / total

    @property
    def imbalance(self) -> float:
        """max/min per-CPU reference ratio (1.0 = perfectly balanced)."""
        if not self.min_cpu_refs:
            return float("inf")
        return self.max_cpu_refs / self.min_cpu_refs

    def summary(self) -> "dict[str, object]":
        """The headline characterization numbers, flat."""
        return {
            "references": self.references,
            "shared_fraction": round(self.shared_fraction, 3),
            "write_fraction": round(self.write_fraction, 3),
            "shared_pages": self.shared_pages,
            "private_pages": self.private_pages,
            "avg_sharing_degree": round(self.avg_sharing_degree, 2),
            "write_shared_pages": self.write_shared_pages,
            "barriers": self.barriers,
            "lock_acquires": self.lock_acquires,
            "imbalance": round(self.imbalance, 2),
        }


def profile_workload(workload, num_cpus: int = 32,
                     page_bytes: int = 1024,
                     num_nodes: int = 8) -> WorkloadProfile:
    """Build a :class:`WorkloadProfile` by walking the generators."""
    ipc = GlobalIpcServer(num_nodes, page_bytes)
    layout = AddressSpaceLayout(ipc, page_bytes)
    workload.setup(layout, num_cpus)

    profile = WorkloadProfile(name=workload.name, num_cpus=num_cpus,
                              page_bytes=page_bytes)
    page_readers: "dict[int, set[int]]" = {}
    page_writers: "dict[int, set[int]]" = {}
    private_pages: "set[int]" = set()
    per_cpu_refs = []

    for cpu in range(num_cpus):
        refs = 0
        for op in workload.generator(cpu, num_cpus):
            kind = op[0]
            if kind == OP_READ or kind == OP_WRITE:
                refs += 1
                vpage = op[1] // page_bytes
                gpage = layout.gpage_of(vpage)
                if kind == OP_WRITE:
                    profile.writes += 1
                else:
                    profile.reads += 1
                if gpage is None:
                    profile.private_refs += 1
                    private_pages.add(vpage)
                else:
                    profile.shared_refs += 1
                    page_readers.setdefault(gpage, set()).add(cpu)
                    if kind == OP_WRITE:
                        page_writers.setdefault(gpage, set()).add(cpu)
            elif kind == OP_BARRIER:
                if cpu == 0:
                    profile.barriers += 1
            elif kind == OP_LOCK:
                profile.lock_acquires += 1
        per_cpu_refs.append(refs)

    profile.references = sum(per_cpu_refs)
    profile.max_cpu_refs = max(per_cpu_refs)
    profile.min_cpu_refs = min(per_cpu_refs)
    profile.shared_pages = len(page_readers)
    profile.private_pages = len(private_pages)
    for cpus in page_readers.values():
        degree = len(cpus)
        profile.sharing_histogram[degree] = (
            profile.sharing_histogram.get(degree, 0) + 1)
    profile.write_shared_pages = sum(
        1 for writers in page_writers.values() if len(writers) > 1)
    return profile
