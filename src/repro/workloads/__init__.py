"""Application kernels driving the PRISM simulator.

Eight SPLASH-I/II-style kernels (Table 2 of the paper) plus a synthetic
pattern generator and the Table 1 latency microbenchmark.  Each kernel
ships three presets:

* ``paper``   — the paper's exact Table 2 problem sizes, intended for
  the paper-scale machine geometry (``paper_scale_config``); hours of
  simulation in pure Python — use deliberately;
* ``default`` — the scaled problem sizes used to regenerate the paper's
  tables and figures (see DESIGN.md section 2 for the scaling argument);
* ``small``   — a few-seconds variant for quick experiments;
* ``tiny``    — unit-test sized.
"""

from __future__ import annotations

from repro.workloads.barnes import BarnesWorkload
from repro.workloads.base import PrivateArray, SharedArray, Workload
from repro.workloads.fft import FftWorkload
from repro.workloads.lu import LuWorkload
from repro.workloads.mp3d import Mp3dWorkload
from repro.workloads.ocean import OceanWorkload
from repro.workloads.radix import RadixWorkload
from repro.workloads.serving import (SERVING_APPLICATIONS,
                                     KvStoreWorkload, Txn2pcWorkload,
                                     ZipfianStream)
from repro.workloads.water import WaterNsqWorkload, WaterSpatialWorkload

#: Paper order (Figure 7 / Tables 3-5).
APPLICATIONS = ("barnes", "fft", "lu", "mp3d", "ocean", "radix",
                "water-nsq", "water-spa")

#: Paper kernels plus the serving family (kvstore, txn2pc) — the set
#: the CLI's per-workload commands accept.
ALL_APPLICATIONS = APPLICATIONS + SERVING_APPLICATIONS

_PRESETS = {
    "barnes": {
        "paper": lambda: BarnesWorkload(bodies=8192, iterations=4),
        "default": lambda: BarnesWorkload(bodies=2048, iterations=3),
        "small": lambda: BarnesWorkload(bodies=768, iterations=2),
        "tiny": lambda: BarnesWorkload(bodies=64, iterations=1,
                                       cells_per_dim=4),
    },
    "fft": {
        "paper": lambda: FftWorkload(points=65536),
        "default": lambda: FftWorkload(points=16384),
        "small": lambda: FftWorkload(points=4096),
        "tiny": lambda: FftWorkload(points=256),
    },
    "lu": {
        "paper": lambda: LuWorkload(n=512, block=16),
        "default": lambda: LuWorkload(n=256, block=16),
        "small": lambda: LuWorkload(n=128, block=16),
        "tiny": lambda: LuWorkload(n=64, block=8),
    },
    "mp3d": {
        "paper": lambda: Mp3dWorkload(particles=20000, iterations=5),
        "default": lambda: Mp3dWorkload(particles=4096, iterations=5),
        "small": lambda: Mp3dWorkload(particles=2048, iterations=3),
        "tiny": lambda: Mp3dWorkload(particles=256, iterations=2,
                                     cells=(8, 4, 4)),
    },
    "ocean": {
        "paper": lambda: OceanWorkload(grid=258, iterations=10),
        "default": lambda: OceanWorkload(grid=130, iterations=6),
        "small": lambda: OceanWorkload(grid=82, iterations=4),
        "tiny": lambda: OceanWorkload(grid=34, iterations=2),
    },
    "radix": {
        "paper": lambda: RadixWorkload(keys=1 << 20, radix=1024,
                                      key_bits=30),
        "default": lambda: RadixWorkload(keys=65536, radix=256, key_bits=16),
        "small": lambda: RadixWorkload(keys=16384, radix=256, key_bits=16),
        "tiny": lambda: RadixWorkload(keys=2048, radix=64, key_bits=12),
    },
    "water-nsq": {
        "paper": lambda: WaterNsqWorkload(molecules=512, iterations=3),
        "default": lambda: WaterNsqWorkload(molecules=256, iterations=2),
        "small": lambda: WaterNsqWorkload(molecules=128, iterations=2),
        "tiny": lambda: WaterNsqWorkload(molecules=32, iterations=1),
    },
    "water-spa": {
        "paper": lambda: WaterSpatialWorkload(molecules=512, iterations=3),
        "default": lambda: WaterSpatialWorkload(molecules=512, iterations=2),
        "small": lambda: WaterSpatialWorkload(molecules=256, iterations=2),
        "tiny": lambda: WaterSpatialWorkload(molecules=64, iterations=1,
                                             cells_per_dim=2),
    },
    "kvstore": {
        "paper": lambda: KvStoreWorkload(num_keys=16384, num_shards=64,
                                         requests_per_cpu=12000, batches=6),
        "default": lambda: KvStoreWorkload(),
        "small": lambda: KvStoreWorkload(num_keys=1024, num_shards=16,
                                         requests_per_cpu=1200, batches=3),
        "tiny": lambda: KvStoreWorkload(num_keys=192, num_shards=8,
                                        requests_per_cpu=240, batches=3,
                                        churn_interval=64, drift=8),
        "serving": lambda: KvStoreWorkload(num_keys=4096, num_shards=32,
                                           requests_per_cpu=3000, batches=5,
                                           skew=1.1, churn_interval=200,
                                           drift=32),
    },
    "txn2pc": {
        "paper": lambda: Txn2pcWorkload(txns=600),
        "default": lambda: Txn2pcWorkload(),
        "small": lambda: Txn2pcWorkload(txns=64),
        "tiny": lambda: Txn2pcWorkload(txns=24),
        "serving": lambda: Txn2pcWorkload(txns=160, apply_lines=4),
    },
}

#: ``serving`` is the request-serving preset of the serving family
#: (kvstore/txn2pc); the paper kernels reject it like any other
#: unknown preset.
PRESET_NAMES = ("paper", "default", "small", "tiny", "serving")


def make_workload(name: str, preset: str = "default") -> Workload:
    """Instantiate an application kernel by paper name."""
    try:
        presets = _PRESETS[name.strip().lower()]
    except KeyError:
        raise ValueError("unknown workload %r; choose from %s"
                         % (name, ", ".join(ALL_APPLICATIONS))) from None
    try:
        factory = presets[preset]
    except KeyError:
        raise ValueError("unknown preset %r; choose from %s"
                         % (preset, ", ".join(PRESET_NAMES))) from None
    return factory()


__all__ = [
    "ALL_APPLICATIONS", "APPLICATIONS", "PRESET_NAMES",
    "SERVING_APPLICATIONS", "make_workload",
    "Workload", "SharedArray", "PrivateArray",
    "BarnesWorkload", "FftWorkload", "KvStoreWorkload", "LuWorkload",
    "Mp3dWorkload", "OceanWorkload", "RadixWorkload", "Txn2pcWorkload",
    "WaterNsqWorkload", "WaterSpatialWorkload", "ZipfianStream",
]
