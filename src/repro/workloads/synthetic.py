"""Synthetic workload generator.

Parameterized access-pattern kernels for controlled experiments — in
particular the working-set regime study behind the paper's section 6
summary:

    "There is no significant performance difference for working sets
    that fit within the L1/L2 caches.  For working sets larger than the
    L1/L2 caches, S-COMA's page cache acts as a third level cache and
    outperforms LA-NUMA.  For working sets larger than the page cache,
    more paging occurs in S-COMA, and LA-NUMA performs better."

Patterns:

* ``block``    — every CPU repeatedly sweeps its own block of the
  shared array: pure capacity reuse, the S-COMA sweet spot.
* ``random``   — uniform random references over the whole array: sparse
  page touches, the S-COMA memory-consumption worst case.
* ``migratory``— objects are read-modify-written by each CPU in turn:
  ownership migrates, 3-party transfers dominate (and the lazy
  home-migration policy has something to chase).
* ``producer_consumer`` — phase-alternating neighbour pipelines: CPU i
  writes a block that CPU i+1 reads next phase: invalidation traffic.
* ``reuse_vs_stream`` — each iteration alternates a hot reused block
  with a once-through cold stream.  With a constrained page cache the
  stream demotes the hot pages under dyn-lru; the bidirectional policy
  (dyn-bidir) promotes them back — the scenario behind the paper's
  "convert such reuse pages back to S-COMA mode" remark (section 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.sim.ops import OP_READ, OP_WRITE
from repro.workloads.base import (SharedArray, Workload, barrier, coalesce,
                                  compute)

LINE_BYTES = 32

PATTERNS = ("block", "random", "migratory", "producer_consumer",
            "reuse_vs_stream")


class SyntheticWorkload(Workload):
    """A configurable synthetic access pattern over one shared array."""

    name = "synthetic"
    description = "Parameterized synthetic access pattern"
    paper_problem = "n/a (controlled experiment)"

    def __init__(self, pattern: str = "block",
                 shared_kb: int = 256,
                 sweep_fraction: float = 1.0,
                 iterations: int = 4,
                 write_fraction: float = 0.25,
                 refs_per_cpu_per_iter: int = 2000,
                 cycles_per_ref: int = 10,
                 random_order: bool = False,
                 imbalance: float = 0.0,
                 seed: int = 20260704) -> None:
        """``shared_kb`` sizes the shared array; ``sweep_fraction``
        restricts each CPU's working set to a fraction of its share;
        ``write_fraction`` is the store ratio for the block/random
        patterns."""
        super().__init__()
        if pattern not in PATTERNS:
            raise ValueError("unknown pattern %r; choose from %s"
                             % (pattern, ", ".join(PATTERNS)))
        if not 0.0 < sweep_fraction <= 1.0:
            raise ValueError("sweep_fraction must be in (0, 1]")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if imbalance < 0.0:
            raise ValueError("imbalance must be non-negative")
        self.pattern = pattern
        self.shared_kb = shared_kb
        self.sweep_fraction = sweep_fraction
        self.iterations = iterations
        self.write_fraction = write_fraction
        self.refs_per_cpu_per_iter = refs_per_cpu_per_iter
        #: Per-reference compute gap (honoured by the machine); higher
        #: values model compute-bound codes, lower values memory-bound.
        self.cycles_per_ref = cycles_per_ref
        #: Block pattern: visit the working set in random order instead
        #: of sequentially (defeats the cyclic-sweep LRU worst case).
        self.random_order = random_order
        #: Load imbalance for the block pattern: CPU ``i`` performs
        #: ``refs * (1 + imbalance * i / (n - 1))`` references per
        #: iteration, modelling the skewed per-CPU work of real kernels
        #: (boundary rows, pivot columns).  0 keeps the uniform sweep.
        self.imbalance = imbalance
        self.seed = seed
        self.problem = "%s, %d KB shared, %d iterations" % (
            pattern, shared_kb, iterations)

    def setup(self, layout, num_cpus: int) -> None:
        self.num_lines = self.shared_kb * 1024 // LINE_BYTES
        self.array = SharedArray(layout, key=9100, num_elems=self.num_lines,
                                 elem_bytes=LINE_BYTES)
        rng = np.random.RandomState(self.seed)
        builder = getattr(self, "_plan_" + self.pattern)
        #: per-cpu, per-iteration list of (line_index, is_write) arrays.
        self._plans = builder(num_cpus, rng)

    # -- pattern planners -------------------------------------------------

    def _writes(self, rng, count: int) -> np.ndarray:
        return rng.rand(count) < self.write_fraction

    def _plan_block(self, num_cpus, rng):
        per_cpu = self.num_lines // num_cpus
        span = max(1, int(per_cpu * self.sweep_fraction))
        plans = []
        for cpu in range(num_cpus):
            refs = self.refs_per_cpu_per_iter
            if self.imbalance and num_cpus > 1:
                refs = int(refs * (1.0 + self.imbalance * cpu
                                   / (num_cpus - 1)))
            base = cpu * per_cpu
            iters = []
            for _ in range(self.iterations):
                if self.random_order:
                    idx = base + rng.randint(0, span, refs)
                else:
                    idx = base + (np.arange(refs) % span)
                iters.append((idx, self._writes(rng, refs)))
            plans.append(iters)
        return plans

    def _plan_random(self, num_cpus, rng):
        refs = self.refs_per_cpu_per_iter
        plans = []
        for cpu in range(num_cpus):
            plans.append([(rng.randint(0, self.num_lines, refs),
                           self._writes(rng, refs))
                          for _ in range(self.iterations)])
        return plans

    def _plan_migratory(self, num_cpus, rng):
        # A pool of "objects" (4 lines each); each iteration every CPU
        # read-modify-writes the objects of a rotating slice, so every
        # object is owned by each CPU in turn.
        obj_lines = 4
        num_objects = self.num_lines // obj_lines
        per_cpu = max(1, num_objects // num_cpus)
        refs = per_cpu * obj_lines
        plans = []
        for cpu in range(num_cpus):
            iters = []
            for it in range(self.iterations):
                slice_id = (cpu + it) % num_cpus
                objs = np.arange(per_cpu) + slice_id * per_cpu
                lines = (objs[:, None] * obj_lines
                         + np.arange(obj_lines)).ravel() % self.num_lines
                # RMW: every reference pair is a read then a write.
                iters.append((np.repeat(lines, 2),
                              np.tile([False, True], refs)))
            plans.append(iters)
        return plans

    def _plan_producer_consumer(self, num_cpus, rng):
        per_cpu = self.num_lines // num_cpus
        span = max(1, int(per_cpu * self.sweep_fraction))
        plans = []
        for cpu in range(num_cpus):
            own = cpu * per_cpu + (np.arange(span))
            upstream = ((cpu - 1) % num_cpus) * per_cpu + np.arange(span)
            iters = []
            for it in range(self.iterations):
                if it % 2 == 0:
                    iters.append((own, np.ones(span, dtype=bool)))   # produce
                else:
                    iters.append((upstream, np.zeros(span, dtype=bool)))
            plans.append(iters)
        return plans

    def _plan_reuse_vs_stream(self, num_cpus, rng):
        per_cpu = self.num_lines // num_cpus
        hot_span = max(1, per_cpu // 4)
        refs = self.refs_per_cpu_per_iter
        plans = []
        for cpu in range(num_cpus):
            base = cpu * per_cpu
            hot = base + (np.arange(refs) % hot_span)
            stream = base + hot_span + (np.arange(per_cpu - hot_span))
            iters = []
            for it in range(self.iterations):
                if it % 2 == 0:
                    iters.append((hot, self._writes(rng, refs)))
                else:
                    iters.append((stream,
                                  np.zeros(len(stream), dtype=bool)))
            plans.append(iters)
        return plans

    # -- generator ---------------------------------------------------------

    def generator(self, cpu_id: int, num_cpus: int):
        array = self.array
        vbase = array.vbase
        elem = array.elem_bytes
        bid = 0
        for lines, writes in self._plans[cpu_id]:
            # Fuse each iteration's plan into constant-stride run ops;
            # coalesce() expands back to exactly the per-line sequence,
            # so the reference stream (and stats) are unchanged.
            yield from coalesce(
                (OP_WRITE if write else OP_READ, vbase + line * elem)
                for line, write in zip(lines.tolist(), writes.tolist()))
            yield compute(50)
            yield barrier(bid)
            bid += 1
