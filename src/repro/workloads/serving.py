"""Serving-shaped workloads: sharded KV store and 2PC transactions.

The SPLASH kernels exercise the page-mode policies under scientific
access patterns — dense sweeps, stencils, N-body traversals.  Nothing
in that family looks like the request-serving traffic the ROADMAP's
north star cares about, so this module adds two workloads with
serving-shaped structure:

* :class:`KvStoreWorkload` (``kvstore``) — a sharded key-value/session
  store laid out over per-shard shared segments, driven by a seeded
  Zipfian request generator (:class:`ZipfianStream`) with hot-key churn
  and rolling working-set drift.  Every client CPU issues get/put
  requests against shards home-placed across the machine's nodes,
  stressing migration and demotion policies with skewed, drifting
  popularity instead of SPLASH's uniform reuse.
* :class:`Txn2pcWorkload` (``txn2pc``) — a coordinator + data-node
  two-phase-commit workload: per transaction, the coordinator writes a
  prepare record under a lock, participants vote, the coordinator
  collects votes and writes the commit decision, and participants apply
  the transaction to their data shards under per-node locks.  In chaos
  campaigns the decision broadcast additionally rides the command-mode
  message channels (:class:`TwoPhaseChannelDriver`), so fault plans
  that drop ``command`` messages exercise real 2PC failure modes, and
  per-transaction outcomes recorded through the value tap let the SC
  checker plus :meth:`Txn2pcScenario.check` judge atomicity.

Both workloads are plain op-stream kernels — their generators go
through :func:`~repro.workloads.base.coalesce_stream` and contain only
the standard op vocabulary — so they run unchanged on the interpreter
and the vector engine and join the golden stats matrix.

Serving metrics come from :class:`ServingTap`: when a metrics registry
is installed the workloads bind a tap over ``Machine._access`` (the
:class:`~repro.verify.tracker.ValueTracker` idiom) that measures each
request's simulated latency first-access-to-last-completion and
publishes ``serving.request_latency_cycles{op=...}`` histograms,
``serving.requests{op=...}`` counters and a cumulative
``serving.completed_requests`` time series (the throughput curve —
its slope before/during/after an injected node failure is the
degradation story).  With no registry installed nothing attaches and
runs are byte-identical to an untapped machine.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.workloads.base import (SharedArray, Workload, barrier,
                                  coalesce_stream, compute, lock, unlock)

LINE_BYTES = 32

#: Serving workload names (kept separate from the paper's eight
#: applications; ``repro.workloads`` re-exports this).
SERVING_APPLICATIONS = ("kvstore", "txn2pc")


class ZipfianStream:
    """A seeded Zipfian key stream with hot-key churn and drift.

    Requests draw a popularity *rank* by CDF inversion over Zipf
    weights ``1 / (rank+1)**skew`` (rank 0 is the hottest), then map
    the rank to a key through a seed-derived permutation shifted by a
    rolling offset: every ``churn_interval`` requests the whole hot set
    slides ``drift`` keys forward (mod ``num_keys``), modelling session
    churn and working-set drift without ever leaving the key space.

    Determinism: two streams with the same seed draw the same uniforms
    and the same permutation regardless of ``skew``, so raising the
    skew can only lower each request's rank — mass concentrates
    monotonically (the property tests lean on this).
    """

    def __init__(self, num_keys: int, skew: float = 0.99,
                 churn_interval: int = 0, drift: int = 0,
                 seed: int = 0) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if skew < 0.0:
            raise ValueError("skew must be >= 0")
        if churn_interval < 0 or drift < 0:
            raise ValueError("churn_interval and drift must be >= 0")
        self.num_keys = num_keys
        self.skew = skew
        self.churn_interval = churn_interval
        self.drift = drift
        self.seed = seed
        weights = 1.0 / np.arange(1, num_keys + 1, dtype=np.float64) ** skew
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._perm = np.random.RandomState(seed).permutation(num_keys)
        self._uniforms = np.random.RandomState(seed)
        self._drawn = 0

    def ranks(self, count: int) -> np.ndarray:
        """Popularity ranks (0 = hottest) of the next ``count``
        requests; advances the stream exactly like :meth:`sample`."""
        u = self._uniforms.random_sample(count)
        return np.searchsorted(self._cdf, u, side="left")

    def sample(self, count: int) -> np.ndarray:
        """Keys of the next ``count`` requests, churn/drift applied.
        Every key is in ``[0, num_keys)`` by construction."""
        start = self._drawn
        ranks = self.ranks(count)
        self._drawn = start + count
        if self.churn_interval and self.drift:
            epoch = (np.arange(start, start + count) // self.churn_interval)
        else:
            epoch = np.zeros(count, dtype=np.int64)
        return (self._perm[ranks] + epoch * self.drift) % self.num_keys


class ServingTap:
    """Per-request latency/throughput metrics over ``Machine._access``.

    ``schedules[cpu]`` is that CPU's request plan as ``(kind,
    accesses)`` pairs, in issue order; the tap counts the CPU's
    references against the plan and, when a request's last access
    resolves, observes ``completion - first_access_issue`` into
    ``serving.request_latency_cycles{op=kind}`` and samples the
    cumulative completed-request count into
    ``serving.completed_requests``.  Wrapping ``_access`` as an
    instance attribute is the :class:`~repro.verify.tracker
    .ValueTracker` idiom — the machine re-reads the attribute per
    scheduler turn precisely so taps can stack.
    """

    def __init__(self, machine, schedules) -> None:
        registry = obs.current()
        if registry is None:
            raise RuntimeError("ServingTap needs an installed registry")
        self.machine = machine
        self._schedules = schedules
        n = len(machine.cpus)
        self._pos = [0] * n
        self._left = [schedules[c][0][1] if schedules[c] else 0
                      for c in range(n)]
        self._begin = [-1] * n
        self._registry = registry
        self._hist = {}
        self._counter = {}
        self._series = registry.series("serving.completed_requests")
        self._completed = 0
        self._orig_access = machine._access
        machine._access = self._on_access

    def _on_access(self, cpu, vaddr: int, is_write: bool, now: int) -> int:
        done = self._orig_access(cpu, vaddr, is_write, now)
        cid = cpu.cpu_id
        sched = self._schedules[cid]
        pos = self._pos[cid]
        if pos >= len(sched):
            return done
        if self._begin[cid] < 0:
            self._begin[cid] = now
        left = self._left[cid] - 1
        if left:
            self._left[cid] = left
            return done
        kind = sched[pos][0]
        hist = self._hist.get(kind)
        if hist is None:
            hist = self._hist[kind] = self._registry.histogram(
                "serving.request_latency_cycles", op=kind)
            self._counter[kind] = self._registry.counter(
                "serving.requests", op=kind)
        hist.observe(done - self._begin[cid])
        self._counter[kind].inc()
        self._completed += 1
        self._series.sample(done, self._completed)
        pos += 1
        self._pos[cid] = pos
        self._begin[cid] = -1
        self._left[cid] = sched[pos][1] if pos < len(sched) else 0
        return done

    def close(self) -> None:
        """Publish totals; leaves any later wraps untouched."""
        self._registry.gauge("serving.requests_total").set(self._completed)


class KvStoreWorkload(Workload):
    """Sharded key-value/session store under Zipfian request traffic.

    Keys hash to ``key % num_shards``; each shard is its own shared
    segment (so shards home-place across nodes) holding
    ``value_lines`` cache lines per value slot.  A request reads the
    shard's index line, then reads (get) or writes (put) the value's
    lines; requests are issued in ``batches`` separated by barriers
    (the serving epochs the utilization series samples at).
    """

    name = "kvstore"
    description = "Sharded KV/session store, Zipfian gets/puts"
    paper_problem = "n/a (serving extension)"

    def __init__(self, num_keys: int = 4096, num_shards: int = 32,
                 value_lines: int = 2, requests_per_cpu: int = 4000,
                 batches: int = 4, get_fraction: float = 0.8,
                 skew: float = 0.99, churn_interval: int = 256,
                 drift: int = 16, cycles_per_ref: int = 6,
                 seed: int = 20260809) -> None:
        super().__init__()
        if num_keys < num_shards:
            raise ValueError("need at least one key per shard")
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        if batches < 1 or requests_per_cpu < batches:
            raise ValueError("need at least one request per batch")
        self.num_keys = num_keys
        self.num_shards = num_shards
        self.value_lines = value_lines
        self.requests_per_cpu = requests_per_cpu
        self.batches = batches
        self.get_fraction = get_fraction
        self.skew = skew
        self.churn_interval = churn_interval
        self.drift = drift
        self.cycles_per_ref = cycles_per_ref
        self.seed = seed
        self.problem = "%d keys, %d shards, %d req/cpu, skew %.2f" % (
            num_keys, num_shards, requests_per_cpu, skew)

    def setup(self, layout, num_cpus: int) -> None:
        slots = -(-self.num_keys // self.num_shards)
        self.index = SharedArray(layout, key=9199,
                                 num_elems=self.num_shards,
                                 elem_bytes=LINE_BYTES)
        self.shards = [SharedArray(layout, key=9200 + s,
                                   num_elems=slots * self.value_lines,
                                   elem_bytes=LINE_BYTES)
                       for s in range(self.num_shards)]
        stream = ZipfianStream(self.num_keys, skew=self.skew,
                               churn_interval=self.churn_interval,
                               drift=self.drift, seed=self.seed)
        flips = np.random.RandomState(self.seed + 1)
        per_batch = self.requests_per_cpu // self.batches
        self._plans = []
        for _cpu in range(num_cpus):
            self._plans.append(
                [(stream.sample(per_batch),
                  flips.random_sample(per_batch) < self.get_fraction)
                 for _ in range(self.batches)])

    def generator(self, cpu_id: int, num_cpus: int):
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        nshards = self.num_shards
        vl = self.value_lines
        index = self.index
        shards = self.shards
        bid = 0
        for keys, gets in self._plans[cpu_id]:
            for key, get in zip(keys.tolist(), gets.tolist()):
                shard = key % nshards
                yield index.read(shard)
                arr = shards[shard]
                base = (key // nshards) * vl
                if get:
                    for i in range(vl):
                        yield arr.read(base + i)
                else:
                    for i in range(vl):
                        yield arr.write(base + i)
            yield compute(40)
            yield barrier(bid)
            bid += 1

    # -- serving metrics ---------------------------------------------------

    def bind_machine(self, machine) -> "ServingTap | None":
        """Machine hook: attach the serving tap when metrics are on."""
        if obs.current() is None:
            return None
        per_req = 1 + self.value_lines
        schedules = []
        for cpu in range(len(machine.cpus)):
            schedule = []
            for _keys, gets in self._plans[cpu]:
                schedule.extend(("get" if g else "put", per_req)
                                for g in gets.tolist())
            schedules.append(schedule)
        return ServingTap(machine, schedules)


class Txn2pcWorkload(Workload):
    """Two-phase commit: coordinator + data-node transactions.

    Every CPU is a data-node participant; CPU 0 additionally
    coordinates.  Transaction ``t`` runs in four barrier-separated
    phases:

    1. *prepare* — the coordinator writes the prepare record
       ``log[t]`` under the log lock;
    2. *vote*    — every participant reads the prepare record and
       writes its vote slot;
    3. *decide*  — the coordinator reads all votes and writes the
       commit decision to ``log[t]`` under the log lock;
    4. *apply*   — every participant reads the decision and applies
       the transaction to its own data shard (``apply_lines`` fresh
       lines per transaction) under its per-node apply lock.

    The decision record is written twice per transaction (prepare,
    then decision) — :meth:`Txn2pcScenario.check` uses the second
    write's time as the commit point and flags any data-shard apply
    recorded before it.  With :attr:`use_command_channels` set (the
    chaos scenario does this) the decision is additionally broadcast
    over command-mode message channels, putting it in the blast radius
    of ``command``-kind fault rules.
    """

    name = "txn2pc"
    description = "Coordinator + data-node two-phase commit"
    paper_problem = "n/a (serving extension)"

    #: When true, :meth:`bind_machine` attaches a
    #: :class:`TwoPhaseChannelDriver` (chaos campaigns only).
    use_command_channels = False

    def __init__(self, txns: int = 200, apply_lines: int = 2,
                 cycles_per_ref: int = 6, seed: int = 20260809) -> None:
        super().__init__()
        if txns < 1 or apply_lines < 1:
            raise ValueError("txns and apply_lines must be >= 1")
        self.txns = txns
        self.apply_lines = apply_lines
        self.cycles_per_ref = cycles_per_ref
        self.seed = seed
        self.problem = "%d txns, %d apply lines" % (txns, apply_lines)

    def setup(self, layout, num_cpus: int) -> None:
        self._num_cpus = num_cpus
        self.log = SharedArray(layout, key=9301, num_elems=self.txns,
                               elem_bytes=LINE_BYTES)
        self.votes = SharedArray(layout, key=9302,
                                 num_elems=self.txns * num_cpus,
                                 elem_bytes=LINE_BYTES)
        self.data = SharedArray(
            layout, key=9303,
            num_elems=num_cpus * self.txns * self.apply_lines,
            elem_bytes=LINE_BYTES)

    def generator(self, cpu_id: int, num_cpus: int):
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        al = self.apply_lines
        log, votes, data = self.log, self.votes, self.data
        coordinator = cpu_id == 0
        bid = 0
        for t in range(self.txns):
            # Phase 1: prepare.
            if coordinator:
                yield lock(0)
                yield log.write(t)
                yield unlock(0)
            else:
                yield compute(20)
            yield barrier(bid)
            bid += 1
            # Phase 2: vote.
            yield log.read(t)
            yield votes.write(t * num_cpus + cpu_id)
            yield barrier(bid)
            bid += 1
            # Phase 3: decide.
            if coordinator:
                for p in range(num_cpus):
                    yield votes.read(t * num_cpus + p)
                yield lock(0)
                yield log.write(t)
                yield unlock(0)
            else:
                yield compute(20)
            yield barrier(bid)
            bid += 1
            # Phase 4: apply.
            yield log.read(t)
            yield lock(1 + cpu_id)
            base = (cpu_id * self.txns + t) * al
            for i in range(al):
                yield data.write(base + i)
            yield unlock(1 + cpu_id)
            yield barrier(bid)
            bid += 1

    # -- serving metrics & chaos taps --------------------------------------

    def _tap_schedules(self, num_cpus: int):
        coord = ("txn", (1 + 2 + num_cpus + 1 + 1 + self.apply_lines))
        part = ("participant", (2 + 1 + self.apply_lines))
        return [[coord if c == 0 else part] * self.txns
                for c in range(num_cpus)]

    def bind_machine(self, machine) -> "ServingTap | None":
        """Machine hook: chaos channel driver and/or serving tap."""
        if self.use_command_channels:
            self._driver = TwoPhaseChannelDriver(machine, self)
        if obs.current() is None:
            return None
        return ServingTap(machine,
                          self._tap_schedules(len(machine.cpus)))


class TwoPhaseChannelDriver:
    """Broadcast 2PC decisions over command-mode message channels.

    Wraps ``Machine._access`` (stacking over any already-attached
    value tap): when the coordinator's *decision* write to ``log[t]``
    resolves, a ``("commit", t)`` command is sent on the coordinator
    node's channel to every other node, and when a participant's
    decision read resolves, the participant polls its channel until
    that command arrives — so the decision handoff rides the network
    as ``COMMAND`` messages judged by the fault plane.  A drop with
    retries disabled surfaces as the canonical no-timeout hang
    (``DeadlineExceeded`` from the injector), exhausted retries or a
    dead node as a clean ``NodeFailedError`` — exactly the verdict
    split the chaos mutation self-test asserts.
    """

    POLL_CYCLES = 64

    def __init__(self, machine, workload: Txn2pcWorkload) -> None:
        from repro.kernel.msgqueue import MessageChannel
        self.machine = machine
        self.workload = workload
        self.coord_node = machine.cpus[0].node.node_id
        self.channels = {}
        for node in machine.nodes:
            if node.node_id != self.coord_node:
                self.channels[node.node_id] = MessageChannel(
                    machine, self.coord_node, node.node_id,
                    capacity=max(64, workload.txns + 8))
        log = workload.log
        self._log_base = log.vbase
        self._log_end = log.vbase + log.num_elems * log.elem_bytes
        self._elem = log.elem_bytes
        self._prepared: "set[int]" = set()
        self._decided: "set[int]" = set()
        self._received: "set[tuple[int, int]]" = set()
        self._orig_access = machine._access
        machine._access = self._on_access

    def _on_access(self, cpu, vaddr: int, is_write: bool, now: int) -> int:
        done = self._orig_access(cpu, vaddr, is_write, now)
        if not self._log_base <= vaddr < self._log_end:
            return done
        txn = (vaddr - self._log_base) // self._elem
        if is_write and cpu.cpu_id == 0:
            if txn not in self._prepared:
                self._prepared.add(txn)       # phase 1: local prepare
            elif txn not in self._decided:
                self._decided.add(txn)        # phase 3: broadcast commit
                for channel in self.channels.values():
                    done = max(done, channel.send(("commit", txn), done))
        elif (not is_write and cpu.cpu_id != 0 and txn in self._decided):
            node_id = cpu.node.node_id
            channel = self.channels.get(node_id)
            if channel is None or (node_id, txn) in self._received:
                return done
            t = done
            while True:
                got = channel.receive(t)
                if got is not None:
                    t = max(t, got[1])
                    self._received.add((node_id, got[0][1]))
                    if got[0][1] == txn:
                        break
                    continue
                if not channel.pending():
                    break
                t += self.POLL_CYCLES
            done = t
        return done


class Txn2pcScenario:
    """A chaos-campaign scenario over :class:`Txn2pcWorkload`.

    Duck-compatible with :class:`~repro.verify.litmus.LitmusTest` where
    :func:`~repro.faults.campaign.run_chaos` cares: ``name``,
    ``policy``, ``num_nodes``, ``build_config()``, ``forbidden`` — plus
    the campaign hooks ``make_workload()`` (a channel-driven 2PC run)
    and ``check()`` (the atomicity judge: no data-shard apply may be
    recorded before its transaction's commit decision).
    """

    #: No register-outcome predicate; atomicity is judged by check().
    forbidden = None

    def __init__(self, name: str = "txn2pc", num_nodes: int = 4,
                 cpus_per_node: int = 1, policy: str = "scoma",
                 txns: int = 8, apply_lines: int = 2,
                 seed: int = 20260809) -> None:
        self.name = name
        self.num_nodes = num_nodes
        self.cpus_per_node = cpus_per_node
        self.policy = policy
        self.txns = txns
        self.apply_lines = apply_lines
        self.seed = seed
        self._workload: "Txn2pcWorkload | None" = None

    def build_config(self):
        """The tiny machine the scenario runs on (litmus geometry)."""
        from repro.sim.config import CacheConfig, MachineConfig
        return MachineConfig(
            num_nodes=self.num_nodes,
            cpus_per_node=self.cpus_per_node,
            page_bytes=256,
            line_bytes=32,
            l1=CacheConfig(256, 32, 2),
            l2=CacheConfig(512, 32, 2),
            tlb_entries=8,
            directory_cache_entries=64)

    def make_workload(self) -> Txn2pcWorkload:
        """A fresh channel-driven 2PC workload for one chaos round."""
        workload = Txn2pcWorkload(txns=self.txns,
                                  apply_lines=self.apply_lines,
                                  seed=self.seed)
        workload.use_command_channels = True
        self._workload = workload
        return workload

    def check(self, events, machine) -> "list[str]":
        """Atomicity violations in one run's value-tap history.

        The commit point of transaction ``t`` is the *second* write to
        ``log[t]`` (the first is the prepare record); every data-shard
        apply write must carry a later-or-equal timestamp.  Partial
        histories from aborted runs are fine — applies simply must
        never outrun their decision.
        """
        workload = self._workload
        if workload is None or getattr(workload, "log", None) is None:
            return []
        log, data = workload.log, workload.data
        log_base = log.vbase
        log_end = log_base + log.num_elems * log.elem_bytes
        data_base = data.vbase
        data_end = data_base + data.num_elems * data.elem_bytes
        elem = log.elem_bytes
        al, txns = workload.apply_lines, workload.txns
        log_writes: "dict[int, int]" = {}
        decided_at: "dict[int, int]" = {}
        violations = []
        for event in events:
            if event["kind"] != "write":
                continue
            vaddr = event["vaddr"]
            if log_base <= vaddr < log_end:
                txn = (vaddr - log_base) // elem
                seen = log_writes.get(txn, 0) + 1
                log_writes[txn] = seen
                if seen == 2:
                    decided_at[txn] = event["time"]
            elif data_base <= vaddr < data_end:
                idx = (vaddr - data_base) // elem
                txn = (idx // al) % txns
                decision = decided_at.get(txn)
                if decision is None or decision > event["time"]:
                    violations.append(
                        "2pc atomicity: data apply for txn %d at t=%d "
                        "precedes its commit decision" % (txn,
                                                          event["time"]))
        return violations


def chaos_scenarios() -> "dict[str, Txn2pcScenario]":
    """The bundled serving chaos scenarios, by name."""
    return {
        "txn2pc": Txn2pcScenario(),
        "txn2pc-wide": Txn2pcScenario(name="txn2pc-wide", num_nodes=4,
                                      cpus_per_node=2, txns=6),
    }


def serving_summary(snapshot: "dict[str, object]") -> "list[str]":
    """Human-readable serving lines from one metrics snapshot.

    Returns ``[]`` when the snapshot carries no serving metrics, so
    callers can print unconditionally.
    """
    from repro.obs import find_metrics, quantile
    lines = []
    for labels, hist in find_metrics(snapshot.get("histograms", {}),
                                     "serving.request_latency_cycles"):
        lines.append(
            "serving %-12s %6d requests  p50=%-6d p99=%-6d cycles"
            % (labels.get("op", "?"), hist["count"],
               quantile(hist, 0.50), quantile(hist, 0.99)))
    for _labels, series in find_metrics(snapshot.get("series", {}),
                                        "serving.completed_requests"):
        points = series.get("points") or []
        if points:
            end_time, total = points[-1]
            rate = 1000.0 * total / end_time if end_time else 0.0
            lines.append(
                "serving throughput    %6d requests in %d cycles "
                "(%.2f req/kcycle)" % (total, end_time, rate))
    return lines
