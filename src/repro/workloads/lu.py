"""LU kernel (SPLASH-2 LU: blocked dense LU decomposition).

An ``N x N`` matrix of doubles is split into ``B x B`` blocks; blocks
are owner-computed with a 2D round-robin assignment.  Iteration ``k``:

1. the owner factors the diagonal block (k,k); barrier;
2. owners update the perimeter blocks (k,j) and (i,k); barrier;
3. owners update the interior blocks (i,j) -= (i,k) * (k,j); barrier.

References are emitted at cache-line granularity (one read/write per
line of the blocks touched) with the block arithmetic charged as
compute cycles — the access *pattern* (which lines, which sharing) is
what drives the memory system, and this keeps reference counts
tractable in pure Python.

Paper data set: 512x512 matrix, 16x16 blocks.  Default here: 256x256.
"""

from __future__ import annotations

from repro.workloads.base import SharedArray, Workload, barrier, compute

DOUBLE_BYTES = 8
LINE_DOUBLES = 4  # 32-byte lines


class LuWorkload(Workload):
    """Blocked dense LU with 2D owner-computes (see module docstring)."""

    name = "lu"
    description = "Blocked LU decomposition"
    paper_problem = "512x512 matrix, 16x16 blocks"

    def __init__(self, n: int = 256, block: int = 16) -> None:
        super().__init__()
        if n % block:
            raise ValueError("matrix size must be a multiple of the block")
        self.n = n
        self.block = block
        self.nb = n // block
        self.problem = "%dx%d matrix, %dx%d blocks" % (n, n, block, block)

    def setup(self, layout, num_cpus: int) -> None:
        self.a = SharedArray(layout, key=201, num_elems=self.n * self.n,
                             elem_bytes=DOUBLE_BYTES)

    def _owner(self, bi: int, bj: int, num_cpus: int) -> int:
        return (bi * self.nb + bj) % num_cpus

    def _block_lines(self, bi: int, bj: int):
        """Element indices, one per cache line, of block (bi, bj)."""
        n, b = self.n, self.block
        row0 = bi * b
        col0 = bj * b
        for r in range(b):
            base = (row0 + r) * n + col0
            for c in range(0, b, LINE_DOUBLES):
                yield base + c

    def _block_row_runs(self, bi: int, bj: int):
        """Per-row ``(first_index, lines)`` runs covering the same
        element indices as :meth:`_block_lines`, in the same order —
        within a row the per-line indices are ``LINE_DOUBLES`` apart,
        so a pure-read sweep of a block is one run op per row."""
        n, b = self.n, self.block
        row0 = bi * b
        col0 = bj * b
        lines = (b + LINE_DOUBLES - 1) // LINE_DOUBLES
        for r in range(b):
            yield (row0 + r) * n + col0, lines

    def generator(self, cpu_id: int, num_cpus: int):
        a = self.a
        nb = self.nb
        b = self.block
        flops_per_line = 2 * b * LINE_DOUBLES
        bid = 0
        for k in range(nb):
            # 1. Factor the diagonal block.
            if self._owner(k, k, num_cpus) == cpu_id:
                for idx in self._block_lines(k, k):
                    yield a.read(idx)
                    yield a.write(idx)
                yield compute(flops_per_line * b)
            yield barrier(bid)
            bid += 1
            # 2. Perimeter blocks.
            for j in range(k + 1, nb):
                if self._owner(k, j, num_cpus) == cpu_id:
                    for idx, lines in self._block_row_runs(k, k):
                        yield a.read_run(idx, lines, stride=LINE_DOUBLES)
                    for idx in self._block_lines(k, j):
                        yield a.read(idx)
                        yield a.write(idx)
                    yield compute(flops_per_line * b)
                if self._owner(j, k, num_cpus) == cpu_id:
                    for idx, lines in self._block_row_runs(k, k):
                        yield a.read_run(idx, lines, stride=LINE_DOUBLES)
                    for idx in self._block_lines(j, k):
                        yield a.read(idx)
                        yield a.write(idx)
                    yield compute(flops_per_line * b)
            yield barrier(bid)
            bid += 1
            # 3. Interior updates.
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if self._owner(i, j, num_cpus) != cpu_id:
                        continue
                    for idx, lines in self._block_row_runs(i, k):
                        yield a.read_run(idx, lines, stride=LINE_DOUBLES)
                    for idx, lines in self._block_row_runs(k, j):
                        yield a.read_run(idx, lines, stride=LINE_DOUBLES)
                    for idx in self._block_lines(i, j):
                        yield a.read(idx)
                        yield a.write(idx)
                    yield compute(flops_per_line * b)
            yield barrier(bid)
            bid += 1
