"""Water kernels (SPLASH WATER-NSQUARED and WATER-SPATIAL).

Both simulate liquid water molecules under an O(n^2) (nsquared) or
cell-list (spatial) force evaluation.  Per timestep:

1. *intra*-molecule computation: each CPU reads/writes its own
   molecules (private-ish traffic, good locality);
2. *inter*-molecule forces: for each pair within the cutoff, read both
   molecules and accumulate into a private scratch; the accumulated
   force is flushed into the partner molecule under its lock (the
   SPLASH per-molecule lock discipline);
3. update: each CPU integrates its own molecules.

``WaterNsqWorkload`` evaluates all O(n^2 / 2) pairs;
``WaterSpatialWorkload`` bins molecules into cells at setup (for real,
with numpy) and evaluates only pairs in neighbouring cells.

Paper data sets: 512 molecules, 3 iterations for both.  Defaults here:
256 (nsquared) / 512 (spatial) molecules, 2 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (PrivateArray, SharedArray, Workload,
                                  barrier, coalesce_stream, compute,
                                  lock, unlock)

MOLECULE_BYTES = 128  # positions/velocities/forces of the 3 atoms
FORCE_BYTES = 32


class _WaterBase(Workload):
    """Shared machinery for the two water variants."""

    def __init__(self, molecules: int, iterations: int, seed: int) -> None:
        super().__init__()
        self.n = molecules
        self.iterations = iterations
        self.seed = seed
        self.problem = "%d molecules, %d iterations" % (molecules, iterations)

    def setup(self, layout, num_cpus: int) -> None:
        self.molecules = SharedArray(layout, key=701, num_elems=self.n,
                                     elem_bytes=MOLECULE_BYTES)
        self.forces = SharedArray(layout, key=702, num_elems=self.n,
                                  elem_bytes=FORCE_BYTES)
        self.scratch = [PrivateArray(layout, 32, 32) for _ in range(num_cpus)]
        self._pairs_by_cpu: "list[list[tuple[int, int]]]" = []

    def _partition_pairs(self, pairs: "list[tuple[int, int]]",
                         num_cpus: int) -> None:
        """Deal pairs round-robin (the SPLASH interleaved allocation)."""
        self._pairs_by_cpu = [pairs[c::num_cpus] for c in range(num_cpus)]

    def generator(self, cpu_id: int, num_cpus: int):
        # Run-coalesced view of the kernel's stream: op-for-op
        # identical after expansion (see coalesce_stream).
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        molecules, forces = self.molecules, self.forces
        scratch = self.scratch[cpu_id]
        mine = self.block_range(self.n, cpu_id, num_cpus)
        pairs = self._pairs_by_cpu[cpu_id]
        bid = 0
        for _ in range(self.iterations):
            # 1. Intra-molecule work.
            for mol in mine:
                yield molecules.read(mol)
                yield compute(20)
                yield molecules.write(mol)
            yield barrier(bid)
            bid += 1
            # 2. Inter-molecule forces.
            for i, j in pairs:
                yield molecules.read(i)
                yield molecules.read(j)
                yield compute(40)
                yield scratch.write(i % 32)
            # Flush accumulated forces under per-molecule locks.  Each
            # CPU starts its sweep at a different offset (as SPLASH
            # water does) so the per-molecule locks don't convoy.
            touched = sorted({m for pair in pairs for m in pair})
            start = (cpu_id * len(touched)) // num_cpus
            for mol in touched[start:] + touched[:start]:
                yield scratch.read(mol % 32)
                yield lock(mol)
                yield forces.read(mol)
                yield forces.write(mol)
                yield unlock(mol)
            yield barrier(bid)
            bid += 1
            # 3. Update owned molecules.
            for mol in mine:
                yield forces.read(mol)
                yield molecules.read(mol)
                yield compute(15)
                yield molecules.write(mol)
            yield barrier(bid)
            bid += 1


class WaterNsqWorkload(_WaterBase):
    """All-pairs (O(n^2)) water simulation."""

    name = "water-nsq"
    description = "O(n^2) water molecule simulation"
    paper_problem = "512 molecules, 3 iterations"

    def __init__(self, molecules: int = 256, iterations: int = 2,
                 seed: int = 31337) -> None:
        super().__init__(molecules, iterations, seed)

    def setup(self, layout, num_cpus: int) -> None:
        super().setup(layout, num_cpus)
        pairs = [(i, j) for i in range(self.n)
                 for j in range(i + 1, self.n)]
        self._partition_pairs(pairs, num_cpus)


class WaterSpatialWorkload(_WaterBase):
    """Cell-list (spatial) water simulation."""

    name = "water-spa"
    description = "O(n) spatial water molecule simulation"
    paper_problem = "512 molecules, 3 iterations"

    def __init__(self, molecules: int = 512, iterations: int = 2,
                 cells_per_dim: int = 4, cutoff_pairs_cap: int = 40,
                 seed: int = 90210) -> None:
        super().__init__(molecules, iterations, seed)
        self.cells_per_dim = cells_per_dim
        self.cutoff_pairs_cap = cutoff_pairs_cap

    def setup(self, layout, num_cpus: int) -> None:
        super().setup(layout, num_cpus)
        d = self.cells_per_dim
        rng = np.random.RandomState(self.seed)
        pos = rng.rand(self.n, 3)
        cell = (pos * d).astype(np.int64).clip(0, d - 1)
        cell_id = cell @ np.array([d * d, d, 1], dtype=np.int64)
        members: "dict[int, list[int]]" = {}
        for mol, c in enumerate(cell_id.tolist()):
            members.setdefault(c, []).append(mol)
        pairs: "list[tuple[int, int]]" = []
        per_mol = {m: 0 for m in range(self.n)}
        cap = self.cutoff_pairs_cap
        for c, mols in sorted(members.items()):
            cx, cy, cz = c // (d * d), (c // d) % d, c % d
            neighbours: "list[int]" = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        x, y, z = cx + dx, cy + dy, cz + dz
                        if 0 <= x < d and 0 <= y < d and 0 <= z < d:
                            neighbours.extend(
                                members.get(x * d * d + y * d + z, ()))
            for i in mols:
                for j in neighbours:
                    if j > i and per_mol[i] < cap and per_mol[j] < cap:
                        pairs.append((i, j))
                        per_mol[i] += 1
                        per_mol[j] += 1
        self._partition_pairs(pairs, num_cpus)
