"""Radix kernel (SPLASH-2 RADIX: parallel radix sort).

``n`` integer keys are sorted ``digit_bits`` bits at a time.  Each pass:

1. local histogram: every CPU reads its block of keys and counts digit
   occurrences into a private histogram;
2. global prefix: CPUs publish their histograms into a shared array and
   (after a barrier) read all other CPUs' histograms to compute their
   scatter offsets;
3. permutation: every CPU re-reads its keys and writes each to its
   destination slot — a data-dependent scatter across the whole
   destination array, the classic remote-traffic generator of RADIX.

The keys are real random integers and the scatter targets are the real
sorted positions (computed with numpy at setup), so the address stream
has the genuine all-to-all structure.

Paper data set: 1M integer keys, radix 1K.  Default here: 64K keys,
radix 256, 2 passes over 16-bit keys.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (PrivateArray, SharedArray, Workload,
                                  barrier, coalesce_stream, compute)

INT_BYTES = 4


class RadixWorkload(Workload):
    """Parallel radix sort (see module docstring)."""

    name = "radix"
    description = "Radix sort"
    paper_problem = "1M integer keys, radix 1K"

    def __init__(self, keys: int = 65536, radix: int = 256,
                 key_bits: int = 16, seed: int = 12345) -> None:
        super().__init__()
        self.n = keys
        self.radix = radix
        self.digit_bits = radix.bit_length() - 1
        if 1 << self.digit_bits != radix:
            raise ValueError("radix must be a power of two")
        self.passes = -(-key_bits // self.digit_bits)
        self.seed = seed
        self.problem = "%d integer keys, radix %d" % (keys, radix)

    def setup(self, layout, num_cpus: int) -> None:
        n, radix = self.n, self.radix
        self.src = SharedArray(layout, key=301, num_elems=n,
                               elem_bytes=INT_BYTES)
        self.dst = SharedArray(layout, key=302, num_elems=n,
                               elem_bytes=INT_BYTES)
        self.global_hist = SharedArray(layout, key=303,
                                       num_elems=num_cpus * radix,
                                       elem_bytes=INT_BYTES)
        self.local_hist = [PrivateArray(layout, radix, INT_BYTES)
                           for _ in range(num_cpus)]

        # Compute the real per-pass permutations with numpy.
        rng = np.random.RandomState(self.seed)
        keys = rng.randint(0, 1 << (self.passes * self.digit_bits), size=n,
                           dtype=np.int64)
        self._pass_plans = []
        current = keys
        for p in range(self.passes):
            digits = (current >> (p * self.digit_bits)) & (self.radix - 1)
            order = np.argsort(digits, kind="stable")
            dest = np.empty(n, dtype=np.int64)
            dest[order] = np.arange(n)
            self._pass_plans.append((digits, dest))
            current = current[order]

    def generator(self, cpu_id: int, num_cpus: int):
        # Run-coalesced view of the kernel's stream: op-for-op
        # identical after expansion (see coalesce_stream).
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        n, radix = self.n, self.radix
        src, dst = self.src, self.dst
        lhist = self.local_hist[cpu_id]
        ghist = self.global_hist
        block = self.block_range(n, cpu_id, num_cpus)
        bid = 0
        for p, (digits, dest) in enumerate(self._pass_plans):
            a, b = (src, dst) if p % 2 == 0 else (dst, src)
            dest_list = dest[block.start:block.stop].tolist()
            digit_list = digits[block.start:block.stop].tolist()
            # 1. Local histogram.
            for r in range(0, radix, 8):
                yield lhist.write(r)
            for i, d in zip(block, digit_list):
                yield a.read(i)
                yield lhist.read(d)
                yield lhist.write(d)
            yield barrier(bid)
            bid += 1
            # 2. Publish local histogram; read everyone's to prefix-sum.
            for r in range(radix):
                yield ghist.write(cpu_id * radix + r)
            yield barrier(bid)
            bid += 1
            for other in range(num_cpus):
                for r in range(0, radix, 8):
                    yield ghist.read(other * radix + r)
            yield compute(2 * radix)
            yield barrier(bid)
            bid += 1
            # 3. Permute: scatter each key to its sorted slot.
            for i, d in zip(block, dest_list):
                yield a.read(i)
                yield lhist.read(digit_list[i - block.start])
                yield b.write(d)
            yield barrier(bid)
            bid += 1
