"""FFT kernel (SPLASH-2 FFT: six-step, transpose-based 1D FFT).

The data set is an ``m x m`` matrix of complex doubles (``n = m*m``
points) plus an equally sized transpose target and a root-of-unity
table.  Rows are block-partitioned across CPUs.  The six steps:

1. transpose (all-to-all communication: each CPU reads columns of the
   source, i.e. rows owned by every other CPU, and writes its rows of
   the target),
2. 1D FFTs over local rows,
3. twiddle multiplication,
4. transpose,
5. 1D FFTs over local rows,
6. transpose back.

The transposes generate the remote traffic; the row FFTs generate the
cache-capacity reuse that separates S-COMA from LA-NUMA behaviour.

Paper data set: 64K complex doubles.  Default here: 16K points
(m = 128), scaled with the smaller caches.
"""

from __future__ import annotations

from repro.workloads.base import (PrivateArray, SharedArray, Workload,
                                  barrier, compute)

COMPLEX_BYTES = 16


class FftWorkload(Workload):
    """Six-step transpose-based FFT (see module docstring)."""

    name = "fft"
    description = "FFT computation"
    paper_problem = "64K complex doubles"

    def __init__(self, points: int = 16384) -> None:
        super().__init__()
        m = int(round(points ** 0.5))
        if m * m != points:
            raise ValueError("points must be a perfect square (m*m)")
        self.m = m
        self.points = points
        self.problem = "%d complex doubles" % points

    def setup(self, layout, num_cpus: int) -> None:
        m = self.m
        self.src = SharedArray(layout, key=101, num_elems=self.points,
                               elem_bytes=COMPLEX_BYTES)
        self.dst = SharedArray(layout, key=102, num_elems=self.points,
                               elem_bytes=COMPLEX_BYTES)
        self.twiddle = SharedArray(layout, key=103, num_elems=m,
                                   elem_bytes=COMPLEX_BYTES)
        # Per-CPU scratch for the row FFT working vector.
        self.scratch = [PrivateArray(layout, m, COMPLEX_BYTES)
                        for _ in range(num_cpus)]

    def generator(self, cpu_id: int, num_cpus: int):
        m = self.m
        src, dst = self.src, self.dst
        scratch = self.scratch[cpu_id]
        rows = self.block_range(m, cpu_id, num_cpus)
        log_m = max(1, m.bit_length() - 1)
        bid = 0

        epl = max(1, 32 // COMPLEX_BYTES)  # complexes per 32-byte line

        def transpose(a, b):
            # Patch transpose (as in SPLASH-2 FFT): move epl x epl
            # patches so both the source reads and the destination
            # writes get full cache-line reuse.  The source patches
            # stride across every other CPU's partition of a.  Column
            # reads and row writes are constant-stride, so each patch
            # is one read run plus one write run per row.
            for r0 in range(rows.start, rows.stop, epl):
                for c0 in range(0, m, epl):
                    yield a.read_run(c0 * m + r0, epl, stride=m)
                    for r in range(r0, r0 + epl):
                        yield b.write_run(r * m + c0, epl)
                    yield compute(2 * epl * epl)

        def row_ffts(a):
            # For each owned row: load into scratch, butterfly passes,
            # store back.  Butterfly arithmetic is charged as compute.
            for r in rows:
                base = r * m
                for c in range(m):
                    yield a.read(base + c)
                    yield scratch.write(c)
                for stage in range(log_m):
                    yield compute(4 * m)
                    for c in range(0, m, 4):
                        yield scratch.read(c)
                        yield scratch.write(c)
                for c in range(m):
                    yield scratch.read(c)
                    yield a.write(base + c)

        def twiddle_mult(a):
            for r in rows:
                base = r * m
                yield self.twiddle.read(r % m)
                for c in range(m):
                    yield a.read(base + c)
                    yield a.write(base + c)
                yield compute(2 * m)

        # The six steps, a barrier after each.
        steps = (transpose(src, dst), row_ffts(dst), twiddle_mult(dst),
                 transpose(dst, src), row_ffts(src), transpose(src, dst))
        for step in steps:
            yield from step
            yield barrier(bid)
            bid += 1
