"""Ocean kernel (SPLASH-2 OCEAN: ocean-current simulation).

The computation is dominated by iterative 5-point stencil relaxations
over large square grids, with rows block-partitioned across CPUs.  We
model the multigrid solver's work loop faithfully at the access level:
per iteration, each CPU sweeps its rows of the main grid reading the
north/south/east/west neighbours (north/south rows at partition edges
belong to neighbouring CPUs — the nearest-neighbour communication of
OCEAN), plus streaming reads of two auxiliary field grids and a write
of the next-state grid, followed by a barrier, then the grids swap
roles.

Paper data set: 258x258 ocean grid.  Default here: 130x130 with more
auxiliary grids per the real code's ~25 grids being its footprint
driver (we carry 4).
"""

from __future__ import annotations

from repro.workloads.base import (SharedArray, Workload, barrier,
                                  coalesce_stream, compute)

DOUBLE_BYTES = 8


class OceanWorkload(Workload):
    """Iterative grid relaxations (see module docstring)."""

    name = "ocean"
    description = "Simulation of ocean currents"
    paper_problem = "258x258 ocean grid"

    def __init__(self, grid: int = 130, iterations: int = 6) -> None:
        super().__init__()
        self.g = grid
        self.iterations = iterations
        self.problem = "%dx%d ocean grid, %d iterations" % (
            grid, grid, iterations)

    def setup(self, layout, num_cpus: int) -> None:
        cells = self.g * self.g
        self.q = SharedArray(layout, key=401, num_elems=cells,
                             elem_bytes=DOUBLE_BYTES)
        self.q_next = SharedArray(layout, key=402, num_elems=cells,
                                  elem_bytes=DOUBLE_BYTES)
        self.psi = SharedArray(layout, key=403, num_elems=cells,
                               elem_bytes=DOUBLE_BYTES)
        self.gamma = SharedArray(layout, key=404, num_elems=cells,
                                 elem_bytes=DOUBLE_BYTES)

    def generator(self, cpu_id: int, num_cpus: int):
        # Run-coalesced view of the kernel's stream: op-for-op
        # identical after expansion (see coalesce_stream).
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        g = self.g
        rows = self.block_range(g - 2, cpu_id, num_cpus)  # interior rows
        src, dst = self.q, self.q_next
        bid = 0
        for _ in range(self.iterations):
            for r0 in rows:
                r = r0 + 1
                row = r * g
                north = row - g
                south = row + g
                for c in range(1, g - 1):
                    yield src.read(north + c)
                    yield src.read(south + c)
                    yield src.read(row + c - 1)
                    yield src.read(row + c + 1)
                    yield src.read(row + c)
                    yield self.psi.read(row + c)
                    yield self.gamma.read(row + c)
                    yield dst.write(row + c)
                yield compute(8 * (g - 2))
            yield barrier(bid)
            bid += 1
            src, dst = dst, src
