"""Workload framework: SPLASH-style reference generators.

The paper drives its simulator with SPLASH-I/II applications under
Augmint (execution-driven simulation of compiled binaries).  This
reproduction replaces that with *application kernels*: Python
implementations of the same algorithms' traversals that emit, per
simulated CPU, the stream of memory references (virtual address,
read/write), compute gaps, barriers and locks the algorithm performs.
Problem sizes are scaled together with the machine's caches (see
DESIGN.md section 2) so the capacity regimes match the paper's.

A workload:

* builds its shared segments and private regions in :meth:`setup`
  (globalized shmget/shmat through the machine's layout — this is the
  "global binding" step, outside the measured parallel phase);
* yields ops from :meth:`generator` for each CPU (the parallel phase).

Addresses are plain integers in the (machine-wide) virtual address
space; :class:`SharedArray` and :class:`PrivateArray` provide element
-> address arithmetic.
"""

from __future__ import annotations

from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_READ_RUN, OP_UNLOCK, OP_WRITE, OP_WRITE_RUN)


class SharedArray:
    """A shared segment interpreted as an array of fixed-size elements."""

    __slots__ = ("vbase", "elem_bytes", "num_elems")

    def __init__(self, layout, key: int, num_elems: int, elem_bytes: int) -> None:
        region = layout.attach_shared(key, num_elems * elem_bytes)
        self.vbase = region.vbase
        self.elem_bytes = elem_bytes
        self.num_elems = num_elems

    def addr(self, index: int) -> int:
        """Virtual address of element ``index``."""
        return self.vbase + index * self.elem_bytes

    def read(self, index: int) -> "tuple[int, int]":
        """A load op for element ``index``."""
        return (OP_READ, self.vbase + index * self.elem_bytes)

    def write(self, index: int) -> "tuple[int, int]":
        """A store op for element ``index``."""
        return (OP_WRITE, self.vbase + index * self.elem_bytes)

    def read_run(self, index: int, count: int,
                 stride: int = 1) -> "tuple[int, int, int, int]":
        """A block-load op: ``count`` loads starting at element
        ``index``, ``stride`` elements apart."""
        return (OP_READ_RUN, self.vbase + index * self.elem_bytes,
                stride * self.elem_bytes, count)

    def write_run(self, index: int, count: int,
                  stride: int = 1) -> "tuple[int, int, int, int]":
        """A block-store op: ``count`` stores starting at element
        ``index``, ``stride`` elements apart."""
        return (OP_WRITE_RUN, self.vbase + index * self.elem_bytes,
                stride * self.elem_bytes, count)

    @property
    def size_bytes(self) -> int:
        """Total segment size."""
        return self.num_elems * self.elem_bytes


class PrivateArray:
    """A per-CPU private array (node-local memory, Local-mode frames)."""

    __slots__ = ("vbase", "elem_bytes", "num_elems")

    def __init__(self, layout, num_elems: int, elem_bytes: int) -> None:
        region = layout.add_private(num_elems * elem_bytes)
        self.vbase = region.vbase
        self.elem_bytes = elem_bytes
        self.num_elems = num_elems

    def addr(self, index: int) -> int:
        """Virtual address of element ``index``."""
        return self.vbase + index * self.elem_bytes

    def read(self, index: int) -> "tuple[int, int]":
        """A load op for element ``index``."""
        return (OP_READ, self.vbase + index * self.elem_bytes)

    def write(self, index: int) -> "tuple[int, int]":
        """A store op for element ``index``."""
        return (OP_WRITE, self.vbase + index * self.elem_bytes)

    def read_run(self, index: int, count: int,
                 stride: int = 1) -> "tuple[int, int, int, int]":
        """A block-load op: ``count`` loads starting at element
        ``index``, ``stride`` elements apart."""
        return (OP_READ_RUN, self.vbase + index * self.elem_bytes,
                stride * self.elem_bytes, count)

    def write_run(self, index: int, count: int,
                  stride: int = 1) -> "tuple[int, int, int, int]":
        """A block-store op: ``count`` stores starting at element
        ``index``, ``stride`` elements apart."""
        return (OP_WRITE_RUN, self.vbase + index * self.elem_bytes,
                stride * self.elem_bytes, count)


class Workload:
    """Base class for all application kernels."""

    #: Short name used by the harness and result tables.
    name = "abstract"
    #: Paper's description (Table 2), for reports.
    description = ""
    #: The paper's problem size (Table 2), for reports.
    paper_problem = ""

    def __init__(self) -> None:
        self._barrier_seq = 0

    # -- to implement ----------------------------------------------------

    def setup(self, layout, num_cpus: int) -> None:
        """Create segments and precompute access plans.  Called once by
        the machine before the parallel phase."""
        raise NotImplementedError

    def generator(self, cpu_id: int, num_cpus: int):
        """Yield ops for one CPU's parallel phase."""
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def block_range(total: int, cpu_id: int, num_cpus: int) -> range:
        """Contiguous block partition of ``range(total)`` for one CPU."""
        base = total // num_cpus
        extra = total % num_cpus
        start = cpu_id * base + min(cpu_id, extra)
        size = base + (1 if cpu_id < extra else 0)
        return range(start, start + size)

    def describe(self) -> "dict[str, str]":
        """Name/description/problem-size record (Table 2 rows)."""
        return {
            "name": self.name,
            "description": self.description,
            "paper_problem": self.paper_problem,
            "problem": getattr(self, "problem", ""),
        }


def coalesce(refs):
    """Fuse an in-order stream of ``(OP_READ|OP_WRITE, addr)`` ops into
    maximal same-kind constant-stride run ops.

    The run ops expand to exactly the input sequence (same kinds, same
    addresses, same order), so a generator built on :func:`coalesce` is
    reference-for-reference identical to one yielding the singles — only
    the op count the simulator iterates over shrinks.  Lone references
    stay plain single ops.
    """
    run_of = {OP_READ: OP_READ_RUN, OP_WRITE: OP_WRITE_RUN}
    kind = base = stride = None
    count = 0
    for op, addr in refs:
        if op == kind and (stride is None or addr - prev == stride):
            if stride is None:
                stride = addr - prev
            prev = addr
            count += 1
            continue
        if count == 1:
            yield (kind, base)
        elif count:
            yield (run_of[kind], base, stride, count)
        kind, base, prev, stride, count = op, addr, addr, None, 1
    if count == 1:
        yield (kind, base)
    elif count:
        yield (run_of[kind], base, stride, count)


def coalesce_stream(ops):
    """Fuse ref runs in a *full* op stream (refs mixed with compute,
    barrier and lock ops).

    Like :func:`coalesce`, but accepts the complete generator output:
    non-reference ops flush any pending run and pass through unchanged,
    so the expanded stream is op-for-op identical to the input — only
    maximal same-kind constant-stride reference runs collapse into
    ``OP_READ_RUN``/``OP_WRITE_RUN``.  Wrap an existing generator with
    it to get run coalescing without restructuring the kernel::

        def generator(self, cpu_id, num_cpus):
            return coalesce_stream(self._stream(cpu_id, num_cpus))
    """
    run_of = {OP_READ: OP_READ_RUN, OP_WRITE: OP_WRITE_RUN}
    kind = base = prev = stride = None
    count = 0
    for op in ops:
        k = op[0]
        if k == OP_READ or k == OP_WRITE:
            addr = op[1]
            if k == kind and (stride is None or addr - prev == stride):
                if stride is None:
                    stride = addr - prev
                prev = addr
                count += 1
                continue
            if count == 1:
                yield (kind, base)
            elif count:
                yield (run_of[kind], base, stride, count)
            kind, base, prev, stride, count = k, addr, addr, None, 1
            continue
        if count == 1:
            yield (kind, base)
        elif count:
            yield (run_of[kind], base, stride, count)
        kind, stride, count = None, None, 0
        yield op
    if count == 1:
        yield (kind, base)
    elif count:
        yield (run_of[kind], base, stride, count)


def barrier(bid: int) -> "tuple[int, int]":
    """A global-barrier op for barrier ``bid``."""
    return (OP_BARRIER, bid)


def compute(cycles: int) -> "tuple[int, int]":
    """A local-computation op of ``cycles`` cycles."""
    return (OP_COMPUTE, cycles)


def lock(lid: int) -> "tuple[int, int]":
    """An acquire op for lock ``lid``."""
    return (OP_LOCK, lid)


def unlock(lid: int) -> "tuple[int, int]":
    """A release op for lock ``lid``."""
    return (OP_UNLOCK, lid)
