"""MP3D kernel (SPLASH-I MP3D: rarefied hypersonic airflow).

MP3D advances particles through a 3D space-cell array each timestep:
a particle's state is read and written (move), and the space cell it
lands in is read and written (collision bookkeeping).  Particles are
block-partitioned but fly through cells written by *every* CPU — MP3D's
notorious migratory/write-shared behaviour and high invalidation rate.

The particle trajectories are computed for real at setup (free-flight
with wall reflection in a wind-tunnel box), so the per-step cell-visit
sequence has genuine spatial coherence: particles drift, so the cells a
CPU touches change slowly between steps.

Paper data set: 20,000 particles, 5 iterations.  Default here: 4096
particles, 5 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (SharedArray, Workload, barrier,
                                  coalesce_stream, compute)

PARTICLE_BYTES = 64
CELL_BYTES = 32


class Mp3dWorkload(Workload):
    """Rarefied airflow particles-in-cells (see module docstring)."""

    name = "mp3d"
    description = "Rarefied air flow simulation"
    paper_problem = "20,000 particles, 5 iterations"

    def __init__(self, particles: int = 4096, iterations: int = 5,
                 cells: "tuple[int, int, int]" = (32, 8, 8),
                 seed: int = 777) -> None:
        super().__init__()
        self.n = particles
        self.iterations = iterations
        self.cells_dim = cells
        self.seed = seed
        self.problem = "%d particles, %d iterations" % (particles, iterations)

    def setup(self, layout, num_cpus: int) -> None:
        nx, ny, nz = self.cells_dim
        self.num_cells = nx * ny * nz
        self.particles = SharedArray(layout, key=601, num_elems=self.n,
                                     elem_bytes=PARTICLE_BYTES)
        self.space = SharedArray(layout, key=602, num_elems=self.num_cells,
                                 elem_bytes=CELL_BYTES)

        # Real free-flight trajectories through the wind tunnel.
        rng = np.random.RandomState(self.seed)
        pos = rng.rand(self.n, 3) * np.array([nx, ny, nz])
        vel = rng.randn(self.n, 3) * 0.4 + np.array([1.2, 0.0, 0.0])
        dims = np.array([nx, ny, nz], dtype=float)
        self._visits: "list[np.ndarray]" = []
        for _ in range(self.iterations):
            pos = pos + vel
            # Reflect at the walls; wrap in the streamwise direction.
            for axis in (1, 2):
                over = pos[:, axis] > dims[axis]
                under = pos[:, axis] < 0
                pos[over, axis] = 2 * dims[axis] - pos[over, axis]
                pos[under, axis] = -pos[under, axis]
                vel[over | under, axis] *= -1
            pos[:, 0] %= dims[0]
            cell = (pos.astype(np.int64).clip([0, 0, 0],
                                              [nx - 1, ny - 1, nz - 1])
                    @ np.array([ny * nz, nz, 1], dtype=np.int64))
            self._visits.append(cell)

    def generator(self, cpu_id: int, num_cpus: int):
        # Run-coalesced view of the kernel's stream: op-for-op
        # identical after expansion (see coalesce_stream).
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        particles, space = self.particles, self.space
        mine = self.block_range(self.n, cpu_id, num_cpus)
        bid = 0
        for step in range(self.iterations):
            visits = self._visits[step][mine.start:mine.stop].tolist()
            for p, cell in zip(mine, visits):
                # Move: read/update the particle record.
                yield particles.read(p)
                yield compute(10)
                yield particles.write(p)
                # Collision bookkeeping in the space cell.
                yield space.read(cell)
                yield space.write(cell)
            yield barrier(bid)
            bid += 1
