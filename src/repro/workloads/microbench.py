"""The memory-latency microbenchmark behind Table 1.

The paper measures uncontended cache-miss latencies and paging
overheads "by a memory-latency microbenchmark".  This module sets up
the same scenarios on a small machine and measures each access with the
simulator's own reference path, so the numbers reflect exactly what
application references pay.

Every probe isolates one Table 1 row; all probes leave large time gaps
between accesses so resources are idle (uncontended latencies).
"""

from __future__ import annotations

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine

#: Gap between probe accesses, enough for any resource to drain.
GAP = 100_000


def _microbench_config(**overrides) -> MachineConfig:
    cfg = MachineConfig(
        num_nodes=8,
        cpus_per_node=2,
        page_bytes=1024,
        line_bytes=32,
        l1=CacheConfig(1024, 32, 2),
        l2=CacheConfig(8192, 32, 4),
        tlb_entries=16,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


class LatencyProbe:
    """Drives crafted references through a machine and times them."""

    def __init__(self, config: "MachineConfig | None" = None,
                 policy: str = "lanuma") -> None:
        self.machine = Machine(config or _microbench_config(), policy=policy)
        self.clock = 0
        # One large shared segment; gpage g is homed at node g % N.
        self.region = self.machine.layout.attach_shared(
            key=9001, size_bytes=256 * self.machine.config.page_bytes)
        self.private = self.machine.layout.add_private(
            64 * self.machine.config.page_bytes)

    # -- plumbing --------------------------------------------------------

    def access(self, cpu_index: int, vaddr: int, write: bool = False) -> int:
        """One reference; returns its latency in cycles."""
        self.clock += GAP
        cpu = self.machine.cpus[cpu_index]
        end = self.machine._access(cpu, vaddr, write, self.clock)
        return end - self.clock

    def cpu_on_node(self, node_id: int, local: int = 0) -> int:
        """Global CPU index of a node's ``local``-th CPU."""
        return node_id * self.machine.config.cpus_per_node + local

    def shared_vaddr(self, page_index: int, line_in_page: int = 0) -> int:
        """Virtual address of a line within the probe region."""
        cfg = self.machine.config
        return (self.region.vbase + page_index * cfg.page_bytes
                + line_in_page * cfg.line_bytes)

    def warm_directory(self, page_index: int, line_in_page: int) -> None:
        """Pre-touch a directory-cache entry so the measured access sees
        a directory cache hit (Table 1 reports steady-state latencies)."""
        gpage = self.region.gpage_base + page_index
        home = self.machine.nodes[self.machine.dynamic_home_of(gpage)]
        home.directory.cache.access(gpage, line_in_page)

    def page_homed_at(self, node_id: int, skip: int = 0) -> int:
        """Index (within the region) of a page homed at ``node_id``."""
        base_gpage = self.region.gpage_base
        count = 0
        for i in range(256):
            if self.machine.static_home_of(base_gpage + i) == node_id:
                if count == skip:
                    return i
                count += 1
        raise RuntimeError("no page homed at node %d" % node_id)

    # -- Table 1 probes ---------------------------------------------------

    def probe_l1_hit(self) -> int:
        """A plain L1 hit (1 cycle)."""
        vaddr = self.private.vbase
        self.access(0, vaddr)          # fault + cold miss
        return self.access(0, vaddr)   # L1 hit

    def probe_l2_hit(self) -> int:
        """L1 miss, L2 hit: evict a line from L1 (2-way) with two
        same-L1-set lines from other pages, then re-access it."""
        cfg = self.machine.config
        page = cfg.page_bytes
        target = self.private.vbase
        self.access(0, target)                    # fault + miss (page 0)
        self.access(0, target + page)             # fault page 1
        self.access(0, target + 2 * page)         # fault page 2
        self.access(0, target + page)             # same L1 set as target
        self.access(0, target + 2 * page)         # evicts target from L1
        return self.access(0, target)

    def probe_local_memory(self) -> int:
        """'Uncached, line in local memory' (Table 1)."""
        vaddr = self.private.vbase + 3 * self.machine.config.page_bytes
        self.access(0, vaddr)                          # fault the page
        return self.access(0, vaddr + self.machine.config.line_bytes)

    def probe_tlb_miss(self) -> int:
        """'TLB miss' (Table 1)."""
        cfg = self.machine.config
        base = self.private.vbase + 8 * cfg.page_bytes
        lines_per_page = cfg.lines_per_page
        pages = cfg.tlb_entries + 4
        for p in range(pages):
            # Distinct lines so the measured page's line stays cached.
            self.access(0, base + p * cfg.page_bytes
                        + (p % lines_per_page) * cfg.line_bytes)
        # Page 0's translation has been evicted; its line is still in L2
        # or L1, so the extra cost over a hit is the TLB reload.
        return self.access(0, base) - self.machine.config.latency.l1_hit

    def probe_remote_clean(self) -> int:
        """'Uncached, line in remote memory' (Table 1)."""
        home = 1
        page = self.page_homed_at(home)
        client = self.cpu_on_node(0)
        self.access(client, self.shared_vaddr(page))          # fault
        self.warm_directory(page, 1)
        return self.access(client, self.shared_vaddr(page, 1))

    def probe_2party_modified(self) -> int:
        """'2-party read/write to a modified line' (Table 1)."""
        home = 2
        page = self.page_homed_at(home)
        home_cpu = self.cpu_on_node(home)
        client = self.cpu_on_node(0)
        vaddr = self.shared_vaddr(page, 2)
        self.access(home_cpu, vaddr, write=True)   # dirty in home's cache
        self.access(client, self.shared_vaddr(page, 3))       # fault page
        self.warm_directory(page, 2)
        return self.access(client, vaddr)

    def probe_3party_modified(self) -> int:
        """'3-party read/write to a modified line' (Table 1)."""
        home = 3
        page = self.page_homed_at(home)
        owner = self.cpu_on_node(4)
        requester = self.cpu_on_node(5)
        vaddr = self.shared_vaddr(page, 4)
        self.access(owner, vaddr, write=True)      # owner node holds M
        self.access(requester, self.shared_vaddr(page, 5))    # fault page
        return self.access(requester, vaddr)

    def probe_2party_write_shared(self) -> int:
        """'2-party write to shared line' (Table 1)."""
        home = 6
        page = self.page_homed_at(home)
        client = self.cpu_on_node(0)
        vaddr = self.shared_vaddr(page, 6)
        self.access(client, vaddr)                 # shared copy
        return self.access(client, vaddr, write=True)

    def probe_write_shared(self, extra_sharers: int) -> int:
        """'(3+n)-party write to shared line' (Table 1)."""
        home = 7
        page = self.page_homed_at(home)
        vaddr = self.shared_vaddr(page, 7)
        writer_node = 0
        sharer_nodes = [n for n in range(self.machine.config.num_nodes)
                        if n not in (home, writer_node)]
        readers = sharer_nodes[:1 + extra_sharers]
        self.access(self.cpu_on_node(writer_node), vaddr)
        for node in readers:
            self.access(self.cpu_on_node(node), vaddr)
        return self.access(self.cpu_on_node(writer_node), vaddr, write=True)

    def probe_fault_local(self) -> int:
        """'In-core page fault, local home' (Table 1)."""
        vaddr = self.private.vbase + 40 * self.machine.config.page_bytes
        full = self.access(0, vaddr)
        return full - self.machine.config.latency.expected_local_memory

    def probe_fault_remote(self) -> int:
        """'In-core page fault, remote home' (Table 1)."""
        page = self.page_homed_at(1, skip=8)
        vaddr = self.shared_vaddr(page, 8)
        self.warm_directory(page, 8)
        full = self.access(self.cpu_on_node(0), vaddr)
        return full - self.machine.config.latency.expected_remote_clean


def run_microbenchmark(config: "MachineConfig | None" = None) -> "dict[str, int]":
    """Measure every Table 1 row; returns ``{row_name: cycles}``."""
    results: "dict[str, int]" = {}
    probe = LatencyProbe(config)
    results["l2_hit"] = probe.probe_l2_hit()
    results["local_memory"] = probe.probe_local_memory()
    results["remote_clean"] = probe.probe_remote_clean()
    results["2party_modified"] = probe.probe_2party_modified()
    results["3party_modified"] = probe.probe_3party_modified()
    results["2party_write_shared"] = probe.probe_2party_write_shared()
    base = LatencyProbe(config).probe_write_shared(0)
    results["write_shared_base"] = base
    with_two = LatencyProbe(config).probe_write_shared(2)
    results["write_shared_per_sharer"] = (with_two - base) // 2
    results["tlb_miss"] = probe.probe_tlb_miss()
    fresh = LatencyProbe(config)
    results["fault_local"] = fresh.probe_fault_local()
    results["fault_remote"] = fresh.probe_fault_remote()
    return results
