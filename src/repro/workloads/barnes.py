"""Barnes kernel (SPLASH-2 BARNES: hierarchical Barnes-Hut N-body).

Barnes-Hut computes gravitational forces by traversing a spatial tree:
nearby bodies are visited individually, distant regions are
approximated by their cells' centres of mass.  We reproduce that access
structure with a real spatial decomposition built at setup (uniform
grid binning with numpy): each body's interaction list contains the
individual bodies of its own and adjacent cells (irregular, scattered
reads across other CPUs' bodies) and the summarized cells for the rest
of space (heavily reused upper-"tree" data — the classic Barnes locality
that a page cache captures).

Each timestep: (1) cell-summary build — CPUs accumulate their bodies
into the shared cell array under per-cell locks; (2) barrier;
(3) force computation over the interaction lists with private
accumulation; (4) barrier; (5) body position/velocity update.

Paper data set: 8K particles, 4 iterations.  Default here: 2048
particles, 3 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (PrivateArray, SharedArray, Workload,
                                  barrier, coalesce_stream, compute,
                                  lock, unlock)

BODY_BYTES = 64   # position + velocity + mass (2 cache lines)
ACC_BYTES = 32    # acceleration vector (1 cache line)
CELL_BYTES = 32   # centre of mass + total mass (1 cache line)


class BarnesWorkload(Workload):
    """Barnes-Hut N-body (see module docstring)."""

    name = "barnes"
    description = "Hierarchical Barnes-Hut N-body"
    paper_problem = "8K particles, 4 iterations"

    def __init__(self, bodies: int = 2048, iterations: int = 3,
                 cells_per_dim: int = 8, seed: int = 4242) -> None:
        super().__init__()
        if cells_per_dim % 2:
            raise ValueError("cells_per_dim must be even (supercell level)")
        self.n = bodies
        self.iterations = iterations
        self.cells_per_dim = cells_per_dim
        self.seed = seed
        self.problem = "%d particles, %d iterations" % (bodies, iterations)

    def setup(self, layout, num_cpus: int) -> None:
        n = self.n
        d = self.cells_per_dim
        self.num_cells = d * d * d
        self.bodies = SharedArray(layout, key=501, num_elems=n,
                                  elem_bytes=BODY_BYTES)
        self.accels = SharedArray(layout, key=502, num_elems=n,
                                  elem_bytes=ACC_BYTES)
        self.cells = SharedArray(layout, key=503, num_elems=self.num_cells,
                                 elem_bytes=CELL_BYTES)
        half = d // 2
        self.supercells = SharedArray(layout, key=504,
                                      num_elems=half * half * half,
                                      elem_bytes=CELL_BYTES)
        self.scratch = [PrivateArray(layout, 16, 32) for _ in range(num_cpus)]

        # Real spatial decomposition: cluster the bodies (Plummer-ish
        # clumping) and bin them into the uniform cell grid.
        rng = np.random.RandomState(self.seed)
        centers = rng.rand(8, 3)
        pos = (centers[rng.randint(0, 8, n)]
               + rng.randn(n, 3) * 0.08) % 1.0
        cell_idx = ((pos * d).astype(np.int64).clip(0, d - 1)
                    @ np.array([d * d, d, 1], dtype=np.int64))
        # Reorder bodies by cell (the spatial reordering real Barnes-Hut
        # codes perform): neighbours in space become neighbours in the
        # body array, which is what gives the page cache its locality.
        order = np.argsort(cell_idx, kind="stable")
        pos = pos[order]
        cell_idx = cell_idx[order]
        self._cell_of_body = cell_idx

        # Bodies per cell, and each body's interaction list — the
        # Barnes-Hut opening criterion over two tree levels: individual
        # bodies from the 27-cell neighbourhood, mid-distance cells as
        # cell nodes, everything farther as supercell (parent) nodes.
        # Only non-empty cells appear, like real BH nodes.
        members: "dict[int, list[int]]" = {}
        for body, cell in enumerate(cell_idx.tolist()):
            members.setdefault(cell, []).append(body)
        nonempty = sorted(members)
        self._body_lists: "list[list[int]]" = []
        self._cell_lists: "list[list[int]]" = []
        self._super_lists: "list[list[int]]" = []
        coords = {c: (c // (d * d), (c // d) % d, c % d) for c in nonempty}
        half = d // 2

        def supercell_of(cell: int) -> int:
            x, y, z = coords[cell]
            return (x // 2) * half * half + (y // 2) * half + (z // 2)

        max_near = 32
        for body in range(n):
            cx, cy, cz = coords[int(cell_idx[body])]
            near_bodies: "list[int]" = []
            mid_cells: "list[int]" = []
            far_supers: "set[int]" = set()
            for cell in nonempty:
                x, y, z = coords[cell]
                dist = max(abs(x - cx), abs(y - cy), abs(z - cz))
                if dist <= 1:
                    near_bodies.extend(members[cell])
                elif dist <= 3:
                    mid_cells.append(cell)
                else:
                    far_supers.add(supercell_of(cell))
            near_bodies = [b for b in near_bodies if b != body][:max_near]
            self._body_lists.append(near_bodies)
            self._cell_lists.append(mid_cells)
            self._super_lists.append(sorted(far_supers))

    def generator(self, cpu_id: int, num_cpus: int):
        # Run-coalesced view of the kernel's stream: op-for-op
        # identical after expansion (see coalesce_stream).
        return coalesce_stream(self._stream(cpu_id, num_cpus))

    def _stream(self, cpu_id: int, num_cpus: int):
        bodies, accels, cells = self.bodies, self.accels, self.cells
        scratch = self.scratch[cpu_id]
        mine = self.block_range(self.n, cpu_id, num_cpus)
        cell_of = self._cell_of_body.tolist()
        bid = 0
        for _ in range(self.iterations):
            # 1. Cell-summary build (tree construction analogue).
            for b in mine:
                yield bodies.read(b)
                cell = cell_of[b]
                yield lock(cell)
                yield cells.read(cell)
                yield cells.write(cell)
                yield unlock(cell)
            yield barrier(bid)
            bid += 1
            # 1b. Summarize cells into supercells (upper tree level).
            half = self.cells_per_dim // 2
            for sc in self.block_range(half * half * half, cpu_id, num_cpus):
                sx, sy, sz = sc // (half * half), (sc // half) % half, sc % half
                d = self.cells_per_dim
                for dx in (0, 1):
                    for dy in (0, 1):
                        for dz in (0, 1):
                            child = ((2 * sx + dx) * d * d
                                     + (2 * sy + dy) * d + (2 * sz + dz))
                            yield cells.read(child)
                yield self.supercells.write(sc)
            yield barrier(bid)
            bid += 1
            # 2. Force computation.
            for b in mine:
                yield bodies.read(b)
                yield scratch.write(0)
                for other in self._body_lists[b]:
                    yield bodies.read(other)
                yield compute(12 * len(self._body_lists[b]))
                for cell in self._cell_lists[b]:
                    yield cells.read(cell)
                yield compute(10 * len(self._cell_lists[b]))
                for sc in self._super_lists[b]:
                    yield self.supercells.read(sc)
                yield compute(10 * len(self._super_lists[b]))
                yield scratch.read(0)
                yield accels.write(b)
            yield barrier(bid)
            bid += 1
            # 3. Body update.
            for b in mine:
                yield accels.read(b)
                yield bodies.read(b)
                yield bodies.write(b)
            yield compute(6 * len(mine))
            yield barrier(bid)
            bid += 1
