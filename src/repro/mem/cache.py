"""Set-associative processor caches for the simulated nodes.

Each simulated CPU owns a two-level (L1/L2), inclusive, write-back
cache hierarchy.  Line states follow MESI, interpreted at machine scope:

* ``MODIFIED``  — this CPU holds the only valid copy, dirty.
* ``EXCLUSIVE`` — this CPU holds the only cached copy machine-wide and
  the backing memory (local page cache for S-COMA frames, the remote
  home for LA-NUMA frames) is up to date.
* ``SHARED``    — other caches (sibling CPUs or remote nodes) may hold
  copies; writes require an upgrade transaction.
* ``INVALID``   — not present.

Cache keys are *physical line numbers* (``frame * lines_per_page +
line-within-page``), which are node-local in PRISM.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import IntEnum

from repro.sim.config import CacheConfig

#: Shadow-mirror index fold (see :meth:`Cache.attach_shadow`): physical
#: line numbers are bimodal — real frames count up from zero, imaginary
#: (LA-NUMA) frames from ``1 << 40`` — so the dense mirror maps real
#: lines to ``[0, OFFSET)`` and imaginary lines to ``[OFFSET, 2*OFFSET)``
#: by subtracting the imaginary line base.  Lines outside either window
#: (never seen in practice) are simply not mirrored, which the replay
#: engine treats as "not provably a hit".
SHADOW_IMAG_OFFSET = 1 << 28


class LineState(IntEnum):
    """MESI line states, interpreted machine-wide (module docstring)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


_MODIFIED = LineState.MODIFIED


class Cache:
    """One level of set-associative, LRU, write-back cache.

    Alongside the per-set LRU maps the cache keeps ``flat``, a single
    ``line -> state`` dict over every resident line.  ``flat`` carries
    no LRU information — the per-set OrderedDicts remain authoritative
    for replacement — but it lets the simulator's front-line fast path
    resolve the dominant hit case with one dict probe instead of a
    method-call chain, and it makes :meth:`peek`/``in`` O(1) without a
    set-index computation.
    """

    __slots__ = ("num_sets", "associativity", "_sets", "flat", "hits",
                 "misses", "evictions", "shadow", "shadow_imag_line")

    def __init__(self, cfg: CacheConfig) -> None:
        self.num_sets = cfg.num_sets
        self.associativity = cfg.associativity
        self._sets: "list[OrderedDict[int, LineState]]" = [
            OrderedDict() for _ in range(self.num_sets)]
        #: line -> state mirror of every resident line (all sets).
        self.flat: "dict[int, LineState]" = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Optional dense numpy int8 mirror (folded line id -> state, 0
        #: when absent) kept for the vectorized replay engine
        #: (``repro.sim.replay``).  ``None`` — the default — costs every
        #: mutation path a single ``is not None`` test.  Attach with
        #: :meth:`attach_shadow`; must be attached while the cache is
        #: empty so the mirror starts in sync.
        self.shadow = None
        #: Line numbers at or above this come from imaginary frames and
        #: fold down by ``line - shadow_imag_line + SHADOW_IMAG_OFFSET``
        #: (set by :meth:`attach_shadow`; the machine supplies
        #: ``IMAGINARY_BASE * lines_per_page``).
        self.shadow_imag_line = 0

    def attach_shadow(self, shadow, imag_line_base: int) -> None:
        """Install a dense state mirror (see :attr:`shadow`)."""
        if self.flat:
            raise RuntimeError("attach_shadow on a non-empty cache")
        self.shadow = shadow
        self.shadow_imag_line = imag_line_base

    def _shadow_set(self, line: int, state: int) -> None:
        """Mirror ``line -> state``; unmirrorable lines are skipped
        (the replay engine then treats them as never-a-hit, which is
        safe — just slow)."""
        if line >= self.shadow_imag_line:
            idx = line - self.shadow_imag_line + SHADOW_IMAG_OFFSET
            if idx >= SHADOW_IMAG_OFFSET << 1:
                return
        else:
            idx = line
            if idx >= SHADOW_IMAG_OFFSET:
                return
        shadow = self.shadow
        if idx >= len(shadow):
            if not state:
                return  # beyond the array everything is already 0
            shadow = self._shadow_grow(idx)
        shadow[idx] = state

    def _shadow_grow(self, idx: int):
        """Grow the shadow array to cover ``idx`` (amortized doubling)."""
        import numpy as np
        old = self.shadow
        grown = np.zeros(max(2 * len(old), idx + 1024), dtype=np.int8)
        grown[:len(old)] = old
        self.shadow = grown
        return grown

    def lookup(self, line: int) -> LineState:
        """State of ``line``; touches LRU on hit."""
        state = self.flat.get(line)
        if state is None:
            self.misses += 1
            return LineState.INVALID
        self._sets[line % self.num_sets].move_to_end(line)
        self.hits += 1
        return state

    def peek(self, line: int) -> LineState:
        """State of ``line`` without touching LRU or hit counters."""
        return self.flat.get(line, LineState.INVALID)

    def insert(self, line: int, state: LineState) -> "tuple[int, LineState] | None":
        """Insert ``line`` (must not be present); returns the evicted
        ``(line, state)`` if the set overflowed, else ``None``."""
        cache_set = self._sets[line % self.num_sets]
        victim = None
        if len(cache_set) >= self.associativity:
            victim = cache_set.popitem(last=False)
            del self.flat[victim[0]]
            self.evictions += 1
        cache_set[line] = state
        self.flat[line] = state
        if self.shadow is not None:
            if victim is not None:
                self._shadow_set(victim[0], 0)
            self._shadow_set(line, state)
        return victim

    def set_state(self, line: int, state: LineState) -> None:
        """Change the state of a resident line (no LRU touch)."""
        cache_set = self._sets[line % self.num_sets]
        if line not in cache_set:
            raise KeyError("line %d not resident" % line)
        cache_set[line] = state
        self.flat[line] = state
        if self.shadow is not None:
            self._shadow_set(line, state)

    def remove(self, line: int) -> LineState:
        """Remove ``line``; returns its previous state (INVALID if absent)."""
        state = self.flat.pop(line, None)
        if state is None:
            return LineState.INVALID
        del self._sets[line % self.num_sets][line]
        if self.shadow is not None:
            self._shadow_set(line, 0)
        return state

    def resident_lines(self) -> "list[int]":
        """Every line currently resident (all sets)."""
        return [line for cache_set in self._sets for line in cache_set]

    def __contains__(self, line: int) -> bool:
        return line in self.flat

    def __len__(self) -> int:
        return len(self.flat)


class NodePresence:
    """Which local CPUs cache each physical line of this node.

    The bus snooping logic (sibling supply, sibling invalidation) and
    the controller's intervention paths consult this instead of probing
    every CPU's caches.  Only residency is tracked; per-CPU states are
    read from the hierarchies on the (infrequent) paths that need them.
    """

    __slots__ = ("_holders",)

    def __init__(self) -> None:
        self._holders: "dict[int, set[int]]" = {}

    def add(self, line: int, local_cpu: int) -> None:
        """Record that ``local_cpu`` now caches ``line``."""
        holders = self._holders.get(line)
        if holders is None:
            self._holders[line] = {local_cpu}
        else:
            holders.add(local_cpu)

    def remove(self, line: int, local_cpu: int) -> None:
        """Record that ``local_cpu`` dropped ``line``."""
        holders = self._holders.get(line)
        if holders is None:
            return
        holders.discard(local_cpu)
        if not holders:
            del self._holders[line]

    def holders(self, line: int) -> "set[int]":
        """Local CPUs caching ``line``."""
        return self._holders.get(line, _EMPTY_SET)

    def any_holder(self, line: int) -> bool:
        """Does any local CPU cache ``line``?"""
        return line in self._holders

    def drop_line(self, line: int) -> None:
        """Forget every holder of ``line``."""
        self._holders.pop(line, None)


_EMPTY_SET: "frozenset[int]" = frozenset()


class CacheHierarchy:
    """Inclusive L1/L2 pair for one CPU.

    The hierarchy only manages residency and per-CPU state; machine-wide
    coherence decisions (what state a fill is granted, what happens to
    evicted dirty lines) are made by the node and controller models,
    which call back into :meth:`fill`, :meth:`invalidate` and
    :meth:`downgrade`.
    """

    __slots__ = ("l1", "l2")

    def __init__(self, l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> None:
        self.l1 = Cache(l1_cfg)
        self.l2 = Cache(l2_cfg)

    # -- lookups -------------------------------------------------------

    def probe(self, line: int) -> "tuple[str, LineState]":
        """Where ``line`` lives: ('l1'|'l2'|'miss', state).

        An L2-only hit is promoted into L1 (possibly spilling an L1
        victim back to L2, which is free under inclusion since the L2
        copy is still resident).
        """
        state = self.l1.lookup(line)
        if state != LineState.INVALID:
            return "l1", state
        state = self.probe_l2(line)
        if state == LineState.INVALID:
            return "miss", LineState.INVALID
        return "l2", state

    def probe_l2(self, line: int) -> LineState:
        """The L2 half of :meth:`probe`, for callers that already
        resolved the L1 miss against ``l1.flat``: looks ``line`` up in
        L2 and promotes a hit into L1.  Returns the line state
        (INVALID on a full miss)."""
        state = self.l2.lookup(line)
        if state != LineState.INVALID:
            self._promote_to_l1(line, state)
        return state

    def state(self, line: int) -> LineState:
        """Machine-visible state of ``line`` in this hierarchy."""
        state = self.l1.peek(line)
        if state != LineState.INVALID:
            return state
        return self.l2.peek(line)

    # -- mutations -----------------------------------------------------

    def fill(self, line: int, state: LineState) -> "list[tuple[int, LineState]]":
        """Install a missing line in L2+L1 with ``state``.

        Returns the list of lines this CPU *lost* as ``(line, state)``
        pairs — L2 victims (with their merged L1 dirtiness) that the
        node must write back (if MODIFIED) and deregister.

        Both inserts are :meth:`Cache.insert` spelled out inline (same
        LRU replacement, same eviction counters) — fill runs once per
        miss and the call overhead was measurable.
        """
        lost: "list[tuple[int, LineState]]" = []
        l1, l2 = self.l1, self.l2
        cache_set = l2._sets[line % l2.num_sets]
        if len(cache_set) >= l2.associativity:
            vline, vstate = cache_set.popitem(last=False)
            del l2.flat[vline]
            l2.evictions += 1
            if l2.shadow is not None:
                l2._shadow_set(vline, 0)
            l1_state = l1.remove(vline)  # inclusion
            if l1_state == _MODIFIED:
                vstate = _MODIFIED
            lost.append((vline, vstate))
        cache_set[line] = state
        l2.flat[line] = state
        if l2.shadow is not None:
            l2._shadow_set(line, state)
        cache_set = l1._sets[line % l1.num_sets]
        if len(cache_set) >= l1.associativity:
            vline, vstate = cache_set.popitem(last=False)
            del l1.flat[vline]
            l1.evictions += 1
            if l1.shadow is not None:
                l1._shadow_set(vline, 0)
            # Inclusion: L2 still holds the line; merge dirtiness down.
            if vstate == _MODIFIED:
                l2.set_state(vline, _MODIFIED)
        cache_set[line] = state
        l1.flat[line] = state
        if l1.shadow is not None:
            l1._shadow_set(line, state)
        return lost

    def write_hit(self, line: int) -> None:
        """Mark a resident line MODIFIED in L1 (and L2 for inclusion
        bookkeeping the machine relies on during flushes)."""
        if line in self.l1:
            self.l1.set_state(line, LineState.MODIFIED)
        if line in self.l2:
            self.l2.set_state(line, LineState.MODIFIED)
        else:  # pragma: no cover - inclusion guarantees L2 residency
            raise KeyError("write_hit on non-resident line %d" % line)

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; returns True if a dirty copy was lost."""
        dirty = self.l1.remove(line) == LineState.MODIFIED
        dirty = self.l2.remove(line) == LineState.MODIFIED or dirty
        return dirty

    def downgrade(self, line: int) -> bool:
        """M/E -> SHARED (remote read of our exclusive line).

        Returns True if the copy was dirty (data must be supplied).
        """
        dirty = False
        for cache in (self.l1, self.l2):
            state = cache.peek(line)
            if state == LineState.MODIFIED:
                dirty = True
            if state != LineState.INVALID:
                cache.set_state(line, LineState.SHARED)
        return dirty

    def _promote_to_l1(self, line: int, state: LineState) -> None:
        # Cache.insert inlined (same replacement and counters): this
        # runs on every L2 hit.
        l1 = self.l1
        cache_set = l1._sets[line % l1.num_sets]
        if len(cache_set) >= l1.associativity:
            vline, vstate = cache_set.popitem(last=False)
            del l1.flat[vline]
            l1.evictions += 1
            if l1.shadow is not None:
                l1._shadow_set(vline, 0)
            if vstate == _MODIFIED:
                self.l2.set_state(vline, _MODIFIED)
        cache_set[line] = state
        l1.flat[line] = state
        if l1.shadow is not None:
            l1._shadow_set(line, state)
