"""Split-transaction memory bus model.

The paper models a 16-byte-wide, fully-pipelined, split-transaction bus
with separate address and data paths running at half processor speed.
We model the two paths as independent FCFS resources: an address-phase
occupancy per request and a data-phase occupancy per line transfer.
A split bus means the requester does not hold the bus while a remote
transaction is outstanding — only the address and data phases occupy it.
"""

from __future__ import annotations

from repro.sim.engine import Resource
from repro.sim.latency import LatencyModel


class MemoryBus:
    """The memory bus of one node."""

    __slots__ = ("node_id", "address_path", "data_path", "lat",
                 "transactions", "retries")

    def __init__(self, node_id: int, lat: LatencyModel) -> None:
        self.node_id = node_id
        self.lat = lat
        self.address_path = Resource("node%d.bus.addr" % node_id)
        self.data_path = Resource("node%d.bus.data" % node_id)
        self.transactions = 0
        self.retries = 0

    def request(self, now: int) -> int:
        """Run an address phase; returns its completion time."""
        self.transactions += 1
        return self.address_path.acquire(now, self.lat.bus_request)

    def transfer(self, now: int) -> int:
        """Run a data phase for one cache line; returns completion time."""
        return self.data_path.acquire(now, self.lat.bus_data)

    def retry(self, now: int) -> int:
        """A bus retry (e.g. fine-grain tag in Transit).  Charged as an
        extra address phase."""
        self.retries += 1
        return self.address_path.acquire(now, self.lat.bus_request)


class NodeMemory:
    """Local DRAM of one node, as a latency/occupancy model.

    Data contents are not simulated — only residency and timing.  The
    memory services uncached reads for Local and S-COMA frames and
    absorbs write-backs.
    """

    __slots__ = ("node_id", "port", "lat", "reads", "writes")

    def __init__(self, node_id: int, lat: LatencyModel) -> None:
        self.node_id = node_id
        self.lat = lat
        self.port = Resource("node%d.dram" % node_id)
        self.reads = 0
        self.writes = 0

    def read(self, now: int) -> int:
        """Uncached line read from local DRAM; returns completion time."""
        self.reads += 1
        return self.port.acquire(now, self.lat.local_memory)

    def write(self, now: int) -> int:
        """Line write-back into local DRAM.  Write-backs are buffered in
        real hardware; we charge port occupancy but the caller normally
        does not put this on the critical path."""
        self.writes += 1
        return self.port.acquire(now, self.lat.local_memory // 2)
