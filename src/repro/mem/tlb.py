"""Per-CPU translation lookaside buffer.

PRISM keeps virtual-to-physical translations *node private* (section 3),
so a TLB maps the process virtual page number to a node-local frame
number.  Because translations are private, page mode changes and page
migrations never require global ("shootdown") TLB invalidations — only
the CPUs of the local node are touched, which the kernel model exploits.
"""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Fully-associative LRU TLB of ``entries`` translations.

    ``last_vpage``/``last_frame`` memoize the most recent translation
    as plain attributes, so the simulator's reference loop resolves the
    dominant same-page case without a method call.  The memo is only
    ever a copy of the MRU entry: :meth:`lookup`/:meth:`insert` refresh
    it and :meth:`invalidate`/:meth:`flush` clear it, so consulting it
    is indistinguishable (including final LRU order) from calling
    :meth:`lookup` — callers that use it must bump :attr:`hits`
    themselves.
    """

    __slots__ = ("entries", "_map", "hits", "misses",
                 "last_vpage", "last_frame")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.last_vpage = -1
        self.last_frame = -1

    def lookup(self, vpage: int) -> "int | None":
        """Frame backing ``vpage``, or ``None`` on a TLB miss."""
        frame = self._map.get(vpage)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(vpage)
        self.hits += 1
        self.last_vpage = vpage
        self.last_frame = frame
        return frame

    def insert(self, vpage: int, frame: int) -> None:
        """Install a translation, evicting the LRU entry if full."""
        if vpage in self._map:
            self._map.move_to_end(vpage)
        elif len(self._map) >= self.entries:
            evicted, _ = self._map.popitem(last=False)
            if evicted == self.last_vpage:
                self.last_vpage = -1
        self._map[vpage] = frame
        self.last_vpage = vpage
        self.last_frame = frame

    def invalidate(self, vpage: int) -> bool:
        """Drop the translation for ``vpage``; True if it was present."""
        if vpage == self.last_vpage:
            self.last_vpage = -1
        return self._map.pop(vpage, None) is not None

    def flush(self) -> None:
        """Drop every translation."""
        self.last_vpage = -1
        self._map.clear()

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._map

    def __len__(self) -> int:
        return len(self._map)
