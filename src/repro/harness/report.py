"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations


class TextTable:
    """A simple fixed-width text table."""

    def __init__(self, title: str, columns: "list[str]") -> None:
        self.title = title
        self.columns = columns
        self.rows: "list[list[str]]" = []

    def add_row(self, *cells) -> None:
        """Append one row (one cell per column)."""
        if len(cells) != len(self.columns):
            raise ValueError("expected %d cells, got %d"
                             % (len(self.columns), len(cells)))
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """The table as fixed-width text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        out.append(sep)
        for row in self.rows:
            out.append(" | ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                                  for c, w in zip(row, widths)))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def _numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
    except ValueError:
        return False
    return True


def ratio(ours: float, paper: float) -> str:
    """Format an ours-vs-paper ratio for shape comparison."""
    if paper == 0:
        return "n/a"
    return "%.2fx" % (ours / paper)
