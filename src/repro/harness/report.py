"""Plain-text table rendering and live progress for the experiment
harness."""

from __future__ import annotations

import sys
import time


class CampaignProgress:
    """Live per-cell progress lines for a campaign run.

    A campaign is a set of (workload, policy) *cells*.  The parallel
    session calls :meth:`expect` when it schedules a batch of cells and
    :meth:`cell_done` as each one completes (possibly out of order);
    each completion prints one line.  :meth:`summary` renders the
    wall-clock totals — simulated vs cache-hit cells — for the whole
    campaign.
    """

    def __init__(self, stream=None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.enabled = enabled
        self.total = 0
        self.done = 0
        self.cached = 0
        #: Result-cache lookup counters, reported by the session at the
        #: end of each batch (None until :meth:`note_cache` is called —
        #: e.g. when the session runs without a cache).
        self.cache_hits: "int | None" = None
        self.cache_misses: "int | None" = None
        self.started = time.perf_counter()

    def expect(self, cells: int) -> None:
        """Announce ``cells`` more cells to run (totals accumulate)."""
        self.total += cells

    def note_cache(self, hits: int, misses: int) -> None:
        """Record the session's result-cache lookup counters (absolute
        values, not increments; the latest call wins)."""
        self.cache_hits = hits
        self.cache_misses = misses

    def cell_done(self, workload: str, policy: str, seconds: float,
                  cached: bool = False) -> None:
        """Record (and print) one completed campaign cell."""
        self.done += 1
        if cached:
            self.cached += 1
        if not self.enabled:
            return
        note = "cached" if cached else "%.2fs" % seconds
        width = len(str(self.total)) if self.total else 1
        self.stream.write("  [%*d/%s] %-10s %-9s %s\n"
                          % (width, self.done,
                             self.total if self.total else "?",
                             workload, policy, note))
        self.stream.flush()

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since this tracker was created."""
        return time.perf_counter() - self.started

    def summary(self) -> str:
        """One-line wall-clock summary of the whole campaign."""
        line = ("campaign: %d cells in %.1fs wall-clock"
                " (%d simulated, %d cache hits)"
                % (self.done, self.elapsed, self.done - self.cached,
                   self.cached))
        if self.cache_hits is not None:
            line += (" [result cache: %d hits, %d misses]"
                     % (self.cache_hits, self.cache_misses))
        return line


class TextTable:
    """A simple fixed-width text table."""

    def __init__(self, title: str, columns: "list[str]") -> None:
        self.title = title
        self.columns = columns
        self.rows: "list[list[str]]" = []

    def add_row(self, *cells) -> None:
        """Append one row (one cell per column)."""
        if len(cells) != len(self.columns):
            raise ValueError("expected %d cells, got %d"
                             % (len(self.columns), len(cells)))
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """The table as fixed-width text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        out.append(sep)
        for row in self.rows:
            out.append(" | ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                                  for c, w in zip(row, widths)))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def _numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
    except ValueError:
        return False
    return True


def ratio(ours: float, paper: float) -> str:
    """Format an ours-vs-paper ratio for shape comparison."""
    if paper == 0:
        return "n/a"
    return "%.2fx" % (ours / paper)
