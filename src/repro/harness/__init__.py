"""Benchmark harness: regenerates every table and figure of the paper.

Quick use::

    from repro.harness import run_paper_evaluation
    report = run_paper_evaluation(preset="small")
    print(report)

See EXPERIMENTS.md for the paper-vs-measured record produced with the
``default`` preset.
"""

from __future__ import annotations

from repro.harness.figures import figure7_ascii, figure7_series, figure7_table
from repro.harness.compare import (CampaignDiff, Delta,
                                   compare_campaigns)
from repro.harness.export import (campaign_to_dict, figure7_csv,
                                  load_campaign, metrics_to_dict,
                                  result_to_dict, runs_csv, save_campaign,
                                  save_metrics, suite_to_dict)
from repro.harness.report import CampaignProgress
from repro.harness.runner import (PAPER_POLICIES, SuiteResult,
                                  derive_page_cache_caps)
from repro.harness.session import ExperimentSpec, ResultCache, Session
from repro.harness.sweep import (SweepResult, cache_fraction_sweep,
                                 render_sweep)
from repro.harness.tables import (metrics_table, pit_sensitivity, table1,
                                  table2, table3, table4, table5)
from repro.workloads import APPLICATIONS


def run_paper_evaluation(apps=APPLICATIONS, preset: str = "default",
                         config=None, include_pit: bool = True,
                         verbose: bool = False, jobs: int = 1,
                         cache_dir: "str | None" = None,
                         collect_metrics: bool = False,
                         engine: str = "interp") -> str:
    """Run the full evaluation campaign and render every table/figure.

    ``jobs`` widens the worker pool (independent campaign cells run in
    parallel; the output is byte-identical at any width) and
    ``cache_dir`` enables the on-disk result cache so a re-run only
    recomputes cells whose (spec, config) inputs changed.
    ``collect_metrics`` additionally snapshots a metrics registry per
    simulated cell (cached next to the stats; rendered tables are
    unchanged).  ``engine`` selects the simulation core for the
    campaign cells (Table 1's latency probes drive the reference path
    directly and are engine-free); it only applies when ``config`` is
    None — an explicit config carries its own engine field.
    """
    if config is None and engine != "interp":
        from repro.sim.config import MachineConfig
        campaign_config = MachineConfig(engine=engine)
    else:
        campaign_config = config
    session = Session(jobs=jobs, cache_dir=cache_dir,
                      progress=CampaignProgress() if verbose else None,
                      collect_metrics=collect_metrics)
    sections = [str(table1(config)), "", str(table2()), ""]
    suites = session.run_campaign(apps, preset=preset,
                                  config=campaign_config)
    sections += [figure7_ascii(suites), "",
                 str(figure7_table(suites)), "",
                 str(table3(suites)), "",
                 str(table4(suites)), "",
                 str(table5(suites)), ""]
    if include_pit:
        sections += [str(pit_sensitivity(apps, preset=preset,
                                         config=campaign_config,
                                         session=session)),
                     ""]
    if session.progress is not None:
        print(session.progress.summary(), flush=True)
    return "\n".join(sections)


__all__ = [
    "APPLICATIONS", "CampaignDiff", "CampaignProgress", "Delta",
    "ExperimentSpec", "PAPER_POLICIES", "ResultCache", "Session",
    "SuiteResult", "SweepResult", "compare_campaigns",
    "cache_fraction_sweep", "campaign_to_dict", "derive_page_cache_caps",
    "figure7_ascii", "figure7_csv", "figure7_series", "figure7_table",
    "load_campaign", "metrics_table", "metrics_to_dict",
    "pit_sensitivity", "render_sweep", "result_to_dict",
    "run_paper_evaluation",
    "runs_csv", "save_campaign", "save_metrics", "suite_to_dict",
    "table1", "table2", "table3", "table4", "table5",
]
