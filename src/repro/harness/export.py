"""Result persistence: serialize runs and campaigns to JSON / CSV.

``result_to_dict`` flattens one :class:`~repro.sim.machine.RunResult`;
``suite_to_dict`` covers a policy suite; ``save_campaign`` /
``load_campaign`` persist a whole Figure 7 campaign so EXPERIMENTS.md
numbers can be re-rendered without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.sim.machine import RunResult


def result_to_dict(result: RunResult) -> "dict[str, object]":
    """Flatten a run result (config geometry + headline + per-node)."""
    stats = result.stats
    cfg = result.config
    return {
        "workload": result.workload,
        "policy": result.policy,
        "config": {
            "num_nodes": cfg.num_nodes,
            "cpus_per_node": cfg.cpus_per_node,
            "page_bytes": cfg.page_bytes,
            "line_bytes": cfg.line_bytes,
            "l1_bytes": cfg.l1.size_bytes,
            "l2_bytes": cfg.l2.size_bytes,
            "page_cache_frames": cfg.page_cache_frames,
        },
        "summary": stats.summary(),
        "nodes": [asdict(n) for n in stats.nodes],
        "cpus": [asdict(c) for c in stats.cpus],
    }


def suite_to_dict(suite) -> "dict[str, object]":
    """Flatten a :class:`~repro.harness.runner.SuiteResult`."""
    return {
        "workload": suite.workload,
        "preset": suite.preset,
        "page_cache_caps": list(suite.page_cache_caps),
        "policies": {
            policy: {
                "normalized_time": suite.normalized_time(policy),
                "remote_misses": suite.remote_misses(policy),
                "page_outs": suite.page_outs(policy),
                "execution_cycles":
                    suite.results[policy].stats.execution_cycles,
            }
            for policy in suite.results
        },
    }


def campaign_to_dict(suites: "dict[str, object]") -> "dict[str, object]":
    """Flatten a whole campaign ({app: SuiteResult})."""
    return {app: suite_to_dict(suite) for app, suite in suites.items()}


def save_campaign(suites, path: str) -> None:
    """Write a campaign's flattened results as JSON."""
    with open(path, "w") as fh:
        json.dump(campaign_to_dict(suites), fh, indent=2, sort_keys=True)


def load_campaign(path: str) -> "dict[str, object]":
    """Read back a campaign saved by :func:`save_campaign`."""
    with open(path) as fh:
        return json.load(fh)


def metrics_to_dict(results: "list[RunResult]") -> "dict[str, object]":
    """Collect the metrics snapshots of many runs, keyed by cell.

    Cells without a snapshot (observability disabled, or served from a
    cache entry stored without metrics) appear with a null snapshot so
    the reader can tell "not collected" from "not run".
    """
    return {
        "%s/%s" % (result.workload, result.policy): result.metrics
        for result in results
    }


def save_metrics(results: "list[RunResult]", path: str) -> None:
    """Write the runs' metrics snapshots as a ``metrics.json``."""
    with open(path, "w") as fh:
        json.dump(metrics_to_dict(results), fh, indent=2, sort_keys=True)


def figure7_csv(suites) -> str:
    """Figure 7's series as CSV (one row per application)."""
    policies = sorted({p for s in suites.values() for p in s.results})
    lines = ["application," + ",".join(policies)]
    for app, suite in suites.items():
        cells = [app]
        for policy in policies:
            if policy in suite.results:
                cells.append("%.4f" % suite.normalized_time(policy))
            else:
                cells.append("")
        lines.append(",".join(cells))
    return "\n".join(lines)


def runs_csv(results: "list[RunResult]") -> str:
    """Headline stats of many runs as CSV."""
    if not results:
        return ""
    keys = sorted(results[0].stats.summary())
    lines = ["workload,policy," + ",".join(keys)]
    for result in results:
        summary = result.stats.summary()
        lines.append(",".join(
            [result.workload, result.policy]
            + [str(summary[k]) for k in keys]))
    return "\n".join(lines)
