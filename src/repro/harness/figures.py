"""Regenerate Figure 7: normalized execution time per policy.

The paper's Figure 7 plots, for each application, the execution time of
the six page-mode policies normalized to SCOMA (the infinite-page-cache
optimum).  ``figure7`` returns both the numeric series and an ASCII bar
rendering.
"""

from __future__ import annotations

from repro.harness import paperdata
from repro.harness.report import TextTable
from repro.harness.runner import PAPER_POLICIES


def figure7_series(suites) -> "dict[str, dict[str, float]]":
    """{app: {policy: normalized_time}} with SCOMA = 1.0."""
    series: "dict[str, dict[str, float]]" = {}
    for app, suite in suites.items():
        series[app] = {}
        for policy in suite.results:
            series[app][policy] = suite.normalized_time(policy)
    return series


def figure7_table(suites) -> TextTable:
    """Figure 7 as a numeric table (apps x policies)."""
    policies = [p for p in PAPER_POLICIES
                if all(p in s.results for s in suites.values())]
    table = TextTable(
        "Figure 7: execution time normalized to SCOMA",
        ["Application"] + list(policies))
    for app, suite in suites.items():
        table.add_row(app, *["%.2f" % suite.normalized_time(p)
                             for p in policies])
    return table


def figure7_ascii(suites, width: int = 40) -> str:
    """ASCII bar chart in the figure's layout (bars capped at 3.0x)."""
    lines = ["Figure 7: execution time under different page modes",
             "(normalized to SCOMA; bars capped at 3.0x)", ""]
    cap = 3.0
    for app, suite in suites.items():
        lines.append(app)
        for policy in PAPER_POLICIES:
            if policy not in suite.results:
                continue
            value = suite.normalized_time(policy)
            filled = int(min(value, cap) / cap * width)
            overflow = "+" if value > cap else ""
            lines.append("  %-9s |%s%s %.2f"
                         % (policy, "#" * filled, overflow, value))
        lines.append("")
    labelled = [
        "paper's labelled bars: " + ", ".join(
            "%s/%s=%.2f" % (app, pol, val)
            for (app, pol), val in paperdata.FIGURE7_LABELLED.items())]
    return "\n".join(lines + labelled)
