"""Parallel campaign engine: ``ExperimentSpec`` + ``Session``.

The paper's evaluation is a *campaign*: a grid of (workload, policy)
cells, each an independent :class:`~repro.sim.machine.Machine` run.  The
only true dependency is that a workload's SCOMA run must finish before
its capped policies (SCOMA-70, Dyn-*) can derive the per-node page-cache
caps (section 4.2).  The campaign is therefore a two-stage DAG:

* **stage 1** — every SCOMA run, plus every policy that needs no cap
  (LANUMA, CC-NUMA), fans out across a ``multiprocessing`` worker pool;
* **stage 2** — as each workload's SCOMA result lands, its capped
  policies are scheduled immediately (no global barrier between stages).

Cells are described by a frozen :class:`ExperimentSpec` and executed by
a :class:`Session`, which also maintains a content-addressed on-disk
result cache keyed by a stable hash of ``(spec, MachineConfig)``:
re-running ``evaluate`` after a config tweak only recomputes the cells
whose inputs changed.  The scheduler is deterministic in its *outputs* —
``--jobs 4`` produces byte-identical statistics to ``--jobs 1``; only
the wall clock changes.

Quick use::

    from repro.harness.session import ExperimentSpec, Session

    session = Session(jobs=4, cache_dir=".prism-cache")
    result = session.run(ExperimentSpec("fft", "scoma", preset="small"))
    suites = session.run_campaign(("fft", "lu"), preset="small")
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue
import tempfile
import time
from dataclasses import dataclass

from repro import obs
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine, RunResult
from repro.sim.replay import build_machine, set_trace_cache_dir
from repro.sim.stats import MachineStats
from repro.workloads import make_workload

#: Bump when the cached stats schema or simulator semantics change in a
#: way that invalidates previously cached results.
CACHE_SCHEMA = 1


@dataclass(frozen=True)
class ExperimentSpec:
    """One campaign cell: a workload under a policy on a machine.

    Immutable and hashable by content; the canonical description of a
    run for the scheduler, the worker handoff and the result cache.
    ``config=None`` means the default :class:`MachineConfig` (resolved
    explicitly, so a spec with ``config=None`` and one with
    ``config=MachineConfig()`` are the same cache entry).  ``seed`` is
    folded into the cache key for forward compatibility; the bundled
    SPLASH kernels are deterministic and ignore it.
    """

    workload: str
    policy: str
    preset: str = "default"
    config: "MachineConfig | None" = None
    page_cache_override: "tuple[int, ...] | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.page_cache_override is not None
                and not isinstance(self.page_cache_override, tuple)):
            object.__setattr__(self, "page_cache_override",
                               tuple(self.page_cache_override))

    def __hash__(self) -> int:
        # MachineConfig is a mutable dataclass and therefore unhashable;
        # hash the canonical content key instead (equal specs have equal
        # payloads, so the eq/hash contract holds).
        return hash(self.cache_key())

    def resolved_config(self) -> MachineConfig:
        """The machine configuration this spec runs on (never None)."""
        return self.config if self.config is not None else MachineConfig()

    def with_override(self, caps: "list[int] | tuple[int, ...]") -> "ExperimentSpec":
        """Copy of this spec with a per-node page-cache cap list."""
        return ExperimentSpec(workload=self.workload, policy=self.policy,
                              preset=self.preset, config=self.config,
                              page_cache_override=tuple(caps),
                              seed=self.seed)

    def to_payload(self) -> "dict[str, object]":
        """JSON-safe dict describing this spec, config fully resolved.

        This is both the worker-handoff format and the cache-key
        content; invert with :meth:`from_payload`.
        """
        return {
            "workload": self.workload,
            "policy": self.policy,
            "preset": self.preset,
            "seed": self.seed,
            "page_cache_override":
                (list(self.page_cache_override)
                 if self.page_cache_override is not None else None),
            "config": self.resolved_config().to_dict(),
        }

    @classmethod
    def from_payload(cls, payload: "dict[str, object]") -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_payload` output."""
        override = payload["page_cache_override"]
        return cls(workload=payload["workload"], policy=payload["policy"],
                   preset=payload["preset"], seed=payload["seed"],
                   page_cache_override=(tuple(override)
                                        if override is not None else None),
                   config=MachineConfig.from_dict(payload["config"]))

    def cache_key(self) -> str:
        """Stable content hash of (spec, resolved MachineConfig).

        ``config.engine`` is dropped before hashing: the interpreter
        and the vectorized replay engine produce byte-identical
        statistics (see :mod:`repro.sim.replay`), so results cache
        across engines — the same contract as
        :meth:`~repro.sim.config.MachineConfig.config_hash`.
        """
        payload = self.to_payload()
        payload["config"] = dict(payload["config"])
        payload["config"].pop("engine", None)
        canonical = json.dumps({"schema": CACHE_SCHEMA, **payload},
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable cell name for progress lines."""
        return "%s/%s" % (self.workload, self.policy)


def execute_spec(spec: ExperimentSpec) -> RunResult:
    """Run one spec in-process (no cache, no pool)."""
    override = (list(spec.page_cache_override)
                if spec.page_cache_override is not None else None)
    machine = build_machine(spec.resolved_config(), policy=spec.policy,
                            page_cache_override=override)
    return machine.run(make_workload(spec.workload, spec.preset))


def _worker_run(payload: "dict[str, object]",
                collect_metrics: bool = False,
                trace_cells: bool = False) -> "dict[str, object]":
    """Pool worker: simulate one cell, return JSON-safe stats.

    Takes and returns plain dicts so the worker handoff goes through
    the exact same serialization as the result cache — a parallel run
    cannot diverge from a sequential one by construction.

    ``collect_metrics`` is deliberately *not* part of the payload: it
    does not affect the simulation result, so it must not perturb the
    cache key.  When set, the cell runs under a fresh
    :func:`repro.obs.collecting` registry and the snapshot rides along
    as ``out["metrics"]``.  ``trace_cells`` (implies metrics) also
    installs a :class:`~repro.obs.tracing.TraceCollector` seeded with
    the spec seed, so the snapshot carries the ``trace.*`` roll-ups
    (per-segment critical-path histograms); like metrics collection it
    never changes the statistics or the cache key.
    """
    started = time.perf_counter()
    spec = ExperimentSpec.from_payload(payload)
    if collect_metrics or trace_cells:
        from repro.obs import tracing
        with obs.collecting() as registry:
            with obs.timer("harness.cell_wall_seconds"):
                if trace_cells:
                    with tracing.collecting(seed=spec.seed):
                        result = execute_spec(spec)
                else:
                    result = execute_spec(spec)
        metrics = registry.to_dict()
    else:
        result = execute_spec(spec)
        metrics = None
    return {"stats": result.stats.to_dict(),
            "metrics": metrics,
            "seconds": time.perf_counter() - started}


class ResultCache:
    """Content-addressed on-disk cache of finished runs.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is
    :meth:`ExperimentSpec.cache_key`; each file holds the spec payload
    (for inspection) and the full :class:`MachineStats` dict.  Writes
    are atomic (temp file + rename) so concurrent sessions sharing a
    cache directory never observe torn entries.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def load(self, spec: ExperimentSpec) -> "MachineStats | None":
        """The cached stats for ``spec``, or None on a miss."""
        return self.load_with_metrics(spec)[0]

    def load_with_metrics(
            self, spec: ExperimentSpec
    ) -> "tuple[MachineStats | None, dict[str, object] | None]":
        """Cached ``(stats, metrics snapshot)`` for ``spec``.

        ``metrics`` is None when the entry was stored by a run without
        metrics collection (the snapshot is an optional rider — its
        absence never invalidates the entry).
        """
        try:
            with open(self._path(spec.cache_key())) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None, None
        if entry.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None, None
        self.hits += 1
        return (MachineStats.from_dict(entry["stats"]),
                entry.get("metrics"))

    def store(self, spec: ExperimentSpec, stats: MachineStats,
              metrics: "dict[str, object] | None" = None) -> None:
        """Persist one finished cell (atomic, last writer wins)."""
        path = self._path(spec.cache_key())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "spec": spec.to_payload(),
                 "stats": stats.to_dict()}
        if metrics is not None:
            entry["metrics"] = metrics
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1


class _Scheduler:
    """Dispatches specs to a worker pool (or runs them inline).

    ``submit`` enqueues a cell; ``drain`` yields completion events in
    completion order and keeps going until everything submitted —
    including cells submitted *from inside* the drain loop, which is how
    stage-2 work chains off stage-1 results — has finished.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._events: "queue.Queue" = queue.Queue()
        self._outstanding = 0
        self._pool = (multiprocessing.Pool(session.jobs)
                      if session.jobs > 1 else None)

    def submit(self, tag, spec: ExperimentSpec) -> None:
        """Schedule one cell; its completion event carries ``tag``."""
        self._outstanding += 1
        cache = self._session.cache
        collect = self._session.collect_metrics
        trace = self._session.trace_cells
        stats, metrics = (cache.load_with_metrics(spec)
                          if cache is not None else (None, None))
        if stats is not None:
            self._events.put((tag, spec, stats, metrics, True, 0.0, None))
        elif self._pool is None:
            try:
                out = _worker_run(spec.to_payload(), collect, trace)
            except Exception as exc:                # noqa: BLE001
                self._events.put((tag, spec, None, None, False, 0.0, exc))
            else:
                self._events.put((tag, spec,
                                  MachineStats.from_dict(out["stats"]),
                                  out["metrics"],
                                  False, out["seconds"], None))
        else:
            def _done(out, tag=tag, spec=spec):
                self._events.put((tag, spec,
                                  MachineStats.from_dict(out["stats"]),
                                  out["metrics"],
                                  False, out["seconds"], None))

            def _fail(exc, tag=tag, spec=spec):
                self._events.put((tag, spec, None, None, False, 0.0, exc))

            self._pool.apply_async(_worker_run,
                                   (spec.to_payload(), collect, trace),
                                   callback=_done, error_callback=_fail)

    def drain(self):
        """Yield ``(tag, spec, stats, metrics, cached, seconds)``
        events."""
        try:
            while self._outstanding:
                (tag, spec, stats, metrics,
                 cached, seconds, exc) = self._events.get()
                self._outstanding -= 1
                if exc is not None:
                    raise exc
                if not cached and self._session.cache is not None:
                    self._session.cache.store(spec, stats, metrics)
                yield tag, spec, stats, metrics, cached, seconds
        finally:
            self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class Session:
    """Executes :class:`ExperimentSpec` cells, possibly in parallel.

    ``jobs`` is the worker-pool width (1 = run everything in-process,
    no pool); ``cache_dir`` enables the on-disk :class:`ResultCache`;
    ``progress`` takes a
    :class:`~repro.harness.report.CampaignProgress` for live per-cell
    lines.  Results are deterministic: the same specs produce the same
    statistics at any ``jobs`` width, with or without a warm cache.

    ``collect_metrics`` makes every simulated cell run under a fresh
    :mod:`repro.obs` registry; the snapshot lands on
    ``RunResult.metrics`` and rides along in the result cache.  It does
    not change cache keys or statistics — cached cells keep whatever
    snapshot (possibly none) they were stored with.  ``trace_cells``
    additionally runs each simulated cell under a causal trace
    collector so the snapshot includes the ``trace.*`` critical-path
    roll-ups (this is what feeds the ``repro top`` segment column);
    it implies metrics collection and is equally invisible to the
    statistics and the cache key.
    """

    def __init__(self, jobs: int = 1, cache_dir: "str | None" = None,
                 progress=None, collect_metrics: bool = False,
                 trace_cells: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if cache_dir:
            # Compiled workload traces (the vector engine's recording
            # pass) persist next to the result cache, so repeat
            # campaigns skip recompilation entirely.
            set_trace_cache_dir(os.path.join(cache_dir, "traces"))
        self.progress = progress
        self.collect_metrics = collect_metrics
        self.trace_cells = trace_cells

    # -- cache counters --------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Cells served from the result cache so far."""
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        """Cache lookups that had to simulate."""
        return self.cache.misses if self.cache is not None else 0

    # -- entry points ----------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Run one cell (through the cache if one is configured)."""
        return self.run_suite([spec])[0]

    def run_suite(self, specs) -> "list[RunResult]":
        """Run independent, fully-specified cells; results match the
        input order.

        Cells here must not need derived inputs — a capped policy spec
        must carry an explicit ``page_cache_override``.  Use
        :meth:`run_workload_suite` / :meth:`run_campaign` for the
        SCOMA-first dependency handling.
        """
        specs = list(specs)
        if self.progress is not None:
            self.progress.expect(len(specs))
        scheduler = _Scheduler(self)
        for index, spec in enumerate(specs):
            scheduler.submit(index, spec)
        results: "list[RunResult | None]" = [None] * len(specs)
        for index, spec, stats, metrics, cached, seconds in scheduler.drain():
            results[index] = RunResult(workload=spec.workload,
                                       policy=spec.policy,
                                       config=spec.resolved_config(),
                                       stats=stats, metrics=metrics)
            if self.progress is not None:
                self._note_cell_metrics(spec, metrics)
                self.progress.cell_done(spec.workload, spec.policy,
                                        seconds, cached)
        self._note_cache_progress()
        return results

    def run_workload_suite(self, workload: str, policies=None,
                           preset: str = "default",
                           config: "MachineConfig | None" = None,
                           cache_fraction: float = 0.7):
        """One workload under a policy set (SCOMA first, then fan-out)."""
        suites = self.run_campaign((workload,), policies=policies,
                                   preset=preset, config=config,
                                   cache_fraction=cache_fraction)
        return suites[workload]

    def run_campaign(self, apps, policies=None, preset: str = "default",
                     config: "MachineConfig | None" = None,
                     cache_fraction: float = 0.7):
        """Every application's policy suite as a two-stage DAG.

        Stage 1 fans out each workload's SCOMA run plus every policy
        that needs no page-cache cap; as each SCOMA result completes,
        that workload's capped policies (stage 2) are scheduled
        immediately.  Returns ``{app: SuiteResult}`` with the policies
        of every suite in canonical (SCOMA-first) order regardless of
        completion order.
        """
        from repro.harness.runner import (CAPPED_POLICIES, PAPER_POLICIES,
                                          SuiteResult,
                                          derive_page_cache_caps)
        if policies is None:
            policies = PAPER_POLICIES
        apps = tuple(apps)
        ordered = ["scoma"] + [p for p in policies if p != "scoma"]
        capped = [p for p in ordered if p in CAPPED_POLICIES]
        suites = {app: SuiteResult(workload=app, preset=preset)
                  for app in apps}
        if self.progress is not None:
            self.progress.expect(len(apps) * len(ordered))

        scheduler = _Scheduler(self)
        for app in apps:
            for policy in ordered:
                if policy not in CAPPED_POLICIES:
                    scheduler.submit(app, ExperimentSpec(
                        workload=app, policy=policy, preset=preset,
                        config=config))

        for app, spec, stats, metrics, cached, seconds in scheduler.drain():
            result = RunResult(workload=spec.workload, policy=spec.policy,
                               config=spec.resolved_config(), stats=stats,
                               metrics=metrics)
            suites[app].results[spec.policy] = result
            if self.progress is not None:
                self._note_cell_metrics(spec, metrics)
                self.progress.cell_done(spec.workload, spec.policy,
                                        seconds, cached)
            if spec.policy == "scoma":
                caps = derive_page_cache_caps(result, cache_fraction)
                suites[app].page_cache_caps = caps
                for policy in capped:
                    scheduler.submit(app, ExperimentSpec(
                        workload=app, policy=policy, preset=preset,
                        config=config, page_cache_override=tuple(caps)))

        # Completion order is nondeterministic under a pool; re-impose
        # the canonical policy order so rendered output is byte-stable.
        for suite in suites.values():
            suite.results = {p: suite.results[p] for p in ordered
                             if p in suite.results}
        self._note_cache_progress()
        return suites

    def _note_cache_progress(self) -> None:
        if self.progress is not None and self.cache is not None:
            self.progress.note_cache(self.cache.hits, self.cache.misses)

    def _note_cell_metrics(self, spec: ExperimentSpec, metrics) -> None:
        """Feed a completed cell's metrics snapshot to the progress
        object when it wants one (duck-typed ``cell_metrics`` hook —
        the live ``repro top`` view derives its rolling latency
        breakdowns from these).  Called right *before* the cell's
        ``cell_done`` so the view renders each cell exactly once."""
        if metrics is None:
            return
        hook = getattr(self.progress, "cell_metrics", None)
        if hook is not None:
            hook(spec.workload, spec.policy, metrics)

    def run_instrumented(self, spec: ExperimentSpec, sink=None,
                         trace_kinds=None) -> RunResult:
        """Run one cell in-process with full telemetry.

        Always collects a metrics snapshot (stored back into the cache,
        refreshing any snapshot-less entry for the same spec — last
        writer wins).  ``sink`` takes a
        :class:`repro.obs.events.EventSink`; when given, the run is also
        traced (``trace_kinds`` restricts the recorded event classes as
        in :class:`repro.sim.trace.TraceRecorder`).  Tracing needs the
        live machine, so this path never *serves* from the cache.
        """
        from repro.sim.trace import TraceRecorder

        override = (list(spec.page_cache_override)
                    if spec.page_cache_override is not None else None)
        with obs.collecting() as registry:
            with obs.timer("harness.cell_wall_seconds"):
                machine = build_machine(spec.resolved_config(),
                                        policy=spec.policy,
                                        page_cache_override=override)
                workload = make_workload(spec.workload, spec.preset)
                if sink is not None:
                    with TraceRecorder(machine, kinds=trace_kinds,
                                       sink=sink):
                        result = machine.run(workload)
                else:
                    result = machine.run(workload)
        result.metrics = registry.to_dict()
        if self.cache is not None:
            self.cache.store(spec, result.stats, result.metrics)
        return result
