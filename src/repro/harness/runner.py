"""Experiment runner: one workload under one or many policies.

The SCOMA-70 and adaptive configurations are defined *relative to the
SCOMA run*: the page cache at each node is capped at 70% of the client
S-COMA frames that node allocated under SCOMA (section 4.2).  The suite
runner therefore always runs SCOMA first, derives the per-node caps,
and reuses them for every capped policy.

The free functions ``run_one`` / ``run_suite`` / ``run_all_suites`` are
**deprecated**: they grew a positional/kwarg surface that could not
express scheduling, caching or parallelism.  Use the
:class:`~repro.harness.session.ExperimentSpec` +
:class:`~repro.harness.session.Session` API instead; the wrappers here
build a spec internally, emit a :class:`DeprecationWarning` and produce
identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.sim.config import MachineConfig
from repro.sim.machine import RunResult

#: Policies in the paper's Figure 7 order.
PAPER_POLICIES = ("scoma", "lanuma", "scoma-70",
                  "dyn-fcfs", "dyn-util", "dyn-lru")

#: Policies that run with the 70%-of-SCOMA page-cache cap.
CAPPED_POLICIES = ("scoma-70", "dyn-fcfs", "dyn-util", "dyn-lru",
                   "dyn-bidir")


def run_one(workload: str, policy: str, preset: str = "default",
            config: "MachineConfig | None" = None,
            page_cache_override: "list[int] | None" = None) -> RunResult:
    """Run one workload under one policy and return its result.

    Deprecated: use ``Session().run(ExperimentSpec(...))``.
    """
    from repro.harness.session import ExperimentSpec, Session
    warnings.warn(
        "run_one() is deprecated; use repro.harness.session.Session.run("
        "ExperimentSpec(workload, policy, ...)) instead",
        DeprecationWarning, stacklevel=2)
    spec = ExperimentSpec(
        workload=workload, policy=policy, preset=preset, config=config,
        page_cache_override=(tuple(page_cache_override)
                             if page_cache_override is not None else None))
    return Session().run(spec)


def derive_page_cache_caps(scoma_result: RunResult,
                           fraction: float = 0.7) -> "list[int]":
    """Per-node page-cache capacities: ``fraction`` of the SCOMA run's
    peak client S-COMA frame count at each node (section 4.2)."""
    caps = []
    for node_stats in scoma_result.stats.nodes:
        caps.append(max(1, int(node_stats.scoma_client_frames_peak * fraction)))
    return caps


@dataclass
class SuiteResult:
    """All policies' results for one workload."""

    workload: str
    preset: str
    results: "dict[str, RunResult]" = field(default_factory=dict)
    page_cache_caps: "list[int]" = field(default_factory=list)

    def normalized_time(self, policy: str,
                        baseline: str = "scoma") -> float:
        """Execution time normalized to the baseline (Figure 7)."""
        base = self.results[baseline].stats.execution_cycles
        return self.results[policy].stats.execution_cycles / base

    def remote_misses(self, policy: str) -> int:
        """Remote misses under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.remote_misses

    def page_outs(self, policy: str) -> int:
        """Client page-outs under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.client_page_outs


def _compat_session(verbose: bool):
    from repro.harness.report import CampaignProgress
    from repro.harness.session import Session
    return Session(progress=CampaignProgress() if verbose else None)


def run_suite(workload: str, policies: "tuple[str, ...]" = PAPER_POLICIES,
              preset: str = "default",
              config: "MachineConfig | None" = None,
              cache_fraction: float = 0.7,
              verbose: bool = False) -> SuiteResult:
    """Run one workload under a set of policies (SCOMA first).

    Deprecated: use ``Session().run_workload_suite(...)``.
    """
    warnings.warn(
        "run_suite() is deprecated; use repro.harness.session."
        "Session.run_workload_suite() instead",
        DeprecationWarning, stacklevel=2)
    return _compat_session(verbose).run_workload_suite(
        workload, policies=policies, preset=preset, config=config,
        cache_fraction=cache_fraction)


def run_all_suites(apps: "tuple[str, ...]",
                   policies: "tuple[str, ...]" = PAPER_POLICIES,
                   preset: str = "default",
                   config: "MachineConfig | None" = None,
                   verbose: bool = False) -> "dict[str, SuiteResult]":
    """Run every application's policy suite (the Figure 7 campaign).

    Deprecated: use ``Session().run_campaign(...)``.
    """
    warnings.warn(
        "run_all_suites() is deprecated; use repro.harness.session."
        "Session.run_campaign() instead",
        DeprecationWarning, stacklevel=2)
    return _compat_session(verbose).run_campaign(
        apps, policies=policies, preset=preset, config=config)
