"""Experiment runner: one workload under one or many policies.

The SCOMA-70 and adaptive configurations are defined *relative to the
SCOMA run*: the page cache at each node is capped at 70% of the client
S-COMA frames that node allocated under SCOMA (section 4.2).  The suite
runner therefore always runs SCOMA first, derives the per-node caps,
and reuses them for every capped policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine, RunResult
from repro.workloads import make_workload

#: Policies in the paper's Figure 7 order.
PAPER_POLICIES = ("scoma", "lanuma", "scoma-70",
                  "dyn-fcfs", "dyn-util", "dyn-lru")

#: Policies that run with the 70%-of-SCOMA page-cache cap.
CAPPED_POLICIES = ("scoma-70", "dyn-fcfs", "dyn-util", "dyn-lru",
                   "dyn-bidir")


def run_one(workload: str, policy: str, preset: str = "default",
            config: "MachineConfig | None" = None,
            page_cache_override: "list[int] | None" = None) -> RunResult:
    """Run one workload under one policy and return its result."""
    machine = Machine(config, policy=policy,
                      page_cache_override=page_cache_override)
    return machine.run(make_workload(workload, preset))


def derive_page_cache_caps(scoma_result: RunResult,
                           fraction: float = 0.7) -> "list[int]":
    """Per-node page-cache capacities: ``fraction`` of the SCOMA run's
    peak client S-COMA frame count at each node (section 4.2)."""
    caps = []
    for node_stats in scoma_result.stats.nodes:
        caps.append(max(1, int(node_stats.scoma_client_frames_peak * fraction)))
    return caps


@dataclass
class SuiteResult:
    """All policies' results for one workload."""

    workload: str
    preset: str
    results: "dict[str, RunResult]" = field(default_factory=dict)
    page_cache_caps: "list[int]" = field(default_factory=list)

    def normalized_time(self, policy: str,
                        baseline: str = "scoma") -> float:
        """Execution time normalized to the baseline (Figure 7)."""
        base = self.results[baseline].stats.execution_cycles
        return self.results[policy].stats.execution_cycles / base

    def remote_misses(self, policy: str) -> int:
        """Remote misses under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.remote_misses

    def page_outs(self, policy: str) -> int:
        """Client page-outs under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.client_page_outs


def run_suite(workload: str, policies: "tuple[str, ...]" = PAPER_POLICIES,
              preset: str = "default",
              config: "MachineConfig | None" = None,
              cache_fraction: float = 0.7,
              verbose: bool = False) -> SuiteResult:
    """Run one workload under a set of policies (SCOMA first)."""
    suite = SuiteResult(workload=workload, preset=preset)
    ordered = ["scoma"] + [p for p in policies if p != "scoma"]
    caps: "list[int] | None" = None
    for policy in ordered:
        override = None
        if policy in CAPPED_POLICIES:
            if caps is None:
                raise RuntimeError(
                    "capped policy %r needs the scoma run first" % policy)
            override = caps
        if verbose:
            print("  running %s / %s ..." % (workload, policy), flush=True)
        result = run_one(workload, policy, preset=preset, config=config,
                         page_cache_override=override)
        suite.results[policy] = result
        if policy == "scoma":
            caps = derive_page_cache_caps(result, cache_fraction)
            suite.page_cache_caps = caps
    return suite


def run_all_suites(apps: "tuple[str, ...]",
                   policies: "tuple[str, ...]" = PAPER_POLICIES,
                   preset: str = "default",
                   config: "MachineConfig | None" = None,
                   verbose: bool = False) -> "dict[str, SuiteResult]":
    """Run every application's policy suite (the Figure 7 campaign)."""
    suites = {}
    for app in apps:
        if verbose:
            print("== %s ==" % app, flush=True)
        suites[app] = run_suite(app, policies, preset=preset, config=config,
                                verbose=verbose)
    return suites
