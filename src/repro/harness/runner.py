"""Suite/campaign result types and the SCOMA-relative cap derivation.

The SCOMA-70 and adaptive configurations are defined *relative to the
SCOMA run*: the page cache at each node is capped at 70% of the client
S-COMA frames that node allocated under SCOMA (section 4.2).  The suite
scheduler therefore always runs SCOMA first, derives the per-node caps,
and reuses them for every capped policy.

Experiments are run through the
:class:`~repro.harness.session.ExperimentSpec` +
:class:`~repro.harness.session.Session` API (the free functions
``run_one`` / ``run_suite`` / ``run_all_suites`` that used to live
here were deprecated in the parallel-harness change and have been
removed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.machine import RunResult

#: Policies in the paper's Figure 7 order.
PAPER_POLICIES = ("scoma", "lanuma", "scoma-70",
                  "dyn-fcfs", "dyn-util", "dyn-lru")

#: Policies that run with the 70%-of-SCOMA page-cache cap.
CAPPED_POLICIES = ("scoma-70", "dyn-fcfs", "dyn-util", "dyn-lru",
                   "dyn-bidir")


def derive_page_cache_caps(scoma_result: RunResult,
                           fraction: float = 0.7) -> "list[int]":
    """Per-node page-cache capacities: ``fraction`` of the SCOMA run's
    peak client S-COMA frame count at each node (section 4.2)."""
    caps = []
    for node_stats in scoma_result.stats.nodes:
        caps.append(max(1, int(node_stats.scoma_client_frames_peak * fraction)))
    return caps


@dataclass
class SuiteResult:
    """All policies' results for one workload."""

    workload: str
    preset: str
    results: "dict[str, RunResult]" = field(default_factory=dict)
    page_cache_caps: "list[int]" = field(default_factory=list)

    def normalized_time(self, policy: str,
                        baseline: str = "scoma") -> float:
        """Execution time normalized to the baseline (Figure 7)."""
        base = self.results[baseline].stats.execution_cycles
        return self.results[policy].stats.execution_cycles / base

    def remote_misses(self, policy: str) -> int:
        """Remote misses under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.remote_misses

    def page_outs(self, policy: str) -> int:
        """Client page-outs under ``policy`` (Tables 4/5)."""
        return self.results[policy].stats.client_page_outs
