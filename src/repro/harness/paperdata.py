"""The paper's published numbers, embedded for side-by-side reports.

Sources: Table 1 (latencies — kept in ``repro.sim.latency``), Table 2
(application data sets), Table 3 (page consumption/utilization), Table 4
(static-configuration remote misses and SCOMA-70 page-outs), Table 5
(adaptive-configuration remote misses and page-outs), and the two
explicitly labelled Figure 7 bars.

Absolute values are *not* expected to match this reproduction (the
problem sizes and machine are scaled; see DESIGN.md section 2) — the
reports compare shapes: orderings, ratios, crossovers.
"""

from __future__ import annotations

#: Paper order of applications (Figure 7, Tables 3-5).
PAPER_APPS = ("barnes", "fft", "lu", "mp3d", "ocean", "radix",
              "water-nsq", "water-spa")

#: Table 2 — problem descriptions and sizes.
TABLE2 = {
    "barnes": ("Hierarchical N-body", "8K particles, 4 iters"),
    "fft": ("FFT computation", "64K complex doubles"),
    "lu": ("Blocked LU decomposition", "512x512 matrix, 16x16 blocks"),
    "mp3d": ("Rarefied air flow simulation", "20,000 particles, 5 iters"),
    "ocean": ("Simulation of ocean currents", "258x258 ocean grid"),
    "radix": ("Radix sort", "1M integer keys, radix 1K"),
    "water-nsq": ("O(n^2) water molecule simulation", "512 molecules, 3 iters"),
    "water-spa": ("O(n) water molecule simulation", "512 molecules, 3 iters"),
}

#: Table 3 — page frames allocated and average utilization.
#: app -> (scoma_frames, lanuma_frames, scoma_util, lanuma_util)
TABLE3 = {
    "barnes": (3376, 616, 0.478, 0.576),
    "fft": (4888, 976, 0.276, 0.829),
    "lu": (2888, 592, 0.576, 0.873),
    "mp3d": (1520, 304, 0.198, 0.677),
    "ocean": (8808, 4056, 0.732, 0.956),
    "radix": (13352, 2288, 0.330, 0.940),
    "water-nsq": (1232, 536, 0.753, 0.894),
    "water-spa": (672, 160, 0.315, 0.652),
}

#: Table 4 — remote misses (static configs) and SCOMA-70 page-outs.
#: app -> (scoma, lanuma, scoma70, scoma70_pageouts)
TABLE4 = {
    "barnes": (267651, 3348808, 295817, 8457),
    "fft": (122338, 186026, 128850, 11432),
    "lu": (115433, 991951, 115441, 510),
    "mp3d": (279970, 373081, 289065, 856),
    "ocean": (629986, 8002014, 1779388, 22457),
    "radix": (254201, 1394601, 363404, 15883),
    "water-nsq": (111074, 970560, 521016, 68290),
    "water-spa": (40611, 178713, 69767, 2949),
}

#: Table 5 — remote misses and page-outs (adaptive configs).
#: app -> (fcfs, util, lru, util_pageouts, lru_pageouts)
TABLE5 = {
    "barnes": (709684, 1354715, 807393, 930, 895),
    "fft": (122338, 122364, 124944, 5558, 5651),
    "lu": (119378, 116931, 115441, 509, 509),
    "mp3d": (280679, 280413, 283559, 404, 413),
    "ocean": (1253209, 830618, 3709983, 1449, 1464),
    "radix": (492143, 495263, 368294, 3878, 3883),
    "water-nsq": (530448, 814619, 284861, 855, 873),
    "water-spa": (81326, 75038, 102713, 251, 258),
}

#: Figure 7 — the two bars tall enough that the paper printed their
#: values (normalized execution time, SCOMA = 1.0).
FIGURE7_LABELLED = {
    ("barnes", "lanuma"): 2.84,
    ("ocean", "lanuma"): 4.63,
}

#: Section 4.3 — DRAM PIT (10 cycles) slowdown over SRAM PIT (2 cycles).
PIT_SLOWDOWN = {
    "barnes": 0.16,
    "fft": 0.05,
    "lu": 0.02,
    "mp3d": 0.02,
    "ocean": 0.02,
    "radix": 0.02,
    "water-nsq": 0.02,
    "water-spa": 0.02,
}

#: Headline claims, used by the shape checks in the integration tests
#: and EXPERIMENTS.md:
#: - SCOMA is the best configuration for every application;
#: - SCOMA-70 beats LANUMA on Barnes, LU, Ocean, Radix;
#: - LANUMA beats SCOMA-70 on Water-nsq;
#: - adaptive policies land between and are "usually within 10%" of SCOMA;
#: - adaptive page-outs are far below SCOMA-70's.
SCOMA70_WINS = ("barnes", "lu", "ocean", "radix")
LANUMA_WINS = ("water-nsq",)
