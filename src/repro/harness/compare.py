"""Compare two saved campaigns (regression tracking).

``compare_campaigns`` diffs two campaign dicts (as produced by
:func:`repro.harness.export.save_campaign`) and reports, per
application and policy, the change in normalized time, remote misses
and page-outs — flagging anything that moved more than a threshold.
Useful when changing the simulator or the workloads: run the campaign
before and after, save both, diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.report import TextTable


@dataclass
class Delta:
    """One (application, policy) pair's change between campaigns."""

    app: str
    policy: str
    metric: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        """Relative change; +0.10 means 10% higher than before."""
        if self.before == 0:
            return 0.0 if self.after == 0 else float("inf")
        return (self.after - self.before) / self.before


@dataclass
class CampaignDiff:
    """All deltas between two campaigns, plus structural differences."""

    deltas: "list[Delta]" = field(default_factory=list)
    missing_apps: "list[str]" = field(default_factory=list)
    new_apps: "list[str]" = field(default_factory=list)

    def regressions(self, threshold: float = 0.05) -> "list[Delta]":
        """Deltas whose magnitude exceeds ``threshold`` (relative)."""
        return [d for d in self.deltas if abs(d.relative) > threshold]

    def table(self, threshold: float = 0.05) -> TextTable:
        """Render the over-threshold deltas."""
        table = TextTable(
            "Campaign diff (|change| > %.0f%%)" % (100 * threshold),
            ["Application", "Policy", "Metric", "Before", "After",
             "Change"])
        for delta in sorted(self.regressions(threshold),
                            key=lambda d: -abs(d.relative)):
            table.add_row(delta.app, delta.policy, delta.metric,
                          delta.before, delta.after,
                          "%+.1f%%" % (100 * delta.relative))
        return table


METRICS = ("normalized_time", "remote_misses", "page_outs",
           "execution_cycles")


def compare_campaigns(before: "dict", after: "dict") -> CampaignDiff:
    """Diff two campaign dicts (see module docstring)."""
    diff = CampaignDiff()
    diff.missing_apps = sorted(set(before) - set(after))
    diff.new_apps = sorted(set(after) - set(before))
    for app in sorted(set(before) & set(after)):
        b_policies = before[app]["policies"]
        a_policies = after[app]["policies"]
        for policy in sorted(set(b_policies) & set(a_policies)):
            for metric in METRICS:
                diff.deltas.append(Delta(
                    app=app, policy=policy, metric=metric,
                    before=float(b_policies[policy][metric]),
                    after=float(a_policies[policy][metric])))
    return diff
