"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``        — one workload under one policy, print the stats.
* ``suite``      — one workload under all six policies (a Figure 7 slice).
* ``evaluate``   — the full campaign: every table and figure.
* ``microbench`` — Table 1 via the latency microbenchmark.
* ``analyze``    — static characterization of a workload's references.
* ``compare``    — diff two saved campaigns (regression check).
* ``metrics``    — per-policy telemetry snapshots (filter/format options).
* ``trace``      — causal transaction traces + critical-path breakdown.
* ``top``        — live dashboard of a running campaign.
* ``verify``     — protocol conformance (litmus suite / fuzzing).
* ``chaos``      — fault-injection campaigns (optionally traced).
* ``list``       — available workloads, policies, presets.
"""

from __future__ import annotations

import argparse

from repro.core.policies import POLICY_NAMES
from repro.sim.config import MachineConfig
from repro.workloads import ALL_APPLICATIONS, APPLICATIONS, PRESET_NAMES


#: Default on-disk result cache used by ``run``/``suite``/``evaluate``.
DEFAULT_CACHE_DIR = ".prism-cache"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1, got %s" % text)
    return value


def _add_engine_arg(sub) -> None:
    """``--engine`` flag for every command that simulates cells."""
    sub.add_argument("--engine", choices=("interp", "vector"),
                     default="interp",
                     help="simulation engine: 'interp' walks the op "
                          "stream per reference, 'vector' trace-compiles "
                          "each workload and replays cache hits in bulk "
                          "(identical stats; see docs/PERFORMANCE.md)")


def _add_session_args(sub) -> None:
    """Scheduling/caching flags shared by run, suite and evaluate."""
    sub.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="worker processes for independent campaign "
                          "cells (default: 1, run in-process)")
    sub.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                     help="on-disk result cache directory (default: %s)"
                          % DEFAULT_CACHE_DIR)
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk result cache")
    sub.add_argument("--metrics", action="store_true",
                     help="collect a metrics-registry snapshot per "
                          "simulated cell (cached alongside the stats)")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PRISM (HPCA 1998) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload under one policy")
    run.add_argument("workload", choices=ALL_APPLICATIONS)
    run.add_argument("--policy", default="scoma", choices=POLICY_NAMES)
    run.add_argument("--preset", default="small", choices=PRESET_NAMES)
    run.add_argument("--page-cache", type=int, default=None,
                     help="client page-cache frames per node")
    run.add_argument("--migration", action="store_true",
                     help="enable lazy home migration")
    run.add_argument("--trace-out", metavar="FILE", default=None,
                     help="write the run's structured event trace as "
                          "JSONL (forces an uncached, in-process run)")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write the run's metrics snapshot as JSON "
                          "(forces an uncached, in-process run)")
    run.add_argument("--check-invariants", action="store_true",
                     help="walk machine-wide coherence invariants at "
                          "every barrier release and fail loudly on a "
                          "violation (forces an uncached, in-process "
                          "run)")
    _add_engine_arg(run)
    _add_session_args(run)

    suite = sub.add_parser("suite",
                           help="run all six policies (Figure 7 slice)")
    suite.add_argument("workload", choices=ALL_APPLICATIONS)
    suite.add_argument("--preset", default="small", choices=PRESET_NAMES)
    _add_engine_arg(suite)
    _add_session_args(suite)

    evaluate = sub.add_parser("evaluate",
                              help="regenerate every table and figure")
    evaluate.add_argument("--preset", default="small", choices=PRESET_NAMES)
    evaluate.add_argument("--apps", nargs="*", default=list(APPLICATIONS),
                          choices=APPLICATIONS, metavar="APP")
    evaluate.add_argument("--skip-pit", action="store_true",
                          help="skip the section 4.3 PIT study")
    evaluate.add_argument("--save", metavar="JSON",
                          help="also persist the campaign results to a file")
    _add_engine_arg(evaluate)
    _add_session_args(evaluate)

    sub.add_parser("microbench", help="regenerate Table 1")

    analyze = sub.add_parser(
        "analyze", help="characterize a workload's reference streams")
    analyze.add_argument("workload", choices=ALL_APPLICATIONS)
    analyze.add_argument("--preset", default="small", choices=PRESET_NAMES)
    analyze.add_argument("--cpus", type=int, default=32)

    compare = sub.add_parser(
        "compare", help="diff two saved campaigns (regression check)")
    compare.add_argument("before", help="baseline campaign JSON")
    compare.add_argument("after", help="new campaign JSON")
    compare.add_argument("--threshold", type=float, default=0.05)

    metrics = sub.add_parser(
        "metrics", help="per-policy telemetry for cached (or fresh) cells")
    metrics.add_argument("workload", choices=ALL_APPLICATIONS)
    metrics.add_argument("--policy", action="append", default=None,
                         choices=POLICY_NAMES, metavar="POLICY",
                         help="policy to report (repeatable; default: "
                              "scoma and lanuma)")
    metrics.add_argument("--preset", default="small", choices=PRESET_NAMES)
    metrics.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         metavar="DIR",
                         help="result cache to read snapshots from "
                              "(default: %s)" % DEFAULT_CACHE_DIR)
    metrics.add_argument("--no-cache", action="store_true",
                         help="always re-simulate, don't touch the cache")
    metrics.add_argument("--filter", metavar="NAME_GLOB", default=None,
                         help="only list metrics whose family name or "
                              "full labelled key matches this glob "
                              "(e.g. 'trace.*', 'kernel.frame_pool.*'); "
                              "switches to the flat per-metric listing")
    metrics.add_argument("--format", choices=["table", "json", "csv"],
                         default="table",
                         help="format of the flat per-metric listing "
                              "(default: table; json and csv imply the "
                              "flat listing even without --filter)")

    trace = sub.add_parser(
        "trace", help="record causal transaction traces and explain "
                      "where the latency went (docs/OBSERVABILITY.md)")
    trace.add_argument("workload", choices=ALL_APPLICATIONS)
    trace.add_argument("--policy", default="scoma", choices=POLICY_NAMES)
    trace.add_argument("--preset", default="tiny", choices=PRESET_NAMES)
    trace.add_argument("--seed", type=int, default=0,
                       help="span-id seed (default: 0); the same seed "
                            "and workload reproduce identical traces")
    trace.add_argument("--top", type=_positive_int, default=5,
                       metavar="N",
                       help="slowest transactions to print as span "
                            "trees (default: 5)")
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="write every retained span as JSONL")
    trace.add_argument("--chrome", metavar="FILE", default=None,
                       help="write Chrome trace_event JSON (open at "
                            "ui.perfetto.dev or chrome://tracing)")
    _add_engine_arg(trace)

    top = sub.add_parser(
        "top", help="run a campaign under a live terminal dashboard")
    top.add_argument("--apps", nargs="*", default=list(APPLICATIONS),
                     choices=APPLICATIONS, metavar="APP")
    top.add_argument("--preset", default="small", choices=PRESET_NAMES)
    top.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="worker processes (default: 1)")
    top.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     metavar="DIR",
                     help="on-disk result cache directory (default: %s)"
                          % DEFAULT_CACHE_DIR)
    top.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk result cache")
    top.add_argument("--no-trace", action="store_true",
                     help="skip the per-cell trace collector (the "
                          "critical-path segment column stays empty)")
    _add_engine_arg(top)

    verify = sub.add_parser(
        "verify", help="protocol conformance: litmus suite / schedule "
                       "fuzzing (see docs/VERIFICATION.md)")
    verify.add_argument("--suite", choices=["litmus"], default=None,
                        help="run the bundled litmus suite under the "
                             "bounded schedule set (the default when "
                             "--fuzz is not given)")
    verify.add_argument("--fuzz", type=_positive_int, default=None,
                        metavar="N",
                        help="run N random schedules across the suite, "
                             "shrinking any failure to a minimal "
                             "reproducing schedule")
    verify.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for --fuzz (default: 0)")
    verify.add_argument("--test", action="append", default=None,
                        metavar="NAME",
                        help="restrict to named litmus tests "
                             "(repeatable; see --list)")
    verify.add_argument("--list", action="store_true",
                        help="list the bundled litmus tests and exit")

    chaos = sub.add_parser(
        "chaos", help="fault-injection campaigns: litmus tests under "
                      "sampled fault plans (see docs/FAULTS.md)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed: drives plan sampling and the "
                            "injector RNG (default: 0); the same seed "
                            "reproduces identical verdicts")
    chaos.add_argument("--rounds", type=_positive_int, default=8,
                       help="chaos rounds to run (default: 8)")
    chaos.add_argument("--plan", metavar="FILE", default=None,
                       help="JSON fault plan to replay every round "
                            "(default: sample a fresh random plan per "
                            "round from --seed)")
    chaos.add_argument("--test", action="append", default=None,
                       metavar="NAME",
                       help="restrict to named litmus tests (repeatable; "
                            "see repro verify --list)")
    chaos.add_argument("--deadline", type=_positive_int, default=None,
                       metavar="CYCLES",
                       help="simulated-cycle hang deadline per run "
                            "(default: 20M)")
    chaos.add_argument("--no-retry", action="store_true",
                       help="disable the retransmission layer (the "
                            "mutation self-test mode: drop plans are "
                            "expected to hang)")
    chaos.add_argument("--trace", action="store_true",
                       help="run every round under a causal trace "
                            "collector and print the span tree of each "
                            "failing round (verdicts are unaffected)")

    sub.add_parser("list", help="list workloads, policies and presets")
    return parser


def _session_from_args(args, verbose: bool = True):
    """Build the :class:`Session` the run/suite/evaluate commands use."""
    from repro.harness.report import CampaignProgress
    from repro.harness.session import Session
    cache_dir = None if args.no_cache else args.cache_dir
    progress = CampaignProgress() if verbose else None
    return Session(jobs=args.jobs, cache_dir=cache_dir, progress=progress,
                   collect_metrics=getattr(args, "metrics", False))


def cmd_run(args) -> int:
    """``repro run``: one workload under one policy.

    ``--trace-out`` / ``--metrics-out`` switch to an instrumented
    in-process run (tracing needs the live machine); the printed stats
    stay identical either way.
    """
    from repro.harness.session import ExperimentSpec
    config = MachineConfig(page_cache_frames=args.page_cache,
                           enable_migration=args.migration,
                           engine=args.engine)
    session = _session_from_args(args, verbose=False)
    spec = ExperimentSpec(args.workload, args.policy,
                          preset=args.preset, config=config)
    if args.check_invariants:
        return _run_with_invariants(args, spec)
    if args.trace_out or args.metrics_out:
        from repro.obs import EventSink
        sink = EventSink() if args.trace_out else None
        result = session.run_instrumented(spec, sink=sink)
    else:
        result = session.run(spec)
    print("%s / %s (%s preset)%s"
          % (args.workload, args.policy, args.preset,
             " [cached]" if session.cache_hits else ""))
    for key, value in result.stats.summary().items():
        print("  %-22s %s" % (key, value))
    metrics = getattr(result, "metrics", None)
    if metrics:
        # Serving workloads under --metrics report request latency
        # quantiles and the throughput curve next to the stats.
        from repro.workloads.serving import serving_summary
        for line in serving_summary(metrics):
            print("  %s" % line)
    if args.trace_out:
        written = sink.write_jsonl(args.trace_out)
        print("wrote %d events to %s (%d dropped)"
              % (written, args.trace_out, sink.dropped))
    if args.metrics_out:
        from repro.harness.export import save_metrics
        save_metrics([result], args.metrics_out)
        print("wrote metrics snapshot to %s" % args.metrics_out)
    return 0


def _run_with_invariants(args, spec) -> int:
    """``repro run --check-invariants``: an uncached in-process run
    with machine-wide coherence invariant walks at every barrier
    release.  A violation aborts the run and reports every problem the
    walk found."""
    from repro.sim.invariants import InvariantViolation, \
        install_barrier_checks
    from repro.sim.replay import build_machine
    from repro.workloads import make_workload
    machine = build_machine(spec.resolved_config(), policy=spec.policy)
    install_barrier_checks(machine)
    try:
        result = machine.run(make_workload(spec.workload, spec.preset))
    except InvariantViolation as exc:
        print("INVARIANT VIOLATION at cycle %d (%s / %s):"
              % (exc.when, spec.workload, spec.policy))
        for problem in exc.problems:
            print("  %s" % problem)
        return 1
    print("%s / %s (%s preset) [invariants checked at every barrier]"
          % (args.workload, args.policy, args.preset))
    for key, value in result.stats.summary().items():
        print("  %-22s %s" % (key, value))
    return 0


def cmd_verify(args) -> int:
    """``repro verify``: the protocol conformance suite.

    ``--suite litmus`` (the default) runs every bundled litmus test
    under the bounded schedule set; ``--fuzz N --seed S`` runs N random
    schedules and shrinks any failure to a minimal reproducing
    schedule.  Exit code 1 on any conformance failure.
    """
    from repro.verify import (LITMUS_SUITE, fuzz, run_suite,
                              suite_by_name)
    if args.list:
        for test in LITMUS_SUITE:
            print("%-22s %s" % (test.name, test.description))
        return 0
    tests = LITMUS_SUITE
    if args.test:
        by_name = suite_by_name()
        unknown = [name for name in args.test if name not in by_name]
        if unknown:
            print("unknown litmus tests: %s (try --list)"
                  % ", ".join(unknown))
            return 2
        tests = tuple(by_name[name] for name in args.test)
    failed = False
    if args.suite is not None or args.fuzz is None:
        result = run_suite(tests)
        print(result.summary())
        failed = failed or not result.ok
    if args.fuzz is not None:
        failures = fuzz(rounds=args.fuzz, seed=args.seed, tests=tests)
        print("fuzz: %d rounds (seed %d), %d failures"
              % (args.fuzz, args.seed, len(failures)))
        for failure in failures:
            print(failure.describe())
        failed = failed or bool(failures)
    return 1 if failed else 0


def cmd_chaos(args) -> int:
    """``repro chaos``: resilience campaigns over the fault plane.

    Samples a fault plan per round (or replays ``--plan FILE``) and
    runs litmus tests under it: every round must either complete with
    a sequentially-consistent history or fail cleanly.  Exit code 1 on
    any HUNG or CORRUPT verdict.  Deterministic in ``--seed``.
    """
    import json

    from repro.faults import ChaosCampaign, FaultPlan, RetryPolicy
    from repro.faults.campaign import DEFAULT_DEADLINE
    from repro.verify import LITMUS_SUITE, suite_by_name
    from repro.workloads.serving import chaos_scenarios
    tests = LITMUS_SUITE
    if args.test:
        by_name = dict(suite_by_name())
        # Serving chaos scenarios (txn2pc under command channels) are
        # addressable by name next to the litmus tests.
        by_name.update(chaos_scenarios())
        unknown = [name for name in args.test if name not in by_name]
        if unknown:
            print("unknown chaos tests: %s (try repro verify --list, or "
                  "a serving scenario: %s)"
                  % (", ".join(unknown),
                     ", ".join(sorted(chaos_scenarios()))))
            return 2
        tests = tuple(by_name[name] for name in args.test)
    plan = None
    if args.plan is not None:
        with open(args.plan) as fh:
            plan = FaultPlan.from_dict(json.load(fh))
    retry = RetryPolicy.disabled() if args.no_retry else None
    deadline = (args.deadline if args.deadline is not None
                else DEFAULT_DEADLINE)
    campaign = ChaosCampaign(seed=args.seed, rounds=args.rounds,
                             tests=tests, plan=plan, retry=retry,
                             deadline=deadline, trace=args.trace)
    report = campaign.run()
    print(report.summary())
    if args.trace:
        _print_chaos_traces(report)
    return 0 if report.ok else 1


def _print_chaos_traces(report) -> None:
    """Span trees for failing chaos rounds (``repro chaos --trace``).

    For each HUNG/CORRUPT round, prints the causal trace of the
    transaction that aborted (or, when none aborted, the slowest one)
    — including the faults the injector annotated onto it."""
    from repro.obs import tracing
    for run in report.failures:
        collector = run.trace
        if collector is None:
            continue
        traces = collector.errored() or collector.slowest(1)
        print("\n%s %s seed=%d — causal trace of the failing transaction:"
              % (run.test.name, run.verdict, run.seed))
        if not traces:
            print("  (no transaction was in flight)")
            continue
        print(tracing.format_tree(traces[-1]))


def cmd_suite(args) -> int:
    """``repro suite``: a Figure 7 slice."""
    from repro.harness.figures import figure7_ascii
    session = _session_from_args(args)
    suite = session.run_workload_suite(args.workload, preset=args.preset,
                                       config=MachineConfig(
                                           engine=args.engine))
    print()
    print(figure7_ascii({args.workload: suite}))
    print("\n%-10s %12s %14s %10s" % ("policy", "normalized",
                                      "remote misses", "page-outs"))
    for policy in suite.results:
        print("%-10s %12.3f %14d %10d"
              % (policy, suite.normalized_time(policy),
                 suite.remote_misses(policy), suite.page_outs(policy)))
    print("\n" + session.progress.summary())
    return 0


def cmd_evaluate(args) -> int:
    """``repro evaluate``: the full campaign (optionally saved)."""
    cache_dir = None if args.no_cache else args.cache_dir
    if args.save:
        from repro.harness.export import save_campaign
        session = _session_from_args(args)
        config = (MachineConfig(engine=args.engine)
                  if args.engine != "interp" else None)
        suites = session.run_campaign(tuple(args.apps), preset=args.preset,
                                      config=config)
        save_campaign(suites, args.save)
        from repro.harness.figures import figure7_table
        print(figure7_table(suites).render())
        print(session.progress.summary())
        print("saved campaign to %s" % args.save)
        return 0
    from repro.harness import run_paper_evaluation
    print(run_paper_evaluation(apps=tuple(args.apps), preset=args.preset,
                               include_pit=not args.skip_pit, verbose=True,
                               jobs=args.jobs, cache_dir=cache_dir,
                               collect_metrics=args.metrics,
                               engine=args.engine))
    return 0


def cmd_analyze(args) -> int:
    """``repro analyze``: static workload characterization."""
    from repro.workloads import make_workload
    from repro.workloads.analysis import profile_workload
    workload = make_workload(args.workload, args.preset)
    profile = profile_workload(workload, num_cpus=args.cpus)
    print("%s (%s preset, %d CPUs): %s"
          % (args.workload, args.preset, args.cpus, workload.problem))
    for key, value in profile.summary().items():
        print("  %-20s %s" % (key, value))
    return 0


def cmd_microbench(_args) -> int:
    """``repro microbench``: Table 1."""
    from repro.harness.tables import table1
    print(table1().render())
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: diff two saved campaigns."""
    from repro.harness.compare import compare_campaigns
    from repro.harness.export import load_campaign
    diff = compare_campaigns(load_campaign(args.before),
                             load_campaign(args.after))
    print(diff.table(args.threshold).render())
    if diff.missing_apps:
        print("missing in the new campaign: %s"
              % ", ".join(diff.missing_apps))
    if diff.new_apps:
        print("new in the new campaign: %s" % ", ".join(diff.new_apps))
    return 1 if diff.regressions(args.threshold) else 0


def cmd_metrics(args) -> int:
    """``repro metrics``: per-policy telemetry for one workload.

    Reads metrics snapshots from the result cache; cells without a
    cached snapshot are re-simulated in-process with telemetry on (and
    the refreshed entry stored back, so the next invocation is free).
    """
    from repro.harness.session import ExperimentSpec, Session
    from repro.harness.tables import metrics_table
    from repro.sim.machine import RunResult

    policies = args.policy if args.policy else ["scoma", "lanuma"]
    cache_dir = None if args.no_cache else args.cache_dir
    session = Session(cache_dir=cache_dir)
    results = []
    for policy in policies:
        spec = ExperimentSpec(args.workload, policy, preset=args.preset)
        result = None
        if session.cache is not None:
            stats, metrics = session.cache.load_with_metrics(spec)
            if stats is not None and metrics is not None:
                result = RunResult(workload=spec.workload,
                                   policy=spec.policy,
                                   config=spec.resolved_config(),
                                   stats=stats, metrics=metrics)
        if result is None:
            result = session.run_instrumented(spec)
        results.append(result)
    if args.filter is not None or args.format != "table":
        return _emit_metric_rows(_metric_rows(results, args.filter),
                                 args.format)
    for result in results:
        _print_metrics_detail(result)
    print()
    print(metrics_table(results).render())
    return 0


#: Columns of the flat per-metric listing (``--filter`` / ``--format``).
_METRIC_COLUMNS = ("cell", "kind", "metric", "value", "count", "sum",
                   "p50", "p99")

#: Snapshot section -> row kind for the flat listing.
_METRIC_KINDS = (("counters", "counter"), ("gauges", "gauge"),
                 ("histograms", "histogram"), ("series", "series"))


def _metric_rows(results, pattern: "str | None") -> "list[dict]":
    """Flatten metrics snapshots into one row per metric.

    ``pattern`` is an ``fnmatch`` glob matched against the family name
    *and* the full labelled key (so both ``trace.*`` and
    ``*{policy=scoma}`` work); None keeps everything.  Histograms
    report count/sum/p50/p99, series their length and last value,
    counters and gauges just the value.
    """
    from fnmatch import fnmatchcase

    from repro.obs import parse_key, quantile
    rows = []
    for result in results:
        cell = "%s/%s" % (result.workload, result.policy)
        snap = result.metrics or {}
        for section, kind in _METRIC_KINDS:
            for key in sorted(snap.get(section, ())):
                name, _labels = parse_key(key)
                if pattern is not None and not (
                        fnmatchcase(name, pattern)
                        or fnmatchcase(key, pattern)):
                    continue
                value = snap[section][key]
                row = dict.fromkeys(_METRIC_COLUMNS, "")
                row.update(cell=cell, kind=kind, metric=key)
                if kind == "histogram":
                    row.update(count=value["count"], sum=value["sum"],
                               p50=quantile(value, 0.50),
                               p99=quantile(value, 0.99))
                elif kind == "series":
                    points = value.get("points", [])
                    row.update(count=len(points),
                               value=points[-1][1] if points else "")
                else:
                    row["value"] = value
                rows.append(row)
    return rows


def _emit_metric_rows(rows: "list[dict]", fmt: str) -> int:
    """Print the flat metric listing as a table, JSON or CSV."""
    if fmt == "json":
        import json
        print(json.dumps(rows, indent=2, sort_keys=True))
    elif fmt == "csv":
        import csv
        import sys
        writer = csv.DictWriter(sys.stdout,
                                fieldnames=list(_METRIC_COLUMNS))
        writer.writeheader()
        writer.writerows(rows)
    else:
        from repro.harness.report import TextTable
        table = TextTable("metrics", list(_METRIC_COLUMNS))
        for row in rows:
            table.add_row(*(row[column] for column in _METRIC_COLUMNS))
        print(table.render())
    return 0


def _print_metrics_detail(result) -> None:
    """Latency histogram and frame-pool occupancy of one cell."""
    from repro.obs import find_metrics
    snap = result.metrics
    print("\n%s / %s" % (result.workload, result.policy))
    for _labels, hist in find_metrics(snap["histograms"],
                                      "sim.access_latency_cycles"):
        print("  access latency (cycles), %d observations:"
              % hist["count"])
        for bound, count in zip(hist["buckets"], hist["counts"]):
            if count:
                print("    <= %8d  %d" % (bound, count))
        if hist["counts"][-1]:
            print("    >  %8d  %d" % (hist["buckets"][-1],
                                      hist["counts"][-1]))
    print("  frame pools (per node):")
    for pool in ("real_in_use", "imaginary_in_use",
                 "client_scoma_in_use", "client_scoma_peak"):
        members = find_metrics(snap["gauges"], "kernel.frame_pool." + pool)
        members.sort(key=lambda lv: int(lv[0].get("node", -1)))
        if members:
            print("    %-22s %s"
                  % (pool, " ".join(str(v) for _l, v in members)))
    # Host-side throughput published by Machine.run (simulated telemetry
    # above, simulator speed below — stale for snapshots from the result
    # cache, which report the wall clock of the run that produced them).
    rps = find_metrics(snap["gauges"], "host.refs_per_sec")
    wall = find_metrics(snap["gauges"], "host.wall_seconds")
    if rps and wall:
        print("  host throughput: %.0f refs/s (%.3fs wall)"
              % (rps[0][1], wall[0][1]))


def cmd_trace(args) -> int:
    """``repro trace``: causal traces + critical-path breakdown.

    Runs one cell in-process under a
    :class:`~repro.obs.tracing.TraceCollector`, then prints the
    campaign-wide latency attribution by segment and the ``--top N``
    slowest transactions as span trees, each with its per-segment
    breakdown (segment cycles sum exactly to the transaction's
    latency).  ``--out`` / ``--chrome`` export the retained spans.
    """
    from repro.harness.report import TextTable
    from repro.obs import tracing
    from repro.sim.replay import build_machine
    from repro.workloads import make_workload

    with tracing.collecting(seed=args.seed) as collector:
        machine = build_machine(MachineConfig(engine=args.engine),
                                policy=args.policy)
        machine.run(make_workload(args.workload, args.preset))

    print("%s / %s (%s preset, seed %d): %d transactions, %d spans"
          % (args.workload, args.policy, args.preset, args.seed,
             collector.finished, collector.span_count))
    if collector.evicted:
        print("  (ring kept the most recent %d traces; %d evicted)"
              % (len(collector.traces), collector.evicted))
    rollup = collector.rollup()
    total = sum(entry["cycles"] for entry in rollup.values())
    table = TextTable("critical-path latency by segment",
                      ["segment", "cycles", "share", "spans"])
    for kind, entry in sorted(rollup.items(),
                              key=lambda kv: (-kv[1]["cycles"], kv[0])):
        share = ("%.1f%%" % (100.0 * entry["cycles"] / total)
                 if total else "-")
        table.add_row(kind, entry["cycles"], share, entry["count"])
    print()
    print(table.render())

    for rank, trace in enumerate(collector.slowest(args.top), 1):
        print("\n#%d  +%d cycles  trace %016x"
              % (rank, trace.duration, trace.trace_id))
        print(tracing.format_tree(trace))
        parts = sorted(trace.breakdown.items(),
                       key=lambda kv: (-kv[1], kv[0]))
        print("  segments: %s  (sum %d = duration %d)"
              % (" ".join("%s=%d" % kv for kv in parts),
                 sum(trace.breakdown.values()), trace.duration))

    if args.out:
        written = collector.write_spans(args.out)
        print("\nwrote %d spans to %s" % (written, args.out))
    if args.chrome:
        events = collector.write_chrome(args.chrome)
        print("wrote %d trace events to %s (open at ui.perfetto.dev)"
              % (events, args.chrome))
    return 0


def cmd_top(args) -> int:
    """``repro top``: live dashboard of a running campaign.

    Runs the campaign under a
    :class:`~repro.harness.top.LiveCampaignView` — per-cell progress
    with access-latency p50/p99, cache counters, worker utilization
    and the rolling critical-path segment mix.  On a TTY the frame
    repaints in place; piped output degrades to one line per cell.
    """
    from repro.harness.session import Session
    from repro.harness.top import LiveCampaignView

    cache_dir = None if args.no_cache else args.cache_dir
    view = LiveCampaignView(jobs=args.jobs)
    session = Session(jobs=args.jobs, cache_dir=cache_dir, progress=view,
                      collect_metrics=True, trace_cells=not args.no_trace)
    session.run_campaign(tuple(args.apps), preset=args.preset,
                         config=MachineConfig(engine=args.engine))
    if not view.repaint:
        print()
        print(view.render())
    print(view.summary())
    return 0


def cmd_list(_args) -> int:
    """``repro list``: the available names."""
    from repro.workloads import SERVING_APPLICATIONS
    from repro.workloads.serving import chaos_scenarios
    print("workloads: %s" % ", ".join(APPLICATIONS))
    print("serving:   %s" % ", ".join(SERVING_APPLICATIONS))
    print("policies:  %s" % ", ".join(POLICY_NAMES))
    print("presets:   %s" % ", ".join(PRESET_NAMES))
    print("chaos:     %s" % ", ".join(sorted(chaos_scenarios())))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "suite": cmd_suite,
        "evaluate": cmd_evaluate,
        "microbench": cmd_microbench,
        "analyze": cmd_analyze,
        "compare": cmd_compare,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "top": cmd_top,
        "verify": cmd_verify,
        "chaos": cmd_chaos,
        "list": cmd_list,
    }[args.command]
    return handler(args)
