"""Parameter sweeps.

The headline sweep reproduces section 4.3's explanation of why the
paper's results differ from Falsafi & Wood's R-NUMA study:

    "The reason for this difference lies in the size of the S-COMA
    page cache.  We set the page cache size at 70% of the maximum
    number of client pages allocated by SCOMA, while Falsafi and Wood
    fix the page cache size at 320 KB.  A 320-KB page cache would
    provide only 5%-25% of the necessary number of client pages ...
    and cause enough paging activity to favor LANUMA."

``cache_fraction_sweep`` runs SCOMA-70-style configurations at a range
of page-cache fractions and reports where the SCOMA-70 / LANUMA
crossover falls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.runner import derive_page_cache_caps
from repro.harness.session import ExperimentSpec, Session


@dataclass
class SweepResult:
    """Execution time of capped-S-COMA runs across cache fractions."""

    workload: str
    preset: str
    lanuma_cycles: int = 0
    scoma_cycles: int = 0
    #: fraction -> (execution cycles, page-outs)
    points: "dict[float, tuple[int, int]]" = field(default_factory=dict)

    def normalized(self, fraction: float) -> float:
        """Execution time at ``fraction``, normalized to SCOMA."""
        return self.points[fraction][0] / self.scoma_cycles

    @property
    def lanuma_normalized(self) -> float:
        """The LANUMA baseline, normalized to SCOMA."""
        return self.lanuma_cycles / self.scoma_cycles

    def crossover_fraction(self) -> "float | None":
        """Smallest swept fraction at which capped S-COMA beats LANUMA
        (None if it never does)."""
        for fraction in sorted(self.points):
            if self.points[fraction][0] < self.lanuma_cycles:
                return fraction
        return None

    def rows(self) -> "list[tuple[float, float, int]]":
        """(fraction, normalized time, page-outs), ascending."""
        return [(f, self.normalized(f), self.points[f][1])
                for f in sorted(self.points)]


def cache_fraction_sweep(workload: str,
                         fractions=(0.1, 0.25, 0.5, 0.7, 0.9),
                         preset: str = "small",
                         config=None,
                         session: "Session | None" = None) -> SweepResult:
    """Sweep the page-cache cap as a fraction of the SCOMA run's client
    frames (0.7 is the paper's SCOMA-70).

    Pass a :class:`~repro.harness.session.Session` to run the sweep
    points in parallel and/or through the result cache.
    """
    session = session if session is not None else Session()
    scoma, lanuma = session.run_suite([
        ExperimentSpec(workload, "scoma", preset=preset, config=config),
        ExperimentSpec(workload, "lanuma", preset=preset, config=config)])
    sweep = SweepResult(workload=workload, preset=preset,
                        lanuma_cycles=lanuma.stats.execution_cycles,
                        scoma_cycles=scoma.stats.execution_cycles)
    specs = [ExperimentSpec(
        workload, "scoma-70", preset=preset, config=config,
        page_cache_override=tuple(
            derive_page_cache_caps(scoma, fraction=fraction)))
        for fraction in fractions]
    for fraction, result in zip(fractions, session.run_suite(specs)):
        sweep.points[fraction] = (result.stats.execution_cycles,
                                  result.stats.client_page_outs)
    return sweep


def render_sweep(sweep: SweepResult) -> str:
    """The sweep as a text table with the crossover verdict."""
    lines = ["Page-cache fraction sweep — %s (%s preset)"
             % (sweep.workload, sweep.preset),
             "LANUMA baseline: %.2fx SCOMA" % sweep.lanuma_normalized,
             "%10s %12s %10s %s" % ("fraction", "normalized", "page-outs",
                                    "vs LANUMA")]
    for fraction, normalized, pageouts in sweep.rows():
        verdict = ("S-COMA wins" if normalized < sweep.lanuma_normalized
                   else "LANUMA wins")
        lines.append("%10.2f %12.2f %10d %s"
                     % (fraction, normalized, pageouts, verdict))
    crossover = sweep.crossover_fraction()
    if crossover is None:
        lines.append("no crossover within the swept range")
    else:
        lines.append("capped S-COMA overtakes LANUMA at fraction %.2f"
                     % crossover)
    return "\n".join(lines)
