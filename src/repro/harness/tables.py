"""Regenerate the paper's tables from simulation results.

Each ``tableN`` function returns a :class:`~repro.harness.report.TextTable`
with our measurements side by side with the paper's published values
(absolute numbers differ by construction — scaled machine — but the
orderings and ratios should match; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.harness import paperdata
from repro.harness.report import TextTable
from repro.obs import find_metrics, quantile
from repro.sim.latency import PAPER_TABLE1, LatencyModel
from repro.workloads import make_workload
from repro.workloads.microbench import run_microbenchmark

TABLE1_ROWS = (
    ("l2_hit", "L1 miss, L2 hit"),
    ("local_memory", "Uncached, line in local memory"),
    ("remote_clean", "Uncached, line in remote memory"),
    ("2party_modified", "2-party read/write to a modified line"),
    ("3party_modified", "3-party read/write to a modified line"),
    ("2party_write_shared", "2-party write to shared line"),
    ("write_shared_base", "(3+n)-party write to shared line (base)"),
    ("write_shared_per_sharer", "(3+n)-party write: per extra sharer"),
    ("tlb_miss", "TLB miss"),
    ("fault_local", "In-core page fault, local home"),
    ("fault_remote", "In-core page fault, remote home"),
)


def table1(config=None) -> TextTable:
    """Table 1: cache miss latencies and page fault overheads."""
    measured = run_microbenchmark(config)
    lat = (config.latency if config is not None else LatencyModel())
    model = {
        "l2_hit": lat.expected_l2_hit,
        "local_memory": lat.expected_local_memory,
        "remote_clean": lat.expected_remote_clean,
        "2party_modified": lat.expected_2party_modified,
        "3party_modified": lat.expected_3party_modified,
        "2party_write_shared": lat.expected_2party_write_shared,
        "write_shared_base": lat.expected_write_shared(0),
        "write_shared_per_sharer": lat.inval_issue,
        "tlb_miss": lat.tlb_miss,
        "fault_local": lat.expected_fault_local,
        "fault_remote": lat.expected_fault_remote,
    }
    table = TextTable(
        "Table 1: memory access latencies (cycles)",
        ["Memory access type", "Paper", "Model", "Measured"])
    for key, label in TABLE1_ROWS:
        table.add_row(label, PAPER_TABLE1[key], model[key], measured[key])
    return table


def table2() -> TextTable:
    """Table 2: application benchmark types and data sets."""
    table = TextTable(
        "Table 2: application benchmarks and data sets",
        ["Application", "Problem", "Paper size", "Our size"])
    for app in paperdata.PAPER_APPS:
        desc, paper_size = paperdata.TABLE2[app]
        ours = make_workload(app).problem
        table.add_row(app, desc, paper_size, ours)
    return table


def table3(suites) -> TextTable:
    """Table 3: page consumption and utilization, SCOMA vs LANUMA."""
    table = TextTable(
        "Table 3: page frames allocated and average utilization",
        ["Application",
         "Frames SCOMA", "Frames LANUMA", "Util SCOMA", "Util LANUMA",
         "Paper frames S/L", "Paper util S/L"])
    for app, suite in suites.items():
        s = suite.results["scoma"].stats
        l = suite.results["lanuma"].stats
        ps, pl, pus, pul = paperdata.TABLE3[app]
        table.add_row(app,
                      s.frames_allocated_total, l.frames_allocated_total,
                      s.average_utilization, l.average_utilization,
                      "%d / %d" % (ps, pl),
                      "%.3f / %.3f" % (pus, pul))
    return table


def table4(suites) -> TextTable:
    """Table 4: remote misses (static configs) and SCOMA-70 page-outs."""
    table = TextTable(
        "Table 4: remote misses and page-outs, static configurations",
        ["Application", "SCOMA", "LANUMA", "SCOMA-70", "Pageouts-70",
         "Paper (S/L/70/po)"])
    for app, suite in suites.items():
        ps, pl, p70, ppo = paperdata.TABLE4[app]
        table.add_row(app,
                      suite.remote_misses("scoma"),
                      suite.remote_misses("lanuma"),
                      suite.remote_misses("scoma-70"),
                      suite.page_outs("scoma-70"),
                      "%d/%d/%d/%d" % (ps, pl, p70, ppo))
    return table


def table5(suites) -> TextTable:
    """Table 5: remote misses and page-outs, adaptive configurations."""
    table = TextTable(
        "Table 5: remote misses and page-outs, adaptive configurations",
        ["Application", "Dyn-FCFS", "Dyn-Util", "Dyn-LRU",
         "PO Util", "PO LRU", "Paper (F/U/L)"])
    for app, suite in suites.items():
        pf, pu, pl, ppu, ppl = paperdata.TABLE5[app]
        table.add_row(app,
                      suite.remote_misses("dyn-fcfs"),
                      suite.remote_misses("dyn-util"),
                      suite.remote_misses("dyn-lru"),
                      suite.page_outs("dyn-util"),
                      suite.page_outs("dyn-lru"),
                      "%d/%d/%d" % (pf, pu, pl))
    return table


def metrics_table(results) -> TextTable:
    """Per-cell telemetry summary from ``RunResult.metrics`` snapshots.

    One row per result that carries a metrics snapshot (cells run
    without observability are skipped): access count and p50/p95 access
    latency from the ``sim.access_latency_cycles`` histogram, page
    faults serviced, the machine-wide PIT fast-lookup ratio, and the
    peak client page-cache occupancy across nodes.
    """
    table = TextTable(
        "Per-cell telemetry",
        ["Workload", "Policy", "Accesses", "p50 cyc", "p95 cyc",
         "Faults", "PIT fast", "Cache peak"])
    for result in results:
        snap = result.metrics
        if not snap:
            continue
        accesses = p50 = p95 = 0
        for _labels, hist in find_metrics(snap["histograms"],
                                          "sim.access_latency_cycles"):
            accesses = hist["count"]
            p50 = quantile(hist, 0.50)
            p95 = quantile(hist, 0.95)
        faults = sum(hist["count"] for _labels, hist in find_metrics(
            snap["histograms"], "kernel.fault_service_cycles"))
        pit_fast = 0.0
        for labels, value in find_metrics(snap["gauges"],
                                          "core.pit_fast_ratio"):
            if not labels:       # the machine-wide roll-up
                pit_fast = value
        peak = max((value for _labels, value in find_metrics(
            snap["gauges"], "kernel.frame_pool.client_scoma_peak")),
            default=0)
        table.add_row(result.workload, result.policy, accesses,
                      p50, p95, faults, pit_fast, peak)
    return table


def pit_sensitivity(apps, preset: str = "default", config=None,
                    session=None) -> TextTable:
    """Section 4.3: SRAM (2-cycle) vs DRAM (10-cycle) PIT.

    All (app, PIT) cells are independent; pass a
    :class:`~repro.harness.session.Session` to fan them out across its
    worker pool and result cache.
    """
    from dataclasses import replace

    from repro.harness.session import ExperimentSpec, Session
    from repro.sim.config import MachineConfig
    from repro.sim.latency import LatencyModel

    session = session if session is not None else Session()
    base_cfg = config if config is not None else MachineConfig()
    dram_cfg = replace(base_cfg, latency=LatencyModel(pit_access=10))
    table = TextTable(
        "Section 4.3: impact of PIT access time (LANUMA clients)",
        ["Application", "SRAM PIT cycles", "DRAM PIT cycles",
         "Slowdown", "Paper slowdown"])
    apps = tuple(apps)
    specs = [ExperimentSpec(app, "lanuma", preset=preset, config=cfg)
             for app in apps for cfg in (base_cfg, dram_cfg)]
    results = session.run_suite(specs)
    for i, app in enumerate(apps):
        sram, dram = results[2 * i], results[2 * i + 1]
        slow = (dram.stats.execution_cycles / sram.stats.execution_cycles) - 1
        table.add_row(app, sram.stats.execution_cycles,
                      dram.stats.execution_cycles,
                      "%.1f%%" % (100 * slow),
                      "%.0f%%" % (100 * paperdata.PIT_SLOWDOWN[app]))
    return table
