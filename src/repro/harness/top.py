"""Live terminal view of a running campaign (``repro top``).

:class:`LiveCampaignView` implements the :class:`~repro.harness.
report.CampaignProgress` duck interface (``expect`` / ``cell_done`` /
``note_cache``) plus the session's optional ``cell_metrics`` hook, and
renders a full-screen frame after every completed cell: per-cell
progress with access-latency p50/p99, result-cache counters, worker
utilization, and rolling campaign-wide latency quantiles with a
critical-path segment breakdown (when the cells ran with a trace
collector the ``trace.segment_cycles`` roll-ups feed it; otherwise the
segment column is empty).

This is the seed of the ROADMAP's campaign-service dashboard: the view
consumes only :mod:`repro.obs` snapshot dicts — exactly what a
long-running campaign service would publish — and renders to a plain
string (:meth:`render`) so it is equally usable against a terminal, a
log file or a test.

On a real terminal each frame repaints in place (ANSI home+clear);
when the output stream is not a TTY the view degrades to one compact
line per completed cell, which keeps piped output and CI logs sane.
"""

from __future__ import annotations

import sys
import time

from repro.obs.registry import find_metrics, quantile
from repro.harness.report import TextTable

#: Clear screen + home the cursor.
_ANSI_REPAINT = "\x1b[H\x1b[2J"


def _merge_hist(into: "dict | None", member: dict) -> dict:
    """Accumulate one snapshot histogram into a rolling aggregate."""
    if into is None:
        return {"buckets": list(member["buckets"]),
                "counts": list(member["counts"]),
                "sum": member["sum"], "count": member["count"]}
    if list(member["buckets"]) == into["buckets"]:
        for i, c in enumerate(member["counts"]):
            into["counts"][i] += c
        into["sum"] += member["sum"]
        into["count"] += member["count"]
    return into


class LiveCampaignView:
    """Live campaign dashboard; plug into ``Session(progress=...)``.

    The session must run with ``collect_metrics=True`` for the latency
    columns to populate (cells completed without a snapshot — e.g.
    cache hits stored without one — show dashes).
    """

    def __init__(self, stream=None, jobs: int = 1,
                 repaint: "bool | None" = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.jobs = max(1, jobs)
        if repaint is None:
            repaint = bool(getattr(self.stream, "isatty", lambda: False)())
        self.repaint = repaint
        self.total = 0
        self.done = 0
        self.cached = 0
        self.busy_seconds = 0.0
        self.cache_hits: "int | None" = None
        self.cache_misses: "int | None" = None
        self.started = time.perf_counter()
        #: Completed cells in completion order:
        #: (workload, policy, note, p50, p99, segments-string).
        self.rows: "list[tuple]" = []
        self._pending_metrics: "dict[tuple, tuple]" = {}
        self._latency = None          # rolling access-latency histogram
        self._segments: "dict[str, int]" = {}   # segment -> cycles

    # -- session progress interface (duck-typed) -------------------------

    def expect(self, cells: int) -> None:
        """Announce ``cells`` more cells to run (totals accumulate)."""
        self.total += cells

    def note_cache(self, hits: int, misses: int) -> None:
        """Record the session's result-cache counters (absolute)."""
        self.cache_hits = hits
        self.cache_misses = misses

    def cell_metrics(self, workload: str, policy: str,
                     metrics: dict) -> None:
        """Fold one cell's metrics snapshot into the rolling aggregates
        (the session calls this right *before* the cell's
        ``cell_done``, which consumes the stashed columns)."""
        hists = metrics.get("histograms", {})
        cell_latency = None
        for _labels, member in find_metrics(hists,
                                            "sim.access_latency_cycles"):
            cell_latency = _merge_hist(cell_latency, member)
            self._latency = _merge_hist(self._latency, member)
        p50 = p99 = None
        if cell_latency is not None and cell_latency["count"]:
            p50 = quantile(cell_latency, 0.50)
            p99 = quantile(cell_latency, 0.99)
        for labels, member in find_metrics(hists, "trace.segment_cycles"):
            seg = labels.get("segment", "?")
            self._segments[seg] = (self._segments.get(seg, 0)
                                   + member["sum"])
        self._pending_metrics[(workload, policy)] = (p50, p99)

    def cell_done(self, workload: str, policy: str, seconds: float,
                  cached: bool = False) -> None:
        """Record one completed campaign cell and redraw."""
        self.done += 1
        if cached:
            self.cached += 1
        else:
            self.busy_seconds += seconds
        note = "cached" if cached else "%.2fs" % seconds
        p50, p99 = self._pending_metrics.pop((workload, policy),
                                             (None, None))
        self.rows.append((workload, policy, note,
                          "-" if p50 is None else p50,
                          "-" if p99 is None else p99,
                          self._segment_summary()))
        self._refresh()

    # -- rendering -------------------------------------------------------

    def _segment_summary(self, top: int = 3) -> str:
        total = sum(self._segments.values())
        if not total:
            return ""
        parts = sorted(self._segments.items(),
                       key=lambda kv: (-kv[1], kv[0]))[:top]
        return " ".join("%s %d%%" % (kind, round(100.0 * cycles / total))
                        for kind, cycles in parts)

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since this view was created."""
        return time.perf_counter() - self.started

    def utilization(self) -> float:
        """Fraction of the worker pool kept busy by simulated cells."""
        wall = self.elapsed
        if wall <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (wall * self.jobs))

    def render(self) -> str:
        """The current dashboard frame as plain text."""
        header = ["repro top — campaign %d/%s cells  elapsed %.1fs  "
                  "jobs %d  util %d%%"
                  % (self.done, self.total if self.total else "?",
                     self.elapsed, self.jobs,
                     round(100 * self.utilization()))]
        if self.cache_hits is not None:
            header.append("result cache: %d hits, %d misses"
                          % (self.cache_hits, self.cache_misses))
        if self._latency is not None and self._latency["count"]:
            line = ("access latency (rolling): p50 <= %s  p99 <= %s cycles"
                    % (quantile(self._latency, 0.50),
                       quantile(self._latency, 0.99)))
            segments = self._segment_summary()
            if segments:
                line += "   critical path: " + segments
            header.append(line)
        table = TextTable("cells", ["workload", "policy", "time",
                                    "p50", "p99", "segments"])
        for row in self.rows:
            table.add_row(*row)
        return "\n".join(header) + "\n\n" + table.render() + "\n"

    def _refresh(self) -> None:
        if self.repaint:
            self.stream.write(_ANSI_REPAINT + self.render())
        else:
            row = self.rows[-1]
            self.stream.write("  [%d/%s] %-10s %-9s %s  p50<=%s p99<=%s %s\n"
                              % (self.done,
                                 self.total if self.total else "?",
                                 row[0], row[1], row[2], row[3], row[4],
                                 row[5]))
        self.stream.flush()

    def summary(self) -> str:
        """End-of-campaign one-liner (matches CampaignProgress's)."""
        line = ("campaign: %d cells in %.1fs wall-clock"
                " (%d simulated, %d cache hits)"
                % (self.done, self.elapsed, self.done - self.cached,
                   self.cached))
        if self.cache_hits is not None:
            line += (" [result cache: %d hits, %d misses]"
                     % (self.cache_hits, self.cache_misses))
        return line
