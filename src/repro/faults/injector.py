"""The fault plane: executes a :class:`FaultPlan` against the machine.

A :class:`FaultInjector` sits behind ``Network.send`` (and therefore
every protocol hop, paging fan-out and command-channel deposit).  When
a machine carries one, every inter-node hop is *judged*: partitions and
drop rules lose it, delay/reorder rules stretch its flight, duplicate
rules deliver it twice (the second copy is discarded by sequence-number
dedup), and deliveries to a paused node are held until the pause ends.

The recovery half lives here too.  The simulator resolves transactions
atomically — a "request" is a direct call, not a queued object — so a
lost message manifests as the *requester* timing out: the injector
models the bounded-retransmission protocol by charging the sender the
:class:`RetryPolicy` timeout (with exponential backoff) and re-judging
the hop, up to ``max_retries`` times.  Exhausted retries raise
:class:`UnreachableNodeError` (a clean
:class:`~repro.core.controller.NodeFailedError`); a drop with
retransmission *disabled* raises
:class:`~repro.sim.machine.DeadlineExceeded`, because a protocol
without timeouts would simply wait forever — that asymmetry is what the
chaos campaign's mutation self-test checks.

Determinism: the injector owns a dedicated ``random.Random(seed)``.
Fault verdicts consume randomness only for hops a live rule actually
covers, and nothing here touches the machine's workload RNGs, so a run
under an *empty* plan is byte-identical to a run with no injector at
all (the machine never even takes these code paths — every hook is
gated on ``faults is not None``).
"""

from __future__ import annotations

import random

from repro import obs
from repro.obs import tracing
from repro.core.controller import UnreachableNodeError
from repro.interconnect.messages import MessageKind, SequenceTracker
from repro.sim.machine import DeadlineExceeded


class RetryPolicy:
    """Per-request timeout + bounded retransmission with backoff.

    After a lost hop the sender waits ``timeout_cycles * backoff**k``
    (k = attempt index) and retransmits, up to ``max_retries`` times.
    ``max_retries=0`` disables recovery entirely (see
    :meth:`disabled`) — any drop then hangs the requester.
    """

    __slots__ = ("timeout_cycles", "max_retries", "backoff")

    def __init__(self, timeout_cycles: int = 1_000, max_retries: int = 6,
                 backoff: float = 2.0) -> None:
        if timeout_cycles < 1:
            raise ValueError("timeout_cycles must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.timeout_cycles = timeout_cycles
        self.max_retries = max_retries
        self.backoff = backoff

    def timeout(self, attempt: int) -> int:
        """Cycles the sender waits before retransmission ``attempt``."""
        return int(self.timeout_cycles * self.backoff ** attempt)

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """No retransmission: the mutation-self-test configuration."""
        return cls(max_retries=0)


class FaultStats:
    """Plain counters of everything the fault plane did in one run."""

    FIELDS = ("judged", "dropped", "partition_drops", "retransmissions",
              "retry_exhausted", "duplicated", "dedup_drops", "delayed",
              "reordered", "paused_deliveries", "scheduled_failures",
              "undeliverable", "hangs")

    __slots__ = FIELDS

    def __init__(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)

    def to_dict(self) -> "dict[str, int]":
        """JSON-safe snapshot."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        busy = ", ".join("%s=%d" % (n, getattr(self, n))
                         for n in self.FIELDS if getattr(self, n))
        return "FaultStats(%s)" % (busy or "clean")


class FaultInjector:
    """Executes one :class:`FaultPlan` with a dedicated seeded RNG.

    Construct one per run (it accumulates per-run state: RNG position,
    sequence numbers, applied failures, counters) and hand it to
    ``Machine(..., faults=injector)``; the machine wires it into the
    network and event loop.  ``sink`` is an optional
    :class:`~repro.obs.events.EventSink` receiving one ``fault_inject``
    event per injected fault.
    """

    def __init__(self, plan, seed: int = 0, retry: "RetryPolicy | None" = None,
                 sink=None) -> None:
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(seed)
        self.retry = retry if retry is not None else RetryPolicy()
        self.sink = sink
        self.stats = FaultStats()
        self.seqs = SequenceTracker()
        self._machine = None
        self._rules = tuple(plan.message_rules)
        self._partitions = tuple(plan.partitions)
        self._failures = sorted(plan.failures, key=lambda f: f.at)
        self._failure_idx = 0
        self._pauses_by_node: "dict[int, tuple]" = {}
        for pause in plan.pauses:
            self._pauses_by_node.setdefault(pause.node, [])
        for pause in plan.pauses:
            self._pauses_by_node[pause.node].append(pause)
        self._dup_pending = False

    # -- machine wiring ----------------------------------------------------

    def bind(self, machine) -> None:
        """Attach to a built machine; validates plan node ids."""
        num_nodes = machine.config.num_nodes
        for clause in list(self.plan.pauses) + list(self.plan.failures):
            if clause.node >= num_nodes:
                raise ValueError("fault plan names node %d but the machine "
                                 "has %d nodes" % (clause.node, num_nodes))
        for part in self._partitions:
            if any(n >= num_nodes for n in part.nodes):
                raise ValueError("partition names a node outside the "
                                 "%d-node machine" % num_nodes)
        self._machine = machine

    # -- event-loop hooks --------------------------------------------------

    def on_tick(self, machine, now: int) -> None:
        """Apply any scheduled hard failures due by ``now``."""
        while (self._failure_idx < len(self._failures)
               and self._failures[self._failure_idx].at <= now):
            failure = self._failures[self._failure_idx]
            self._failure_idx += 1
            if failure.node not in machine.failed_nodes:
                self.stats.scheduled_failures += 1
                machine.fail_node(failure.node, now=failure.at)

    def release_time(self, node: int, now: int) -> int:
        """Earliest time ``node`` is responsive again (``now`` if live)."""
        pauses = self._pauses_by_node.get(node)
        if not pauses:
            return now
        release = now
        for pause in pauses:
            if pause.start <= release < pause.end:
                release = pause.end
        return release

    # -- the fault plane ---------------------------------------------------

    def deliver(self, network, src: int, dst: int, now: int,
                kind: "MessageKind") -> int:
        """Judge and deliver one inter-node hop; returns arrival time.

        Replicates ``Network.send``'s NI-occupancy/flight arithmetic
        per transmission attempt, so a clean verdict costs exactly what
        the fault-free path charges.
        """
        machine = self._machine
        retry = self.retry
        stamp = self.seqs.stamp(src, dst)
        ni = network.interfaces[src]
        occ = network.NI_OCCUPANCY
        flight = network.lat.net_latency - occ
        t = now
        attempt = 0
        while True:
            self.on_tick(machine, t)
            if dst in machine.failed_nodes:
                self.stats.undeliverable += 1
                raise UnreachableNodeError(
                    "node %d: %s to failed node %d is undeliverable"
                    % (src, kind.name, dst))
            network.messages += 1
            network.hops_charged += 1
            injected = ni.acquire(t, occ)
            arrival = injected + flight
            if network.jitter is not None:
                arrival += network.jitter()
            self.stats.judged += 1
            action, extra = self._judge(kind, src, dst, t)
            if action is None:
                break
            if action == "drop":
                self.stats.dropped += 1
                self._note("drop", kind, src, dst, t)
                if retry.max_retries <= 0:
                    # No retransmission layer: the requester has no
                    # timeout and would wait for this reply forever.
                    self.stats.hangs += 1
                    raise DeadlineExceeded(
                        "%s %d->%d lost with retransmission disabled; "
                        "the requester would wait forever" %
                        (kind.name, src, dst))
                if attempt >= retry.max_retries:
                    self.stats.retry_exhausted += 1
                    self._note("retry_exhausted", kind, src, dst, t)
                    raise UnreachableNodeError(
                        "%s %d->%d lost %d times; retries exhausted, "
                        "declaring node %d unreachable"
                        % (kind.name, src, dst, attempt + 1, dst))
                t = injected + retry.timeout(attempt)
                tracer = tracing.current()
                if tracer is not None:
                    # The back-off window the requester sat on before
                    # this retransmission — the ``retry`` segment.
                    tracer.add("retry:" + kind.name, "retry", src,
                               injected, t, attempt=attempt + 1, dst=dst)
                attempt += 1
                self.stats.retransmissions += 1
                self._note("retransmit", kind, src, dst, t)
                continue
            if action == "delay":
                self.stats.delayed += 1
                arrival += extra
                self._note("delay", kind, src, dst, t)
            elif action == "reorder":
                self.stats.reordered += 1
                arrival += extra
                self._note("reorder", kind, src, dst, t)
            elif action == "duplicate":
                # The extra copy occupies the NI and reaches the
                # receiver, where sequence-number dedup discards it.
                self.stats.duplicated += 1
                network.messages += 1
                network.hops_charged += 1
                ni.acquire(arrival, occ)
                self._dup_pending = True
                self._note("duplicate", kind, src, dst, t)
            break
        release = self.release_time(dst, arrival)
        if release > arrival:
            self.stats.paused_deliveries += 1
            arrival = release
        self.seqs.accept(src, dst, stamp)
        if self._dup_pending and kind is not MessageKind.COMMAND:
            # Atomic (non-queued) delivery: the duplicate's only effect
            # is its dedup drop at the receiver.  COMMAND deposits are
            # real queued payloads — MessageChannel dedups those itself
            # via consume_duplicate().
            self._dup_pending = False
            self.seqs.accept(src, dst, stamp)
            self.stats.dedup_drops += 1
            obs.counter("faults.dedup_drops").inc()
        tracer = tracing.current()
        if tracer is not None:
            tracer.add("net:" + kind.name, "network", src, t, arrival,
                       dst=dst)
        return arrival

    def consume_duplicate(self) -> bool:
        """True once after a duplicate verdict (MessageChannel hook)."""
        if self._dup_pending:
            self._dup_pending = False
            return True
        return False

    def count_dedup_drop(self) -> None:
        """Record a receiver-side dedup performed outside the injector
        (the command channel's queued-payload path)."""
        self.stats.dedup_drops += 1
        obs.counter("faults.dedup_drops").inc()

    # -- internals ---------------------------------------------------------

    def _judge(self, kind, src: int, dst: int,
               now: int) -> "tuple[str | None, int]":
        """Verdict for one transmission attempt: (action, extra cycles)."""
        for part in self._partitions:
            if part.severs(src, dst, now):
                self.stats.partition_drops += 1
                return "drop", 0
        for rule in self._rules:
            if (rule.applies(kind, src, dst, now)
                    and self.rng.random() < rule.probability):
                if rule.action == "delay":
                    return "delay", rule.cycles
                if rule.action == "reorder":
                    return "reorder", self.rng.randrange(rule.cycles + 1)
                return rule.action, 0
        return None, 0

    def _note(self, action: str, kind, src: int, dst: int, now: int) -> None:
        """Surface one fault as an obs counter and (optionally) event.

        With a trace collector installed the active transaction is also
        annotated: a ``fault_<action>`` counter attr plus the message
        kind the rule hit — a chaos failure's span tree says what was
        injected into it.
        """
        obs.counter("faults." + action, msg=kind.name).inc()
        tracer = tracing.current()
        if tracer is not None:
            tracer.count("fault_" + action)
            tracer.annotate(fault_msg=kind.name)
        if self.sink is not None:
            self.sink.emit("fault_inject", time=now, action=action,
                           msg=kind.name, src=src, dst=dst)
