"""Deterministic fault-injection & resilience subsystem.

PRISM's nodes run independent kernels; the inter-node protocol is the
only coupling between them, so it is exactly the surface where a real
machine degrades when links misbehave or a node stalls.  This package
models that surface:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` DSL describing *what*
  goes wrong: drop / duplicate / delay / reorder a message class with
  probability *p* inside a simulated-time window, pause a node, cut a
  set of links, or hard-fail a node at a chosen time.
* :mod:`repro.faults.injector` — the :class:`FaultInjector` fault plane
  that executes a plan against the interconnect with a dedicated seeded
  RNG (reproducible; byte-identical to a fault-free run when the plan
  is empty) plus the :class:`RetryPolicy` recovery layer: per-request
  timeout, bounded retransmission with exponential backoff, and
  sequence-numbered receiver-side dedup.
* :mod:`repro.faults.campaign` — chaos campaigns (`repro chaos`) that
  reuse the litmus runner and SC checker from :mod:`repro.verify` to
  assert that under every sampled fault plan a run either completes
  with a sequentially-consistent history, or fails cleanly with
  :class:`~repro.core.controller.NodeFailedError` — never hangs, never
  silently corrupts.
"""

from repro.faults.campaign import (ChaosCampaign, ChaosReport, ChaosRun,
                                   Verdict, run_chaos)
from repro.faults.injector import FaultInjector, FaultStats, RetryPolicy
from repro.faults.plan import (FaultPlan, LinkPartition, MessageRule,
                               NodeFailure, NodePause, resolve_kinds)

__all__ = [
    "ChaosCampaign",
    "ChaosReport",
    "ChaosRun",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkPartition",
    "MessageRule",
    "NodeFailure",
    "NodePause",
    "RetryPolicy",
    "Verdict",
    "resolve_kinds",
    "run_chaos",
]
