"""The fault-plan DSL: a declarative description of what goes wrong.

A :class:`FaultPlan` is a bag of fault clauses, each scoped to a
simulated-time window:

* :class:`MessageRule` — drop / duplicate / delay / reorder messages of
  a kind class with probability *p*, optionally filtered by endpoint.
* :class:`NodePause` — a node stops servicing inbound traffic and its
  CPUs stall for a window (a GC pause / interrupt storm); everything
  queues and drains on resume.
* :class:`LinkPartition` — all links between a node set and the rest of
  the machine drop every message for a window.
* :class:`NodeFailure` — the node hard-fails at time *t* (the existing
  :meth:`Machine.fail_node` semantics, scheduled instead of manual).

Plans are pure data: they carry no RNG and no machine references, so
the same plan object can drive many seeded runs.  They serialize to
JSON (``to_dict`` / ``from_dict``) for the ``repro chaos --plan FILE``
CLI, and :meth:`FaultPlan.sample` draws a random small plan from a
caller-owned RNG for chaos campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.interconnect.messages import MessageKind

#: The four things a MessageRule can do to a matching message.
ACTIONS = ("drop", "duplicate", "delay", "reorder")

#: Named message-kind classes for rule filters.  ``None`` (or "all")
#: matches every kind.
KIND_CLASSES: "dict[str, frozenset]" = {
    "coherence": frozenset({
        MessageKind.READ_REQ, MessageKind.READ_EXCL_REQ,
        MessageKind.UPGRADE_REQ, MessageKind.DATA_REPLY, MessageKind.ACK,
        MessageKind.INVALIDATE, MessageKind.INTERVENTION,
        MessageKind.WRITEBACK, MessageKind.REPLACEMENT_HINT,
        MessageKind.FORWARD,
    }),
    "requests": frozenset({
        MessageKind.READ_REQ, MessageKind.READ_EXCL_REQ,
        MessageKind.UPGRADE_REQ,
    }),
    "replies": frozenset({MessageKind.DATA_REPLY, MessageKind.ACK}),
    "paging": frozenset({
        MessageKind.PAGE_IN_REQ, MessageKind.PAGE_IN_REPLY,
        MessageKind.PAGE_OUT_REQ, MessageKind.PAGE_OUT_ACK,
        MessageKind.CLIENT_PAGE_OUT, MessageKind.STATUS_RESET,
    }),
    "naming": frozenset({
        MessageKind.SEG_CREATE, MessageKind.SEG_ATTACH, MessageKind.SEG_REPLY,
    }),
    "migration": frozenset({MessageKind.MIGRATE_REQ, MessageKind.MIGRATE_ACK}),
    "command": frozenset({MessageKind.COMMAND}),
}


def resolve_kinds(spec) -> "frozenset | None":
    """Normalize a kind filter to ``frozenset[MessageKind] | None``.

    Accepts ``None`` / ``"all"`` (match everything), a
    :class:`MessageKind`, a kind name (``"READ_REQ"``), a class name
    from :data:`KIND_CLASSES` (``"coherence"``), or any iterable of
    those; raises ``ValueError`` on unknown names.
    """
    if spec is None:
        return None
    if isinstance(spec, MessageKind):
        return frozenset({spec})
    if isinstance(spec, str):
        if spec == "all":
            return None
        if spec in KIND_CLASSES:
            return KIND_CLASSES[spec]
        try:
            return frozenset({MessageKind[spec]})
        except KeyError:
            raise ValueError("unknown message kind or class %r (classes: %s)"
                             % (spec, ", ".join(sorted(KIND_CLASSES))))
    kinds: "set[MessageKind]" = set()
    for item in spec:
        resolved = resolve_kinds(item)
        if resolved is None:
            return None
        kinds |= resolved
    if not kinds:
        raise ValueError("empty kind filter")
    return frozenset(kinds)


def _kinds_to_names(kinds: "frozenset | None") -> "list[str] | None":
    if kinds is None:
        return None
    return sorted(k.name for k in kinds)


def _check_window(start: int, end: "int | None") -> None:
    if start < 0:
        raise ValueError("window start must be >= 0, got %d" % start)
    if end is not None and end < start:
        raise ValueError("window end %d precedes start %d" % (end, start))


@dataclass(frozen=True)
class MessageRule:
    """Perturb matching messages with probability ``probability``.

    ``action`` is one of :data:`ACTIONS`.  ``delay`` adds exactly
    ``cycles`` flight cycles; ``reorder`` adds a uniform random
    0..``cycles`` (in an atomically-resolved simulator, reordering *is*
    randomized extra delay — two messages in flight swap arrival
    order).  ``kinds`` is ``None`` for all kinds.  ``src`` / ``dst``
    restrict the rule to one endpoint.  The rule is live for sends in
    ``start <= now < end`` (``end=None`` means forever).
    """

    action: str
    probability: float
    kinds: "frozenset | None" = None
    start: int = 0
    end: "int | None" = None
    cycles: int = 0
    src: "int | None" = None
    dst: "int | None" = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError("action must be one of %r, got %r"
                             % (ACTIONS, self.action))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1], got %r"
                             % (self.probability,))
        _check_window(self.start, self.end)
        if self.cycles < 0:
            raise ValueError("cycles must be >= 0")
        if self.action in ("delay", "reorder") and self.cycles == 0:
            raise ValueError("%s rules need cycles > 0" % self.action)

    def applies(self, kind, src: int, dst: int, now: int) -> bool:
        """True when this rule covers a ``kind`` send src->dst at ``now``."""
        if now < self.start or (self.end is not None and now >= self.end):
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-safe encoding (kinds by name)."""
        return {"action": self.action, "probability": self.probability,
                "kinds": _kinds_to_names(self.kinds), "start": self.start,
                "end": self.end, "cycles": self.cycles,
                "src": self.src, "dst": self.dst}

    @classmethod
    def from_dict(cls, data: dict) -> "MessageRule":
        """Inverse of :meth:`to_dict`."""
        return cls(action=data["action"], probability=data["probability"],
                   kinds=resolve_kinds(data.get("kinds")),
                   start=data.get("start", 0), end=data.get("end"),
                   cycles=data.get("cycles", 0),
                   src=data.get("src"), dst=data.get("dst"))


@dataclass(frozen=True)
class NodePause:
    """Node ``node`` is unresponsive for ``start <= t < end``."""

    node: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node id must be >= 0")
        _check_window(self.start, self.end)

    def to_dict(self) -> dict:
        """JSON-safe encoding."""
        return {"node": self.node, "start": self.start, "end": self.end}


@dataclass(frozen=True)
class LinkPartition:
    """Links between ``nodes`` and the rest drop everything in the window.

    Traffic *within* ``nodes`` (and within the complement) is untouched;
    only messages crossing the cut are dropped, so the recovery layer's
    bounded retransmission decides whether the run survives (the window
    ends in time) or fails cleanly (retries exhaust).
    """

    nodes: frozenset
    start: int
    end: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", frozenset(self.nodes))
        if not self.nodes:
            raise ValueError("partition needs at least one node")
        if any(n < 0 for n in self.nodes):
            raise ValueError("node ids must be >= 0")
        _check_window(self.start, self.end)

    def severs(self, src: int, dst: int, now: int) -> bool:
        """True when the src->dst link is cut at ``now``."""
        if now < self.start or (self.end is not None and now >= self.end):
            return False
        return (src in self.nodes) != (dst in self.nodes)

    def to_dict(self) -> dict:
        """JSON-safe encoding."""
        return {"nodes": sorted(self.nodes), "start": self.start,
                "end": self.end}


@dataclass(frozen=True)
class NodeFailure:
    """Node ``node`` hard-fails at simulated time ``at``."""

    node: int
    at: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node id must be >= 0")
        if self.at < 0:
            raise ValueError("failure time must be >= 0")

    def to_dict(self) -> dict:
        """JSON-safe encoding."""
        return {"node": self.node, "at": self.at}


@dataclass
class FaultPlan:
    """A declarative, serializable bag of fault clauses.

    Build one fluently::

        plan = (FaultPlan()
                .drop(0.2, kinds="requests", start=0, end=50_000)
                .delay(0.5, cycles=300, kinds="replies")
                .pause_node(2, start=10_000, end=20_000)
                .fail_node(3, at=80_000))

    An empty plan is free: the machine takes the exact fault-free fast
    paths and produces byte-identical results.
    """

    message_rules: "list[MessageRule]" = field(default_factory=list)
    pauses: "list[NodePause]" = field(default_factory=list)
    partitions: "list[LinkPartition]" = field(default_factory=list)
    failures: "list[NodeFailure]" = field(default_factory=list)

    # -- fluent builders ---------------------------------------------------

    def _rule(self, action, probability, kinds, start, end, cycles,
              src, dst) -> "FaultPlan":
        self.message_rules.append(MessageRule(
            action=action, probability=probability,
            kinds=resolve_kinds(kinds), start=start, end=end,
            cycles=cycles, src=src, dst=dst))
        return self

    def drop(self, probability: float, kinds=None, start: int = 0,
             end: "int | None" = None, src: "int | None" = None,
             dst: "int | None" = None) -> "FaultPlan":
        """Drop matching messages with probability ``probability``."""
        return self._rule("drop", probability, kinds, start, end, 0, src, dst)

    def duplicate(self, probability: float, kinds=None, start: int = 0,
                  end: "int | None" = None, src: "int | None" = None,
                  dst: "int | None" = None) -> "FaultPlan":
        """Deliver matching messages twice (receiver must dedup)."""
        return self._rule("duplicate", probability, kinds, start, end, 0,
                          src, dst)

    def delay(self, probability: float, cycles: int, kinds=None,
              start: int = 0, end: "int | None" = None,
              src: "int | None" = None, dst: "int | None" = None) -> "FaultPlan":
        """Add exactly ``cycles`` flight cycles to matching messages."""
        return self._rule("delay", probability, kinds, start, end, cycles,
                          src, dst)

    def reorder(self, probability: float, cycles: int, kinds=None,
                start: int = 0, end: "int | None" = None,
                src: "int | None" = None, dst: "int | None" = None) -> "FaultPlan":
        """Add uniform random 0..``cycles`` delay (arrival-order swaps)."""
        return self._rule("reorder", probability, kinds, start, end, cycles,
                          src, dst)

    def pause_node(self, node: int, start: int, end: int) -> "FaultPlan":
        """Stall ``node`` (CPUs and inbound delivery) for the window."""
        self.pauses.append(NodePause(node, start, end))
        return self

    def partition(self, nodes, start: int = 0,
                  end: "int | None" = None) -> "FaultPlan":
        """Cut every link between ``nodes`` and the rest for the window."""
        self.partitions.append(LinkPartition(frozenset(nodes), start, end))
        return self

    def fail_node(self, node: int, at: int) -> "FaultPlan":
        """Hard-fail ``node`` at simulated time ``at``."""
        self.failures.append(NodeFailure(node, at))
        return self

    # -- introspection -----------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.message_rules or self.pauses or self.partitions
                    or self.failures)

    def describe(self) -> str:
        """One human-readable line per clause."""
        if self.is_empty():
            return "empty plan (fault-free)"
        lines = []
        for r in self.message_rules:
            scope = "all kinds" if r.kinds is None else "/".join(
                sorted(k.name for k in r.kinds))
            window = ("[%d, %s)" % (r.start, r.end if r.end is not None
                                    else "inf"))
            extra = " +%d cycles" % r.cycles if r.cycles else ""
            lines.append("%s p=%.2f %s %s%s" % (r.action, r.probability,
                                                scope, window, extra))
        for p in self.pauses:
            lines.append("pause node %d [%d, %d)" % (p.node, p.start, p.end))
        for part in self.partitions:
            lines.append("partition %s [%d, %s)" % (
                sorted(part.nodes), part.start,
                part.end if part.end is not None else "inf"))
        for f in self.failures:
            lines.append("fail node %d at %d" % (f.node, f.at))
        return "; ".join(lines)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe encoding of the whole plan."""
        return {
            "message_rules": [r.to_dict() for r in self.message_rules],
            "pauses": [p.to_dict() for p in self.pauses],
            "partitions": [p.to_dict() for p in self.partitions],
            "failures": [f.to_dict() for f in self.failures],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (``repro chaos --plan FILE``)."""
        plan = cls()
        for r in data.get("message_rules", ()):
            plan.message_rules.append(MessageRule.from_dict(r))
        for p in data.get("pauses", ()):
            plan.pauses.append(NodePause(p["node"], p["start"], p["end"]))
        for p in data.get("partitions", ()):
            plan.partitions.append(LinkPartition(
                frozenset(p["nodes"]), p["start"], p.get("end")))
        for f in data.get("failures", ()):
            plan.failures.append(NodeFailure(f["node"], f["at"]))
        return plan

    # -- chaos sampling ----------------------------------------------------

    @classmethod
    def sample(cls, rng: "random.Random", num_nodes: int,
               horizon: int = 200_000) -> "FaultPlan":
        """Draw a random small plan from a caller-owned seeded RNG.

        Always includes 1-3 message rules; sometimes a node pause; and
        (rarely) a finite link partition.  Probabilities stay moderate
        and windows finite so a retrying protocol *can* survive — the
        point of a chaos campaign is distinguishing "survived with an
        SC history" from "failed cleanly", and a plan that guarantees
        failure proves nothing.
        """
        plan = cls()
        kind_pool = ("coherence", "requests", "replies", "paging", None)
        for _ in range(rng.randint(1, 3)):
            action = ACTIONS[rng.randrange(len(ACTIONS))]
            probability = round(rng.uniform(0.05, 0.35), 3)
            kinds = kind_pool[rng.randrange(len(kind_pool))]
            start = rng.randrange(horizon // 4)
            end = start + rng.randrange(horizon // 4, horizon)
            if action == "drop":
                plan.drop(probability, kinds=kinds, start=start, end=end)
            elif action == "duplicate":
                plan.duplicate(probability, kinds=kinds, start=start, end=end)
            else:
                cycles = rng.randrange(50, 2_000)
                getattr(plan, action)(probability, cycles=cycles, kinds=kinds,
                                      start=start, end=end)
        if rng.random() < 0.4:
            node = rng.randrange(num_nodes)
            start = rng.randrange(horizon // 2)
            plan.pause_node(node, start, start + rng.randrange(1_000, 20_000))
        if rng.random() < 0.15 and num_nodes > 1:
            node = rng.randrange(num_nodes)
            start = rng.randrange(horizon // 2)
            plan.partition({node}, start,
                           start + rng.randrange(1_000, 10_000))
        return plan
