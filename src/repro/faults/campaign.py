"""Chaos campaigns: litmus tests under sampled fault plans.

The resilience claim this module checks is binary: under *any* fault
plan, a run must either

* **complete** with a sequentially-consistent history and the correct
  final values (the SC checker and forbidden-outcome predicates from
  :mod:`repro.verify` judge this), or
* **fail cleanly** with :class:`~repro.core.controller.NodeFailedError`
  — a node died or became unreachable and the affected application was
  terminated, survivors unharmed.

It must never *hang* (caught by the simulated-time deadline /
:class:`~repro.sim.machine.DeadlineExceeded`) and never *silently
corrupt* (caught by the SC checker).  :func:`run_chaos` runs one
(test, plan, seed) triple and classifies it; :class:`ChaosCampaign`
samples many plans from one seed and aggregates — same seed, same
plans, same verdicts, so a campaign is a reproducible artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
import random

from repro.core.controller import NodeFailedError
from repro.faults.injector import FaultInjector, RetryPolicy
from repro.faults.plan import FaultPlan
from repro.obs import tracing
from repro.obs.events import EventSink
from repro.sim.machine import DeadlineExceeded, Machine
from repro.verify.checker import check_history
from repro.verify.litmus import LITMUS_SUITE, LitmusTest, LitmusWorkload
from repro.verify.runner import _bind_registers
from repro.verify.tracker import ValueTracker


class Verdict:
    """The four ways a chaos run can end (string constants)."""

    COMPLETED_SC = "COMPLETED_SC"    # finished, history SC, values right
    FAILED_CLEAN = "FAILED_CLEAN"    # NodeFailedError / clean termination
    HUNG = "HUNG"                    # deadline exceeded — a protocol bug
    CORRUPT = "CORRUPT"              # finished or crashed with bad values

    #: Verdicts a resilient protocol is allowed to produce.
    ACCEPTABLE = frozenset({COMPLETED_SC, FAILED_CLEAN})


#: Default simulated-cycle budget per chaos run.  Litmus machines
#: finish in well under a million cycles even through pauses and
#: back-off storms; a run still alive at 20M cycles is hung.
DEFAULT_DEADLINE = 20_000_000


@dataclass
class ChaosRun:
    """Outcome of one litmus test under one fault plan."""

    test: LitmusTest
    plan: FaultPlan
    seed: int
    verdict: str
    detail: str
    violations: "list[str]"
    fault_stats: "dict[str, int]"
    #: The run's :class:`~repro.obs.tracing.TraceCollector` when the
    #: run was traced (``trace=True``), else ``None``.  Deliberately
    #: excluded from :meth:`describe` so traced and untraced campaigns
    #: stay byte-identical on the reproducibility key.
    trace: "object | None" = None

    @property
    def ok(self) -> bool:
        """True for the two acceptable verdicts."""
        return self.verdict in Verdict.ACCEPTABLE

    def describe(self) -> str:
        """One stable line per run (diffable across invocations)."""
        text = "%-22s %-12s seed=%-6d %s" % (self.test.name, self.verdict,
                                             self.seed, self.plan.describe())
        if self.detail:
            text += "\n    %s" % self.detail
        for violation in self.violations:
            text += "\n    %s" % violation
        return text


def run_chaos(test: LitmusTest, plan: FaultPlan, seed: int = 0,
              retry: "RetryPolicy | None" = None,
              deadline: int = DEFAULT_DEADLINE,
              trace: bool = False) -> ChaosRun:
    """Run one litmus test under one fault plan and classify the outcome.

    Mirrors :func:`repro.verify.runner.run_litmus` minus the barrier
    invariant walks (a hard-failed node legitimately freezes its half of
    the protocol state, which the machine-wide walks would flag), plus
    the fault plane and the hang deadline.

    ``trace=True`` installs a :class:`~repro.obs.tracing.TraceCollector`
    (seeded with the run seed) for the duration of the run and attaches
    it to the returned :class:`ChaosRun` — a failing run then comes with
    the span tree of the transaction that hung or aborted, annotated
    with the faults injected into it.  Tracing is passive: verdicts and
    fault stats are identical either way.
    """
    sink = EventSink(capacity=100_000)
    injector = FaultInjector(plan, seed=seed, retry=retry, sink=sink)
    collector = None
    if trace:
        collector = tracing.install(tracing.TraceCollector(seed=seed))
    try:
        machine = Machine(test.build_config(), policy=test.policy,
                          faults=injector, deadline=deadline)
        tracker = ValueTracker(machine, sink)
        # Litmus tests run as LitmusWorkload; scenario-style tests (the
        # serving family's 2PC transactions) supply their own workload
        # via a duck-typed make_workload() hook.
        make = getattr(test, "make_workload", None)
        workload = make() if make is not None else LitmusWorkload(test)
        verdict = Verdict.COMPLETED_SC
        detail = ""
        try:
            machine.run(workload)
        except DeadlineExceeded as exc:
            verdict = Verdict.HUNG
            detail = str(exc)
        except NodeFailedError as exc:
            verdict = Verdict.FAILED_CLEAN
            detail = "%s: %s" % (type(exc).__name__, exc)
        except RuntimeError as exc:
            if machine.failed_nodes and str(exc).startswith("deadlock"):
                # A node died holding up a barrier: the survivors block
                # forever by design.  That is a clean partial failure, not
                # a protocol hang — the dead node is known and reported.
                verdict = Verdict.FAILED_CLEAN
                detail = ("nodes %s failed; surviving CPUs blocked on a "
                          "barrier the dead node can never reach"
                          % sorted(machine.failed_nodes))
            else:
                verdict = Verdict.CORRUPT
                detail = "machine raised %s: %s" % (type(exc).__name__, exc)
        finally:
            tracker.detach()
    finally:
        if collector is not None:
            collector.unwind("run aborted")
            tracing.uninstall()

    violations = []
    if sink.dropped:
        violations.append("history truncated: %d events dropped"
                          % sink.dropped)
    violations += check_history(sink.events, machine._line_shift)
    checker = getattr(test, "check", None)
    if checker is not None:
        # Scenario-level invariants over the recorded history (e.g. 2PC
        # atomicity: no data apply before its commit decision).
        violations += checker(sink.events, machine)
    if verdict == Verdict.COMPLETED_SC and test.forbidden is not None:
        registers = _bind_registers(test, sink.events)
        if test.forbidden(registers):
            violations.append("forbidden outcome: registers %r"
                              % (registers,))
    if violations:
        # Even a clean failure must leave an SC prefix behind; a bad
        # history always escalates to CORRUPT.
        verdict = Verdict.CORRUPT
    return ChaosRun(test=test, plan=plan, seed=seed, verdict=verdict,
                    detail=detail, violations=violations,
                    fault_stats=injector.stats.to_dict(), trace=collector)


@dataclass
class ChaosReport:
    """Aggregated outcome of one campaign."""

    seed: int
    runs: "list[ChaosRun]"

    @property
    def failures(self) -> "list[ChaosRun]":
        """Runs with unacceptable verdicts (HUNG / CORRUPT)."""
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def verdicts(self) -> "list[str]":
        """Per-run verdicts in campaign order (the reproducibility key)."""
        return [r.verdict for r in self.runs]

    def summary(self) -> str:
        """Stable multi-line report: every run, then the tally."""
        counts: "dict[str, int]" = {}
        for run in self.runs:
            counts[run.verdict] = counts.get(run.verdict, 0) + 1
        lines = [run.describe() for run in self.runs]
        tally = ", ".join("%s=%d" % (v, counts[v]) for v in sorted(counts))
        lines.append("chaos campaign: seed=%d, %d runs (%s) -> %s"
                     % (self.seed, len(self.runs), tally,
                        "OK" if self.ok else "FAIL"))
        return "\n".join(lines)


class ChaosCampaign:
    """Sample fault plans from one seed and run litmus tests under them.

    ``plan=None`` samples a fresh random plan per round via
    :meth:`FaultPlan.sample`; a fixed plan replays the same clauses
    every round (only the injector seed varies).  Tests are cycled
    round-robin from ``tests`` (default: the bundled litmus suite).
    The whole campaign is a pure function of its arguments.
    """

    def __init__(self, seed: int = 0, rounds: int = 8,
                 tests: "tuple[LitmusTest, ...]" = LITMUS_SUITE,
                 plan: "FaultPlan | None" = None,
                 retry: "RetryPolicy | None" = None,
                 deadline: int = DEFAULT_DEADLINE,
                 trace: bool = False) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not tests:
            raise ValueError("no tests to run")
        self.seed = seed
        self.rounds = rounds
        self.tests = tuple(tests)
        self.plan = plan
        self.retry = retry
        self.deadline = deadline
        self.trace = trace

    def run(self) -> ChaosReport:
        """Execute every round; deterministic in the campaign seed."""
        rng = random.Random(self.seed)
        runs = []
        for i in range(self.rounds):
            test = self.tests[i % len(self.tests)]
            run_seed = rng.randrange(2 ** 31)
            plan = self.plan
            if plan is None:
                plan = FaultPlan.sample(rng, num_nodes=test.num_nodes)
            runs.append(run_chaos(test, plan, seed=run_seed,
                                  retry=self.retry, deadline=self.deadline,
                                  trace=self.trace))
        return ChaosReport(seed=self.seed, runs=runs)
