"""PRISM: An Integrated Architecture for Scalable Shared Memory.

A full reproduction of Ekanadham, Lim, Pattnaik and Snir's HPCA 1998
paper: a simulated DSM machine whose coherence controller dispatches on
per-page-frame *modes* (Local / S-COMA / LA-NUMA / Command), independent
per-node kernels with node-private translations, run-time page-mode
policies, lazy home migration, and a benchmark harness that regenerates
every table and figure of the paper's evaluation.

Quickstart::

    from repro import Machine, MachineConfig, make_workload

    machine = Machine(MachineConfig(), policy="dyn-lru")
    result = machine.run(make_workload("fft", "small"))
    print(result.stats.summary())
"""

from repro.core.modes import PageMode, parse_mode
from repro.core.policies import POLICY_NAMES, PageModePolicy, make_policy
from repro.sim.config import (CacheConfig, MachineConfig, default_config,
                              paper_scale_config, tiny_config)
from repro.sim.latency import PAPER_TABLE1, LatencyModel, paper_latency_model
from repro.sim.machine import Machine, RunResult
from repro.sim.stats import MachineStats
from repro.workloads import APPLICATIONS, PRESET_NAMES, make_workload

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS", "CacheConfig", "LatencyModel", "Machine",
    "MachineConfig", "MachineStats", "PAPER_TABLE1", "POLICY_NAMES",
    "PRESET_NAMES", "PageMode", "PageModePolicy", "RunResult",
    "default_config", "make_policy", "make_workload", "paper_latency_model",
    "paper_scale_config", "parse_mode", "tiny_config",
]
