"""Tests for the command-mode message passing channel."""

import pytest

from repro.core.modes import PageMode
from repro.kernel.msgqueue import (ChannelError, MessageChannel,
                                   shared_memory_handoff_cost)
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig(num_nodes=4, cpus_per_node=1))


@pytest.fixture
def channel(machine):
    return MessageChannel(machine, src_node=0, dst_node=1)


def test_endpoints_pin_command_frames(machine, channel):
    for node, frame in ((machine.nodes[0], channel.src_frame),
                        (machine.nodes[1], channel.dst_frame)):
        entry = node.pit.entry_or_none(frame)
        assert entry.mode == PageMode.COMMAND


def test_payload_round_trip(channel):
    channel.send({"kind": "work", "items": [1, 2, 3]}, now=0)
    received = channel.receive(now=10_000)
    assert received is not None
    payload, _ = received
    assert payload == {"kind": "work", "items": [1, 2, 3]}


def test_fifo_ordering(channel):
    for i in range(5):
        channel.send(i, now=i * 1_000)
    got = []
    clock = 100_000
    while True:
        out = channel.receive(clock)
        if out is None:
            break
        got.append(out[0])
        clock += 1_000
    assert got == [0, 1, 2, 3, 4]


def test_receive_before_arrival_returns_none(channel):
    channel.send("late", now=0)
    # The flight takes at least one network latency.
    assert channel.receive(now=5) is None
    assert channel.pending() == 1


def test_capacity_backpressure(machine):
    channel = MessageChannel(machine, 0, 1, capacity=2)
    channel.send("a", 0)
    channel.send("b", 1_000)
    with pytest.raises(ChannelError):
        channel.send("c", 2_000)
    assert channel.full_rejections == 1
    channel.receive(1_000_000)
    channel.send("c", 2_000_000)  # space again


def test_send_cost_is_low_overhead(machine, channel):
    """The headline claim: a command-mode send costs the sender far
    less than a coherent shared-memory handoff."""
    lat = machine.config.latency
    done = channel.send("x", now=1_000_000)
    send_cost = done - 1_000_000
    assert send_cost < shared_memory_handoff_cost(machine) / 3
    # ... and is roughly bus + controller occupancy.
    assert send_cost <= (lat.bus_request + lat.bus_data
                         + lat.ctrl_dispatch + 10)


def test_same_node_endpoints_rejected(machine):
    with pytest.raises(ChannelError):
        MessageChannel(machine, 2, 2)


def test_zero_capacity_rejected(machine):
    with pytest.raises(ChannelError):
        MessageChannel(machine, 0, 1, capacity=0)


class TestFaultPlane:
    """Channel behavior under a COMMAND-duplicating fault plan."""

    def _machine_with_dups(self):
        from repro.faults import FaultInjector, FaultPlan
        plan = FaultPlan().duplicate(1.0, kinds="command")
        return Machine(MachineConfig(num_nodes=4, cpus_per_node=1),
                       faults=FaultInjector(plan, seed=1))

    def test_duplicate_deposits_are_dedupped(self):
        machine = self._machine_with_dups()
        channel = MessageChannel(machine, 0, 1)
        channel.send("once", now=0)
        assert channel.pending() == 2  # the duplicate deposit is queued
        got = channel.receive(now=1_000_000)
        assert got is not None and got[0] == "once"
        # The duplicate must never surface as a second payload.
        assert channel.receive(now=2_000_000) is None
        assert channel.dedup_drops == 1
        assert machine.faults.stats.duplicated == 1
        assert channel.pending() == 0

    def test_stream_survives_duplication(self):
        machine = self._machine_with_dups()
        channel = MessageChannel(machine, 0, 1)
        for i in range(4):
            channel.send(i, now=i * 10_000)
        got, clock = [], 10_000_000
        while True:
            out = channel.receive(clock)
            if out is None:
                break
            got.append(out[0])
            clock += 1_000
        assert got == [0, 1, 2, 3]
        assert channel.dedup_drops == 4

    def test_duplicate_charges_receiver_controller(self):
        machine = self._machine_with_dups()
        channel = MessageChannel(machine, 0, 1)
        resource = machine.nodes[1].controller.resource
        busy_before = resource.busy_cycles
        acq_before = resource.acquisitions
        channel.send("x", now=0)
        # Two deposits -> two controller dispatches at the receiver.
        assert resource.acquisitions >= acq_before + 2
        assert (resource.busy_cycles
                >= busy_before + 2 * machine.config.latency.ctrl_dispatch)

    def test_no_faults_attribute_is_harmless(self, channel):
        # The default machine has faults=None; the gated lookups in
        # send/receive must stay inert.
        channel.send("plain", now=0)
        assert channel.receive(now=1_000_000)[0] == "plain"
        assert channel.dedup_drops == 0
