"""Tests for home-node page-outs (section 3.3)."""

import pytest

from repro.core.finegrain import Tag
from repro.sim.invariants import check_machine

from tests.conftest import Harness


def test_home_pageout_flushes_all_clients(harness):
    h = harness
    page = h.page_homed_at(1)
    gpage = h.gpage(page)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    h.write(h.cpu_on_node(2), h.vaddr(page, 1))
    h.read(h.cpu_on_node(1), h.vaddr(page, 2))   # home CPU too

    h.node(1).kernel.page_out_home(gpage, h.clock)

    assert h.node(1).directory.page(gpage) is None
    for node_id in (0, 1, 2):
        assert h.entry_at(node_id, page) is None
    assert h.node(1).stats.home_page_outs == 1
    # Clients' page-outs were forced.
    assert h.node(0).stats.client_page_outs == 1
    assert h.node(2).stats.client_page_outs == 1
    assert check_machine(h.machine) == []


def test_repage_in_after_home_pageout(harness):
    h = harness
    page = h.page_homed_at(1)
    gpage = h.gpage(page)
    vaddr = h.vaddr(page, 3)
    h.write(h.cpu_on_node(0), vaddr)
    h.node(1).kernel.page_out_home(gpage, h.clock)

    # The page faults back in cleanly at home and client.
    h.read(h.cpu_on_node(1), vaddr)
    assert h.entry_at(1, page).tags.get(3) == Tag.EXCLUSIVE
    h.read(h.cpu_on_node(0), vaddr)
    assert h.entry_at(0, page).tags.get(3) == Tag.SHARED
    assert check_machine(h.machine) == []


def test_home_pageout_resets_status_flags():
    from tests.conftest import Harness, protocol_config
    h = Harness(config=protocol_config(home_status_flags=True))
    page = h.page_homed_at(1)
    gpage = h.gpage(page)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    assert gpage in h.node(0).kernel.home_status
    h.node(1).kernel.page_out_home(gpage, h.clock)
    assert gpage not in h.node(0).kernel.home_status


def test_home_pageout_of_foreign_page_rejected(harness):
    h = harness
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    with pytest.raises(KeyError):
        h.node(2).kernel.page_out_home(h.gpage(page), h.clock)


def test_home_pageout_completion_waits_for_acks(harness):
    h = harness
    page = h.page_homed_at(1)
    gpage = h.gpage(page)
    h.read(h.cpu_on_node(1), h.vaddr(page, 0))
    t_no_clients_page = h.page_homed_at(1, skip=1)
    h.read(h.cpu_on_node(1), h.vaddr(t_no_clients_page, 0))

    # With two clients the page-out takes at least two network round
    # trips longer than with none.
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    h.read(h.cpu_on_node(2), h.vaddr(page, 0))
    start = h.clock
    with_clients = h.node(1).kernel.page_out_home(gpage, start) - start
    without = (h.node(1).kernel.page_out_home(
        h.gpage(t_no_clients_page), start) - start)
    lat = h.machine.config.latency
    assert with_clients >= without + 2 * lat.net_latency
