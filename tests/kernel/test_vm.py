"""Tests for the per-node kernel: faults, page-outs, mode changes."""

import pytest

from repro.core.finegrain import Tag
from repro.core.modes import PageMode
from repro.kernel.frames import is_imaginary
from repro.sim.invariants import check_machine

from tests.conftest import Harness, protocol_config


class TestFaults:
    def test_private_fault_allocates_local_frame(self, harness):
        h = harness
        h.read(0, h.private.vbase)
        node = h.node(0)
        vpage = h.private.vbase // h.machine.config.page_bytes
        frame = node.kernel.page_table[vpage]
        entry = node.pit.entry_or_none(frame)
        assert entry.mode == PageMode.LOCAL
        assert node.stats.page_faults_local_home == 1

    def test_home_fault_tags_exclusive(self, harness):
        h = harness
        page = h.page_homed_at(2)
        h.read(h.cpu_on_node(2), h.vaddr(page))
        entry = h.entry_at(2, page)
        assert entry.mode == PageMode.SCOMA
        assert entry.tags.get(0) == Tag.EXCLUSIVE
        assert h.node(2).directory.page(h.gpage(page)) is not None

    def test_client_fault_registers_with_home(self, harness):
        h = harness
        page = h.page_homed_at(2)
        h.read(h.cpu_on_node(0), h.vaddr(page))
        dir_page = h.node(2).directory.page(h.gpage(page))
        assert 0 in dir_page.clients
        assert h.node(0).stats.page_faults_remote_home == 1

    def test_client_fault_costs_more_than_local(self, harness):
        h = harness
        lat = h.machine.config.latency
        t_local = h.read(0, h.private.vbase)
        t_remote = h.read(h.cpu_on_node(0), h.vaddr(h.page_homed_at(2)))
        assert t_remote - t_local >= (lat.expected_fault_remote
                                      - lat.expected_fault_local) * 0.5

    def test_home_status_flag_skips_home_roundtrip(self):
        h = Harness(policy="dyn-lru",
                    config=protocol_config(home_status_flags=True),
                    page_cache_override=[2, 2, 2, 2])
        page_a = h.page_homed_at(1, skip=0)
        page_b = h.page_homed_at(1, skip=1)
        page_c = h.page_homed_at(1, skip=2)
        cpu = h.cpu_on_node(0)
        h.read(cpu, h.vaddr(page_a))
        h.read(cpu, h.vaddr(page_b))
        remote_faults = h.node(0).stats.page_faults_remote_home
        # Third page evicts page_a (LRU, demoted); re-faulting page_a
        # must not contact the home again (flag set).
        h.read(cpu, h.vaddr(page_c))
        h.read(cpu, h.vaddr(page_a))
        assert h.node(0).stats.page_faults_remote_home == remote_faults + 1

    def test_unmapped_address_segfaults(self, harness):
        with pytest.raises(RuntimeError, match="segmentation fault"):
            harness.read(0, 0)  # page 0 is never mapped


class TestPageOut:
    def test_page_out_flushes_and_frees(self, harness):
        h = harness
        page = h.page_homed_at(1)
        cpu = h.cpu_on_node(0)
        h.read(cpu, h.vaddr(page, 0))
        h.write(cpu, h.vaddr(page, 1))
        node = h.node(0)
        entry = h.entry_at(0, page)
        frame = entry.frame
        node.kernel.page_out_client(frame, h.clock)
        assert node.pit.entry_or_none(frame) is None
        assert h.entry_at(0, page) is None
        # Owned (tag E) line written back; home owns everything again.
        from repro.core.directory import DirState
        assert h.dir_line(page, 1).state == DirState.HOME_EXCL
        assert h.entry_at(1, page).tags.get(1) == Tag.EXCLUSIVE
        assert node.stats.client_page_outs == 1
        assert check_machine(h.machine) == []

    def test_page_out_invalidates_local_tlbs_only(self, harness):
        h = harness
        page = h.page_homed_at(1)
        vaddr = h.vaddr(page, 0)
        vpage = vaddr // h.machine.config.page_bytes
        h.read(h.cpu_on_node(0, 0), vaddr)
        h.read(h.cpu_on_node(0, 1), vaddr)
        h.read(h.cpu_on_node(2, 0), vaddr)
        entry = h.entry_at(0, page)
        h.node(0).kernel.page_out_client(entry.frame, h.clock)
        assert vpage not in h.machine.cpus[h.cpu_on_node(0, 0)].tlb
        assert vpage not in h.machine.cpus[h.cpu_on_node(0, 1)].tlb
        # The other node's translation is untouched: no global shootdown.
        assert vpage in h.machine.cpus[h.cpu_on_node(2, 0)].tlb

    def test_demote_sets_mode_override(self, harness):
        h = harness
        page = h.page_homed_at(1)
        cpu = h.cpu_on_node(0)
        h.read(cpu, h.vaddr(page, 0))
        entry = h.entry_at(0, page)
        h.node(0).kernel.page_out_client(entry.frame, h.clock, demote=True)
        assert (h.node(0).kernel.page_mode_override[h.gpage(page)]
                == PageMode.LANUMA)
        # Next fault maps the page with an imaginary frame.
        h.read(cpu, h.vaddr(page, 0))
        assert is_imaginary(h.entry_at(0, page).frame)
        assert h.node(0).stats.mode_demotions == 1

    def test_page_out_of_home_frame_rejected(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(1), h.vaddr(page))
        entry = h.entry_at(1, page)
        with pytest.raises(ValueError):
            h.node(1).kernel.page_out_client(entry.frame, h.clock)

    def test_page_out_unmapped_frame_rejected(self, harness):
        with pytest.raises(KeyError):
            harness.node(0).kernel.page_out_client(12345, 0)


class TestLru:
    def test_lru_order_tracks_page_cache_hits(self, harness):
        h = harness
        cpu = h.cpu_on_node(0)
        page_a = h.page_homed_at(1, skip=0)
        page_b = h.page_homed_at(1, skip=1)
        h.read(cpu, h.vaddr(page_a, 0))
        h.read(cpu, h.vaddr(page_b, 0))
        kernel = h.node(0).kernel
        assert kernel.lru_client_frame() == h.entry_at(0, page_a).frame
        # A page-cache hit on page_a refreshes it; page_b becomes LRU.
        h.read(cpu, h.vaddr(page_a, 1))
        assert kernel.lru_client_frame() == h.entry_at(0, page_b).frame
