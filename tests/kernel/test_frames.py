"""Unit tests for the per-node frame pools."""

import pytest

from repro.kernel.frames import IMAGINARY_BASE, FramePools, is_imaginary


def test_real_and_imaginary_ranges_disjoint():
    pools = FramePools(0)
    real = pools.alloc_real()
    imag = pools.alloc_imaginary()
    assert not is_imaginary(real)
    assert is_imaginary(imag)
    assert imag >= IMAGINARY_BASE


def test_free_and_reuse():
    pools = FramePools(0)
    f = pools.alloc_real()
    pools.free(f)
    assert pools.alloc_real() == f
    assert pools.real_in_use == 1


def test_page_cache_accounting():
    pools = FramePools(0, page_cache_frames=2)
    a = pools.alloc_real(client_scoma=True)
    assert not pools.page_cache_full()
    b = pools.alloc_real(client_scoma=True)
    assert pools.page_cache_full()
    with pytest.raises(MemoryError):
        pools.alloc_real(client_scoma=True)
    pools.free(b, client_scoma=True)
    assert not pools.page_cache_full()
    assert pools.client_scoma_peak == 2


def test_page_cache_only_limits_client_frames():
    pools = FramePools(0, page_cache_frames=1)
    pools.alloc_real(client_scoma=True)
    # Home/private frames are not limited by the page cache.
    pools.alloc_real()
    pools.alloc_real()
    assert pools.real_in_use == 3


def test_total_frames_limit():
    pools = FramePools(0, total_frames=2)
    pools.alloc_real()
    pools.alloc_real()
    with pytest.raises(MemoryError):
        pools.alloc_real()


def test_double_free_detected():
    pools = FramePools(0)
    f = pools.alloc_real()
    pools.free(f)
    with pytest.raises(RuntimeError):
        pools.free(f)


def test_allocation_totals():
    pools = FramePools(0)
    pools.alloc_real()
    f = pools.alloc_real()
    pools.free(f)
    pools.alloc_real()
    pools.alloc_imaginary()
    assert pools.real_allocated_total == 3
    assert pools.imaginary_allocated_total == 1
