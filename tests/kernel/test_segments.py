"""Unit tests for global naming and binding."""

import pytest

from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer


@pytest.fixture
def ipc():
    return GlobalIpcServer(num_nodes=4, page_bytes=256)


def test_shmget_is_idempotent_on_key(ipc):
    a = ipc.shmget(7, 1024)
    b = ipc.shmget(7, 512)
    assert a is b
    assert a.num_pages == 4


def test_shmget_disjoint_gpage_ranges(ipc):
    a = ipc.shmget(1, 1024)
    b = ipc.shmget(2, 512)
    assert b.gpage_base >= a.gpage_base + a.num_pages


def test_shmat_counts_attaches(ipc):
    seg = ipc.shmget(1, 256)
    ipc.shmat(seg.gsid)
    ipc.shmat(seg.gsid)
    assert seg.attach_count == 2


def test_shmat_unknown_gsid(ipc):
    with pytest.raises(KeyError):
        ipc.shmat(99)


def test_round_robin_homes(ipc):
    assert [ipc.home_of(g) for g in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_layout_translations(ipc):
    layout = AddressSpaceLayout(ipc, page_bytes=256)
    shared = layout.attach_shared(key=1, size_bytes=1024)
    private = layout.add_private(512)
    svp = shared.vbase // 256
    assert layout.gpage_of(svp) == shared.gpage_base
    assert layout.gpage_of(svp + 3) == shared.gpage_base + 3
    pvp = private.vbase // 256
    assert layout.gpage_of(pvp) is None
    assert layout.is_mapped(pvp)
    assert not layout.is_mapped(0)  # page 0 is deliberately unmapped


def test_layout_regions_do_not_overlap(ipc):
    layout = AddressSpaceLayout(ipc, page_bytes=256)
    a = layout.attach_shared(key=1, size_bytes=1000)  # rounds to 4 pages
    b = layout.add_private(100)
    assert b.vbase >= a.vbase + a.size_bytes


def test_total_shared_pages(ipc):
    layout = AddressSpaceLayout(ipc, page_bytes=256)
    layout.attach_shared(key=1, size_bytes=1024)
    layout.attach_shared(key=2, size_bytes=256)
    assert layout.total_shared_pages == 5


def test_oversize_reuse_rejected(ipc):
    ipc.shmget(5, 256)
    with pytest.raises(ValueError):
        ipc.shmget(5, 4096)
