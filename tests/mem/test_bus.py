"""Unit tests for the bus and node memory models."""

from repro.mem.bus import MemoryBus, NodeMemory
from repro.sim.latency import LatencyModel


def test_bus_request_occupancy():
    lat = LatencyModel()
    bus = MemoryBus(0, lat)
    t1 = bus.request(100)
    assert t1 == 100 + lat.bus_request
    # A second request issued "simultaneously" waits for the first.
    t2 = bus.request(100)
    assert t2 == t1 + lat.bus_request
    assert bus.transactions == 2


def test_bus_address_and_data_paths_independent():
    lat = LatencyModel()
    bus = MemoryBus(0, lat)
    bus.request(0)
    t = bus.transfer(0)   # data path is free even while addr path busy
    assert t == lat.bus_data


def test_bus_retry_counts():
    bus = MemoryBus(0, LatencyModel())
    bus.retry(0)
    assert bus.retries == 1


def test_memory_read_write_occupancy():
    lat = LatencyModel()
    mem = NodeMemory(0, lat)
    t = mem.read(0)
    assert t == lat.local_memory
    t2 = mem.write(0)  # serialized behind the read
    assert t2 == lat.local_memory + lat.local_memory // 2
    assert mem.reads == 1
    assert mem.writes == 1
