"""Unit tests for the TLB."""

import pytest

from repro.mem.tlb import Tlb


def test_lookup_miss_then_hit():
    tlb = Tlb(4)
    assert tlb.lookup(1) is None
    tlb.insert(1, 42)
    assert tlb.lookup(1) == 42
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_capacity_evicts_lru():
    tlb = Tlb(2)
    tlb.insert(1, 10)
    tlb.insert(2, 20)
    tlb.lookup(1)          # 1 becomes MRU
    tlb.insert(3, 30)      # evicts 2
    assert tlb.lookup(2) is None
    assert tlb.lookup(1) == 10
    assert tlb.lookup(3) == 30


def test_reinsert_updates_translation():
    tlb = Tlb(2)
    tlb.insert(1, 10)
    tlb.insert(1, 99)
    assert tlb.lookup(1) == 99
    assert len(tlb) == 1


def test_invalidate():
    tlb = Tlb(2)
    tlb.insert(1, 10)
    assert tlb.invalidate(1) is True
    assert tlb.invalidate(1) is False
    assert tlb.lookup(1) is None


def test_flush():
    tlb = Tlb(4)
    for i in range(4):
        tlb.insert(i, i)
    tlb.flush()
    assert len(tlb) == 0


def test_contains():
    tlb = Tlb(2)
    tlb.insert(5, 1)
    assert 5 in tlb
    assert 6 not in tlb


def test_zero_entries_rejected():
    with pytest.raises(ValueError):
        Tlb(0)
