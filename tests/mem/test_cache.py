"""Unit tests for the set-associative caches and hierarchies."""

import pytest

from repro.mem.cache import Cache, CacheHierarchy, LineState, NodePresence
from repro.sim.config import CacheConfig


def small_cache(size=128, line=32, assoc=2):
    return Cache(CacheConfig(size, line, assoc))


class TestCache:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) == LineState.INVALID
        c.insert(5, LineState.SHARED)
        assert c.lookup(5) == LineState.SHARED
        assert c.hits == 1
        assert c.misses == 1

    def test_insert_evicts_lru(self):
        c = small_cache()  # 2 sets, 2-way
        c.insert(0, LineState.SHARED)   # set 0
        c.insert(2, LineState.SHARED)   # set 0
        c.lookup(0)                     # 0 is now MRU
        victim = c.insert(4, LineState.SHARED)  # set 0 overflows
        assert victim == (2, LineState.SHARED)
        assert 0 in c
        assert 4 in c
        assert 2 not in c

    def test_different_sets_do_not_conflict(self):
        c = small_cache()
        c.insert(0, LineState.SHARED)
        c.insert(1, LineState.SHARED)  # set 1
        c.insert(2, LineState.SHARED)
        assert c.insert(3, LineState.SHARED) is None
        assert len(c) == 4

    def test_set_state_requires_residency(self):
        c = small_cache()
        with pytest.raises(KeyError):
            c.set_state(9, LineState.MODIFIED)

    def test_remove_returns_state(self):
        c = small_cache()
        c.insert(7, LineState.MODIFIED)
        assert c.remove(7) == LineState.MODIFIED
        assert c.remove(7) == LineState.INVALID

    def test_peek_does_not_touch_lru(self):
        c = small_cache()
        c.insert(0, LineState.SHARED)
        c.insert(2, LineState.SHARED)
        c.peek(0)  # must NOT make 0 MRU
        victim = c.insert(4, LineState.SHARED)
        assert victim[0] == 0

    def test_resident_lines(self):
        c = small_cache()
        c.insert(0, LineState.SHARED)
        c.insert(3, LineState.EXCLUSIVE)
        assert sorted(c.resident_lines()) == [0, 3]

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(100, 32, 2)


class TestHierarchy:
    def make(self):
        return CacheHierarchy(CacheConfig(128, 32, 2), CacheConfig(256, 32, 2))

    def test_fill_and_probe(self):
        h = self.make()
        assert h.probe(10) == ("miss", LineState.INVALID)
        h.fill(10, LineState.SHARED)
        assert h.probe(10) == ("l1", LineState.SHARED)

    def test_l2_hit_promotes_to_l1(self):
        h = self.make()
        h.fill(0, LineState.SHARED)
        h.l1.remove(0)  # simulate L1-only eviction
        level, state = h.probe(0)
        assert level == "l2"
        assert 0 in h.l1  # promoted

    def test_inclusion_on_l2_eviction(self):
        h = self.make()
        # L2: 4 sets, 2-way.  Fill three lines in the same L2 set.
        h.fill(0, LineState.SHARED)
        h.fill(4, LineState.SHARED)
        lost = h.fill(8, LineState.SHARED)
        assert lost == [(0, LineState.SHARED)]
        assert 0 not in h.l1  # inclusion enforced
        assert 0 not in h.l2

    def test_l2_eviction_merges_l1_dirtiness(self):
        h = self.make()
        h.fill(0, LineState.EXCLUSIVE)
        h.write_hit(0)
        h.fill(4, LineState.SHARED)
        lost = h.fill(8, LineState.SHARED)
        assert lost == [(0, LineState.MODIFIED)]

    def test_write_hit_sets_modified_in_both_levels(self):
        h = self.make()
        h.fill(3, LineState.EXCLUSIVE)
        h.write_hit(3)
        assert h.l1.peek(3) == LineState.MODIFIED
        assert h.l2.peek(3) == LineState.MODIFIED

    def test_invalidate_reports_dirtiness(self):
        h = self.make()
        h.fill(3, LineState.EXCLUSIVE)
        h.write_hit(3)
        assert h.invalidate(3) is True
        assert h.invalidate(3) is False
        assert h.state(3) == LineState.INVALID

    def test_downgrade(self):
        h = self.make()
        h.fill(3, LineState.EXCLUSIVE)
        h.write_hit(3)
        assert h.downgrade(3) is True
        assert h.state(3) == LineState.SHARED
        assert h.downgrade(3) is False

    def test_state_prefers_l1(self):
        h = self.make()
        h.fill(0, LineState.SHARED)
        assert h.state(0) == LineState.SHARED

    def test_l1_victim_spills_dirtiness_to_l2(self):
        h = self.make()
        # L1: 2 sets 2-way; lines 0, 2, 4 share L1 set 0.
        h.fill(0, LineState.EXCLUSIVE)
        h.write_hit(0)
        h.fill(2, LineState.SHARED)
        h.fill(4, LineState.SHARED)  # evicts 0 from L1 only
        assert 0 not in h.l1
        assert h.l2.peek(0) == LineState.MODIFIED


class TestNodePresence:
    def test_add_remove(self):
        p = NodePresence()
        p.add(10, 0)
        p.add(10, 1)
        assert p.holders(10) == {0, 1}
        p.remove(10, 0)
        assert p.holders(10) == {1}
        p.remove(10, 1)
        assert not p.any_holder(10)

    def test_remove_absent_is_noop(self):
        p = NodePresence()
        p.remove(5, 3)
        assert not p.any_holder(5)

    def test_drop_line(self):
        p = NodePresence()
        p.add(1, 0)
        p.add(1, 2)
        p.drop_line(1)
        assert p.holders(1) == set()
