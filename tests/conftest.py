"""Shared fixtures and the crafted-access harness for protocol tests."""

from __future__ import annotations

import pytest

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine

GAP = 1_000_000


def protocol_config(**overrides) -> MachineConfig:
    """A 4-node machine with small caches for protocol-level tests."""
    cfg = MachineConfig(
        num_nodes=4,
        cpus_per_node=2,
        page_bytes=256,
        line_bytes=32,
        l1=CacheConfig(256, 32, 2),
        l2=CacheConfig(512, 32, 2),
        tlb_entries=32,
        directory_cache_entries=64,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


class Harness:
    """Drives crafted references through a machine for protocol tests.

    Accesses are spaced ``GAP`` cycles apart so every measurement is
    uncontended; state-inspection helpers expose the PIT, tags and
    directory for assertions.
    """

    def __init__(self, policy: str = "scoma", config: "MachineConfig | None" = None,
                 pages: int = 32, **machine_kwargs) -> None:
        self.machine = Machine(config or protocol_config(), policy=policy,
                               **machine_kwargs)
        self.clock = 0
        self.region = self.machine.layout.attach_shared(
            key=1, size_bytes=pages * self.machine.config.page_bytes)
        self.private = self.machine.layout.add_private(
            8 * self.machine.config.page_bytes)

    # -- driving ---------------------------------------------------------

    def access(self, cpu_index: int, vaddr: int, write: bool = False) -> int:
        self.clock += GAP
        cpu = self.machine.cpus[cpu_index]
        end = self.machine._access(cpu, vaddr, write, self.clock)
        return end - self.clock

    def read(self, cpu: int, vaddr: int) -> int:
        return self.access(cpu, vaddr, write=False)

    def write(self, cpu: int, vaddr: int) -> int:
        return self.access(cpu, vaddr, write=True)

    # -- addressing ------------------------------------------------------

    def cpu_on_node(self, node_id: int, local: int = 0) -> int:
        return node_id * self.machine.config.cpus_per_node + local

    def vaddr(self, page_index: int, line_in_page: int = 0) -> int:
        cfg = self.machine.config
        return (self.region.vbase + page_index * cfg.page_bytes
                + line_in_page * cfg.line_bytes)

    def page_homed_at(self, node_id: int, skip: int = 0) -> int:
        base = self.region.gpage_base
        count = 0
        for i in range(64):
            if self.machine.static_home_of(base + i) == node_id:
                if count == skip:
                    return i
                count += 1
        raise RuntimeError("no page homed at node %d" % node_id)

    # -- inspection ------------------------------------------------------

    def gpage(self, page_index: int) -> int:
        return self.region.gpage_base + page_index

    def node(self, node_id: int):
        return self.machine.nodes[node_id]

    def entry_at(self, node_id: int, page_index: int):
        entry = self.node(node_id).pit.by_gpage(self.gpage(page_index))
        self.node(node_id).pit.lookups -= 1
        self.node(node_id).pit.hash_lookups -= 1
        return entry

    def dir_line(self, page_index: int, lip: int):
        gpage = self.gpage(page_index)
        home = self.machine.nodes[self.machine.dynamic_home_of(gpage)]
        return home.directory.line(gpage, lip)


@pytest.fixture
def harness():
    return Harness()


@pytest.fixture
def lanuma_harness():
    return Harness(policy="lanuma")
