"""Robustness: the machine stays coherent and sensible across
geometries far from the default (line size, page size, node counts,
asymmetric caches)."""

import pytest

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.invariants import check_machine
from repro.sim.machine import Machine
from repro.workloads import make_workload
from repro.workloads.synthetic import SyntheticWorkload

GEOMETRIES = {
    "wide-lines": MachineConfig(
        num_nodes=2, cpus_per_node=2, page_bytes=512, line_bytes=64,
        l1=CacheConfig(512, 64, 2), l2=CacheConfig(1024, 64, 2),
        tlb_entries=8, directory_cache_entries=32),
    "tiny-pages": MachineConfig(
        num_nodes=2, cpus_per_node=2, page_bytes=128, line_bytes=32,
        l1=CacheConfig(256, 32, 2), l2=CacheConfig(512, 32, 2),
        tlb_entries=8, directory_cache_entries=32),
    "many-nodes": MachineConfig(
        num_nodes=8, cpus_per_node=1, page_bytes=256, line_bytes=32,
        l1=CacheConfig(256, 32, 2), l2=CacheConfig(512, 32, 2),
        tlb_entries=8, directory_cache_entries=32),
    "direct-mapped-l1": MachineConfig(
        num_nodes=2, cpus_per_node=2, page_bytes=256, line_bytes=32,
        l1=CacheConfig(256, 32, 1), l2=CacheConfig(1024, 32, 4),
        tlb_entries=8, directory_cache_entries=32),
}


@pytest.mark.parametrize("name", sorted(GEOMETRIES))
@pytest.mark.parametrize("policy", ("scoma", "lanuma", "dyn-lru"))
def test_geometry(name, policy):
    cfg = GEOMETRIES[name]
    cap = 4 if policy == "dyn-lru" else None
    machine = Machine(
        cfg.with_policy_limits(cap) if cap else cfg, policy=policy)
    result = machine.run(make_workload("water-spa", "tiny"))
    assert result.stats.execution_cycles > 0
    assert check_machine(machine) == []


@pytest.mark.parametrize("seed", (1, 7, 99))
def test_workload_seeds(seed):
    cfg = GEOMETRIES["many-nodes"]
    machine = Machine(cfg, policy="scoma")
    wl = SyntheticWorkload("random", shared_kb=16,
                           refs_per_cpu_per_iter=200, iterations=2,
                           seed=seed)
    machine.run(wl)
    assert check_machine(machine) == []


def test_single_cpu_machine_still_works():
    cfg = MachineConfig(
        num_nodes=1, cpus_per_node=1, page_bytes=256, line_bytes=32,
        l1=CacheConfig(256, 32, 2), l2=CacheConfig(512, 32, 2),
        tlb_entries=8, directory_cache_entries=16)
    machine = Machine(cfg, policy="scoma")
    result = machine.run(make_workload("lu", "tiny"))
    # Everything is home-local: no remote traffic at all.
    assert result.stats.remote_misses == 0
    assert check_machine(machine) == []


def test_scoma_stays_best_on_alternate_geometry():
    cfg = GEOMETRIES["many-nodes"]
    results = {}
    for policy in ("scoma", "lanuma"):
        machine = Machine(cfg, policy=policy)
        results[policy] = machine.run(
            make_workload("lu", "tiny")).stats.execution_cycles
    assert results["scoma"] <= results["lanuma"]
