"""Golden-snapshot regression test.

Recomputes every (application, policy) cell at the tiny preset and
diffs the full ``MachineStats.to_dict()`` against the committed
fixture.  Any drift — a new counter, a changed fault count, a perturbed
cycle total — fails with a per-key diff.  Intentional changes are
blessed by rerunning ``tools/update_golden.py`` and committing the new
fixture.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURE = ROOT / "tests" / "integration" / "golden_tiny_stats.json"


def _load_update_golden():
    spec = importlib.util.spec_from_file_location(
        "update_golden", ROOT / "tools" / "update_golden.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("update_golden", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def recomputed():
    return _load_update_golden().compute_golden()


def test_fixture_covers_every_app_policy_cell(golden):
    from repro.core.policies import POLICY_NAMES
    from repro.workloads import ALL_APPLICATIONS
    expected = {"%s/%s" % (a, p)
                for a in ALL_APPLICATIONS for p in POLICY_NAMES}
    assert set(golden) == expected


def test_vector_engine_matches_the_committed_golden_fixture(golden):
    """The trace-replay engine's identity gate: every one of the 80
    tiny-matrix cells must reproduce the committed interpreter fixture
    byte for byte — same counters, same cycle totals, same per-CPU
    breakdowns."""
    recomputed = _load_update_golden().compute_golden(engine="vector")
    assert set(recomputed) == set(golden)
    problems = []
    for cell in sorted(golden):
        diff = _diff("", golden[cell], recomputed[cell])
        problems.extend("%s: %s" % (cell, d) for d in diff)
    assert not problems, (
        "%d stat(s) diverged between the vector engine and the golden "
        "fixture:\n  %s" % (len(problems), "\n  ".join(problems[:40])))


def test_stats_match_the_committed_golden_fixture(golden, recomputed):
    assert set(recomputed) == set(golden), \
        "cell set drifted: rerun tools/update_golden.py"
    problems = []
    for cell in sorted(golden):
        diff = _diff("", golden[cell], recomputed[cell])
        problems.extend("%s: %s" % (cell, d) for d in diff)
    assert not problems, (
        "%d stat(s) drifted from the golden fixture (intentional? rerun "
        "tools/update_golden.py and commit the diff):\n  %s"
        % (len(problems), "\n  ".join(problems[:40])))


def _diff(prefix, want, got):
    """Flatten nested dict/list mismatches into dotted-path messages."""
    if isinstance(want, dict) and isinstance(got, dict):
        out = []
        for key in sorted(set(want) | set(got)):
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            if key not in want:
                out.append("%s: unexpected new key" % path)
            elif key not in got:
                out.append("%s: missing" % path)
            else:
                out.extend(_diff(path, want[key], got[key]))
        return out
    if isinstance(want, list) and isinstance(got, list):
        if len(want) != len(got):
            return ["%s: length %d != %d" % (prefix, len(want), len(got))]
        out = []
        for i, (w, g) in enumerate(zip(want, got)):
            out.extend(_diff("%s[%d]" % (prefix, i), w, g))
        return out
    if want != got:
        return ["%s: %r != %r" % (prefix, want, got)]
    return []


def test_diff_helper_reports_dotted_paths():
    want = {"a": {"b": 1, "c": [1, 2]}, "d": 3}
    got = {"a": {"b": 2, "c": [1, 9]}, "d": 3}
    diff = _diff("", want, got)
    assert "a.b: 1 != 2" in diff
    assert "a.c[1]: 2 != 9" in diff
    assert len(diff) == 2
