"""Fault containment under node failure (section 3.3).

"If a node fails, the rest of the nodes may continue running, although
applications using resources on the failed node may be terminated."
"""

import pytest

from repro.core.controller import NodeFailedError
from repro.sim.invariants import check_machine

from tests.conftest import Harness


@pytest.fixture
def degraded():
    """A harness with live traffic, after which node 2 fail-stops."""
    h = Harness()
    for node in (0, 1, 2, 3):
        page = h.page_homed_at(node if node != 2 else 1)
        h.read(h.cpu_on_node(node if node != 2 else 0), h.vaddr(page, 0))
    h.machine.fail_node(2)
    return h


def test_survivors_keep_running(degraded):
    h = degraded
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 1))
    h.write(h.cpu_on_node(3), h.vaddr(page, 2))
    assert h.node(0).stats.remote_misses > 0


def test_access_to_page_homed_on_dead_node_fails(degraded):
    h = degraded
    page = h.page_homed_at(2)
    with pytest.raises(NodeFailedError, match="failed"):
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))


def test_line_owned_by_dead_node_is_lost(degraded):
    h = degraded
    page = h.page_homed_at(1)
    # Give node 2 exclusive ownership of a line *before* it dies.
    h2 = Harness()
    page = h2.page_homed_at(1)
    h2.write(h2.cpu_on_node(2), h2.vaddr(page, 3))
    h2.machine.fail_node(2)
    with pytest.raises(NodeFailedError, match="owned by failed"):
        h2.read(h2.cpu_on_node(0), h2.vaddr(page, 3))


def test_invalidations_skip_dead_sharers():
    h = Harness()
    page = h.page_homed_at(1)
    line = h.vaddr(page, 0)
    h.read(h.cpu_on_node(0), line)
    h.read(h.cpu_on_node(2), line)     # node 2 becomes a sharer
    h.machine.fail_node(2)
    # Node 0's write must complete: the dead sharer is acknowledged by
    # timeout, not waited on.
    h.write(h.cpu_on_node(0), line)
    dl = h.dir_line(page, 0)
    assert dl.owner == 0
    assert 2 not in dl.sharers


def test_dead_cpus_do_not_run():
    from repro.sim.machine import Machine
    from repro.workloads import make_workload
    from tests.conftest import protocol_config
    machine = Machine(protocol_config(), policy="scoma")
    machine.fail_node(3)
    assert all(cpu.done for cpu in machine.nodes[3].cpus)


def test_fail_unknown_node_rejected():
    h = Harness()
    with pytest.raises(ValueError):
        h.machine.fail_node(99)


def test_survivor_state_remains_coherent(degraded):
    h = degraded
    page = h.page_homed_at(1)
    for lip in range(4):
        h.read(h.cpu_on_node(0), h.vaddr(page, lip))
        h.write(h.cpu_on_node(3), h.vaddr(page, lip))
    problems = [p for p in check_machine(h.machine)
                # the dead node's frozen state is exempt
                if "node 2" not in p and "(home 2)" not in p]
    assert problems == []


def test_lanuma_access_to_failed_home_fails():
    # LA-NUMA pages have no local backing: every miss goes to the home,
    # so a failed home is fatal for that page even after earlier hits.
    h = Harness(policy="lanuma")
    page = h.page_homed_at(2)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))   # works while 2 is alive
    h.machine.fail_node(2)
    with pytest.raises(NodeFailedError):
        h.read(h.cpu_on_node(0), h.vaddr(page, 1))


def test_fail_node_eagerly_prunes_sharer_lists():
    h = Harness()
    page = h.page_homed_at(1)
    line = h.vaddr(page, 0)
    h.read(h.cpu_on_node(0), line)
    h.read(h.cpu_on_node(2), line)
    dl = h.dir_line(page, 0)
    assert 2 in dl.sharers
    h.machine.fail_node(2)
    # Pruned at failure time — no write needed to flush the dead sharer.
    assert 2 not in dl.sharers
    assert 0 in dl.sharers


def test_fail_node_prunes_sole_sharer_back_to_home_excl():
    from repro.core.directory import DirState
    h = Harness()
    page = h.page_homed_at(1)
    line = h.vaddr(page, 0)
    h.read(h.cpu_on_node(2), line)               # node 2 is the only sharer
    h.machine.fail_node(2)
    dl = h.dir_line(page, 0)
    assert dl.sharers == set() or not dl.sharers
    assert dl.state == DirState.HOME_EXCL


def test_fail_node_resets_stale_migration_hints():
    h = Harness()
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    entry = h.entry_at(0, page)
    gpage = h.gpage(page)
    # Simulate a stale lazy-migration hint pointing at the doomed node.
    entry.dynamic_home = 2
    entry.home_frame = None
    h.machine.fail_node(2)
    assert entry.dynamic_home == h.machine.dynamic_home_of(gpage)
    assert entry.dynamic_home != 2
    assert entry.home_frame is None


def test_fail_node_emits_obs_counters():
    from repro import obs
    with obs.collecting() as registry:
        h = Harness()
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(2), h.vaddr(page, 0))
        h.machine.fail_node(2)
    snapshot = registry.to_dict()
    assert snapshot["counters"]["sim.node_failures{node=2}"] == 1
    assert snapshot["counters"]["sim.failover_sharers_pruned"] >= 1
    assert snapshot["gauges"]["sim.failed_nodes"] == 1


def test_fail_node_is_idempotent():
    from repro import obs
    h = Harness()
    with obs.collecting() as registry:
        h.machine.fail_node(2)
        h.machine.fail_node(2)   # no-op, no double counting
    assert h.machine.failed_nodes == {2}
    assert registry.to_dict()["counters"]["sim.node_failures{node=2}"] == 1


def test_trace_recorder_records_node_fail():
    from repro.sim.trace import NodeFailEvent, TraceRecorder
    h = Harness()
    with TraceRecorder(h.machine, kinds={"node_fail"}) as trace:
        h.machine.fail_node(2, now=1_234)
    assert trace.events == [NodeFailEvent(1_234, 2)]
    assert trace.summary()["NodeFailEvent"] == 1
