"""Fault containment under node failure (section 3.3).

"If a node fails, the rest of the nodes may continue running, although
applications using resources on the failed node may be terminated."
"""

import pytest

from repro.core.controller import NodeFailedError
from repro.sim.invariants import check_machine

from tests.conftest import Harness


@pytest.fixture
def degraded():
    """A harness with live traffic, after which node 2 fail-stops."""
    h = Harness()
    for node in (0, 1, 2, 3):
        page = h.page_homed_at(node if node != 2 else 1)
        h.read(h.cpu_on_node(node if node != 2 else 0), h.vaddr(page, 0))
    h.machine.fail_node(2)
    return h


def test_survivors_keep_running(degraded):
    h = degraded
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 1))
    h.write(h.cpu_on_node(3), h.vaddr(page, 2))
    assert h.node(0).stats.remote_misses > 0


def test_access_to_page_homed_on_dead_node_fails(degraded):
    h = degraded
    page = h.page_homed_at(2)
    with pytest.raises(NodeFailedError, match="failed"):
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))


def test_line_owned_by_dead_node_is_lost(degraded):
    h = degraded
    page = h.page_homed_at(1)
    # Give node 2 exclusive ownership of a line *before* it dies.
    h2 = Harness()
    page = h2.page_homed_at(1)
    h2.write(h2.cpu_on_node(2), h2.vaddr(page, 3))
    h2.machine.fail_node(2)
    with pytest.raises(NodeFailedError, match="owned by failed"):
        h2.read(h2.cpu_on_node(0), h2.vaddr(page, 3))


def test_invalidations_skip_dead_sharers():
    h = Harness()
    page = h.page_homed_at(1)
    line = h.vaddr(page, 0)
    h.read(h.cpu_on_node(0), line)
    h.read(h.cpu_on_node(2), line)     # node 2 becomes a sharer
    h.machine.fail_node(2)
    # Node 0's write must complete: the dead sharer is acknowledged by
    # timeout, not waited on.
    h.write(h.cpu_on_node(0), line)
    dl = h.dir_line(page, 0)
    assert dl.owner == 0
    assert 2 not in dl.sharers


def test_dead_cpus_do_not_run():
    from repro.sim.machine import Machine
    from repro.workloads import make_workload
    from tests.conftest import protocol_config
    machine = Machine(protocol_config(), policy="scoma")
    machine.fail_node(3)
    assert all(cpu.done for cpu in machine.nodes[3].cpus)


def test_fail_unknown_node_rejected():
    h = Harness()
    with pytest.raises(ValueError):
        h.machine.fail_node(99)


def test_survivor_state_remains_coherent(degraded):
    h = degraded
    page = h.page_homed_at(1)
    for lip in range(4):
        h.read(h.cpu_on_node(0), h.vaddr(page, lip))
        h.write(h.cpu_on_node(3), h.vaddr(page, lip))
    problems = [p for p in check_machine(h.machine)
                # the dead node's frozen state is exempt
                if "node 2" not in p and "(home 2)" not in p]
    assert problems == []
