"""Smoke-run the example scripts (the cheap ones inline, the heavy ones
are exercised by the benchmark suite instead)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CHEAP = ("microbench_latency.py", "fault_containment.py",
         "page_migration.py", "message_passing.py")


@pytest.mark.parametrize("script", CHEAP)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_example_outputs_are_meaningful():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "fault_containment.py")],
        capture_output=True, text=True, timeout=120)
    assert "wild write rejected" in proc.stdout
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "page_migration.py")],
        capture_output=True, text=True, timeout=120)
    assert "dynamic home is now node 0" in proc.stdout
    assert "no shootdown" in proc.stdout


@pytest.mark.slow
@pytest.mark.parametrize("script", ("quickstart.py",
                                    "adaptive_policies.py"))
def test_heavy_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), "water-spa", "tiny"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
