"""Meta-tests: the invariant checker must actually catch corruption.

A checker that always returns an empty list would pass every other
test in this suite; here we deliberately break each invariant and
assert it is reported.
"""

import pytest

from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.mem.cache import LineState
from repro.sim.invariants import check_machine

from tests.conftest import Harness


@pytest.fixture
def populated():
    h = Harness()
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))    # SHARED line
    h.write(h.cpu_on_node(2), h.vaddr(page, 1))   # CLIENT_EXCL line
    assert check_machine(h.machine) == []
    return h, page


def test_detects_stale_presence(populated):
    h, page = populated
    h.node(0).presence.add(4242, 0)
    assert any("stale presence" in p for p in check_machine(h.machine))


def test_detects_presence_cache_mismatch(populated):
    h, page = populated
    entry = h.entry_at(0, page)
    line = entry.frame * h.machine.config.lines_per_page
    cpu = h.machine.cpus[h.cpu_on_node(0)]
    cpu.hierarchy.invalidate(line)   # cache dropped, presence kept
    assert any("presence" in p for p in check_machine(h.machine))


def test_detects_broken_reverse_map(populated):
    h, page = populated
    other_page = h.page_homed_at(1, skip=1)
    h.read(h.cpu_on_node(0), h.vaddr(other_page, 0))
    pit = h.node(0).pit
    entry = h.entry_at(0, page)
    other = h.entry_at(0, other_page)
    pit._by_gpage[entry.gpage] = other.frame  # cross the pointers
    problems = check_machine(h.machine)
    assert any("reverse-maps" in p for p in problems)


def test_detects_home_excl_with_client_copies(populated):
    h, page = populated
    dl = h.dir_line(page, 0)     # SHARED with node 0
    dl.state = DirState.HOME_EXCL
    dl.sharers = set()
    assert any("HOME_EXCL but clients" in p
               for p in check_machine(h.machine))


def test_detects_missing_sharer(populated):
    h, page = populated
    dl = h.dir_line(page, 0)
    dl.sharers.discard(0)
    assert any("not sharers" in p for p in check_machine(h.machine))


def test_detects_wrong_home_tag(populated):
    h, page = populated
    h.entry_at(1, page).tags.set(1, Tag.EXCLUSIVE)  # line 1 is CLIENT_EXCL
    assert any("CLIENT_EXCL but home tag E" in p
               for p in check_machine(h.machine))


def test_detects_double_modified(populated):
    h, page = populated
    entry0 = h.entry_at(0, page)
    lpp = h.machine.config.lines_per_page
    line0 = entry0.frame * lpp + 1
    cpu0 = h.machine.cpus[h.cpu_on_node(0)]
    cpu0.hierarchy.fill(line0, LineState.MODIFIED)
    h.node(0).presence.add(line0, 0)
    entry0.tags.set(1, Tag.EXCLUSIVE)
    problems = check_machine(h.machine)
    assert any("MODIFIED" in p or "also hold copies" in p
               for p in problems)


def test_detects_shared_with_exclusive_node(populated):
    h, page = populated
    dl = h.dir_line(page, 0)
    h.entry_at(0, page).tags.set(0, Tag.EXCLUSIVE)
    assert any("SHARED but" in p and "exclusive" in p
               for p in check_machine(h.machine))
