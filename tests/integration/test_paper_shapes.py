"""Integration tests: the paper's qualitative claims must reproduce.

These run full policy suites at the ``tiny``/``small`` presets on a
reduced machine and assert the *shapes* of the paper's results (section
4.3), not absolute numbers:

* SCOMA has the fewest remote misses everywhere (capacity misses are
  absorbed by the page cache);
* LANUMA never pages out; SCOMA never pages out; SCOMA-70 does;
* adaptive policies cut LANUMA's remote misses and SCOMA-70's
  page-outs simultaneously;
* Dyn-FCFS performs no page-outs at all;
* SCOMA allocates more frames with lower utilization than LANUMA.
"""

import pytest

import repro
from repro.harness.session import Session


@pytest.fixture(scope="module")
def suites():
    cfg = repro.tiny_config()
    apps = ("lu", "ocean", "water-nsq")
    return Session().run_campaign(apps, preset="tiny", config=cfg)


def test_scoma_has_fewest_remote_misses(suites):
    for app, suite in suites.items():
        scoma = suite.remote_misses("scoma")
        for policy in ("lanuma", "scoma-70", "dyn-fcfs", "dyn-lru"):
            assert scoma <= suite.remote_misses(policy), \
                "%s: scoma %d vs %s %d" % (app, scoma, policy,
                                           suite.remote_misses(policy))


def test_lanuma_has_most_remote_misses_for_capacity_apps(suites):
    for app in ("lu", "ocean"):
        suite = suites[app]
        lanuma = suite.remote_misses("lanuma")
        for policy in ("scoma", "dyn-util", "dyn-lru"):
            assert lanuma > suite.remote_misses(policy)


def test_page_out_behaviour_by_policy(suites):
    for suite in suites.values():
        assert suite.page_outs("scoma") == 0
        assert suite.page_outs("lanuma") == 0
        assert suite.page_outs("dyn-fcfs") == 0
        assert suite.page_outs("scoma-70") > 0


def test_adaptive_pageouts_far_below_scoma70(suites):
    for app, suite in suites.items():
        for policy in ("dyn-util", "dyn-lru"):
            assert (suite.page_outs(policy)
                    < suite.page_outs("scoma-70")), app


def test_adaptive_remote_misses_below_lanuma(suites):
    for app, suite in suites.items():
        for policy in ("dyn-fcfs", "dyn-util", "dyn-lru"):
            assert (suite.remote_misses(policy)
                    <= suite.remote_misses("lanuma")), app


def test_adaptives_beat_worst_static(suites):
    """The paper: adaptive configurations outperform static LANUMA and
    SCOMA-70 (Figure 7)."""
    for app, suite in suites.items():
        worst_static = max(suite.normalized_time("lanuma"),
                           suite.normalized_time("scoma-70"))
        for policy in ("dyn-util", "dyn-lru"):
            assert suite.normalized_time(policy) < worst_static, app


def test_scoma_uses_more_frames_with_lower_utilization(suites):
    for app, suite in suites.items():
        scoma = suite.results["scoma"].stats
        lanuma = suite.results["lanuma"].stats
        assert scoma.frames_allocated_total > lanuma.frames_allocated_total
        # LANUMA allocates imaginary frames instead of real ones.
        lanuma_imag = sum(n.imaginary_frames_allocated
                          for n in lanuma.nodes)
        assert lanuma_imag > 0


def test_execution_time_ordering_capacity_apps(suites):
    """LU and Ocean: SCOMA fastest, LANUMA much slower, adaptives in
    between (the headline Figure 7 shape)."""
    for app in ("lu", "ocean"):
        suite = suites[app]
        assert suite.normalized_time("lanuma") > 1.2
        for policy in ("dyn-util", "dyn-lru"):
            assert (1.0 <= suite.normalized_time(policy)
                    < suite.normalized_time("lanuma")), app


def test_dram_pit_slows_lanuma_down():
    from dataclasses import replace

    from repro.sim.latency import LatencyModel

    cfg = repro.tiny_config()
    dram = replace(cfg, latency=LatencyModel(pit_access=10))
    session = Session()
    sram_r = session.run_workload_suite(
        "lu", policies=("lanuma",), preset="tiny",
        config=cfg).results["lanuma"]
    dram_r = session.run_workload_suite(
        "lu", policies=("lanuma",), preset="tiny",
        config=dram).results["lanuma"]
    slowdown = (dram_r.stats.execution_cycles
                / sram_r.stats.execution_cycles)
    assert 1.0 < slowdown < 1.25  # paper: 2%-16%
