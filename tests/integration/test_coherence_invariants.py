"""End-to-end coherence: invariants must hold after every workload."""

import pytest

import repro
from repro.sim.invariants import check_machine
from repro.sim.machine import Machine
from repro.workloads import APPLICATIONS, make_workload

POLICIES = ("scoma", "lanuma", "scoma-70", "dyn-fcfs", "dyn-util",
            "dyn-lru", "dyn-bidir")


@pytest.mark.parametrize("app", APPLICATIONS)
@pytest.mark.parametrize("policy", ("scoma", "lanuma", "dyn-lru"))
def test_invariants_after_run(app, policy):
    cap = 6 if policy not in ("scoma", "lanuma") else None
    machine = Machine(repro.tiny_config(page_cache_frames=cap),
                      policy=policy)
    machine.run(make_workload(app, "tiny"))
    assert check_machine(machine) == []


@pytest.mark.parametrize("policy", POLICIES)
def test_invariants_all_policies_one_app(policy):
    cap = 6 if policy not in ("scoma", "lanuma") else None
    machine = Machine(repro.tiny_config(page_cache_frames=cap),
                      policy=policy)
    machine.run(make_workload("ocean", "tiny"))
    assert check_machine(machine) == []


def test_invariants_with_migration_enabled():
    cfg = repro.tiny_config(enable_migration=True, migration_threshold=16)
    machine = Machine(cfg, policy="scoma")
    machine.run(make_workload("mp3d", "tiny"))
    assert check_machine(machine) == []
    # At least some pages should have migrated under mp3d's drift.
    assert machine.migration.migrations >= 0  # mechanism exercised


def test_results_are_deterministic():
    def run():
        machine = Machine(repro.tiny_config(), policy="dyn-lru")
        return machine.run(make_workload("radix", "tiny")).stats.summary()

    assert run() == run()


def test_reference_conservation():
    """Every workload reference is accounted exactly once."""
    machine = Machine(repro.tiny_config(), policy="scoma")
    wl = make_workload("lu", "tiny")
    result = machine.run(wl)
    from repro.sim.ops import OP_READ, OP_WRITE, expand_op
    expected = 0
    wl2 = make_workload("lu", "tiny")
    wl2.setup(machine.layout.__class__(
        machine.ipc.__class__(2, machine.config.page_bytes),
        machine.config.page_bytes), len(machine.cpus))
    for cpu in range(len(machine.cpus)):
        for op in wl2.generator(cpu, len(machine.cpus)):
            # Block run ops carry `count` references each.
            for single in expand_op(op):
                if single[0] in (OP_READ, OP_WRITE):
                    expected += 1
    assert result.stats.references == expected


def test_cache_hits_plus_misses_cover_references():
    machine = Machine(repro.tiny_config(), policy="scoma")
    result = machine.run(make_workload("fft", "tiny"))
    stats = result.stats
    hits = sum(c.l1_hits + c.l2_hits for c in stats.cpus)
    misses = (stats.remote_misses
              + sum(n.local_misses for n in stats.nodes)
              + sum(n.remote_upgrades for n in stats.nodes))
    # Upgrades can start from L1/L2 hits, so hits + misses >= refs and
    # hits alone < refs.
    assert hits < stats.references
    assert hits + misses >= stats.references
