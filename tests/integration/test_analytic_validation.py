"""Validate simulated time against closed-form predictions.

On a single-CPU machine there is no contention and no coherence
traffic, so the execution time must equal the sum of the per-event
costs the latency model defines.  This anchors the whole cost model:
if the event loop ever double-charges or drops a component, these
exact-match tests fail.
"""

import pytest

from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine
from repro.sim.ops import OP_COMPUTE, OP_READ, OP_WRITE
from repro.workloads.base import Workload


def single_cpu_config():
    return MachineConfig(
        num_nodes=1, cpus_per_node=1, page_bytes=256, line_bytes=32,
        l1=CacheConfig(256, 32, 2), l2=CacheConfig(1024, 32, 2),
        tlb_entries=64, directory_cache_entries=64)


class Scripted(Workload):
    """Ops provided verbatim; no implicit reference gap."""

    name = "scripted"
    cycles_per_ref = 0

    def __init__(self, ops, pages=8):
        super().__init__()
        self.ops = ops
        self.pages = pages
        self.problem = "scripted"

    def setup(self, layout, num_cpus):
        self.region = layout.add_private(self.pages * 256)

    def generator(self, cpu_id, num_cpus):
        base = self.region.vbase
        for kind, arg in self.ops:
            if kind == OP_COMPUTE:
                yield (kind, arg)
            else:
                yield (kind, base + arg)


def run(ops):
    machine = Machine(single_cpu_config(), policy="scoma")
    result = machine.run(Scripted(ops))
    return machine, result


def test_pure_compute_time_is_exact():
    _, result = run([(OP_COMPUTE, 123), (OP_COMPUTE, 877)])
    assert result.stats.execution_cycles == 1000


def test_fault_plus_miss_plus_hits_is_exact():
    lat = single_cpu_config().latency
    # One page: fault + cold miss, then two L1 hits, then a second
    # line's cold miss.
    _, result = run([(OP_READ, 0), (OP_READ, 0), (OP_WRITE, 0),
                     (OP_READ, 32)])
    expected = (lat.expected_fault_local + lat.expected_local_memory
                + lat.l1_hit                       # read hit
                + lat.l1_hit                       # write hit on E (silent)
                + lat.expected_local_memory)       # second line cold
    assert result.stats.execution_cycles == expected


def test_l2_hit_cost_is_exact():
    lat = single_cpu_config().latency
    # Three same-L1-set lines (2-way L1): the third evicts the first
    # from L1 only; re-reading it is an L2 hit.
    page = 256
    _, result = run([(OP_READ, 0), (OP_READ, page), (OP_READ, 2 * page),
                     (OP_READ, 0)])
    expected = (3 * (lat.expected_fault_local + lat.expected_local_memory)
                + lat.expected_l2_hit)
    assert result.stats.execution_cycles == expected


def test_tlb_miss_cost_is_exact():
    cfg = single_cpu_config()
    cfg.tlb_entries = 2
    lat = cfg.latency
    machine = Machine(cfg, policy="scoma")
    # Touch three pages (evicting page 0's translation), then re-touch
    # page 0: its line is still cached, so the cost is hit + TLB reload.
    ops = [(OP_READ, 0), (OP_READ, 256 + 32), (OP_READ, 512 + 64),
           (OP_READ, 0)]
    result = machine.run(Scripted(ops))
    expected = (3 * (lat.expected_fault_local + lat.expected_local_memory)
                + lat.tlb_miss + lat.l1_hit)
    assert result.stats.execution_cycles == expected


def test_reference_gap_is_charged_per_reference():
    lat = single_cpu_config().latency

    class Gapped(Scripted):
        cycles_per_ref = 7

    machine = Machine(single_cpu_config(), policy="scoma")
    result = machine.run(Gapped([(OP_READ, 0), (OP_READ, 0),
                                 (OP_READ, 0)]))
    expected = (3 * 7 + lat.expected_fault_local
                + lat.expected_local_memory + 2 * lat.l1_hit)
    assert result.stats.execution_cycles == expected


def test_two_node_remote_read_is_exact():
    """One client CPU reading a remote page: fault + Table 1 rows."""
    cfg = MachineConfig(
        num_nodes=2, cpus_per_node=1, page_bytes=256, line_bytes=32,
        l1=CacheConfig(256, 32, 2), l2=CacheConfig(1024, 32, 2),
        tlb_entries=64, directory_cache_entries=64)
    lat = cfg.latency

    class RemoteReader(Workload):
        name = "remote-reader"
        cycles_per_ref = 0
        problem = "scripted"

        def setup(self, layout, num_cpus):
            # Two pages so one is homed at node 1 (round robin).
            self.region = layout.attach_shared(key=1, size_bytes=512)

        def generator(self, cpu_id, num_cpus):
            if cpu_id == 0:
                # gpage 1 is homed at node 1; cpu 0 lives on node 0.
                yield (OP_READ, self.region.vbase + 256)
                yield (OP_READ, self.region.vbase + 256 + 32)

    machine = Machine(cfg, policy="lanuma")
    result = machine.run(RemoteReader())
    # Fault (remote home) + cold remote read with a cold directory
    # cache, then a second cold line with a warm directory cache.
    expected = (lat.expected_fault_remote
                + lat.expected_remote_clean
                + (lat.dir_cache_miss - lat.dir_cache_hit)  # cold dir
                + lat.expected_remote_clean
                + (lat.dir_cache_miss - lat.dir_cache_hit))
    assert machine.cpus[0].stats.finish_time == expected
