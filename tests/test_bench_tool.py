"""The perf-regression gate in tools/bench.py must actually gate."""

import importlib.util
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench", ROOT / "tools" / "bench.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench", module)
    spec.loader.exec_module(module)
    return module


def payload(**cells):
    return {"schema": 1, "cells": [
        {"cell": name, "refs_per_sec": rps, "wall_s": 1.0, "cycles": 1,
         "references": int(rps)} for name, rps in cells.items()]}


def test_compare_passes_within_tolerance(capsys):
    bench = load_bench()
    old = payload(**{"block/scoma": 100_000.0})
    new = payload(**{"block/scoma": 95_000.0})  # -5% < 10% tolerance
    assert bench.compare(old, new, tolerance=0.10) == 0
    assert "OK" in capsys.readouterr().out


def test_compare_fails_on_regression(capsys):
    bench = load_bench()
    old = payload(**{"block/scoma": 100_000.0, "random/lanuma": 50_000.0})
    new = payload(**{"block/scoma": 80_000.0, "random/lanuma": 50_000.0})
    assert bench.compare(old, new, tolerance=0.10) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "block/scoma" in out


def test_compare_tolerates_new_cells(capsys):
    bench = load_bench()
    old = payload(**{"block/scoma": 100_000.0})
    new = payload(**{"block/scoma": 100_000.0, "fft-tiny/scoma": 1.0})
    assert bench.compare(old, new, tolerance=0.10) == 0
    assert "NEW" in capsys.readouterr().out


def test_committed_trajectory_is_valid():
    import json
    committed = json.loads((ROOT / "BENCH_sim.json").read_text())
    assert committed["schema"] == 1
    assert committed["cells"], "trajectory point must not be empty"
    for record in committed["cells"]:
        for key in ("cell", "refs_per_sec", "wall_s", "cycles"):
            assert key in record
