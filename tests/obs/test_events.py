"""Unit tests for the structured event sink."""

import json

import pytest

from repro.obs.events import (EVENT_SCHEMA, EventSink, validate_event,
                              validate_jsonl)


def access(sink, seq_time=0):
    return sink.emit("access", time=seq_time, cpu=0, vaddr=64,
                     write=False, latency=2)


def test_emit_assigns_monotonic_seq_and_kind():
    sink = EventSink()
    first = access(sink)
    second = sink.emit("fault", time=5, node=1, vpage=2, gpage=3,
                       mode="SCOMA", remote_home=True)
    assert (first["seq"], second["seq"]) == (0, 1)
    assert first["kind"] == "access"
    assert sink.emitted == 2
    assert sink.summary() == {"access": 1, "fault": 1, "dropped": 0}


def test_unknown_kind_rejected():
    sink = EventSink()
    with pytest.raises(ValueError, match="unknown event kind"):
        sink.emit("vibes", time=0)


def test_ring_buffer_keeps_newest_and_counts_drops():
    sink = EventSink(capacity=3)
    for t in range(10):
        access(sink, t)
    assert sink.dropped == 7
    assert sink.emitted == 10
    assert [e["seq"] for e in sink.events] == [7, 8, 9]


def test_jsonl_round_trip_validates():
    sink = EventSink()
    access(sink)
    sink.emit("migrate", gpage=4, old_home=0, new_home=2)
    for line in sink.to_jsonl().splitlines():
        validate_event(json.loads(line))


def test_write_and_validate_jsonl(tmp_path):
    sink = EventSink(capacity=4)
    for t in range(9):
        access(sink, t)
    path = str(tmp_path / "trace.jsonl")
    assert sink.write_jsonl(path) == 4
    # Gaps from ring drops are fine; ordering must hold.
    assert validate_jsonl(path) == 4


def test_validate_jsonl_rejects_reordering(tmp_path):
    path = tmp_path / "bad.jsonl"
    a = {"seq": 5, "kind": "promote", "time": 1, "node": 0, "gpage": 2}
    b = {"seq": 4, "kind": "promote", "time": 2, "node": 0, "gpage": 3}
    path.write_text(json.dumps(a) + "\n" + json.dumps(b) + "\n")
    with pytest.raises(ValueError, match="sequence went backwards"):
        validate_jsonl(str(path))


def test_validate_event_checks_fields_and_types():
    good = {"seq": 0, "kind": "pageout", "time": 1, "node": 0,
            "frame": 3, "demoted": True}
    validate_event(good)
    with pytest.raises(ValueError, match="missing field"):
        validate_event({k: v for k, v in good.items() if k != "frame"})
    # bool is not an acceptable int (and vice versa).
    with pytest.raises(ValueError, match="expected int"):
        validate_event(dict(good, frame=True))
    with pytest.raises(ValueError, match="expected bool"):
        validate_event(dict(good, demoted=1))
    with pytest.raises(ValueError, match="bad seq"):
        validate_event(dict(good, seq=-1))


def test_csv_export_sections_per_kind():
    sink = EventSink()
    access(sink)
    sink.emit("pageout", time=2, node=0, frame=1, demoted=False)
    csv = sink.to_csv()
    assert "# access" in csv and "# pageout" in csv
    assert "seq,cpu,latency,time,vaddr,write" in csv


def test_schema_covers_all_trace_event_kinds():
    # The schema may define more kinds than the trace recorder produces
    # (the verification tap emits "read"/"write"), but every trace kind
    # must have a schema entry.
    from repro.sim.trace import KINDS
    assert set(KINDS) <= set(EVENT_SCHEMA)
