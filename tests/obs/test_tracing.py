"""Tests for the causal span-tracing layer (``repro.obs.tracing``)."""

import json

import pytest

from repro import obs
from repro.kernel.msgqueue import MessageChannel
from repro.obs import tracing
from repro.obs.tracing import (SEGMENTS, Span, Trace, TraceCollector,
                               compute_breakdown, format_tree,
                               validate_span, validate_spans_jsonl)
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload


def _run_traced(seed=0, workload="fft", policy="scoma", **collector_kw):
    with tracing.collecting(seed=seed, **collector_kw) as collector:
        machine = Machine(MachineConfig(), policy=policy)
        result = machine.run(make_workload(workload, "tiny"))
    return collector, result


# -- breakdown ------------------------------------------------------------


def _span(collector, name, kind, begin, end, parent=None):
    """Hand-build a closed span inside the collector's open trace."""
    span = collector.begin(name, kind, 0, begin)
    span.end = end
    return span


def test_breakdown_root_only():
    collector = TraceCollector()
    root = collector.begin("miss", "local", 0, 100)
    collector.end(root, 160)
    (trace,) = collector.traces
    assert trace.breakdown == {"local": 60}


def test_breakdown_child_clipped_and_residual():
    collector = TraceCollector()
    root = collector.begin("miss", "local", 0, 0)
    collector.add("hop", "network", 0, 10, 30)
    collector.add("late", "queue", 0, 90, 150)   # clipped to [90, 100)
    collector.end(root, 100)
    (trace,) = collector.traces
    assert trace.breakdown == {"local": 70, "network": 20, "queue": 10}
    assert sum(trace.breakdown.values()) == trace.duration


def test_breakdown_overlapping_siblings_later_begin_wins():
    collector = TraceCollector()
    root = collector.begin("miss", "local", 0, 0)
    collector.add("a", "network", 0, 10, 50)
    collector.add("b", "queue", 0, 40, 60)       # overlaps [40, 50)
    collector.end(root, 100)
    (trace,) = collector.traces
    assert trace.breakdown == {"local": 50, "network": 30, "queue": 20}
    assert sum(trace.breakdown.values()) == trace.duration


def test_breakdown_deeper_span_beats_shallower():
    collector = TraceCollector()
    root = collector.begin("miss", "local", 0, 0)
    home = collector.begin("home", "home", 1, 20)
    collector.add("inv", "inval", 1, 30, 40)     # grandchild of root
    collector.end(home, 60)
    collector.end(root, 100)
    (trace,) = collector.traces
    assert trace.breakdown == {"local": 60, "home": 30, "inval": 10}
    assert sum(trace.breakdown.values()) == trace.duration


def test_breakdown_empty_window():
    trace = Trace(1)
    trace.spans.append(Span(1, 2, 0, "r", "local", 0, -1, 5, 5, None))
    assert compute_breakdown(trace) == {}


# -- collector lifecycle --------------------------------------------------


def test_add_without_active_transaction_returns_none():
    collector = TraceCollector()
    assert collector.add("hop", "network", 0, 0, 10) is None
    assert collector.span_count == 0
    assert collector.started == 0


def test_add_root_standalone_and_as_child():
    collector = TraceCollector()
    span = collector.add_root("recv", "msg", 1, 5, 9, link_trace="ab")
    assert span.parent_id == 0
    assert collector.finished == 1
    assert collector.traces[0].breakdown == {"msg": 4}
    root = collector.begin("miss", "local", 0, 0)
    child = collector.add_root("recv", "msg", 1, 1, 2)
    assert child.parent_id == root.span_id
    collector.end(root, 10)
    assert collector.finished == 2


def test_annotate_and_count_merge_attrs():
    collector = TraceCollector()
    collector.annotate(ignored=1)                # no-op: nothing active
    collector.count("ignored")
    root = collector.begin("miss", "local", 0, 0)
    collector.annotate(fault_msg="ACK")
    collector.count("fault_drop")
    collector.count("fault_drop", 2)
    collector.end(root, 10)
    assert root.attrs["fault_msg"] == "ACK"
    assert root.attrs["fault_drop"] == 3


def test_unwind_keeps_partial_trace_with_error():
    collector = TraceCollector()
    collector.begin("miss", "local", 0, 100)
    collector.begin("home", "home", 1, 120)
    collector.add("hop", "network", 1, 120, 150)
    collector.unwind("DeadlineExceeded")
    assert collector.errors == 1
    (trace,) = collector.errored()
    assert trace.error == "DeadlineExceeded"
    assert trace.root.attrs["error"] == "DeadlineExceeded"
    for span in trace.spans:
        assert span.end >= span.begin
    assert sum(trace.breakdown.values()) == trace.duration
    collector.unwind()                           # idempotent when empty
    assert collector.errors == 1
    assert "transaction aborted" in format_tree(trace)


def test_ring_eviction_preserves_rollup():
    collector = TraceCollector(max_traces=2)
    for i in range(5):
        collector.add_root("r", "msg", 0, i, i + 1)
    assert len(collector.traces) == 2
    assert collector.evicted == 3
    assert collector.finished == 5
    assert collector.rollup() == {"msg": {"cycles": 5, "count": 5}}


def test_top_heap_keeps_slowest():
    collector = TraceCollector(top=2)
    for duration in (5, 1, 9, 3):
        collector.add_root("r", "msg", 0, 0, duration)
    durations = [t.duration for t in collector.slowest(10)]
    assert durations == [9, 5]


def test_note_tlb_consumed_only_by_adjacent_root():
    collector = TraceCollector()
    collector.note_tlb(90, 100)
    root = collector.begin("miss", "local", 0, 100)
    collector.end(root, 160)
    (trace,) = collector.traces
    assert trace.root.begin == 90                # stretched back
    assert trace.breakdown == {"local": 60, "tlb": 10}
    # A stale window (root opens later) is discarded.
    collector.note_tlb(200, 210)
    root = collector.begin("miss", "local", 0, 300)
    collector.end(root, 320)
    assert collector.traces[-1].breakdown == {"local": 20}


def test_deterministic_ids_per_seed():
    def build(seed):
        collector = TraceCollector(seed=seed)
        root = collector.begin("miss", "local", 3, 0)
        collector.add("hop", "network", 3, 1, 2)
        collector.end(root, 10)
        return collector.to_spans_jsonl()

    assert build(7) == build(7)
    assert build(7) != build(8)


def test_module_install_current_context():
    assert tracing.current() is None
    assert not tracing.enabled()
    assert tracing.active_context() is None
    with tracing.collecting(seed=1) as collector:
        assert tracing.current() is collector
        assert tracing.enabled()
        assert tracing.active_context() is None  # nothing open yet
        root = collector.begin("miss", "local", 0, 0)
        assert tracing.active_context() == (root.trace_id, root.span_id)
        with pytest.raises(RuntimeError):
            tracing.install(TraceCollector())
        collector.end(root, 1)
    assert tracing.current() is None


# -- schema validation ----------------------------------------------------


def _good_span():
    return {"trace": "%016x" % 1, "span": "%016x" % 2, "parent": "",
            "name": "miss", "kind": "local", "node": 0, "cpu": -1,
            "begin": 0, "end": 10, "attrs": {}}


def test_validate_span_accepts_good_span():
    validate_span(_good_span())


@pytest.mark.parametrize("mutate", [
    lambda s: s.pop("kind"),                       # missing field
    lambda s: s.update(extra=1),                   # unknown field
    lambda s: s.update(kind="bogus"),              # unknown segment
    lambda s: s.update(end=-5),                    # ends before begin
    lambda s: s.update(node=True),                 # bool is not int
    lambda s: s.update(trace=123),                 # wrong type
])
def test_validate_span_rejects(mutate):
    span = _good_span()
    mutate(span)
    with pytest.raises(ValueError):
        validate_span(span)


def test_validate_spans_jsonl_causal_integrity(tmp_path):
    path = tmp_path / "spans.jsonl"
    root = _good_span()
    child = dict(_good_span(), span="%016x" % 3, parent="%016x" % 2,
                 kind="network")
    path.write_text("\n".join(json.dumps(s) for s in (root, child)) + "\n")
    assert validate_spans_jsonl(path) == 2

    # Child before its root is a causal-order violation.
    path.write_text("\n".join(json.dumps(s) for s in (child, root)) + "\n")
    with pytest.raises(ValueError, match="child before root"):
        validate_spans_jsonl(path)

    # A second root in the same trace is a structural violation.
    path.write_text("\n".join(json.dumps(s) for s in (root, root)) + "\n")
    with pytest.raises(ValueError, match="second root"):
        validate_spans_jsonl(path)

    # Dangling parent ids are caught too.
    orphan = dict(child, parent="%016x" % 99)
    path.write_text("\n".join(json.dumps(s) for s in (root, orphan)) + "\n")
    with pytest.raises(ValueError, match="not \\(yet\\) in trace"):
        validate_spans_jsonl(path)


# -- machine integration --------------------------------------------------


def test_traced_run_stats_byte_identical_to_plain_run():
    machine = Machine(MachineConfig(), policy="scoma")
    plain = machine.run(make_workload("fft", "tiny"))
    collector, traced = _run_traced()
    assert collector.finished > 0
    assert traced.stats.to_dict() == plain.stats.to_dict()


def test_untraced_machine_has_no_tracer():
    machine = Machine(MachineConfig(), policy="scoma")
    assert machine._tracer is None
    assert machine.network.tracer is None


def test_traced_run_breakdowns_sum_and_are_diverse():
    collector, _ = _run_traced()
    for trace in collector.traces:
        assert sum(trace.breakdown.values()) == trace.duration
    for trace in collector.slowest(5):
        assert len(trace.breakdown) >= 3
    rollup = collector.rollup()
    assert set(rollup) <= set(SEGMENTS)
    assert {"local", "network", "home"} <= set(rollup)


def test_same_seed_runs_export_identical_spans():
    first, _ = _run_traced(seed=3)
    second, _ = _run_traced(seed=3)
    assert first.to_spans_jsonl() == second.to_spans_jsonl()


def test_span_export_validates(tmp_path):
    collector, _ = _run_traced()
    path = tmp_path / "spans.jsonl"
    written = collector.write_spans(path)
    assert validate_spans_jsonl(path) == written == collector.span_count


def test_chrome_export_structure(tmp_path):
    collector, _ = _run_traced()
    path = tmp_path / "chrome.json"
    events = collector.write_chrome(path)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == events > 0
    for event in doc["traceEvents"][:50]:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        validate_span(event["args"])


def test_registry_receives_segment_histograms_and_gauges():
    with obs.collecting() as registry:
        collector, _ = _run_traced()
    snap = registry.to_dict()
    segments = obs.find_metrics(snap["histograms"], "trace.segment_cycles")
    assert segments
    for labels, hist in segments:
        assert labels["segment"] in SEGMENTS
        assert labels["policy"] == "scoma"
        assert hist["count"] > 0
    (_, transactions), = obs.find_metrics(snap["gauges"],
                                          "trace.transactions")
    assert transactions == collector.finished


def test_detach_restores_machine_fast_path():
    with tracing.collecting() as collector:
        machine = Machine(MachineConfig(), policy="scoma")
        collector.detach()
        machine.run(make_workload("fft", "tiny"))
        assert collector.started == 0
    assert machine.network.tracer is None
    assert "_miss" not in vars(machine)


def test_message_channel_links_send_and_recv():
    with tracing.collecting() as collector:
        machine = Machine(MachineConfig(num_nodes=4, cpus_per_node=1))
        channel = MessageChannel(machine, src_node=0, dst_node=1)
        channel.send({"k": 1}, now=0)
        assert channel.receive(now=50_000) is not None
    names = {trace.root.name: trace for trace in collector.traces}
    assert "channel_send" in names
    assert "channel_recv" in names
    send = names["channel_send"].root
    recv = names["channel_recv"].root
    assert recv.attrs["link_trace"] == "%016x" % send.trace_id
    assert recv.attrs["link_span"] == "%016x" % send.span_id
