"""Unit tests for the metrics registry."""

import json

import pytest

from repro import obs
from repro.obs.registry import (LATENCY_BUCKETS_CYCLES, SERIES_MAX_POINTS,
                                Histogram, MetricsRegistry, find_metrics,
                                metric_key, parse_key, quantile)


def test_metric_key_sorts_labels():
    assert metric_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"
    assert metric_key("m", {}) == "m"
    name, labels = parse_key("m{a=1,b=2}")
    assert name == "m"
    assert labels == {"a": "1", "b": "2"}
    assert parse_key("m") == ("m", {})


def test_counter_and_gauge():
    reg = MetricsRegistry()
    reg.counter("hits").inc()
    reg.counter("hits").inc(4)
    reg.gauge("depth").set(7)
    assert reg.counter("hits").value == 5
    assert reg.gauge("depth").value == 7


def test_labeled_families_are_distinct_members():
    reg = MetricsRegistry()
    reg.counter("misses", policy="scoma", level="l2").inc()
    reg.counter("misses", policy="lanuma", level="l2").inc(2)
    snap = reg.to_dict()
    members = find_metrics(snap["counters"], "misses")
    assert members == [({"level": "l2", "policy": "lanuma"}, 2),
                       ({"level": "l2", "policy": "scoma"}, 1)]


def test_histogram_buckets_and_quantiles():
    hist = Histogram(buckets=(1, 2, 4, 8))
    for value in (0, 1, 2, 3, 5, 100):
        hist.observe(value)
    # counts has one extra overflow slot.
    assert hist.counts == [2, 1, 1, 1, 1]
    assert hist.count == 6
    assert hist.sum == 111
    assert hist.quantile(0.0) == 1
    # The overflow observation reports the last finite bound.
    assert hist.quantile(1.0) == 8


def test_default_latency_buckets_are_log2():
    reg = MetricsRegistry()
    hist = reg.histogram("lat")
    assert hist.buckets == LATENCY_BUCKETS_CYCLES
    assert LATENCY_BUCKETS_CYCLES[0] == 1
    assert all(b == 2 * a for a, b in zip(LATENCY_BUCKETS_CYCLES,
                                          LATENCY_BUCKETS_CYCLES[1:]))


def test_series_stride_doubling_bounds_memory():
    reg = MetricsRegistry()
    series = reg.series("util")
    for t in range(10 * SERIES_MAX_POINTS):
        series.sample(t, t / 10.0)
    assert len(series.points) <= SERIES_MAX_POINTS
    assert series.stride > 1
    # Still covers the whole run: first point early, last point late.
    assert series.points[0][0] < SERIES_MAX_POINTS
    assert series.points[-1][0] > 8 * SERIES_MAX_POINTS


def test_snapshot_round_trips_through_json():
    reg = MetricsRegistry()
    reg.counter("c", k="v").inc(3)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(17)
    reg.series("s").sample(5, 0.5)
    snap = json.loads(json.dumps(reg.to_dict(), sort_keys=True))
    back = MetricsRegistry.from_dict(snap)
    assert back.to_dict() == reg.to_dict()
    assert len(back) == len(reg) == 4


def test_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("x", a="1") is reg.counter("x", a="1")
    assert reg.counter("x", a="1") is not reg.counter("x", a="2")


def test_quantile_helper_validates_and_handles_empty():
    empty = {"buckets": [1, 2], "counts": [0, 0, 0], "count": 0}
    assert quantile(empty, 0.5) == 0
    with pytest.raises(ValueError):
        quantile(empty, 1.5)
    with pytest.raises(ValueError):
        quantile(empty, -0.1)


def test_find_metrics_without_matches_returns_empty_list():
    reg = MetricsRegistry()
    reg.counter("hits", policy="scoma").inc()
    snap = reg.to_dict()
    assert find_metrics(snap["counters"], "misses") == []
    assert find_metrics({}, "anything") == []
    # Prefixes are not families: "hit" must not match "hits".
    assert find_metrics(snap["counters"], "hit") == []


def test_module_helpers_are_noops_without_registry():
    assert obs.current() is None
    assert obs.counter("anything") is obs.NOOP_METRIC
    assert obs.histogram("anything") is obs.NOOP_METRIC
    assert obs.timer("anything") is obs.NOOP_TIMER
    obs.counter("anything").inc()          # absorbed, no state anywhere
    with obs.timer("anything"):
        pass


def test_collecting_installs_and_restores():
    assert not obs.enabled()
    with obs.collecting() as reg:
        assert obs.enabled()
        assert obs.current() is reg
        obs.counter("inside").inc()
        with obs.collecting() as inner:
            assert obs.current() is inner
        assert obs.current() is reg
    assert not obs.enabled()
    assert reg.counter("inside").value == 1


def test_quantile_edge_cases_are_defined_not_raised():
    # Missing "count" key (series-style partial snapshot): recomputed
    # from counts.
    partial = {"buckets": [1, 2, 4], "counts": [0, 3, 0, 0]}
    assert quantile(partial, 0.5) == 2
    # Single sample: every q reports its one populated bucket.
    single = {"buckets": [1, 2, 4], "counts": [0, 0, 1, 0], "count": 1}
    for q in (0.0, 0.5, 0.99, 1.0):
        assert quantile(single, q) == 4
    # All mass in one bucket behind empty leading buckets: q=0 must not
    # report the empty leading bucket.
    skewed = {"buckets": [1, 2, 4, 8], "counts": [0, 0, 5, 0, 0],
              "count": 5}
    assert quantile(skewed, 0.0) == 4
    assert quantile(skewed, 1.0) == 4
    # Pure-overflow histogram reports the last finite bound.
    overflow = {"buckets": [1, 2], "counts": [0, 0, 3], "count": 3}
    assert quantile(overflow, 0.5) == 2
    # Histogram object path agrees with the snapshot path.
    hist = Histogram(buckets=(1, 2, 4))
    hist.observe(3)
    assert hist.quantile(0.0) == hist.quantile(1.0) == 4


def test_series_quantile_edge_cases():
    from repro.obs import series_quantile

    assert series_quantile([], 0.5) == 0
    assert series_quantile([[10, 7]], 0.0) == 7
    assert series_quantile([[10, 7]], 1.0) == 7
    allequal = [[t, 3] for t in range(5)]
    for q in (0.0, 0.5, 1.0):
        assert series_quantile(allequal, q) == 3
    spread = [[t, v] for t, v in enumerate((5, 1, 9, 3, 7))]
    assert series_quantile(spread, 0.0) == 1
    assert series_quantile(spread, 0.5) == 5
    assert series_quantile(spread, 1.0) == 9
    with pytest.raises(ValueError):
        series_quantile(spread, 2.0)
