"""Tests for the live campaign view behind ``repro top``."""

import io

from repro.harness.session import ExperimentSpec, Session
from repro.harness.top import LiveCampaignView, _merge_hist


def _snapshot(p99_bucket=8192, segment_sums=None):
    """A minimal metrics snapshot with one latency histogram (and
    optionally trace segment roll-ups)."""
    buckets = [1, 64, 8192]
    hists = {"sim.access_latency_cycles{policy=scoma}":
             {"buckets": buckets, "counts": [60, 20, 19, 1],
              "sum": 12345, "count": 100}}
    if segment_sums:
        for segment, total in segment_sums.items():
            hists["trace.segment_cycles{policy=scoma,segment=%s}"
                  % segment] = {"buckets": buckets,
                                "counts": [0, 0, 1, 0],
                                "sum": total, "count": 1}
    return {"histograms": hists, "counters": {}, "gauges": {},
            "series": {}}


def test_merge_hist_accumulates_counts_and_sums():
    member = {"buckets": [1, 2], "counts": [3, 1, 0], "sum": 5, "count": 4}
    rolled = _merge_hist(None, member)
    rolled = _merge_hist(rolled, member)
    assert rolled["counts"] == [6, 2, 0]
    assert rolled["sum"] == 10
    assert rolled["count"] == 8
    assert rolled is not member              # first merge copies


def test_non_tty_stream_prints_one_line_per_cell():
    stream = io.StringIO()
    view = LiveCampaignView(stream=stream, jobs=2)
    assert view.repaint is False
    view.expect(2)
    view.cell_metrics("fft", "scoma", _snapshot(
        segment_sums={"queue": 900, "local": 100}))
    view.cell_done("fft", "scoma", 1.5)
    view.cell_done("fft", "lanuma", 0.0, cached=True)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "fft" in lines[0] and "p50<=" in lines[0]
    assert "queue 90%" in lines[0]
    assert "cached" in lines[1]


def test_render_includes_rolling_quantiles_and_segments():
    view = LiveCampaignView(stream=io.StringIO())
    view.expect(1)
    view.note_cache(3, 4)
    view.cell_metrics("fft", "scoma", _snapshot(
        segment_sums={"queue": 700, "network": 200, "home": 100}))
    view.cell_done("fft", "scoma", 0.5)
    frame = view.render()
    assert "campaign 1/1 cells" in frame
    assert "result cache: 3 hits, 4 misses" in frame
    assert "p50 <= 1" in frame
    assert "critical path: queue 70% network 20% home 10%" in frame
    assert "fft" in frame and "scoma" in frame


def test_cells_without_snapshots_show_dashes():
    stream = io.StringIO()
    view = LiveCampaignView(stream=stream)
    view.expect(1)
    view.cell_done("lu", "scoma", 0.2)
    assert view.rows[0][3] == "-"
    assert view.rows[0][4] == "-"


def test_utilization_is_bounded():
    view = LiveCampaignView(stream=io.StringIO(), jobs=4)
    view.expect(1)
    view.cell_done("fft", "scoma", 10_000.0)   # absurd busy time
    assert view.utilization() <= 1.0
    assert "cells in" in view.summary()


def test_session_feeds_view_through_cell_metrics_hook(tmp_path):
    view = LiveCampaignView(stream=io.StringIO())
    session = Session(cache_dir=str(tmp_path / "cache"), progress=view,
                      collect_metrics=True, trace_cells=True)
    session.run(ExperimentSpec("fft", "scoma", preset="tiny"))
    (row,) = view.rows
    assert row[0] == "fft"
    assert row[3] != "-"                      # p50 came from the snapshot
    assert row[5] != ""                       # segments came from tracing
    assert view.cache_hits == 0
