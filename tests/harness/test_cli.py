"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out
    assert "dyn-lru" in out
    assert "tiny" in out


def test_run_command(capsys):
    assert main(["run", "water-nsq", "--preset", "tiny",
                 "--policy", "dyn-fcfs", "--page-cache", "6",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "water-nsq / dyn-fcfs" in out
    assert "execution_cycles" in out


def test_run_with_migration(capsys):
    assert main(["run", "mp3d", "--preset", "tiny", "--migration",
                 "--no-cache"]) == 0
    assert "remote_misses" in capsys.readouterr().out


def test_run_caches_result(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["run", "fft", "--preset", "tiny", "--cache-dir", cache]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "[cached]" not in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "[cached]" in warm
    # The cached stats are identical to the simulated ones.
    assert warm.replace(" [cached]", "") == cold


def test_run_trace_and_metrics_out(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    assert main(["run", "fft", "--preset", "tiny", "--no-cache",
                 "--trace-out", str(trace),
                 "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "execution_cycles" in out
    assert "wrote" in out
    from repro.obs import validate_jsonl
    assert validate_jsonl(str(trace)) > 0
    import json
    snap = json.load(metrics.open())
    assert snap["fft/scoma"]["histograms"]


def test_run_output_identical_with_and_without_flags(tmp_path, capsys):
    base_args = ["run", "fft", "--preset", "tiny", "--no-cache"]
    assert main(base_args) == 0
    plain = capsys.readouterr().out
    assert main(base_args + ["--trace-out",
                             str(tmp_path / "t.jsonl")]) == 0
    traced = capsys.readouterr().out
    # Stats block unchanged; only the trailing "wrote ..." line differs.
    assert traced.startswith(plain)


def test_metrics_command(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["metrics", "fft", "--preset", "tiny",
                 "--policy", "scoma", "--policy", "dyn-lru",
                 "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "fft / scoma" in out and "fft / dyn-lru" in out
    assert "access latency (cycles)" in out
    assert "client_scoma_peak" in out
    assert "Per-cell telemetry" in out
    # Second invocation is served from the snapshots cached by the first.
    assert main(["metrics", "fft", "--preset", "tiny",
                 "--policy", "scoma", "--cache-dir", cache]) == 0
    assert "Per-cell telemetry" in capsys.readouterr().out


def test_microbench_command(capsys):
    assert main(["microbench"]) == 0
    out = capsys.readouterr().out
    assert "TLB miss" in out


def test_suite_command(capsys):
    assert main(["suite", "water-spa", "--preset", "tiny",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "scoma-70" in out
    assert "normalized" in out
    assert "campaign:" in out          # wall-clock summary line


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fft", "--policy", "magic"])


def test_analyze_command(capsys):
    assert main(["analyze", "lu", "--preset", "tiny", "--cpus", "8"]) == 0
    out = capsys.readouterr().out
    assert "shared_fraction" in out
    assert "avg_sharing_degree" in out


def test_evaluate_save_command(tmp_path, capsys):
    path = tmp_path / "campaign.json"
    assert main(["evaluate", "--preset", "tiny", "--apps", "water-spa",
                 "--no-cache", "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "saved campaign" in out
    import json
    blob = json.loads(path.read_text())
    assert "water-spa" in blob


def test_compare_command(tmp_path, capsys):
    import json
    blob = {"fft": {"policies": {"lanuma": {
        "normalized_time": 1.5, "remote_misses": 100,
        "page_outs": 0, "execution_cycles": 1000}}}}
    before = tmp_path / "a.json"
    after = tmp_path / "b.json"
    before.write_text(json.dumps(blob))
    blob["fft"]["policies"]["lanuma"]["remote_misses"] = 200
    after.write_text(json.dumps(blob))
    # Identical campaigns: exit 0.
    assert main(["compare", str(before), str(before)]) == 0
    # Drifted campaign: exit 1 and the drift is reported.
    assert main(["compare", str(before), str(after)]) == 1
    assert "remote_misses" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    chrome = tmp_path / "chrome.json"
    assert main(["trace", "fft", "--preset", "tiny", "--seed", "3",
                 "--top", "2", "--out", str(spans),
                 "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "transactions" in out
    assert "critical-path latency by segment" in out
    assert "#1" in out and "#2" in out and "#3" not in out
    assert "sum" in out and "= duration" in out
    from repro.obs.tracing import validate_spans_jsonl
    assert validate_spans_jsonl(spans) > 0
    import json
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]


def test_trace_command_is_deterministic(tmp_path, capsys):
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        assert main(["trace", "fft", "--preset", "tiny", "--seed", "7",
                     "--out", str(path)]) == 0
        paths.append(path.read_text())
        capsys.readouterr()
    assert paths[0] == paths[1]


def test_top_command(tmp_path, capsys):
    assert main(["top", "--apps", "fft", "--preset", "tiny",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "campaign 6/6 cells" in out
    assert "p50" in out
    # Cells ran traced, so the critical-path column is populated.
    assert "queue" in out or "local" in out


def test_metrics_filter_and_formats(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    base = ["metrics", "fft", "--preset", "tiny", "--policy", "scoma",
            "--cache-dir", cache]
    assert main(base + ["--filter", "sim.access*"]) == 0
    table = capsys.readouterr().out
    assert "sim.access_latency_cycles" in table
    assert "p99" in table
    assert "frame pools" not in table          # flat listing, not detail

    assert main(base + ["--filter", "sim.access*", "--format",
                        "json"]) == 0
    import json
    rows = json.loads(capsys.readouterr().out)
    assert rows and rows[0]["kind"] == "histogram"
    assert rows[0]["cell"] == "fft/scoma"

    assert main(base + ["--format", "csv"]) == 0
    csv_out = capsys.readouterr().out.splitlines()
    assert csv_out[0] == "cell,kind,metric,value,count,sum,p50,p99"
    assert len(csv_out) > 2

    assert main(base + ["--filter", "no.such.metric"]) == 0
    assert "no.such.metric" not in capsys.readouterr().out


def test_chaos_trace_prints_failing_span_tree(capsys):
    # Drop plans with retransmission disabled are guaranteed to hang
    # (the mutation self-test configuration), giving --trace a failing
    # round to explain.
    code = main(["chaos", "--seed", "1", "--rounds", "4", "--no-retry",
                 "--trace"])
    out = capsys.readouterr().out
    assert code == 1
    assert "HUNG" in out
    assert "causal trace of the failing transaction" in out
    assert "transaction aborted" in out


def test_chaos_without_trace_output_is_unchanged(capsys):
    assert main(["chaos", "--seed", "7", "--rounds", "2"]) in (0, 1)
    out = capsys.readouterr().out
    assert "causal trace" not in out


def test_run_engine_vector_prints_identical_stats(capsys):
    args = ["run", "fft", "--preset", "tiny", "--no-cache"]
    assert main(args) == 0
    interp = capsys.readouterr().out
    assert main(args + ["--engine", "vector"]) == 0
    vector = capsys.readouterr().out
    assert vector == interp


def test_engine_is_not_part_of_the_cache_key(tmp_path, capsys):
    # An interp-cached cell must be served from cache under --engine
    # vector (and vice versa): the engines are byte-identical, so the
    # result cache key deliberately ignores the engine field.
    cache = str(tmp_path / "cache")
    base = ["run", "lu", "--preset", "tiny", "--cache-dir", cache]
    assert main(base) == 0
    cold = capsys.readouterr().out
    assert "[cached]" not in cold
    assert main(base + ["--engine", "vector"]) == 0
    warm = capsys.readouterr().out
    assert "[cached]" in warm
    assert warm.replace(" [cached]", "") == cold


def test_evaluate_engine_leaves_table1_probes_alone(capsys):
    # ``--engine`` must select the campaign cells' simulation core
    # without touching Table 1's latency microbenchmark, which needs
    # its own machine geometry (regression: forcing a default
    # MachineConfig onto table1 overran the probe's private region).
    import re

    def tables(out):
        # Drop progress and campaign-summary lines (volatile host
        # wall times).
        return [line for line in out.splitlines()
                if not re.match(r"\s*\[\d+/\d+\]|campaign:", line)]

    base = ["evaluate", "--preset", "tiny", "--apps", "fft",
            "--skip-pit", "--no-cache"]
    assert main(base) == 0
    interp = capsys.readouterr().out
    assert "Table 1" in interp
    assert main(base + ["--engine", "vector"]) == 0
    vector = capsys.readouterr().out
    assert tables(vector) == tables(interp)


def test_trace_command_under_vector_engine(tmp_path, capsys):
    out = tmp_path / "spans.jsonl"
    assert main(["trace", "fft", "--preset", "tiny", "--seed", "3",
                 "--engine", "vector", "--out", str(out)]) == 0
    report = capsys.readouterr().out
    assert "transactions" in report and "= duration" in report
    from repro.obs.tracing import validate_spans_jsonl
    assert validate_spans_jsonl(str(out)) > 0
