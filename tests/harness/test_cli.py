"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out
    assert "dyn-lru" in out
    assert "tiny" in out


def test_run_command(capsys):
    assert main(["run", "water-nsq", "--preset", "tiny",
                 "--policy", "dyn-fcfs", "--page-cache", "6",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "water-nsq / dyn-fcfs" in out
    assert "execution_cycles" in out


def test_run_with_migration(capsys):
    assert main(["run", "mp3d", "--preset", "tiny", "--migration",
                 "--no-cache"]) == 0
    assert "remote_misses" in capsys.readouterr().out


def test_run_caches_result(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["run", "fft", "--preset", "tiny", "--cache-dir", cache]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "[cached]" not in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "[cached]" in warm
    # The cached stats are identical to the simulated ones.
    assert warm.replace(" [cached]", "") == cold


def test_run_trace_and_metrics_out(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    assert main(["run", "fft", "--preset", "tiny", "--no-cache",
                 "--trace-out", str(trace),
                 "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "execution_cycles" in out
    assert "wrote" in out
    from repro.obs import validate_jsonl
    assert validate_jsonl(str(trace)) > 0
    import json
    snap = json.load(metrics.open())
    assert snap["fft/scoma"]["histograms"]


def test_run_output_identical_with_and_without_flags(tmp_path, capsys):
    base_args = ["run", "fft", "--preset", "tiny", "--no-cache"]
    assert main(base_args) == 0
    plain = capsys.readouterr().out
    assert main(base_args + ["--trace-out",
                             str(tmp_path / "t.jsonl")]) == 0
    traced = capsys.readouterr().out
    # Stats block unchanged; only the trailing "wrote ..." line differs.
    assert traced.startswith(plain)


def test_metrics_command(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["metrics", "fft", "--preset", "tiny",
                 "--policy", "scoma", "--policy", "dyn-lru",
                 "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "fft / scoma" in out and "fft / dyn-lru" in out
    assert "access latency (cycles)" in out
    assert "client_scoma_peak" in out
    assert "Per-cell telemetry" in out
    # Second invocation is served from the snapshots cached by the first.
    assert main(["metrics", "fft", "--preset", "tiny",
                 "--policy", "scoma", "--cache-dir", cache]) == 0
    assert "Per-cell telemetry" in capsys.readouterr().out


def test_microbench_command(capsys):
    assert main(["microbench"]) == 0
    out = capsys.readouterr().out
    assert "TLB miss" in out


def test_suite_command(capsys):
    assert main(["suite", "water-spa", "--preset", "tiny",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "scoma-70" in out
    assert "normalized" in out
    assert "campaign:" in out          # wall-clock summary line


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fft", "--policy", "magic"])


def test_analyze_command(capsys):
    assert main(["analyze", "lu", "--preset", "tiny", "--cpus", "8"]) == 0
    out = capsys.readouterr().out
    assert "shared_fraction" in out
    assert "avg_sharing_degree" in out


def test_evaluate_save_command(tmp_path, capsys):
    path = tmp_path / "campaign.json"
    assert main(["evaluate", "--preset", "tiny", "--apps", "water-spa",
                 "--no-cache", "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "saved campaign" in out
    import json
    blob = json.loads(path.read_text())
    assert "water-spa" in blob


def test_compare_command(tmp_path, capsys):
    import json
    blob = {"fft": {"policies": {"lanuma": {
        "normalized_time": 1.5, "remote_misses": 100,
        "page_outs": 0, "execution_cycles": 1000}}}}
    before = tmp_path / "a.json"
    after = tmp_path / "b.json"
    before.write_text(json.dumps(blob))
    blob["fft"]["policies"]["lanuma"]["remote_misses"] = 200
    after.write_text(json.dumps(blob))
    # Identical campaigns: exit 0.
    assert main(["compare", str(before), str(before)]) == 0
    # Drifted campaign: exit 1 and the drift is reported.
    assert main(["compare", str(before), str(after)]) == 1
    assert "remote_misses" in capsys.readouterr().out
