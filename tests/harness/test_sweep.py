"""Tests for the parameter-sweep utilities."""

import pytest

import repro
from repro.harness.sweep import (SweepResult, cache_fraction_sweep,
                                 render_sweep)


@pytest.fixture(scope="module")
def sweep():
    return cache_fraction_sweep("lu", fractions=(0.2, 0.8), preset="tiny",
                                config=repro.tiny_config())


def test_sweep_points_populated(sweep):
    assert set(sweep.points) == {0.2, 0.8}
    assert sweep.scoma_cycles > 0
    assert sweep.lanuma_cycles > 0


def test_bigger_cache_pages_out_less(sweep):
    assert sweep.points[0.2][1] >= sweep.points[0.8][1]


def test_bigger_cache_is_not_slower(sweep):
    assert sweep.normalized(0.8) <= sweep.normalized(0.2) * 1.05


def test_render(sweep):
    text = render_sweep(sweep)
    assert "lu" in text
    assert "LANUMA baseline" in text
    assert "0.80" in text


def test_crossover_logic():
    sweep = SweepResult("x", "tiny", lanuma_cycles=100, scoma_cycles=50)
    sweep.points = {0.1: (150, 9), 0.5: (90, 3), 0.9: (60, 1)}
    assert sweep.crossover_fraction() == 0.5
    sweep.points = {0.1: (150, 9)}
    assert sweep.crossover_fraction() is None
