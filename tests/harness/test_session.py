"""Tests for the parallel campaign engine (ExperimentSpec / Session)."""

import pytest

from repro.harness.report import CampaignProgress
from repro.harness.session import (CACHE_SCHEMA, ExperimentSpec, Session,
                                   execute_spec)
from repro.sim.config import MachineConfig, tiny_config


def spec(workload="fft", policy="scoma", **kwargs):
    kwargs.setdefault("preset", "tiny")
    kwargs.setdefault("config", tiny_config())
    return ExperimentSpec(workload, policy, **kwargs)


class TestExperimentSpec:
    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            spec().policy = "lanuma"

    def test_override_normalized_to_tuple(self):
        s = spec(page_cache_override=[4, 5])
        assert s.page_cache_override == (4, 5)
        assert hash(s) == hash(spec(page_cache_override=(4, 5)))

    def test_none_config_resolves_to_default(self):
        s = ExperimentSpec("fft", "scoma")
        assert s.resolved_config() == MachineConfig()
        # ... and shares a cache entry with the explicit default.
        explicit = ExperimentSpec("fft", "scoma", config=MachineConfig())
        assert s.cache_key() == explicit.cache_key()

    def test_cache_key_sensitive_to_inputs(self):
        base = spec()
        assert base.cache_key() == spec().cache_key()
        assert base.cache_key() != spec(policy="lanuma").cache_key()
        assert base.cache_key() != spec(seed=7).cache_key()
        assert (base.cache_key()
                != spec(config=tiny_config(tlb_entries=16)).cache_key())

    def test_payload_round_trip(self):
        s = spec(policy="scoma-70", page_cache_override=(3, 4))
        back = ExperimentSpec.from_payload(s.to_payload())
        assert back == ExperimentSpec(
            "fft", "scoma-70", preset="tiny", config=tiny_config(),
            page_cache_override=(3, 4))
        assert back.cache_key() == s.cache_key()


class TestSessionRun:
    def test_run_matches_direct_machine(self):
        s = spec()
        via_session = Session().run(s)
        direct = execute_spec(s)
        assert via_session.stats.to_dict() == direct.stats.to_dict()
        assert via_session.workload == "fft"
        assert via_session.policy == "scoma"

    def test_run_suite_preserves_input_order(self):
        results = Session().run_suite(
            [spec(policy="lanuma"), spec(policy="scoma")])
        assert [r.policy for r in results] == ["lanuma", "scoma"]

    def test_workload_suite_matches_single_runs(self):
        cfg = tiny_config()
        suite = Session().run_workload_suite("water-nsq", preset="tiny",
                                             config=cfg)
        # Each suite cell must equal the same spec run standalone.
        caps = suite.page_cache_caps
        for policy in ("scoma", "lanuma"):
            single = execute_spec(ExperimentSpec("water-nsq", policy,
                                                 preset="tiny", config=cfg))
            assert (suite.results[policy].stats.to_dict()
                    == single.stats.to_dict())
        assert caps == [max(1, int(0.7 * n.scoma_client_frames_peak))
                        for n in suite.results["scoma"].stats.nodes]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            Session(jobs=0)


class TestResultCache:
    def test_warm_cache_skips_recomputation(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Session(cache_dir=cache_dir)
        suite = cold.run_workload_suite("fft", preset="tiny",
                                        config=tiny_config())
        cells = len(suite.results)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cells

        warm = Session(cache_dir=cache_dir)
        again = warm.run_workload_suite("fft", preset="tiny",
                                        config=tiny_config())
        assert warm.cache_hits == cells
        assert warm.cache_misses == 0
        for policy in suite.results:
            assert (again.results[policy].stats.to_dict()
                    == suite.results[policy].stats.to_dict())

    def test_config_tweak_only_recomputes_changed_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        Session(cache_dir=cache_dir).run(spec(policy="lanuma"))
        s2 = Session(cache_dir=cache_dir)
        s2.run(spec(policy="lanuma"))
        assert (s2.cache_hits, s2.cache_misses) == (1, 0)
        s2.run(spec(policy="lanuma", config=tiny_config(tlb_entries=16)))
        assert (s2.cache_hits, s2.cache_misses) == (1, 1)

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        session = Session(cache_dir=cache_dir)
        session.run(spec())
        # Corrupt every entry's schema stamp; the next lookup re-runs.
        import json
        for path in (tmp_path / "cache").rglob("*.json"):
            entry = json.loads(path.read_text())
            entry["schema"] = CACHE_SCHEMA + 1
            path.write_text(json.dumps(entry))
        fresh = Session(cache_dir=cache_dir)
        fresh.run(spec())
        assert (fresh.cache_hits, fresh.cache_misses) == (0, 1)


class TestMetricsCollection:
    def test_collect_metrics_attaches_snapshot(self):
        result = Session(collect_metrics=True).run(spec())
        assert result.metrics is not None
        assert result.metrics["schema"] == 1
        hist = result.metrics["histograms"][
            "sim.access_latency_cycles{policy=scoma}"]
        assert hist["count"] == result.stats.references

    def test_metrics_do_not_change_stats_or_cache_key(self):
        plain = Session().run(spec())
        metered = Session(collect_metrics=True).run(spec())
        assert metered.stats.to_dict() == plain.stats.to_dict()
        assert plain.metrics is None

    def test_metrics_ride_along_in_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        Session(cache_dir=cache_dir, collect_metrics=True).run(spec())
        warm = Session(cache_dir=cache_dir)
        result = warm.run(spec())
        assert warm.cache_hits == 1
        assert result.metrics is not None      # snapshot came from disk
        # Entries stored without metrics stay valid, just snapshot-less.
        other = Session(cache_dir=cache_dir).run(spec(policy="lanuma"))
        assert other.metrics is None
        again = Session(cache_dir=cache_dir).run(spec(policy="lanuma"))
        assert again.metrics is None

    def test_run_instrumented_traces_and_stores(self, tmp_path):
        from repro.obs import EventSink, validate_event
        cache_dir = str(tmp_path / "cache")
        session = Session(cache_dir=cache_dir)
        sink = EventSink()
        result = session.run_instrumented(spec(), sink=sink)
        assert result.metrics is not None
        assert sink.emitted > 0
        for event in sink.events[:50]:
            validate_event(event)
        # Identical to an uninstrumented run, and cached for next time.
        assert result.stats.to_dict() == execute_spec(spec()).stats.to_dict()
        warm = Session(cache_dir=cache_dir).run(spec())
        assert warm.metrics is not None

    def test_parallel_metrics_match_sequential(self):
        def deterministic(snapshot):
            # Everything but the wall-clock families (harness timers,
            # host throughput gauges) is a pure function of the
            # simulation and must match across runs.
            return {section: {k: v for k, v in members.items()
                              if not k.startswith(("harness.", "host."))}
                    for section, members in snapshot.items()
                    if isinstance(members, dict)}

        seq = Session(collect_metrics=True).run(spec())
        par = Session(jobs=2, collect_metrics=True).run_suite([spec()])[0]
        assert deterministic(par.metrics) == deterministic(seq.metrics)


class TestRemovedWrappers:
    def test_deprecated_free_functions_are_gone(self):
        # run_one / run_suite / run_all_suites were deprecated by the
        # parallel-harness change and have since been removed; the
        # Session / ExperimentSpec API is the only entry point.
        import repro.harness
        import repro.harness.runner as runner
        for name in ("run_one", "run_suite", "run_all_suites"):
            assert not hasattr(repro.harness, name)
            assert not hasattr(runner, name)
            assert name not in repro.harness.__all__


class TestProgress:
    def test_progress_lines_and_summary(self, capsys):
        session = Session(progress=CampaignProgress())
        session.run_workload_suite("fft", policies=("scoma", "lanuma"),
                                   preset="tiny", config=tiny_config())
        out = capsys.readouterr().out
        assert "fft" in out and "lanuma" in out
        assert session.progress.done == 2
        assert "2 cells" in session.progress.summary()

    def test_disabled_progress_prints_nothing(self, capsys):
        session = Session(progress=CampaignProgress(enabled=False))
        session.run(spec())
        assert capsys.readouterr().out == ""
        assert session.progress.done == 1

    def test_summary_reports_result_cache_counters(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        Session(cache_dir=cache_dir).run(spec())
        session = Session(cache_dir=cache_dir,
                          progress=CampaignProgress(enabled=False))
        session.run_suite([spec(), spec(policy="lanuma")])
        assert "[result cache: 1 hits, 1 misses]" in session.progress.summary()

    def test_summary_omits_cache_counters_without_cache(self):
        session = Session(progress=CampaignProgress(enabled=False))
        session.run(spec())
        assert "result cache" not in session.progress.summary()


@pytest.mark.parallel
class TestParallelScheduler:
    """The multiprocessing path must be output-identical to jobs=1."""

    def test_jobs4_suite_identical_to_jobs1(self):
        cfg = tiny_config()
        seq = Session(jobs=1).run_workload_suite("fft", preset="tiny",
                                                 config=cfg)
        par = Session(jobs=4).run_workload_suite("fft", preset="tiny",
                                                 config=cfg)
        assert list(par.results) == list(seq.results)
        assert par.page_cache_caps == seq.page_cache_caps
        for policy in seq.results:
            assert par.normalized_time(policy) == seq.normalized_time(policy)
            assert (par.results[policy].stats.to_dict()
                    == seq.results[policy].stats.to_dict())

    def test_jobs2_campaign_two_stage_dag(self):
        cfg = tiny_config()
        apps = ("fft", "water-nsq")
        seq = Session(jobs=1).run_campaign(apps, preset="tiny", config=cfg)
        par = Session(jobs=2).run_campaign(apps, preset="tiny", config=cfg)
        for app in apps:
            assert par[app].page_cache_caps == seq[app].page_cache_caps
            assert list(par[app].results) == list(seq[app].results)
            for policy in seq[app].results:
                assert (par[app].results[policy].stats.to_dict()
                        == seq[app].results[policy].stats.to_dict())

    def test_parallel_worker_error_propagates(self):
        with pytest.raises(ValueError):
            Session(jobs=2).run_suite(
                [spec(), ExperimentSpec("no-such-app", "scoma",
                                        preset="tiny",
                                        config=tiny_config())])
