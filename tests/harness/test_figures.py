"""Coverage for the Figure 7 renderers (repro.harness.figures).

Builds a real two-app campaign at the tiny preset, then smoke-renders
every figure form — numeric series, text table, ASCII bars — and writes
the rendered artifacts to a temp dir, asserting each lands on disk
non-empty.
"""

import pytest

from repro.harness.figures import (figure7_ascii, figure7_series,
                                   figure7_table)
from repro.harness.session import Session

APPS = ("fft", "lu")
POLICIES = ("scoma", "lanuma", "ccnuma")


@pytest.fixture(scope="module")
def suites():
    session = Session(jobs=1, cache_dir=None)
    return session.run_campaign(APPS, policies=POLICIES, preset="tiny")


def test_series_is_normalized_to_scoma(suites):
    series = figure7_series(suites)
    assert set(series) == set(APPS)
    for app in APPS:
        assert set(series[app]) == set(POLICIES)
        assert series[app]["scoma"] == 1.0
        for value in series[app].values():
            assert value > 0.0


def test_table_renders_every_app_row(suites):
    text = figure7_table(suites).render()
    assert "Figure 7" in text
    for app in APPS:
        assert app in text
    for policy in ("scoma", "lanuma"):
        assert policy in text


def test_ascii_chart_draws_bars_for_every_app(suites):
    chart = figure7_ascii(suites, width=20)
    assert "normalized to SCOMA" in chart
    for app in APPS:
        assert app in chart
    assert "#" in chart  # at least one bar got drawn
    assert "labelled bars" in chart


def test_rendered_figures_land_on_disk(suites, tmp_path):
    outputs = {
        "figure7_series.txt": "\n".join(
            "%s %s %.4f" % (app, policy, value)
            for app, row in sorted(figure7_series(suites).items())
            for policy, value in sorted(row.items())),
        "figure7_table.txt": figure7_table(suites).render(),
        "figure7_ascii.txt": figure7_ascii(suites),
    }
    for name, text in outputs.items():
        path = tmp_path / name
        path.write_text(text + "\n")
        assert path.exists()
        assert path.stat().st_size > 0


def test_ascii_caps_runaway_bars():
    class FakeStats:
        def __init__(self, cycles):
            self.execution_cycles = cycles

    class FakeRun:
        def __init__(self, cycles):
            self.stats = FakeStats(cycles)

    class FakeSuite:
        def __init__(self):
            self.results = {"scoma": FakeRun(100), "lanuma": FakeRun(1000)}

        def normalized_time(self, policy, baseline="scoma"):
            return (self.results[policy].stats.execution_cycles
                    / self.results[baseline].stats.execution_cycles)

    chart = figure7_ascii({"toy": FakeSuite()}, width=10)
    line = next(l for l in chart.splitlines() if "lanuma" in l)
    assert "+" in line       # overflow marker
    assert "10.00" in line   # real value still printed
    assert line.count("#") == 10
