"""Tests for the experiment runner, tables and figure generation."""

import pytest

import repro
from repro.harness.figures import figure7_ascii, figure7_series, figure7_table
from repro.harness.runner import CAPPED_POLICIES, derive_page_cache_caps
from repro.harness.session import ExperimentSpec, Session
from repro.harness.tables import table1, table2, table3, table4, table5


@pytest.fixture(scope="module")
def suites():
    cfg = repro.tiny_config()
    apps = ("water-nsq", "fft")
    return Session().run_campaign(apps, preset="tiny", config=cfg)


def test_session_run_returns_result():
    result = Session().run(ExperimentSpec("fft", "scoma", preset="tiny",
                                          config=repro.tiny_config()))
    assert result.workload == "fft"
    assert result.policy == "scoma"
    assert result.stats.execution_cycles > 0


def test_suite_contains_all_policies(suites):
    for suite in suites.values():
        assert set(suite.results) == {"scoma", "lanuma", "scoma-70",
                                      "dyn-fcfs", "dyn-util", "dyn-lru"}


def test_caps_are_70pct_of_scoma_peak(suites):
    suite = suites["fft"]
    scoma = suite.results["scoma"]
    expected = derive_page_cache_caps(scoma)
    assert suite.page_cache_caps == expected
    for cap, node_stats in zip(expected, scoma.stats.nodes):
        assert cap == max(1, int(0.7 * node_stats.scoma_client_frames_peak))


def test_scoma70_actually_pages_out(suites):
    assert suites["fft"].page_outs("scoma-70") > 0


def test_normalized_time_baseline_is_one(suites):
    for suite in suites.values():
        assert suite.normalized_time("scoma") == 1.0


def test_suite_always_runs_scoma_first_for_caps():
    # Even when the caller omits scoma, the suite runs it to derive the
    # page-cache caps that the capped policies need.
    suite = Session().run_workload_suite(
        "water-nsq", policies=("scoma-70",), preset="tiny",
        config=repro.tiny_config())
    assert "scoma" in suite.results
    assert suite.page_cache_caps


def test_capped_policies_list():
    assert "scoma-70" in CAPPED_POLICIES
    assert "lanuma" not in CAPPED_POLICIES


def test_figure7_outputs(suites):
    series = figure7_series(suites)
    assert series["fft"]["scoma"] == 1.0
    text = figure7_ascii(suites)
    assert "fft" in text and "dyn-lru" in text
    table = figure7_table(suites)
    rendered = table.render()
    assert "water-nsq" in rendered


def test_table_renderers(suites):
    for table in (table3(suites), table4(suites), table5(suites)):
        rendered = table.render()
        assert "fft" in rendered
        assert "Paper" in rendered or "paper" in rendered


def test_table2_lists_all_apps():
    rendered = table2().render()
    for app in repro.APPLICATIONS:
        assert app in rendered


@pytest.mark.slow
def test_table1_renders():
    rendered = table1().render()
    assert "TLB miss" in rendered
    assert "573" in rendered
