"""Unit tests for the text-table renderer."""

import pytest

from repro.harness.report import TextTable, ratio


def test_basic_render():
    table = TextTable("Title", ["name", "value"])
    table.add_row("alpha", 42)
    table.add_row("beta", 3.14159)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "alpha" in text
    assert "3.142" in text  # floats get 3 decimals


def test_numeric_cells_right_aligned():
    table = TextTable("T", ["k", "v"])
    table.add_row("row", 7)
    body = table.render().splitlines()[-1]
    key_cell, value_cell = body.split(" | ")
    assert key_cell.startswith("row")
    assert value_cell.endswith("7")


def test_column_widths_grow_with_content():
    table = TextTable("T", ["c"])
    table.add_row("a-very-wide-cell-value")
    header = table.render().splitlines()[2]
    assert len(header) >= len("a-very-wide-cell-value")


def test_wrong_cell_count_rejected():
    table = TextTable("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_str_equals_render():
    table = TextTable("T", ["a"])
    table.add_row(1)
    assert str(table) == table.render()


def test_ratio_formatting():
    assert ratio(150, 100) == "1.50x"
    assert ratio(1, 0) == "n/a"
