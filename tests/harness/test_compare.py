"""Tests for campaign diffing."""

import pytest

from repro.harness.compare import Delta, compare_campaigns


def campaign(nt=1.5, rm=100, po=10, cyc=1000, apps=("fft",)):
    return {app: {"policies": {
        "lanuma": {"normalized_time": nt, "remote_misses": rm,
                   "page_outs": po, "execution_cycles": cyc}}}
        for app in apps}


def test_identical_campaigns_have_no_regressions():
    a = campaign()
    diff = compare_campaigns(a, a)
    assert diff.regressions() == []
    assert diff.missing_apps == []
    assert diff.new_apps == []


def test_detects_metric_drift():
    diff = compare_campaigns(campaign(rm=100), campaign(rm=150))
    regs = diff.regressions(threshold=0.05)
    assert len(regs) == 1
    assert regs[0].metric == "remote_misses"
    assert regs[0].relative == pytest.approx(0.5)


def test_threshold_filters_small_changes():
    diff = compare_campaigns(campaign(cyc=1000), campaign(cyc=1020))
    assert diff.regressions(threshold=0.05) == []
    assert len(diff.regressions(threshold=0.01)) == 1


def test_structural_differences_reported():
    diff = compare_campaigns(campaign(apps=("fft", "lu")),
                             campaign(apps=("fft", "radix")))
    assert diff.missing_apps == ["lu"]
    assert diff.new_apps == ["radix"]


def test_zero_baseline_handled():
    d = Delta("fft", "lanuma", "page_outs", before=0, after=5)
    assert d.relative == float("inf")
    d = Delta("fft", "lanuma", "page_outs", before=0, after=0)
    assert d.relative == 0.0


def test_table_renders_worst_first():
    diff = compare_campaigns(campaign(rm=100, cyc=1000),
                             campaign(rm=200, cyc=1100))
    text = diff.table(threshold=0.05).render()
    lines = [l for l in text.splitlines() if "fft" in l]
    assert "remote_misses" in lines[0]  # 100% beats 10%


def test_round_trip_with_real_suite():
    import repro
    from repro.harness.export import campaign_to_dict
    from repro.harness.session import Session
    suite = Session().run_workload_suite(
        "water-spa", policies=("scoma", "lanuma"), preset="tiny",
        config=repro.tiny_config())
    flat = campaign_to_dict({"water-spa": suite})
    diff = compare_campaigns(flat, flat)
    assert diff.regressions() == []
