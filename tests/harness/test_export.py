"""Tests for result serialization."""

import json

import pytest

import repro
from repro.harness.export import (campaign_to_dict, figure7_csv,
                                  load_campaign, result_to_dict, runs_csv,
                                  save_campaign, suite_to_dict)
from repro.harness.session import ExperimentSpec, Session


@pytest.fixture(scope="module")
def suite():
    return Session().run_workload_suite(
        "water-spa", policies=("scoma", "lanuma"), preset="tiny",
        config=repro.tiny_config())


def test_result_round_trips_through_json(suite):
    flat = result_to_dict(suite.results["scoma"])
    blob = json.dumps(flat)
    back = json.loads(blob)
    assert back["workload"] == "water-spa"
    assert back["policy"] == "scoma"
    assert back["summary"]["execution_cycles"] > 0
    assert len(back["nodes"]) == 2
    assert len(back["cpus"]) == 4


def test_suite_to_dict(suite):
    flat = suite_to_dict(suite)
    assert flat["policies"]["scoma"]["normalized_time"] == 1.0
    assert flat["policies"]["lanuma"]["remote_misses"] > 0
    assert flat["page_cache_caps"]


def test_save_and_load_campaign(suite, tmp_path):
    path = tmp_path / "campaign.json"
    save_campaign({"water-spa": suite}, str(path))
    back = load_campaign(str(path))
    assert back["water-spa"]["policies"]["lanuma"]["execution_cycles"] > 0
    assert back == campaign_to_dict({"water-spa": suite})


def test_figure7_csv(suite):
    csv = figure7_csv({"water-spa": suite})
    lines = csv.splitlines()
    assert lines[0] == "application,lanuma,scoma"
    assert lines[1].startswith("water-spa,")


def test_runs_csv():
    result = Session().run(ExperimentSpec("water-spa", "scoma",
                                          preset="tiny",
                                          config=repro.tiny_config()))
    csv = runs_csv([result])
    assert csv.splitlines()[0].startswith("workload,policy,")
    assert "water-spa,scoma," in csv


def test_runs_csv_empty():
    assert runs_csv([]) == ""
