"""Machine-level tests: event loop, synchronization, reference path."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_UNLOCK, OP_WRITE)
from repro.workloads.base import Workload

from tests.conftest import Harness, protocol_config


class ScriptedWorkload(Workload):
    """A workload built from explicit per-CPU op scripts."""

    name = "scripted"
    cycles_per_ref = 0

    def __init__(self, scripts, shared_pages=4, private_pages=2):
        super().__init__()
        self.scripts = scripts
        self.shared_pages = shared_pages
        self.private_pages = private_pages
        self.problem = "scripted"

    def setup(self, layout, num_cpus):
        self.region = layout.attach_shared(
            key=77, size_bytes=self.shared_pages * layout.page_bytes)
        self.private = layout.add_private(
            self.private_pages * layout.page_bytes)

    def generator(self, cpu_id, num_cpus):
        return iter(self.scripts.get(cpu_id, []))


def run_scripted(scripts, **cfg_overrides):
    machine = Machine(protocol_config(**cfg_overrides), policy="scoma")
    wl = ScriptedWorkload(scripts)
    result = machine.run(wl)
    return machine, wl, result


def test_all_cpus_run_to_completion():
    scripts = {cpu: [(OP_COMPUTE, 100 * (cpu + 1))] for cpu in range(8)}
    machine, _, result = run_scripted(scripts)
    assert result.stats.execution_cycles == 800
    assert all(c.done for c in machine.cpus)


def test_barrier_synchronizes_all_cpus():
    scripts = {cpu: [(OP_COMPUTE, 100 * (cpu + 1)), (OP_BARRIER, 0),
                     (OP_COMPUTE, 10)]
               for cpu in range(8)}
    machine, _, result = run_scripted(scripts)
    cost = machine.config.latency.barrier_cost
    assert result.stats.execution_cycles == 800 + cost + 10
    # Every CPU left the barrier at the same time.
    finishes = {c.stats.finish_time for c in machine.cpus}
    assert finishes == {800 + cost + 10}


def test_lock_mutual_exclusion_serializes():
    scripts = {cpu: [(OP_LOCK, 5), (OP_COMPUTE, 100), (OP_UNLOCK, 5)]
               for cpu in range(8)}
    machine, _, result = run_scripted(scripts)
    # Eight critical sections of 100 cycles serialize.
    assert result.stats.execution_cycles >= 800
    assert machine.locks.contended_acquires == 7


def test_deadlock_detection():
    scripts = {cpu: [(OP_BARRIER, 0)] for cpu in range(7)}  # one missing
    scripts[7] = [(OP_COMPUTE, 1)]
    with pytest.raises(RuntimeError, match="deadlock"):
        run_scripted(scripts)


def test_unknown_op_rejected():
    scripts = {0: [(99, 1)]}
    scripts.update({c: [] for c in range(1, 8)})
    with pytest.raises(ValueError, match="unknown op"):
        run_scripted(scripts)


def test_reference_counters():
    h = Harness()
    wl = ScriptedWorkload({0: []})
    # Use the machine's accounting through a real run instead.
    machine = Machine(protocol_config(), policy="scoma")
    vbase = None

    class W(ScriptedWorkload):
        def setup(self, layout, num_cpus):
            super().setup(layout, num_cpus)
            self.scripts = {0: [(OP_READ, self.region.vbase),
                                (OP_WRITE, self.region.vbase),
                                (OP_READ, self.region.vbase + 32)]}

    result = machine.run(W({}))
    cpu0 = result.stats.cpus[0]
    assert cpu0.references == 3
    assert cpu0.reads == 2
    assert cpu0.writes == 1


def test_l1_and_l2_hit_costs():
    h = Harness()
    vaddr = h.private.vbase
    h.read(0, vaddr)
    assert h.read(0, vaddr) == h.machine.config.latency.l1_hit
    # Evict from L1 by touching two conflicting lines (L1 2-way).
    page = h.machine.config.page_bytes
    h.read(0, vaddr + page)
    h.read(0, vaddr + 2 * page)
    h.read(0, vaddr + 3 * page)
    h.read(0, vaddr + 4 * page)
    latency = h.read(0, vaddr)
    assert latency in (h.machine.config.latency.l2_hit,
                       h.machine.config.latency.expected_local_memory)


def test_tlb_miss_cost_charged():
    h = Harness()
    cfg = h.machine.config
    base = h.private.vbase
    lpp = cfg.lines_per_page
    for p in range(cfg.tlb_entries + 2):
        h.read(0, base + (p % 8) * cfg.page_bytes
               + ((p // 8) % lpp) * cfg.line_bytes)
    # All 8 private pages cycled through a 32-entry TLB without misses
    # (only 8 distinct pages): no TLB miss should have occurred.
    assert h.machine.cpus[0].stats.tlb_misses == 0


def test_execution_cycles_is_max_finish_time():
    scripts = {cpu: [(OP_COMPUTE, 10)] for cpu in range(8)}
    scripts[3] = [(OP_COMPUTE, 5000)]
    _, _, result = run_scripted(scripts)
    assert result.stats.execution_cycles == 5000


def test_utilization_accounting_counts_touched_lines():
    machine = Machine(protocol_config(), policy="scoma")

    class W(ScriptedWorkload):
        def setup(self, layout, num_cpus):
            super().setup(layout, num_cpus)
            # Touch 2 lines of one private page: utilization 2/8.
            self.scripts = {0: [(OP_READ, self.private.vbase),
                                (OP_READ, self.private.vbase + 32)]}

    result = machine.run(W({}))
    stats = result.stats
    assert stats.frames_allocated_total == 1
    assert stats.average_utilization == pytest.approx(2 / 8)
