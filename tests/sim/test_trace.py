"""Tests for the event tracer and the resource report."""

import pytest

import repro
from repro.sim.machine import Machine
from repro.sim.trace import (AccessEvent, FaultEvent, MigrateEvent,
                             PageOutEvent, TraceRecorder)
from repro.workloads import make_workload


def run_traced(policy="scoma", kinds=None, cap=None, migration=False):
    cfg = repro.tiny_config(page_cache_frames=cap,
                            enable_migration=migration,
                            migration_threshold=16)
    machine = Machine(cfg, policy=policy)
    with TraceRecorder(machine, kinds=kinds) as trace:
        machine.run(make_workload("water-spa", "tiny"))
    return machine, trace


def test_records_accesses_and_faults():
    machine, trace = run_traced(kinds={"access", "fault"})
    summary = trace.summary()
    assert summary["AccessEvent"] == machine.stats.references
    assert summary["FaultEvent"] == machine.stats.page_faults
    assert summary["dropped"] == 0


def test_access_events_have_positive_latency():
    _, trace = run_traced(kinds={"access"})
    assert all(e.latency >= 1 for e in trace.accesses())


def test_fault_events_classify_home():
    _, trace = run_traced(kinds={"fault"})
    faults = [e for e in trace.events if isinstance(e, FaultEvent)]
    assert any(e.remote_home for e in faults)
    assert any(not e.remote_home for e in faults)
    assert any(e.mode == "LOCAL" for e in faults)
    assert any(e.mode == "SCOMA" for e in faults)


def test_pageouts_traced_under_capped_policy():
    machine, trace = run_traced(policy="dyn-lru", cap=3,
                                kinds={"pageout"})
    pageouts = [e for e in trace.events if isinstance(e, PageOutEvent)]
    assert len(pageouts) == sum(
        n.client_page_outs + n.mode_promotions for n in machine.stats.nodes)
    assert any(e.demoted for e in pageouts)


def test_migrations_traced():
    machine, trace = run_traced(kinds={"migrate"}, migration=True)
    migrations = [e for e in trace.events if isinstance(e, MigrateEvent)]
    assert len(migrations) == machine.migration.migrations


def test_detach_restores_hot_path():
    machine, trace = run_traced(kinds={"access"})
    # After detach, the wrapped method is gone from the instance dict.
    assert "_access" not in machine.__dict__


def test_max_events_drops_excess():
    cfg = repro.tiny_config()
    machine = Machine(cfg, policy="scoma")
    with TraceRecorder(machine, kinds={"access"}, max_events=10) as trace:
        machine.run(make_workload("water-spa", "tiny"))
    assert len(trace.events) == 10
    assert trace.dropped > 0


def test_ring_buffer_keeps_newest_events():
    # The capped recorder's window must be the *tail* of the full
    # trace, and dropped must account exactly for the rest.
    full = run_traced(kinds={"access"})[1]
    cfg = repro.tiny_config()
    machine = Machine(cfg, policy="scoma")
    with TraceRecorder(machine, kinds={"access"}, max_events=10) as trace:
        machine.run(make_workload("water-spa", "tiny"))
    assert trace.events == full.events[-10:]
    assert trace.dropped == len(full.events) - 10


def test_sink_forwarding_produces_schema_valid_events():
    from repro.obs.events import EventSink, validate_event

    cfg = repro.tiny_config(page_cache_frames=3)
    machine = Machine(cfg, policy="dyn-lru")
    sink = EventSink()
    with TraceRecorder(machine, sink=sink) as trace:
        machine.run(make_workload("water-spa", "tiny"))
    assert sink.emitted == len(trace.events) + trace.dropped
    kinds = set()
    for event in sink.events:
        validate_event(event)
        kinds.add(event["kind"])
    assert {"access", "fault", "pageout"} <= kinds
    seqs = [e["seq"] for e in sink.events]
    assert seqs == sorted(seqs)


def test_latency_histogram_covers_all_accesses():
    _, trace = run_traced(kinds={"access"})
    hist = trace.latency_histogram()
    assert sum(hist.values()) == len(trace.accesses())
    assert hist["<=2"] > 0     # L1 hits exist


def test_csv_export():
    _, trace = run_traced(kinds={"fault"})
    csv = trace.to_csv()
    assert csv.startswith("# FaultEvent")
    assert "time,node,vpage,gpage,mode,remote_home" in csv


def test_unknown_kind_rejected():
    machine = Machine(repro.tiny_config())
    with pytest.raises(ValueError):
        TraceRecorder(machine, kinds={"access", "vibes"})


def test_resource_report():
    cfg = repro.tiny_config()
    machine = Machine(cfg, policy="scoma")
    machine.run(make_workload("water-spa", "tiny"))
    report = machine.resource_report()
    assert all(0.0 <= v <= 1.0 for v in report.values())
    assert "node0.ctrl" in report
    hottest = machine.hottest_resources(3)
    assert len(hottest) == 3
    assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]
