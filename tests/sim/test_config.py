"""Unit tests for machine configuration."""

import pytest

from repro.sim.config import (CacheConfig, MachineConfig, default_config,
                              paper_scale_config, tiny_config)


def test_default_geometry():
    cfg = default_config()
    assert cfg.num_cpus == 32
    assert cfg.lines_per_page == 32
    assert cfg.l1.num_sets == 16
    assert cfg.l2.num_sets == 64


def test_paper_scale_geometry():
    cfg = paper_scale_config()
    assert cfg.page_bytes == 4096
    assert cfg.l1.size_bytes == 8 * 1024
    assert cfg.l2.size_bytes == 32 * 1024


def test_tiny_config_overrides():
    cfg = tiny_config(num_nodes=3)
    assert cfg.num_nodes == 3
    assert cfg.cpus_per_node == 2


def test_line_size_mismatch_rejected():
    with pytest.raises(ValueError):
        MachineConfig(l1=CacheConfig(1024, 64, 2))


def test_l2_smaller_than_l1_rejected():
    with pytest.raises(ValueError):
        MachineConfig(l1=CacheConfig(16384, 32, 2))


def test_page_not_multiple_of_line_rejected():
    with pytest.raises(ValueError):
        MachineConfig(page_bytes=1000)


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        MachineConfig(num_nodes=0)


def test_with_policy_limits_copies():
    cfg = default_config()
    capped = cfg.with_policy_limits(100)
    assert capped.page_cache_frames == 100
    assert cfg.page_cache_frames is None


def test_to_dict_round_trips_defaults():
    cfg = default_config()
    assert MachineConfig.from_dict(cfg.to_dict()) == cfg


def test_to_dict_round_trips_nested_overrides():
    from dataclasses import replace

    from repro.sim.latency import LatencyModel
    cfg = replace(tiny_config(page_cache_frames=12,
                              enable_migration=True,
                              directory_caches_client_frames=True),
                  latency=LatencyModel(pit_access=10, pit_hash=40))
    back = MachineConfig.from_dict(cfg.to_dict())
    assert back == cfg
    assert back.l1 == cfg.l1 and back.l2 == cfg.l2
    assert back.latency.pit_access == 10


def test_to_dict_survives_json():
    import json
    cfg = tiny_config()
    rehydrated = json.loads(json.dumps(cfg.to_dict()))
    assert MachineConfig.from_dict(rehydrated) == cfg


def test_config_hash_stable_and_field_sensitive():
    assert tiny_config().config_hash() == tiny_config().config_hash()
    assert (tiny_config().config_hash()
            != tiny_config(tlb_entries=16).config_hash())
    # Nested latency fields count too.
    from dataclasses import replace

    from repro.sim.latency import LatencyModel
    dram = replace(tiny_config(), latency=LatencyModel(pit_access=10))
    assert dram.config_hash() != tiny_config().config_hash()
