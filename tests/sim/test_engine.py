"""Unit tests for the discrete-event primitives."""

import pytest

from repro.sim.engine import Barrier, LockTable, Resource


class TestResource:
    def test_idle_acquire(self):
        r = Resource("r")
        assert r.acquire(100, 10) == 110

    def test_fcfs_serialization(self):
        r = Resource("r")
        r.acquire(100, 10)
        assert r.acquire(100, 10) == 120
        assert r.acquire(50, 5) == 125

    def test_peek_wait(self):
        r = Resource("r")
        r.acquire(0, 30)
        assert r.peek_wait(10) == 20
        assert r.peek_wait(100) == 0

    def test_utilization(self):
        r = Resource("r")
        r.acquire(0, 25)
        assert r.utilization(100) == 0.25
        assert r.utilization(0) == 0.0

    def test_utilization_clamps_at_one(self):
        r = Resource("r")
        r.acquire(0, 50)
        assert r.utilization(10) == 1.0

    def test_utilization_negative_window_raises(self):
        r = Resource("r")
        r.acquire(0, 25)
        with pytest.raises(ValueError):
            r.utilization(-1)

    def test_busy_accounting(self):
        r = Resource("r")
        r.acquire(0, 5)
        r.acquire(0, 5)
        assert r.busy_cycles == 10
        assert r.acquisitions == 2


class TestBarrier:
    def test_releases_at_max_arrival_plus_cost(self):
        b = Barrier(parties=3, cost=7)
        assert b.arrive(0, 100) is None
        assert b.arrive(1, 250) is None
        released = b.arrive(2, 180)
        assert released is not None
        assert sorted(released) == [(0, 257), (1, 257), (2, 257)]

    def test_reusable_after_release(self):
        b = Barrier(parties=2)
        b.arrive(0, 10)
        b.arrive(1, 20)
        assert b.arrive(0, 30) is None
        released = b.arrive(1, 35)
        assert {cpu for cpu, _ in released} == {0, 1}
        assert b.episodes == 2


class TestLockTable:
    def test_uncontended_acquire(self):
        locks = LockTable(cost=5)
        assert locks.acquire(1, 0, 100) == 105
        assert locks.holder(1) == 0

    def test_contended_blocks_and_hands_off(self):
        locks = LockTable(cost=5)
        locks.acquire(1, 0, 100)
        assert locks.acquire(1, 1, 110) is None
        assert locks.contended_acquires == 1
        woken = locks.release(1, 0, 200)
        assert woken == (1, 205)
        assert locks.holder(1) == 1

    def test_release_without_waiters_frees(self):
        locks = LockTable()
        locks.acquire(1, 0, 0)
        assert locks.release(1, 0, 50) is None
        assert locks.holder(1) is None

    def test_fcfs_handoff_order(self):
        locks = LockTable()
        locks.acquire(7, 0, 0)
        locks.acquire(7, 1, 1)
        locks.acquire(7, 2, 2)
        assert locks.release(7, 0, 10)[0] == 1
        assert locks.release(7, 1, 20)[0] == 2

    def test_wrong_holder_release_raises(self):
        locks = LockTable()
        locks.acquire(1, 0, 0)
        with pytest.raises(RuntimeError):
            locks.release(1, 3, 10)

    def test_independent_locks(self):
        locks = LockTable()
        locks.acquire(1, 0, 0)
        assert locks.acquire(2, 1, 0) is not None
