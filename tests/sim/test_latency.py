"""The latency model's composites must track Table 1 of the paper."""

import pytest

from repro.sim.latency import PAPER_TABLE1, LatencyModel, paper_latency_model


@pytest.fixture
def lat():
    return paper_latency_model()


def within(actual, paper, tolerance=0.02):
    return abs(actual - paper) <= max(2, paper * tolerance)


def test_l2_hit_matches_paper(lat):
    assert lat.expected_l2_hit == PAPER_TABLE1["l2_hit"]


def test_local_memory_matches_paper(lat):
    assert lat.expected_local_memory == PAPER_TABLE1["local_memory"]


def test_remote_clean_within_2pct(lat):
    assert within(lat.expected_remote_clean, PAPER_TABLE1["remote_clean"])


def test_2party_modified_within_2pct(lat):
    assert within(lat.expected_2party_modified,
                  PAPER_TABLE1["2party_modified"])


def test_3party_modified_within_2pct(lat):
    assert within(lat.expected_3party_modified,
                  PAPER_TABLE1["3party_modified"])


def test_2party_write_shared_within_2pct(lat):
    assert within(lat.expected_2party_write_shared,
                  PAPER_TABLE1["2party_write_shared"])


def test_write_shared_base_within_2pct(lat):
    assert within(lat.expected_write_shared(0),
                  PAPER_TABLE1["write_shared_base"])


def test_write_shared_scales_at_80_per_sharer(lat):
    base = lat.expected_write_shared(0)
    assert lat.expected_write_shared(3) - base == 3 * 80


def test_fault_costs_match_paper(lat):
    assert lat.expected_fault_local == PAPER_TABLE1["fault_local"]
    assert lat.expected_fault_remote == PAPER_TABLE1["fault_remote"]


def test_tlb_miss_matches_paper(lat):
    assert lat.tlb_miss == PAPER_TABLE1["tlb_miss"]


def test_dram_pit_raises_remote_latency():
    sram = LatencyModel(pit_access=2)
    dram = LatencyModel(pit_access=10)
    # Two PIT accesses (client forward + home reverse) on the path.
    assert (dram.expected_remote_clean - sram.expected_remote_clean) == 16


def test_model_is_mutable_per_experiment():
    lat = LatencyModel(net_latency=240)
    assert lat.expected_remote_clean == (paper_latency_model()
                                         .expected_remote_clean + 240)
