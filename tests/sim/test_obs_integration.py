"""Observability integration: zero overhead when disabled, identical
results either way (the satellite acceptance checks for ``repro.obs``).
"""

import json
import time

from repro import obs
from repro.harness.session import ExperimentSpec, execute_spec

TINY = ExperimentSpec(workload="water-spa", policy="dyn-lru", preset="tiny")


def stats_blob(result):
    return json.dumps(result.stats.to_dict(), sort_keys=True)


def test_stats_byte_identical_with_and_without_registry():
    baseline = stats_blob(execute_spec(TINY))
    with obs.collecting():
        instrumented = stats_blob(execute_spec(TINY))
    assert instrumented == baseline
    # And disabled again afterwards (collecting() restored the None).
    assert stats_blob(execute_spec(TINY)) == baseline


def test_machine_resolves_no_handles_without_registry():
    from repro.sim.machine import Machine
    import repro
    machine = Machine(repro.tiny_config(), policy="scoma")
    assert machine._obs is None
    assert machine._obs_access is None
    kernel = machine.nodes[0].kernel
    assert kernel._obs_fault is None
    assert kernel._obs_pageout is None
    controller = machine.nodes[0].controller
    assert controller._obs_fetch is None


def test_disabled_path_within_coarse_overhead_bound():
    """The no-registry run must cost no more than 1.05x the collecting
    run: collection does a strict superset of the disabled path's work,
    so this coarsely bounds the no-op overhead without needing a
    pre-instrumentation binary to compare against."""
    def timed(n, enabled):
        samples = []
        for _ in range(n):
            start = time.perf_counter()
            if enabled:
                with obs.collecting():
                    execute_spec(TINY)
            else:
                execute_spec(TINY)
            samples.append(time.perf_counter() - start)
        return sorted(samples)[n // 2]

    timed(1, False)                      # warm caches/imports
    disabled = timed(3, False)
    enabled = timed(3, True)
    assert disabled <= enabled * 1.05, (
        "disabled run (%.4fs) slower than instrumented run (%.4fs)"
        % (disabled, enabled))


def test_collected_metrics_cover_all_three_layers():
    with obs.collecting() as registry:
        execute_spec(TINY)
    snap = registry.to_dict()
    families = set()
    for section in ("counters", "gauges", "histograms", "series"):
        for key in snap[section]:
            families.add(key.split("{")[0])
    # Simulator, coherence core and kernel must all report.
    assert "sim.access_latency_cycles" in families
    assert "sim.resource_utilization" in families
    assert "core.protocol_messages" in families
    assert "core.pit_fast_ratio" in families
    assert "kernel.fault_service_cycles" in families
    assert "kernel.frame_pool.real_in_use" in families


def test_cache_full_actions_counted_for_capped_policy():
    import repro
    spec = ExperimentSpec(workload="water-spa", policy="dyn-lru",
                          preset="tiny",
                          config=repro.tiny_config(page_cache_frames=3))
    with obs.collecting() as registry:
        result = execute_spec(spec)
    snap = registry.to_dict()
    demotes = snap["counters"].get(
        "core.cache_full_actions{action=demote,policy=dyn-lru}", 0)
    assert demotes == sum(n.mode_demotions for n in result.stats.nodes)
    pageouts = snap["counters"].get("kernel.page_outs{demote=true}", 0)
    assert pageouts == demotes
