"""Tests pinning down the reference-path fast paths.

The hot-path work (TLB memo, flat cache probe, dense PIT, block run
ops, inlined resource arithmetic) must be *invisible* in simulated
results: these tests assert determinism across back-to-back runs and
exact equivalence between run-op workloads and their per-reference
expansion.
"""

import random

import pytest

from repro.core.modes import PageMode
from repro.core.pit import PageInformationTable
from repro.kernel.frames import IMAGINARY_BASE
from repro.sim.config import tiny_config
from repro.sim.engine import LockTable
from repro.sim.machine import Machine
from repro.sim.ops import (OP_READ, OP_READ_RUN, OP_WRITE, OP_WRITE_RUN,
                           expand_op)
from repro.workloads import make_workload
from repro.workloads.base import Workload, coalesce
from repro.workloads.synthetic import SyntheticWorkload


def run_stats(workload_factory, policy):
    machine = Machine(tiny_config(), policy=policy)
    return machine.run(workload_factory()).stats.to_dict()


class TestDeterminism:
    """Two identical runs must produce identical stats dicts."""

    @pytest.mark.parametrize("app,policy", [
        ("fft", "scoma"),
        ("lu", "lanuma"),
        ("fft", "dyn-lru"),
    ])
    def test_back_to_back_runs_identical(self, app, policy):
        first = run_stats(lambda: make_workload(app, preset="tiny"), policy)
        second = run_stats(lambda: make_workload(app, preset="tiny"), policy)
        assert first == second

    def test_synthetic_back_to_back_identical(self):
        make = lambda: SyntheticWorkload("random", shared_kb=32,
                                         refs_per_cpu_per_iter=400,
                                         iterations=2)
        assert run_stats(make, "lanuma") == run_stats(make, "lanuma")


class ExpandedWorkload(Workload):
    """Wraps a workload, expanding every run op to single references.

    Running the wrapped and expanded versions through the same machine
    configuration must give byte-identical stats — the run ops are pure
    op-stream compression.
    """

    name = "expanded"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.problem = getattr(inner, "problem", "")
        if hasattr(inner, "cycles_per_ref"):
            # The machine reads the per-reference gap off the workload.
            self.cycles_per_ref = inner.cycles_per_ref

    def setup(self, layout, num_cpus):
        self.inner.setup(layout, num_cpus)

    def generator(self, cpu_id, num_cpus):
        for op in self.inner.generator(cpu_id, num_cpus):
            if op[0] == OP_READ_RUN or op[0] == OP_WRITE_RUN:
                for single in expand_op(op):
                    yield single
            else:
                yield op


class TestRunOpEquivalence:
    @pytest.mark.parametrize("app", ["fft", "lu"])
    def test_app_runs_equal_expansion(self, app):
        fused = run_stats(lambda: make_workload(app, preset="tiny"), "scoma")
        expanded = run_stats(
            lambda: ExpandedWorkload(make_workload(app, preset="tiny")),
            "scoma")
        assert fused == expanded

    def test_synthetic_runs_equal_expansion(self):
        make = lambda: SyntheticWorkload("block", shared_kb=32,
                                         refs_per_cpu_per_iter=500,
                                         iterations=2)
        fused = run_stats(make, "lanuma")
        expanded = run_stats(lambda: ExpandedWorkload(make()), "lanuma")
        assert fused == expanded

    def test_workloads_actually_emit_runs(self):
        wl = make_workload("fft", preset="tiny")

        class _Layout:
            page_bytes = 4096

            def __init__(self):
                self.base = 0

            def attach_shared(self, key, size_bytes):
                return self.add_private(size_bytes)

            def add_private(self, size_bytes):
                region = type("R", (), {"vbase": self.base})()
                self.base += ((size_bytes + 4095) // 4096) * 4096
                return region

        wl.setup(_Layout(), 2)
        kinds = {op[0] for op in wl.generator(0, 2)}
        assert OP_READ_RUN in kinds and OP_WRITE_RUN in kinds


class TestCoalesce:
    def test_round_trip_is_identity(self):
        rng = random.Random(7)
        refs = []
        addr = 1000
        for _ in range(300):
            kind = OP_WRITE if rng.random() < 0.3 else OP_READ
            addr += rng.choice((0, 8, 8, 8, 64, -8))
            refs.append((kind, addr))
        fused = list(coalesce(iter(refs)))
        assert len(fused) < len(refs)  # something actually coalesced
        expanded = [single for op in fused for single in expand_op(op)]
        assert expanded == refs

    def test_lone_references_stay_single_ops(self):
        refs = [(OP_READ, 0), (OP_WRITE, 8), (OP_READ, 16)]
        assert list(coalesce(iter(refs))) == refs

    def test_constant_stride_becomes_one_run(self):
        refs = [(OP_READ, 100 + 32 * i) for i in range(8)]
        assert list(coalesce(iter(refs))) == [(OP_READ_RUN, 100, 32, 8)]


class TestDensePit:
    def test_dense_table_tracks_install_and_remove(self):
        pit = PageInformationTable(node_id=0, lines_per_page=8)
        entry = pit.install(frame=5, gpage=40, static_home=1,
                            dynamic_home=1, home_frame=None,
                            mode=PageMode.LANUMA)
        assert pit.entry_or_none(5) is entry
        assert pit.entry_or_none(6) is None
        pit.remove(5)
        assert pit.entry_or_none(5) is None

    def test_imaginary_frames_use_their_own_table(self):
        pit = PageInformationTable(node_id=0, lines_per_page=8)
        frame = IMAGINARY_BASE + 3
        entry = pit.install(frame=frame, gpage=41, static_home=1,
                            dynamic_home=1, home_frame=None,
                            mode=PageMode.LANUMA)
        assert pit.entry_or_none(frame) is entry
        assert pit.entry_or_none(3) is None  # real frame 3 unrelated
        pit.remove(frame)
        assert pit.entry_or_none(frame) is None


class TestLockTableFifo:
    def test_contended_handoff_is_fifo(self):
        table = LockTable(cost=2)
        assert table.acquire(9, cpu_id=0, now=10) == 12
        for waiter in (1, 2, 3):
            assert table.acquire(9, cpu_id=waiter, now=20) is None
        order = []
        holder = 0
        for _ in range(3):
            nxt, _when = table.release(9, holder, now=50)
            order.append(nxt)
            holder = nxt
        assert order == [1, 2, 3]
        assert table.release(9, holder, now=60) is None
