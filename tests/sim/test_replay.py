"""The trace-replay engine: recording, caching, and byte-identity.

The vector engine's contract is *byte-identical* ``MachineStats``
against the interpreter — these tests cover the compiled-trace
recording pass, the content-addressed cache (both tiers), and the
equivalence on scripted streams that exercise every dispatcher edge:
locks, barriers, schedule perturbation, the over-claim/drain automaton
and the guarded (faults/deadline) delegation path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_READ_RUN, OP_UNLOCK, OP_WRITE, OP_WRITE_RUN)
from repro.sim.replay import (END_BARRIER, END_LOCK, END_STREAM,
                              END_UNLOCK, TraceCache, VectorMachine,
                              build_machine, compile_stream,
                              trace_signature)
from repro.workloads.base import Workload

from tests.conftest import protocol_config


#: Ops whose second element is a shared-region byte offset that
#: ``setup`` rebases onto the attached region's virtual base.
_ADDR_OPS = (OP_READ, OP_WRITE, OP_READ_RUN, OP_WRITE_RUN)


class ScriptedWorkload(Workload):
    """A workload built from explicit per-CPU op scripts.

    Reference addresses in the scripts are *offsets into the shared
    region* — ``setup`` rebases them once the layout assigns the
    region its virtual base.
    """

    name = "scripted-replay"

    def __init__(self, scripts, shared_pages=8, private_pages=2):
        super().__init__()
        self.scripts = scripts
        self.shared_pages = shared_pages
        self.private_pages = private_pages
        self.problem = "scripted"

    def setup(self, layout, num_cpus):
        self.region = layout.attach_shared(
            key=77, size_bytes=self.shared_pages * layout.page_bytes)
        self.private = layout.add_private(
            self.private_pages * layout.page_bytes)
        vbase = self.region.vbase
        self.scripts = {
            cpu: [(op[0], op[1] + vbase) + op[2:]
                  if op[0] in _ADDR_OPS else op
                  for op in ops]
            for cpu, ops in self.scripts.items()}

    def generator(self, cpu_id, num_cpus):
        return iter(self.scripts.get(cpu_id, []))


def both_engines(scripts, **cfg_overrides):
    """Run a scripted workload under both engines; return both stats."""
    cfg = protocol_config(**cfg_overrides)
    interp = Machine(cfg, policy="scoma").run(ScriptedWorkload(scripts))
    vector = VectorMachine(replace(cfg, engine="vector"),
                           policy="scoma").run(ScriptedWorkload(scripts))
    return interp.stats.to_dict(), vector.stats.to_dict()


def assert_identical(scripts, **cfg_overrides):
    a, b = both_engines(scripts, **cfg_overrides)
    assert a == b, {k: (a[k], b[k]) for k in a if a[k] != b[k]}


# ----------------------------------------------------------------------
# compile_stream
# ----------------------------------------------------------------------

def test_compile_stream_lowering():
    addr, w, gap, segs, mg, mt = compile_stream(iter([
        (OP_COMPUTE, 10),
        (OP_COMPUTE, 5),            # totals with the previous gap
        (OP_READ, 100),
        (OP_WRITE, 132),
        (OP_READ_RUN, 200, 32, 3),  # unrolls to 200, 232, 264
        (OP_BARRIER, 7),
        (OP_COMPUTE, 4),            # tail gap of the final segment
    ]))
    assert addr.tolist() == [100, 132, 200, 232, 264]
    assert w.tolist() == [0, 1, 0, 0, 0]
    assert gap.tolist() == [15, 0, 0, 0, 0]
    assert segs.tolist() == [[0, 5, 0, END_BARRIER, 7],
                             [5, 5, 4, END_STREAM, 0]]
    # The two-op gap keeps its chunk structure (the interpreter can
    # suspend between the compute ops); the single-op tail does not.
    assert mg.tolist() == [[0, 10], [0, 5]]
    assert mt.tolist() == []


def test_compile_stream_multi_chunk_tail_gap():
    _a, _w, _g, segs, mg, mt = compile_stream(iter([
        (OP_READ, 0),
        (OP_COMPUTE, 2),
        (OP_COMPUTE, 0),            # zero chunks never move the clock
        (OP_COMPUTE, 3),
        (OP_BARRIER, 0),
    ]))
    assert segs.tolist() == [[0, 1, 5, END_BARRIER, 0],
                             [1, 1, 0, END_STREAM, 0]]
    assert mg.tolist() == []
    assert mt.tolist() == [[0, 2], [0, 3]]


def test_compile_stream_lock_segments_and_write_runs():
    addr, w, gap, segs, _mg, _mt = compile_stream(iter([
        (OP_LOCK, 3),
        (OP_WRITE_RUN, 0, 32, 2),
        (OP_UNLOCK, 3),
        (OP_READ, 64),
    ]))
    assert addr.tolist() == [0, 32, 64]
    assert w.tolist() == [1, 1, 0]
    assert segs.tolist() == [[0, 0, 0, END_LOCK, 3],
                             [0, 2, 0, END_UNLOCK, 3],
                             [2, 3, 0, END_STREAM, 0]]


def test_compile_stream_rejects_unknown_ops():
    with pytest.raises(ValueError, match="unknown op"):
        compile_stream(iter([(99, 0)]))


def test_compile_stream_empty_run_is_dropped():
    addr, _w, _gap, segs, _mg, _mt = compile_stream(
        iter([(OP_READ_RUN, 0, 32, 0)]))
    assert addr.tolist() == []
    assert segs.tolist() == [[0, 0, 0, END_STREAM, 0]]


# ----------------------------------------------------------------------
# Recording determinism and the trace cache
# ----------------------------------------------------------------------

def _setup_workload(num_cpus=4, seed=1):
    from repro.sim.machine import Machine as M
    from repro.workloads.synthetic import SyntheticWorkload
    cfg = protocol_config()
    machine = M(cfg, policy="scoma")
    wl = SyntheticWorkload("block", shared_kb=4, iterations=2,
                           refs_per_cpu_per_iter=200, seed=seed)
    wl.setup(machine.layout, num_cpus)
    return wl


def test_recording_is_deterministic():
    wl = _setup_workload()
    first = [compile_stream(wl.generator(c, 4)) for c in range(4)]
    second = [compile_stream(wl.generator(c, 4)) for c in range(4)]
    for a, b in zip(first, second):
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


def test_signature_tracks_workload_content():
    wl = _setup_workload(seed=1)
    assert trace_signature(wl, 4) == trace_signature(wl, 4)
    assert trace_signature(wl, 4) != trace_signature(wl, 8)
    other = _setup_workload(seed=2)
    assert trace_signature(wl, 4) != trace_signature(other, 4)


def test_trace_cache_memory_tier():
    cache = TraceCache()
    wl = _setup_workload()
    first = cache.get_or_compile(wl, 4)
    again = cache.get_or_compile(wl, 4)
    assert again is first
    assert (cache.hits, cache.misses) == (1, 1)


def test_trace_cache_disk_round_trip(tmp_path):
    wl = _setup_workload()
    writer = TraceCache(root=str(tmp_path))
    stored = writer.get_or_compile(wl, 4)
    # A fresh cache (cold memory tier) must load the same arrays back.
    reader = TraceCache(root=str(tmp_path))
    loaded = reader.get_or_compile(wl, 4)
    assert reader.misses == 0 and reader.hits == 1
    assert loaded.signature == stored.signature
    for a, b in zip(stored.per_cpu, loaded.per_cpu):
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


def test_trace_cache_survives_corrupt_disk_entry(tmp_path):
    wl = _setup_workload()
    cache = TraceCache(root=str(tmp_path))
    sig = cache.get_or_compile(wl, 4).signature
    path = cache._path(sig)
    with open(path, "wb") as fh:
        fh.write(b"not an npz")
    fresh = TraceCache(root=str(tmp_path))
    trace = fresh.get_or_compile(wl, 4)  # recompiles, no crash
    assert trace.signature == sig
    assert fresh.misses == 1


# ----------------------------------------------------------------------
# build_machine
# ----------------------------------------------------------------------

def test_build_machine_selects_engine():
    assert type(build_machine(MachineConfig())) is Machine
    cfg = replace(MachineConfig(), engine="vector")
    assert isinstance(build_machine(cfg), VectorMachine)


# ----------------------------------------------------------------------
# Vector/interp byte-identity on targeted scripts
# ----------------------------------------------------------------------

def _sweep(base, lines, writes_every=4):
    ops = []
    for i in range(lines):
        kind = OP_WRITE if i % writes_every == 0 else OP_READ
        ops.append((kind, base + 32 * i))
    return ops


def test_identical_on_hit_loop_with_barriers():
    # Each CPU sweeps its own page repeatedly: after warm-up the loop
    # is pure L1 hits — the vectorized claim's bread and butter.
    scripts = {}
    for cpu in range(8):
        ops = []
        for _ in range(6):
            ops.extend(_sweep(256 * cpu, 8))
            ops.append((OP_COMPUTE, 17))
            ops.append((OP_BARRIER, 0))
        scripts[cpu] = ops
    assert_identical(scripts)


def test_identical_on_lock_contention():
    # All CPUs hammer one lock around a shared read-modify-write:
    # FCFS grant order at equal times is the tie-break the drain
    # automaton exists to preserve.
    scripts = {}
    for cpu in range(8):
        ops = []
        for round_ in range(4):
            ops.append((OP_COMPUTE, 3 * cpu))
            ops.append((OP_LOCK, 1))
            ops.append((OP_READ, 0))
            ops.append((OP_WRITE, 0))
            ops.append((OP_UNLOCK, 1))
            ops.extend(_sweep(256 * cpu, 6))
        scripts[cpu] = ops
    assert_identical(scripts)


def test_identical_on_sharing_and_invalidations():
    # Neighbour pipelines: CPU i writes what CPU i+1 reads next phase.
    scripts = {}
    for cpu in range(8):
        ops = []
        for phase in range(4):
            if phase % 2 == 0:
                ops.extend((OP_WRITE, 256 * cpu + 32 * i)
                           for i in range(8))
            else:
                up = (cpu - 1) % 8
                ops.extend((OP_READ, 256 * up + 32 * i)
                           for i in range(8))
            ops.append((OP_BARRIER, 0))
        scripts[cpu] = ops
    assert_identical(scripts)


def test_identical_under_schedule_perturbation():
    from repro.sim.engine import SchedulePerturbation
    cfg = protocol_config()
    scripts = {cpu: _sweep(256 * cpu, 8) * 5
               for cpu in range(8)}

    def sched():
        return SchedulePerturbation(cpu_offsets=(0, 11, 3, 27, 5, 0, 9, 2),
                                    net_jitter=(1, 0, 3))

    a = Machine(cfg, policy="scoma", schedule=sched()).run(
        ScriptedWorkload(scripts)).stats.to_dict()
    b = VectorMachine(replace(cfg, engine="vector"), policy="scoma",
                      schedule=sched()).run(
        ScriptedWorkload(scripts)).stats.to_dict()
    assert a == b, {k: (a[k], b[k]) for k in a if a[k] != b[k]}


def test_identical_on_lockstep_multi_chunk_gap_tie():
    # Found by hypothesis: two same-node CPUs in lockstep reach a cold
    # shared page through a gap built from TWO compute ops.  The
    # interpreter re-checks the limit after each compute op, so the
    # first CPU requeues at the partial sum (t=1), which lets it win
    # the issue-time tie and take the page fault while the other CPU
    # takes the counted TLB miss.  A trace that merged the gap requeued
    # at the full sum (t=2) and flipped the attribution.
    scripts = {cpu: [(OP_BARRIER, 0)] for cpu in range(6)}
    for cpu in (6, 7):
        scripts[cpu] = [(OP_COMPUTE, 1), (OP_COMPUTE, 1), (OP_READ, 0),
                        (OP_BARRIER, 0)]
    assert_identical(scripts)


def test_identical_on_imbalanced_streams():
    # Wildly different per-CPU lengths: exercises the single-runnable
    # endgame (empty heap, limit None) and the over-claim drain.
    scripts = {}
    for cpu in range(4):
        reps = 2 + 20 * cpu
        scripts[cpu] = _sweep(256 * cpu, 8) * reps
    assert_identical(scripts)


def test_identical_under_deadline_guarded_loop():
    # A deadline forces VectorMachine to delegate to the interpreter's
    # guarded event loop — stats must still match the plain Machine
    # under the same deadline.
    cfg = protocol_config()
    scripts = {cpu: _sweep(256 * cpu, 8) * 3
               for cpu in range(8)}
    a = Machine(cfg, policy="scoma", deadline=10**9).run(
        ScriptedWorkload(scripts)).stats.to_dict()
    b = VectorMachine(replace(cfg, engine="vector"), policy="scoma",
                      deadline=10**9).run(
        ScriptedWorkload(scripts)).stats.to_dict()
    assert a == b


def test_identical_under_fault_injection():
    # With a fault plane attached the vector engine must take the
    # guarded path and reproduce the interpreter's faulted run exactly.
    from repro.faults import FaultInjector, FaultPlan

    cfg = protocol_config()
    scripts = {cpu: _sweep(256 * cpu, 8) * 3
               for cpu in range(4)}

    def injector():
        return FaultInjector(FaultPlan().delay(0.5, cycles=40, end=50_000),
                             seed=5)

    a = Machine(cfg, policy="scoma", faults=injector(),
                deadline=10**8).run(ScriptedWorkload(scripts))
    b = VectorMachine(replace(cfg, engine="vector"), policy="scoma",
                      faults=injector(), deadline=10**8).run(
        ScriptedWorkload(scripts))
    assert a.stats.to_dict() == b.stats.to_dict()


def test_traced_vector_run_exports_same_span_schema(tmp_path):
    # Satellite 6: slow-path tracing must attach under the vector
    # engine, and its span export must carry the interpreter's schema.
    from repro.obs import tracing

    cfg = protocol_config()
    scripts = {cpu: _sweep(256 * cpu, 8) * 3
               for cpu in range(4)}

    def traced(machine_cls, cfg):
        with tracing.collecting(seed=3) as collector:
            machine_cls(cfg, policy="scoma").run(
                ScriptedWorkload(scripts))
        return collector

    interp = traced(Machine, cfg)
    vector = traced(VectorMachine, replace(cfg, engine="vector"))
    assert vector.finished == interp.finished
    assert vector.span_count == interp.span_count

    out = str(tmp_path / "spans.jsonl")
    written = vector.write_spans(out)
    assert written > 0
    assert tracing.validate_spans_jsonl(out) == written


# ----------------------------------------------------------------------
# Serving workloads (kvstore / txn2pc)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("app", ["kvstore", "txn2pc"])
def test_identical_on_serving_workloads(app):
    # The serving family compiles through the same coalesce/segment
    # pipeline as the paper kernels; interpreter and vector stats must
    # be byte-identical at the tiny preset.
    from repro.sim.config import tiny_config
    from repro.workloads import make_workload

    a = Machine(tiny_config(), policy="scoma").run(
        make_workload(app, "tiny")).stats.to_dict()
    b = VectorMachine(replace(tiny_config(), engine="vector"),
                      policy="scoma").run(
        make_workload(app, "tiny")).stats.to_dict()
    assert a == b, {k: (a[k], b[k]) for k in a if a[k] != b[k]}


@pytest.mark.parametrize("app", ["kvstore", "txn2pc"])
def test_serving_metrics_run_is_engine_identical(app):
    # With a registry installed the serving tap wraps _access, which
    # forces the vector engine onto the interpreter path — both the
    # stats and the serving metrics must match the plain interpreter.
    from repro import obs
    from repro.sim.config import tiny_config
    from repro.workloads import make_workload

    def run(machine_cls, cfg):
        with obs.collecting() as registry:
            result = machine_cls(cfg, policy="scoma").run(
                make_workload(app, "tiny"))
        snapshot = registry.to_dict()
        # host.* gauges are wall-clock (simulation-rate) measurements;
        # everything else is simulated state and must be identical.
        snapshot["gauges"] = {k: v for k, v in snapshot["gauges"].items()
                              if not k.startswith("host.")}
        return result.stats.to_dict(), snapshot

    interp_stats, interp_metrics = run(Machine, tiny_config())
    vector_stats, vector_metrics = run(
        VectorMachine, replace(tiny_config(), engine="vector"))
    assert interp_stats == vector_stats
    assert interp_metrics == vector_metrics


@pytest.mark.parametrize("app", ["kvstore", "txn2pc"])
def test_serving_compiles_and_replays_from_trace_cache(app):
    # record_trace + trace_signature must handle the serving workloads'
    # attribute mix (streams live only inside setup; plans are plain
    # ndarrays), so a cached compile replays to the same stats.
    from repro.sim.config import tiny_config
    from repro.workloads import make_workload

    cfg = replace(tiny_config(), engine="vector")
    cache = TraceCache()
    a = build_machine(cfg, policy="scoma", trace_cache=cache).run(
        make_workload(app, "tiny")).stats.to_dict()
    b = build_machine(cfg, policy="scoma", trace_cache=cache).run(
        make_workload(app, "tiny")).stats.to_dict()
    assert cache.hits >= 1
    assert a == b
