"""Unit tests for the statistics containers."""

import pytest

from repro.sim.stats import CpuStats, MachineStats, NodeStats


def test_machine_aggregates_node_counters():
    stats = MachineStats(nodes=[NodeStats(0), NodeStats(1)],
                         cpus=[CpuStats(0), CpuStats(1)])
    stats.nodes[0].remote_misses = 10
    stats.nodes[1].remote_misses = 5
    stats.nodes[0].client_page_outs = 2
    stats.nodes[1].page_faults_local_home = 3
    stats.nodes[1].page_faults_remote_home = 4
    assert stats.remote_misses == 15
    assert stats.client_page_outs == 2
    assert stats.page_faults == 7


def test_average_utilization():
    stats = MachineStats()
    assert stats.average_utilization == 0.0
    stats.frames_allocated_total = 4
    stats.touched_line_fraction_sum = 2.0
    assert stats.average_utilization == 0.5


def test_references_sum_over_cpus():
    stats = MachineStats(cpus=[CpuStats(0), CpuStats(1)])
    stats.cpus[0].references = 7
    stats.cpus[1].references = 8
    assert stats.references == 15


def test_to_dict_round_trips_through_json_and_pickle():
    import json
    import pickle

    stats = MachineStats(nodes=[NodeStats(0), NodeStats(1)],
                         cpus=[CpuStats(0)])
    stats.nodes[0].remote_misses = 11
    stats.nodes[1].scoma_client_frames_peak = 9
    stats.cpus[0].references = 1234
    stats.execution_cycles = 5678
    stats.frames_allocated_total = 3
    stats.touched_line_fraction_sum = 1.875
    stats.directory_cache_hits = 42

    via_json = MachineStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert via_json.to_dict() == stats.to_dict()
    assert via_json.remote_misses == 11
    assert via_json.touched_line_fraction_sum == 1.875

    via_pickle = pickle.loads(pickle.dumps(stats))
    assert via_pickle.to_dict() == stats.to_dict()


def test_round_trip_covers_every_counter_field():
    """Exhaustive to_dict/from_dict round trip: every field of every
    stats dataclass gets a unique value, so a field added to NodeStats /
    CpuStats / MachineStats but forgotten in the serializers fails here
    instead of silently zeroing in the result cache."""
    import dataclasses
    import json

    stats = MachineStats(nodes=[NodeStats(0), NodeStats(1)],
                         cpus=[CpuStats(0), CpuStats(1)])
    value = 1
    for holder in stats.nodes + stats.cpus + [stats]:
        for f in dataclasses.fields(holder):
            if f.name in ("nodes", "cpus"):
                continue
            current = getattr(holder, f.name)
            setattr(holder, f.name,
                    value + 0.5 if isinstance(current, float) else value)
            value += 1

    back = MachineStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert back.to_dict() == stats.to_dict()
    for ours, theirs in zip(stats.nodes + stats.cpus + [stats],
                            back.nodes + back.cpus + [back]):
        for f in dataclasses.fields(ours):
            if f.name in ("nodes", "cpus"):
                continue
            assert getattr(theirs, f.name) == getattr(ours, f.name), f.name


def test_summary_is_flat_and_rounded():
    stats = MachineStats(nodes=[NodeStats(0)], cpus=[CpuStats(0)])
    stats.execution_cycles = 1000
    stats.frames_allocated_total = 3
    stats.touched_line_fraction_sum = 1.0
    summary = stats.summary()
    assert summary["execution_cycles"] == 1000
    assert summary["average_utilization"] == pytest.approx(0.333, abs=1e-3)
    assert set(summary) == {
        "execution_cycles", "references", "remote_misses",
        "client_page_outs", "page_faults", "frames_allocated",
        "average_utilization"}
