"""Property-based coherence testing: random access programs.

Hypothesis generates random multi-CPU access interleavings over a small
shared region; after every program the machine-wide coherence
invariants must hold, for each page-mode policy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.invariants import check_machine

from tests.conftest import Harness, protocol_config

ACCESS = st.tuples(
    st.integers(0, 7),      # cpu
    st.integers(0, 7),      # page
    st.integers(0, 7),      # line in page
    st.booleans(),          # write?
)


@given(st.lists(ACCESS, min_size=1, max_size=120),
       st.sampled_from(["scoma", "lanuma", "dyn-lru", "dyn-fcfs"]))
@settings(max_examples=60, deadline=None)
def test_random_programs_stay_coherent(accesses, policy):
    override = [3] * 4 if policy.startswith("dyn") else None
    h = Harness(policy=policy, page_cache_override=override)
    for cpu, page, lip, write in accesses:
        h.access(cpu, h.vaddr(page, lip), write)
    problems = check_machine(h.machine)
    assert problems == [], problems


@given(st.lists(ACCESS, min_size=1, max_size=80))
@settings(max_examples=30, deadline=None)
def test_random_programs_with_migration_stay_coherent(accesses):
    cfg = protocol_config(enable_migration=True, migration_threshold=6)
    h = Harness(policy="scoma", config=cfg)
    for cpu, page, lip, write in accesses:
        h.access(cpu, h.vaddr(page, lip), write)
        h.machine.migration.drain()
    problems = check_machine(h.machine)
    assert problems == [], problems


@given(st.lists(ACCESS, min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_last_writer_owns_the_line(accesses):
    """After any program, for every line the last writing node either
    still owns it exclusively or an explicit protocol event (another
    node's access, eviction, page-out) has since moved it."""
    h = Harness(policy="scoma")
    last_writer = {}
    touched_after = {}
    for cpu, page, lip, write in accesses:
        h.access(cpu, h.vaddr(page, lip), write)
        node = cpu // 2
        key = (page, lip)
        if write:
            last_writer[key] = node
            touched_after[key] = set()
        elif key in touched_after:
            touched_after[key].add(node)
    from repro.core.directory import DirState
    for (page, lip), writer in last_writer.items():
        dl = h.dir_line(page, lip)
        others = touched_after[(page, lip)] - {writer}
        home = h.machine.dynamic_home_of(h.gpage(page))
        if not others:
            # Nobody intervened: the writer must still be exclusive
            # (either as a client owner or as the home itself).
            if writer == home:
                assert dl.state == DirState.HOME_EXCL
            else:
                assert dl.state == DirState.CLIENT_EXCL
                assert dl.owner == writer


@given(st.lists(ACCESS, min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_latency_is_always_positive_and_bounded(accesses):
    h = Harness(policy="dyn-util", page_cache_override=[2] * 4)
    lat = h.machine.config.latency
    # With the harness's huge inter-access gaps nothing is contended, so
    # every access must cost between 1 cycle and one fault + one
    # page-out + one worst-case miss.
    upper = (lat.expected_fault_remote + lat.pageout_kernel
             + 2 * lat.net_latency
             + lat.pageout_per_line * h.machine.config.lines_per_page
             + lat.expected_write_shared(4) + lat.tlb_miss + 100)
    for cpu, page, lip, write in accesses:
        cost = h.access(cpu, h.vaddr(page, lip), write)
        assert 1 <= cost <= upper, cost
