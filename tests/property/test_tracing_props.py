"""Property-based tests for the tracing layer's zero-perturbation
invariant: instrumenting a run must never change its simulated results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import tracing
from repro.obs.tracing import TraceCollector, compute_breakdown
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

#: Cheap-but-distinct cells for the identity property (tiny preset runs
#: take well under a second each).
_CELLS = [("fft", "scoma"), ("fft", "lanuma"), ("mp3d", "scoma"),
          ("water-nsq", "dyn-fcfs")]


@given(st.sampled_from(_CELLS), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=6, deadline=None)
def test_instrumented_run_stats_are_byte_identical(cell, seed):
    """A run under a trace collector (and no metrics registry) produces
    a MachineStats snapshot byte-identical to an uninstrumented run —
    tracing observes, it never perturbs."""
    workload, policy = cell
    plain = Machine(MachineConfig(), policy=policy).run(
        make_workload(workload, "tiny"))
    with tracing.collecting(seed=seed) as collector:
        traced = Machine(MachineConfig(), policy=policy).run(
            make_workload(workload, "tiny"))
    assert collector.finished > 0
    assert traced.stats.to_dict() == plain.stats.to_dict()


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_breakdown_sums_to_duration_for_arbitrary_trees(data):
    """compute_breakdown charges every cycle of the root window exactly
    once, whatever the (possibly overlapping, possibly out-of-window)
    child spans look like."""
    collector = TraceCollector(seed=data.draw(st.integers(0, 1000)))
    begin = data.draw(st.integers(0, 1000))
    duration = data.draw(st.integers(1, 1000))
    root = collector.begin("miss", "local", 0, begin)
    kinds = st.sampled_from(["queue", "network", "home", "inval", "mem"])
    for _ in range(data.draw(st.integers(0, 8))):
        lo = data.draw(st.integers(begin - 50, begin + duration + 50))
        hi = data.draw(st.integers(lo, begin + duration + 100))
        collector.add("child", data.draw(kinds), 0, lo, hi)
    collector.end(root, begin + duration)
    (trace,) = collector.traces
    assert sum(trace.breakdown.values()) == duration
    assert trace.breakdown == compute_breakdown(trace)
