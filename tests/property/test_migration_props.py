"""Property tests: random migrate/read/write interleavings keep the
machine coherent.

Drives a small S-COMA machine with Hypothesis-generated sequences of
per-CPU reads/writes and explicit home migrations, and asserts after
every step that

* PIT forward and reverse mappings agree on every node,
* the page's *static* home never moves while the *dynamic* home always
  matches the node actually holding the directory (the static-home
  forwarding contract: a stale client can always be rerouted), and
* at the end, the full machine-wide invariant walk is clean and every
  recorded read observed the latest write (value coherence).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as some

from repro.obs.events import EventSink
from repro.sim.config import CacheConfig, MachineConfig
from repro.sim.invariants import check_machine
from repro.sim.machine import Machine
from repro.verify import ValueTracker, check_history

pytestmark = pytest.mark.verify

NODES = 3
PAGES = 2
GAP = 1_000_000


def _config() -> MachineConfig:
    return MachineConfig(
        num_nodes=NODES,
        cpus_per_node=1,
        page_bytes=256,
        line_bytes=32,
        l1=CacheConfig(256, 32, 2),
        l2=CacheConfig(512, 32, 2),
        tlb_entries=8,
        directory_cache_entries=64,
        enable_migration=True,
        migration_threshold=4)


ops = some.lists(
    some.one_of(
        some.tuples(some.just("access"),
                    some.integers(0, NODES - 1),   # cpu
                    some.integers(0, PAGES - 1),   # page
                    some.integers(0, 3),           # line in page
                    some.booleans()),              # write?
        some.tuples(some.just("migrate"),
                    some.integers(0, PAGES - 1),   # page
                    some.integers(0, NODES - 1))), # target node
    min_size=1, max_size=40)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_random_interleavings_preserve_coherence(sequence):
    machine = Machine(_config())
    region = machine.layout.attach_shared(
        key=1, size_bytes=PAGES * machine.config.page_bytes)
    sink = EventSink()
    tracker = ValueTracker(machine, sink)
    static_homes = {p: machine.static_home_of(region.gpage_base + p)
                    for p in range(PAGES)}
    clock = 0
    try:
        for op in sequence:
            clock += GAP
            if op[0] == "access":
                _kind, cpu, page, lip, write = op
                vaddr = (region.vbase + page * machine.config.page_bytes
                         + lip * machine.config.line_bytes)
                machine._access(machine.cpus[cpu], vaddr, write, clock)
            else:
                _kind, page, target = op
                gpage = region.gpage_base + page
                home = machine.dynamic_home_of(gpage)
                if machine.nodes[home].directory.page(gpage) is None:
                    continue  # page never faulted: nothing to migrate
                machine.migration.migrate(gpage, target)
            for page in range(PAGES):
                gpage = region.gpage_base + page
                # The static home is a pure function of the address —
                # migration must never move it (forwarding depends on
                # it as the always-reachable rendezvous).
                assert machine.static_home_of(gpage) == static_homes[page]
                dyn = machine.dynamic_home_of(gpage)
                dir_holders = [n.node_id for n in machine.nodes
                               if n.directory.page(gpage) is not None]
                assert dir_holders in ([], [dyn]), \
                    ("directory for gpage %d at %r but dynamic home is %d"
                     % (gpage, dir_holders, dyn))
            assert _pit_maps_consistent(machine)
    finally:
        tracker.detach()
    assert check_machine(machine) == []
    assert check_history(sink.events, machine._line_shift) == []


def _pit_maps_consistent(machine) -> bool:
    for node in machine.nodes:
        for entry in node.pit.frames():
            if entry.mode.is_global:
                if node.pit._by_gpage.get(entry.gpage) != entry.frame:
                    return False
    return True


@given(some.lists(some.integers(0, NODES - 1), min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_stale_clients_are_forwarded_after_migration_chains(targets):
    """After any chain of migrations, a client that still holds its
    original translation can access the page — the static home reroutes
    its request — and observes the current data."""
    machine = Machine(_config())
    region = machine.layout.attach_shared(
        key=1, size_bytes=machine.config.page_bytes)
    gpage = region.gpage_base
    vaddr = region.vbase
    clock = GAP
    # Every node pages the translation in once.
    for cpu in machine.cpus:
        machine._access(cpu, vaddr, False, clock)
        clock += GAP
    for target in targets:
        machine.migration.migrate(gpage, target)
        assert machine.dynamic_home_of(gpage) == target
    final_home = machine.dynamic_home_of(gpage)
    # A write from the node farthest from the action still succeeds and
    # leaves a coherent machine: stale PIT entries were forwarded.
    writer = machine.cpus[(final_home + 1) % NODES]
    machine._access(writer, vaddr, True, clock)
    assert check_machine(machine) == []
