"""Property-based tests for the caches, against reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheHierarchy, LineState
from repro.sim.config import CacheConfig

LINES = st.integers(min_value=0, max_value=63)
STATES = st.sampled_from([LineState.SHARED, LineState.EXCLUSIVE,
                          LineState.MODIFIED])


class ReferenceCache:
    """Trivially correct set-associative LRU model."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def lookup(self, line):
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return s[line]
        return LineState.INVALID

    def peek(self, line):
        return self.sets[line % self.num_sets].get(line, LineState.INVALID)

    def insert(self, line, state):
        s = self.sets[line % self.num_sets]
        victim = None
        if len(s) >= self.assoc:
            victim = s.popitem(last=False)
        s[line] = state
        return victim

    def remove(self, line):
        return self.sets[line % self.num_sets].pop(line, LineState.INVALID)


@st.composite
def cache_ops(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("lookup"), LINES),
            st.tuples(st.just("insert"), LINES, STATES),
            st.tuples(st.just("remove"), LINES),
        ),
        min_size=1, max_size=200))


@given(cache_ops())
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_model(ops):
    cache = Cache(CacheConfig(256, 32, 2))  # 4 sets, 2-way
    ref = ReferenceCache(4, 2)
    for op in ops:
        if op[0] == "lookup":
            assert cache.lookup(op[1]) == ref.lookup(op[1])
        elif op[0] == "insert":
            _, line, state = op
            if ref.peek(line) == LineState.INVALID:
                assert cache.insert(line, state) == ref.insert(line, state)
        else:
            assert cache.remove(op[1]) == ref.remove(op[1])


@given(st.lists(st.tuples(LINES, st.booleans()), min_size=1, max_size=300))
@settings(max_examples=200, deadline=None)
def test_hierarchy_inclusion_invariant(accesses):
    """After any access sequence, L1 contents are a subset of L2."""
    h = CacheHierarchy(CacheConfig(128, 32, 2), CacheConfig(256, 32, 2))
    for line, write in accesses:
        level, state = h.probe(line)
        if level == "miss":
            h.fill(line, LineState.MODIFIED if write else LineState.SHARED)
        elif write and state != LineState.MODIFIED:
            h.write_hit(line)
    for line in h.l1.resident_lines():
        assert line in h.l2, "inclusion violated for line %d" % line


@given(st.lists(st.tuples(LINES, st.booleans()), min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_hierarchy_dirty_lines_never_lost_silently(accesses):
    """Every MODIFIED fill is either still resident or was reported as a
    MODIFIED victim by fill()."""
    h = CacheHierarchy(CacheConfig(128, 32, 2), CacheConfig(256, 32, 2))
    dirty = set()
    for line, write in accesses:
        level, state = h.probe(line)
        if level == "miss":
            state = LineState.MODIFIED if write else LineState.SHARED
            for vline, vstate in h.fill(line, state):
                if vline in dirty:
                    assert vstate == LineState.MODIFIED, \
                        "dirty line %d evicted clean" % vline
                    dirty.discard(vline)
        elif write and state != LineState.MODIFIED:
            h.write_hit(line)
        if write:
            dirty.add(line)
    for line in dirty:
        assert h.state(line) == LineState.MODIFIED


@given(st.lists(st.integers(0, 31), min_size=1, max_size=200),
       st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_tlb_never_exceeds_capacity_and_keeps_mru(vpages, entries):
    from repro.mem.tlb import Tlb
    tlb = Tlb(entries)
    for vp in vpages:
        if tlb.lookup(vp) is None:
            tlb.insert(vp, vp * 10)
        assert len(tlb) <= entries
    assert tlb.lookup(vpages[-1]) == vpages[-1] * 10
