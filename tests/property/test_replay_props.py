"""Property tests for the trace-replay engine.

Two invariants, fuzzed over random synthetic op streams:

* **Recording determinism** — compiling the same stream twice yields
  identical arrays, and the content signature is a pure function of
  the workload's observable state.
* **Engine equivalence** — the vector engine's ``MachineStats``
  equals the interpreter's *byte for byte* on arbitrary mixtures of
  reads, writes, compute gaps, lock critical sections and barriers
  (the schedule-sensitive cases the drain automaton must get right).
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_UNLOCK, OP_WRITE)
from repro.sim.replay import VectorMachine, compile_stream
from repro.workloads.base import Workload

from tests.conftest import protocol_config

NUM_CPUS = 8  # protocol_config: 4 nodes x 2 CPUs

#: Line-aligned offsets inside an 8-page (2 KB) shared region.
OFFSETS = st.integers(min_value=0, max_value=63).map(lambda i: i * 32)

PLAIN_OP = st.one_of(
    st.tuples(st.just(OP_READ), OFFSETS),
    st.tuples(st.just(OP_WRITE), OFFSETS),
    st.tuples(st.just(OP_COMPUTE), st.integers(min_value=1, max_value=60)),
)

#: A balanced critical section around a handful of references.
CRITICAL = st.tuples(
    st.integers(min_value=0, max_value=2),          # lock id
    st.lists(PLAIN_OP, min_size=0, max_size=3),
).map(lambda lo: [(OP_LOCK, lo[0])] + lo[1] + [(OP_UNLOCK, lo[0])])

CHUNK = st.one_of(st.lists(PLAIN_OP, min_size=1, max_size=6), CRITICAL)

#: One CPU's ops for one barrier round.
ROUND = st.lists(CHUNK, min_size=0, max_size=3).map(
    lambda chunks: [op for chunk in chunks for op in chunk])

#: Per-CPU scripts: every CPU gets the same number of barrier rounds,
#: so the runs always terminate.
SCRIPTS = st.integers(min_value=1, max_value=3).flatmap(
    lambda rounds: st.lists(
        st.lists(ROUND, min_size=rounds, max_size=rounds),
        min_size=NUM_CPUS, max_size=NUM_CPUS))


class Scripted(Workload):
    name = "scripted-replay-prop"

    def __init__(self, per_cpu_rounds):
        super().__init__()
        self.per_cpu_rounds = per_cpu_rounds
        self.problem = "fuzzed"

    def setup(self, layout, num_cpus):
        self.region = layout.attach_shared(
            key=91, size_bytes=8 * layout.page_bytes)

    def generator(self, cpu_id, num_cpus):
        vbase = self.region.vbase
        for bid, ops in enumerate(self.per_cpu_rounds[cpu_id]):
            for op in ops:
                if op[0] == OP_READ or op[0] == OP_WRITE:
                    yield (op[0], op[1] + vbase)
                else:
                    yield op
            yield (OP_BARRIER, bid)


def _flat_ops(per_cpu_rounds, cpu_id):
    wl = Scripted(per_cpu_rounds)

    class FakeRegion:
        vbase = 1 << 20
    wl.region = FakeRegion()
    return list(wl.generator(cpu_id, NUM_CPUS))


@settings(max_examples=60, deadline=None)
@given(SCRIPTS)
def test_recording_is_deterministic(per_cpu_rounds):
    for cpu in range(NUM_CPUS):
        ops = _flat_ops(per_cpu_rounds, cpu)
        first = compile_stream(iter(ops))
        second = compile_stream(iter(ops))
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        # The compiled form expands back to the recorded references.
        addr, w, _gap, segs = first[:4]
        refs = [(op[1], op[0] == OP_WRITE) for op in ops
                if op[0] in (OP_READ, OP_WRITE)]
        assert addr.tolist() == [r[0] for r in refs]
        assert w.tolist() == [1 if r[1] else 0 for r in refs]
        assert segs[-1][3] == 0  # END_STREAM terminator


@settings(max_examples=40, deadline=None)
@given(SCRIPTS)
def test_vector_engine_stats_match_interpreter(per_cpu_rounds):
    cfg = protocol_config()
    a = Machine(cfg, policy="scoma").run(
        Scripted(per_cpu_rounds)).stats.to_dict()
    b = VectorMachine(replace(cfg, engine="vector"), policy="scoma").run(
        Scripted(per_cpu_rounds)).stats.to_dict()
    assert a == b, {k: (a[k], b[k]) for k in a if a[k] != b[k]}
