"""Property-based tests for the Page Information Table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import PageMode
from repro.core.pit import PageInformationTable

FRAMES = st.integers(0, 15)
GPAGES = st.integers(0, 15)


@st.composite
def pit_programs(draw):
    """Random install/remove/lookup programs."""
    ops = draw(st.lists(st.one_of(
        st.tuples(st.just("install"), FRAMES, GPAGES,
                  st.sampled_from([PageMode.SCOMA, PageMode.LANUMA,
                                   PageMode.LOCAL])),
        st.tuples(st.just("remove"), FRAMES),
        st.tuples(st.just("by_gpage"), GPAGES,
                  st.one_of(st.none(), FRAMES)),
    ), min_size=1, max_size=80))
    return ops


@given(pit_programs())
@settings(max_examples=200, deadline=None)
def test_forward_and_reverse_maps_stay_consistent(ops):
    pit = PageInformationTable(node_id=1, lines_per_page=4)
    model_frames = {}   # frame -> (gpage, mode)
    model_gpages = {}   # gpage -> frame (global modes only)
    for op in ops:
        if op[0] == "install":
            _, frame, gpage, mode = op
            taken = frame in model_frames
            gpage_taken = mode.is_global and gpage in model_gpages
            home = 0 if mode.is_global else 1
            if taken or gpage_taken:
                continue  # the PIT raises; model skips
            pit.install(frame, gpage=gpage if mode.is_global else -1,
                        static_home=home, dynamic_home=home,
                        home_frame=0, mode=mode)
            model_frames[frame] = (gpage, mode)
            if mode.is_global:
                model_gpages[gpage] = frame
        elif op[0] == "remove":
            frame = op[1]
            if frame in model_frames:
                entry = pit.remove(frame)
                gpage, mode = model_frames.pop(frame)
                if mode.is_global:
                    del model_gpages[gpage]
                assert entry.frame == frame
        else:
            _, gpage, guess = op
            entry = pit.by_gpage(gpage, guess)
            expected = model_gpages.get(gpage)
            if expected is None:
                assert entry is None
            else:
                assert entry is not None and entry.frame == expected
    # Final cross-check of both maps.
    assert len(pit) == len(model_frames)
    for frame, (gpage, mode) in model_frames.items():
        assert pit.entry_or_none(frame) is not None
        if mode.is_global:
            assert pit.entry_for_gpage(gpage).frame == frame


@given(st.lists(st.tuples(GPAGES, st.integers(0, 3)), min_size=1,
                max_size=60),
       st.integers(2, 64))
@settings(max_examples=100, deadline=None)
def test_directory_cache_never_exceeds_capacity(keys, capacity):
    from repro.core.directory import DirectoryCache
    cache = DirectoryCache(capacity)
    for gpage, lip in keys:
        cache.access(gpage, lip)
        assert len(cache._keys) <= capacity
    # A repeat access to the most recent key always hits.
    cache.access(*keys[-1])
    assert cache.hits >= 1


@given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_touched_lines_is_a_set_cardinality(lines):
    from repro.core.pit import PitEntry
    entry = PitEntry(frame=0, gpage=0, static_home=0, dynamic_home=0,
                     home_frame=0, mode=PageMode.SCOMA)
    for line in lines:
        entry.touch(line)
    assert entry.touched_lines() == len(set(lines))
