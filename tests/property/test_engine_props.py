"""Property-based tests for the event-engine primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Barrier, LockTable, Resource


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 500)),
                min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_resource_grants_never_overlap(requests):
    """FCFS occupancy: each grant starts at or after the previous end,
    and never before its request time."""
    r = Resource("x")
    prev_end = 0
    for now, duration in requests:
        end = r.acquire(now, duration)
        start = end - duration
        assert start >= prev_end
        assert start >= now
        prev_end = end
    assert r.busy_cycles == sum(d for _, d in requests)


@given(st.lists(st.integers(0, 100_000), min_size=2, max_size=32),
       st.integers(0, 100))
@settings(max_examples=200, deadline=None)
def test_barrier_release_time_is_max_plus_cost(arrivals, cost):
    b = Barrier(parties=len(arrivals), cost=cost)
    released = None
    for cpu, t in enumerate(arrivals):
        released = b.arrive(cpu, t)
    assert released is not None
    release_time = max(arrivals) + cost
    assert released == [(cpu, release_time) for cpu in range(len(arrivals))]


@given(st.lists(st.integers(0, 7), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_lock_handoff_is_fcfs_and_exclusive(cpu_seq):
    """Any interleaving of acquires resolves to FCFS handoff with at
    most one holder at a time."""
    locks = LockTable()
    order = []
    waiting = []
    holder = None
    t = 0
    for cpu in cpu_seq:
        t += 1
        granted = locks.acquire(7, cpu, t)
        if granted is None:
            waiting.append(cpu)
        else:
            assert holder is None
            holder = cpu
            order.append(cpu)
        # Release with 30% duty cycle to exercise handoff.
        if holder is not None and len(order) % 3 == 0:
            woken = locks.release(7, holder, t)
            if woken is None:
                holder = None
            else:
                next_cpu, _ = woken
                assert next_cpu == waiting.pop(0)
                holder = next_cpu
                order.append(next_cpu)
    # Drain the queue.
    while holder is not None:
        woken = locks.release(7, holder, t)
        if woken is None:
            holder = None
        else:
            next_cpu, _ = woken
            assert next_cpu == waiting.pop(0)
            holder = next_cpu
    assert waiting == []
