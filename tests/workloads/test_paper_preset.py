"""The paper preset must match Table 2's problem sizes exactly."""

import pytest

from repro.workloads import APPLICATIONS, make_workload


def test_paper_sizes_match_table2():
    assert make_workload("barnes", "paper").n == 8192
    assert make_workload("barnes", "paper").iterations == 4
    assert make_workload("fft", "paper").points == 65536
    lu = make_workload("lu", "paper")
    assert (lu.n, lu.block) == (512, 16)
    mp3d = make_workload("mp3d", "paper")
    assert (mp3d.n, mp3d.iterations) == (20000, 5)
    assert make_workload("ocean", "paper").g == 258
    radix = make_workload("radix", "paper")
    assert (radix.n, radix.radix) == (1 << 20, 1024)
    assert make_workload("water-nsq", "paper").n == 512
    assert make_workload("water-spa", "paper").n == 512


@pytest.mark.slow
@pytest.mark.parametrize("app", APPLICATIONS)
def test_paper_workloads_construct(app):
    """Setup (segment creation + plan precomputation) completes for the
    full paper sizes."""
    from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
    wl = make_workload(app, "paper")
    ipc = GlobalIpcServer(8, 4096)
    wl.setup(AddressSpaceLayout(ipc, 4096), 32)
    gen = wl.generator(0, 32)
    ops = [next(gen) for _ in range(100)]
    assert len(ops) == 100
