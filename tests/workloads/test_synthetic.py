"""Tests for the synthetic workload generator."""

import pytest

from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.invariants import check_machine
from repro.sim.ops import OP_BARRIER, OP_READ, OP_WRITE, expand_op
from repro.workloads.synthetic import PATTERNS, SyntheticWorkload

NUM_CPUS = 8


def expanded(ops):
    """Expand block run ops back to single references for inspection."""
    for op in ops:
        for single in expand_op(op):
            yield single


def build(pattern, **kw):
    wl = SyntheticWorkload(pattern, shared_kb=32,
                           refs_per_cpu_per_iter=200, iterations=2, **kw)
    ipc = GlobalIpcServer(4, 1024)
    layout = AddressSpaceLayout(ipc, 1024)
    wl.setup(layout, NUM_CPUS)
    return wl, layout


@pytest.mark.parametrize("pattern", PATTERNS)
def test_patterns_emit_valid_ops(pattern):
    wl, layout = build(pattern)
    for cpu in range(NUM_CPUS):
        refs = 0
        for op in expanded(wl.generator(cpu, NUM_CPUS)):
            if op[0] in (OP_READ, OP_WRITE):
                refs += 1
                assert layout.is_mapped(op[1] // 1024)
        assert refs > 0


@pytest.mark.parametrize("pattern", PATTERNS)
def test_patterns_barrier_aligned(pattern):
    wl, _ = build(pattern)
    seqs = []
    for cpu in range(NUM_CPUS):
        seqs.append([op[1] for op in wl.generator(cpu, NUM_CPUS)
                     if op[0] == OP_BARRIER])
    assert all(seq == seqs[0] for seq in seqs)


def test_block_pattern_stays_in_own_block():
    wl, _ = build("block")
    per_cpu_lines = wl.num_lines // NUM_CPUS
    for cpu in (0, 3, NUM_CPUS - 1):
        base = wl.array.vbase + cpu * per_cpu_lines * 32
        end = base + per_cpu_lines * 32
        for op in expanded(wl.generator(cpu, NUM_CPUS)):
            if op[0] in (OP_READ, OP_WRITE):
                assert base <= op[1] < end


def test_producer_consumer_alternates():
    wl, _ = build("producer_consumer")
    ops = list(expanded(wl.generator(2, NUM_CPUS)))
    phases = []
    current = []
    for op in ops:
        if op[0] == OP_BARRIER:
            phases.append(current)
            current = []
        elif op[0] in (OP_READ, OP_WRITE):
            current.append(op)
    assert all(op[0] == OP_WRITE for op in phases[0])   # produce
    assert all(op[0] == OP_READ for op in phases[1])    # consume
    # The consume phase reads the *upstream* CPU's block.
    per_cpu_lines = wl.num_lines // NUM_CPUS
    upstream_base = wl.array.vbase + 1 * per_cpu_lines * 32
    assert phases[1][0][1] == upstream_base


def test_migratory_rotates_ownership():
    wl, _ = build("migratory")
    first_iter_lines = set()
    for op in expanded(wl.generator(0, NUM_CPUS)):
        if op[0] in (OP_READ, OP_WRITE):
            first_iter_lines.add(op[1])
        if op[0] == OP_BARRIER:
            break
    second_iter_lines = set()
    seen_barrier = False
    for op in expanded(wl.generator(0, NUM_CPUS)):
        if op[0] == OP_BARRIER:
            if seen_barrier:
                break
            seen_barrier = True
        elif seen_barrier and op[0] in (OP_READ, OP_WRITE):
            second_iter_lines.add(op[1])
    assert first_iter_lines.isdisjoint(second_iter_lines)


def test_parameter_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload("zigzag")
    with pytest.raises(ValueError):
        SyntheticWorkload("block", sweep_fraction=0.0)
    with pytest.raises(ValueError):
        SyntheticWorkload("block", write_fraction=1.5)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_runs_coherently_on_a_machine(pattern):
    cfg = MachineConfig(num_nodes=2, cpus_per_node=2)
    machine = Machine(cfg, policy="dyn-lru",
                      page_cache_override=[4, 4])
    wl = SyntheticWorkload(pattern, shared_kb=16,
                           refs_per_cpu_per_iter=150, iterations=2)
    result = machine.run(wl)
    assert result.stats.references > 0
    assert check_machine(machine) == []
