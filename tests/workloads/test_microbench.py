"""The microbenchmark must reproduce Table 1 within tight tolerance."""

import pytest

from repro.sim.latency import PAPER_TABLE1
from repro.workloads.microbench import LatencyProbe, run_microbenchmark


@pytest.fixture(scope="module")
def measured():
    return run_microbenchmark()


EXACT_ROWS = ("l2_hit", "local_memory", "tlb_miss",
              "fault_local", "fault_remote")
CLOSE_ROWS = ("remote_clean", "2party_modified", "3party_modified",
              "2party_write_shared", "write_shared_base",
              "write_shared_per_sharer")


@pytest.mark.parametrize("row", EXACT_ROWS)
def test_exact_rows_match_paper(measured, row):
    assert measured[row] == PAPER_TABLE1[row]


@pytest.mark.parametrize("row", CLOSE_ROWS)
def test_remote_rows_within_2pct(measured, row):
    paper = PAPER_TABLE1[row]
    assert abs(measured[row] - paper) <= max(2, 0.02 * paper), \
        "%s: measured %d vs paper %d" % (row, measured[row], paper)


def test_l1_hit_is_single_cycle():
    probe = LatencyProbe()
    assert probe.probe_l1_hit() == 1


def test_ordering_invariants(measured):
    """Relative ordering of Table 1 rows must hold."""
    assert (measured["l2_hit"] < measured["local_memory"]
            < measured["remote_clean"]
            <= measured["2party_modified"]
            < measured["3party_modified"]
            < measured["write_shared_base"])
    assert measured["fault_local"] < measured["fault_remote"]


def test_extra_sharers_cost_linear():
    base = LatencyProbe().probe_write_shared(0)
    plus3 = LatencyProbe().probe_write_shared(3)
    per = (plus3 - base) / 3
    assert per == pytest.approx(PAPER_TABLE1["write_shared_per_sharer"],
                                abs=5)
