"""Serving workload family: Zipfian generator properties, kernel
validity, and the serving metrics tap.

The Zipfian properties are the satellite contract: same-seed streams
are byte-identical, raising the skew monotonically concentrates mass
on the hottest ranks, and hot-key churn/drift never leaves the key
space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.sim.config import tiny_config
from repro.sim.machine import Machine
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_UNLOCK, OP_WRITE, expand_op)
from repro.workloads import SERVING_APPLICATIONS, make_workload
from repro.workloads.serving import ZipfianStream

NUM_CPUS = 8
PAGE = 1024

SEEDS = st.integers(min_value=0, max_value=2 ** 31 - 1)
KEYS = st.integers(min_value=2, max_value=2048)
SKEWS = st.floats(min_value=0.0, max_value=3.0,
                  allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# ZipfianStream properties.
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, num_keys=KEYS, skew=SKEWS,
       churn=st.integers(min_value=0, max_value=64),
       drift=st.integers(min_value=0, max_value=64))
def test_same_seed_streams_identical(seed, num_keys, skew, churn, drift):
    a = ZipfianStream(num_keys, skew=skew, churn_interval=churn,
                      drift=drift, seed=seed)
    b = ZipfianStream(num_keys, skew=skew, churn_interval=churn,
                      drift=drift, seed=seed)
    ka = np.concatenate([a.sample(97), a.sample(31)])
    kb = np.concatenate([b.sample(97), b.sample(31)])
    assert ka.tobytes() == kb.tobytes()


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, num_keys=KEYS,
       lo=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
       delta=st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
def test_skew_monotonically_concentrates_mass(seed, num_keys, lo, delta):
    # Same seed => same uniforms, so a larger skew can only *lower*
    # each draw's rank (the steeper CDF crosses every u earlier) —
    # rank-wise dominance, which implies every top-k mass fraction is
    # monotone in the skew.
    flat = ZipfianStream(num_keys, skew=lo, seed=seed)
    steep = ZipfianStream(num_keys, skew=lo + delta, seed=seed)
    r_flat = flat.ranks(512)
    r_steep = steep.ranks(512)
    assert (r_steep <= r_flat).all()


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, num_keys=KEYS, skew=SKEWS,
       churn=st.integers(min_value=1, max_value=32),
       drift=st.integers(min_value=1, max_value=10 ** 6))
def test_churn_never_emits_out_of_range_keys(seed, num_keys, skew,
                                             churn, drift):
    stream = ZipfianStream(num_keys, skew=skew, churn_interval=churn,
                           drift=drift, seed=seed)
    keys = stream.sample(4 * churn + 7)
    assert keys.min() >= 0
    assert keys.max() < num_keys


def test_churn_actually_rotates_the_hot_set():
    # With an extreme skew nearly every request hits rank 0; drift
    # must still move the *identity* of that hot key across epochs.
    stream = ZipfianStream(128, skew=5.0, churn_interval=16, drift=8,
                           seed=3)
    keys = stream.sample(64)
    epochs = [set(keys[i:i + 16].tolist()) for i in range(0, 64, 16)]
    assert any(epochs[0] != later for later in epochs[1:])


def test_zipfian_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfianStream(0)
    with pytest.raises(ValueError):
        ZipfianStream(8, skew=-0.5)
    with pytest.raises(ValueError):
        ZipfianStream(8, churn_interval=-1)


# ---------------------------------------------------------------------------
# Kernel validity (mirrors tests/workloads/test_workloads.py).
# ---------------------------------------------------------------------------

def build(app, preset="tiny", num_cpus=NUM_CPUS):
    wl = make_workload(app, preset)
    ipc = GlobalIpcServer(num_nodes=4, page_bytes=PAGE)
    layout = AddressSpaceLayout(ipc, PAGE)
    wl.setup(layout, num_cpus)
    return wl, layout


def collect_ops(wl, cpu_id, num_cpus=NUM_CPUS):
    ops = []
    for op in wl.generator(cpu_id, num_cpus):
        ops.extend(expand_op(op))
    return ops


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_ops_are_wellformed(app):
    wl, layout = build(app)
    legal = {OP_COMPUTE, OP_READ, OP_WRITE, OP_BARRIER, OP_LOCK, OP_UNLOCK}
    for cpu in range(NUM_CPUS):
        for kind, arg in collect_ops(wl, cpu):
            assert kind in legal
            assert isinstance(arg, int)
            if kind in (OP_READ, OP_WRITE):
                assert layout.is_mapped(arg // PAGE)


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_barrier_sequences_identical_across_cpus(app):
    wl, _ = build(app)
    sequences = []
    for cpu in range(NUM_CPUS):
        sequences.append([op[1] for op in collect_ops(wl, cpu)
                          if op[0] == OP_BARRIER])
    for seq in sequences[1:]:
        assert seq == sequences[0]
    assert sequences[0], "%s has no barriers" % app


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_locks_balanced_and_no_barrier_while_locked(app):
    wl, _ = build(app)
    for cpu in range(NUM_CPUS):
        held = set()
        for op in collect_ops(wl, cpu):
            if op[0] == OP_LOCK:
                assert op[1] not in held
                held.add(op[1])
            elif op[0] == OP_UNLOCK:
                assert op[1] in held
                held.remove(op[1])
            elif op[0] == OP_BARRIER:
                assert not held
        assert not held


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_every_cpu_does_shared_work(app):
    wl, layout = build(app)
    for cpu in range(NUM_CPUS):
        shared = sum(1 for op in collect_ops(wl, cpu)
                     if op[0] in (OP_READ, OP_WRITE)
                     and layout.gpage_of(op[1] // PAGE) is not None)
        assert shared > 20, "%s: cpu %d has no shared traffic" % (app, cpu)


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_deterministic(app):
    wl1, _ = build(app)
    wl2, _ = build(app)
    for cpu in (0, NUM_CPUS - 1):
        assert collect_ops(wl1, cpu) == collect_ops(wl2, cpu)


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_coalesced_generators_match_their_raw_streams(app):
    # coalesce_stream wrapping must expand back to the raw stream
    # op for op (the vector-engine identity precondition).
    wl, _ = build(app)
    for cpu in (0, NUM_CPUS - 1):
        raw = []
        for op in wl._stream(cpu, NUM_CPUS):
            raw.extend(expand_op(op))
        assert collect_ops(wl, cpu) == raw


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_presets_scale_down(app):
    tiny, _ = build(app, "tiny")
    serving, _ = build(app, "serving")
    tiny_refs = sum(1 for op in collect_ops(tiny, 0)
                    if op[0] in (OP_READ, OP_WRITE))
    serving_refs = sum(1 for op in collect_ops(serving, 0)
                      if op[0] in (OP_READ, OP_WRITE))
    assert serving_refs > tiny_refs


@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_descriptions_populated(app):
    info = make_workload(app, "tiny").describe()
    assert info["description"]
    assert info["problem"]


# ---------------------------------------------------------------------------
# The serving metrics tap.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("app", SERVING_APPLICATIONS)
def test_serving_tap_reports_request_latency_and_throughput(app):
    with obs.collecting() as registry:
        machine = Machine(tiny_config(), policy="scoma")
        machine.run(make_workload(app, "tiny"))
    snapshot = registry.to_dict()
    hists = obs.find_metrics(snapshot["histograms"],
                             "serving.request_latency_cycles")
    assert hists, "no request-latency histograms recorded"
    total = sum(h["count"] for _labels, h in hists)
    assert total > 0
    for _labels, hist in hists:
        p50 = obs.quantile(hist, 0.50)
        p99 = obs.quantile(hist, 0.99)
        assert 0 < p50 <= p99
    series = obs.find_metrics(snapshot["series"],
                              "serving.completed_requests")
    assert series
    points = series[0][1]["points"]
    assert points[-1][1] == total, "throughput curve lost requests"
    counters = obs.find_metrics(snapshot["counters"], "serving.requests")
    assert sum(count for _labels, count in counters) == total


def test_kvstore_tap_counts_match_the_plan():
    wl = make_workload("kvstore", "tiny")
    with obs.collecting() as registry:
        Machine(tiny_config(), policy="scoma").run(wl)
    expected = sum(len(keys) for keys, _gets in wl._plans[0]) \
        * len(Machine(tiny_config()).cpus)
    snapshot = registry.to_dict()
    counters = obs.find_metrics(snapshot["counters"], "serving.requests")
    assert sum(count for _labels, count in counters) == expected


def test_no_registry_means_no_tap_and_identical_stats():
    # The bind hook must be inert without a registry: same stats as a
    # run that never had the hook.
    a = Machine(tiny_config(), policy="scoma") \
        .run(make_workload("kvstore", "tiny")).stats.to_dict()
    with obs.collecting():
        b = Machine(tiny_config(), policy="scoma") \
            .run(make_workload("kvstore", "tiny")).stats.to_dict()
    assert a == b


def test_serving_summary_renders_and_is_quiet_without_metrics():
    from repro.workloads.serving import serving_summary
    assert serving_summary({"histograms": {}, "series": {}}) == []
    with obs.collecting() as registry:
        Machine(tiny_config(), policy="scoma") \
            .run(make_workload("txn2pc", "tiny"))
    lines = serving_summary(registry.to_dict())
    assert any("p50" in line and "p99" in line for line in lines)
    assert any("throughput" in line for line in lines)
