"""Tests for the workload profiler — and via it, assertions about each
kernel's memory-system character."""

import pytest

from repro.workloads import make_workload
from repro.workloads.analysis import profile_workload
from repro.workloads.synthetic import SyntheticWorkload

NUM_CPUS = 8


def profile(app, **kw):
    return profile_workload(make_workload(app, "tiny"),
                            num_cpus=NUM_CPUS, **kw)


def test_counts_are_consistent():
    p = profile("fft")
    assert p.reads + p.writes == p.references
    assert p.shared_refs + p.private_refs == p.references
    assert p.min_cpu_refs <= p.max_cpu_refs


def test_fft_is_shared_heavy_and_balanced():
    p = profile("fft")
    assert p.shared_fraction > 0.4
    assert p.imbalance < 1.5
    assert p.barriers == 6  # the six steps


def test_radix_writes_shared_pages_from_many_cpus():
    p = profile("radix")
    # The scatter makes destination pages written by many CPUs.
    assert p.write_shared_pages > 0
    assert p.avg_sharing_degree > 2.0


def test_lu_is_all_shared():
    p = profile("lu")
    assert p.private_refs == 0
    assert p.shared_fraction == 1.0


def test_water_uses_locks_ocean_does_not():
    assert profile("water-nsq").lock_acquires > 0
    assert profile("barnes").lock_acquires > 0
    assert profile("ocean").lock_acquires == 0


def test_ocean_neighbour_sharing_is_narrow():
    p = profile("ocean")
    # Stencil halos: most grid pages touched by only 1-2 CPUs.
    narrow = sum(count for degree, count in p.sharing_histogram.items()
                 if degree <= 2)
    assert narrow > sum(p.sharing_histogram.values()) / 2


def test_synthetic_block_is_unshared():
    wl = SyntheticWorkload("block", shared_kb=32,
                           refs_per_cpu_per_iter=100, iterations=1)
    p = profile_workload(wl, num_cpus=NUM_CPUS)
    assert p.avg_sharing_degree == 1.0
    assert p.write_shared_pages == 0


def test_synthetic_migratory_is_fully_shared():
    wl = SyntheticWorkload("migratory", shared_kb=32,
                           refs_per_cpu_per_iter=100, iterations=NUM_CPUS)
    p = profile_workload(wl, num_cpus=NUM_CPUS)
    assert p.avg_sharing_degree == pytest.approx(NUM_CPUS)
    assert p.write_shared_pages == p.shared_pages


def test_summary_keys():
    summary = profile("mp3d").summary()
    for key in ("references", "shared_fraction", "avg_sharing_degree",
                "imbalance", "barriers"):
        assert key in summary
