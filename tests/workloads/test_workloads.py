"""Validity tests for all application kernels.

Every workload must: emit only legal ops at legal addresses, hit the
same barriers in the same order on every CPU, balance lock/unlock
pairs, and be deterministic.
"""

import pytest

from repro.kernel.segments import AddressSpaceLayout, GlobalIpcServer
from repro.sim.ops import (OP_BARRIER, OP_COMPUTE, OP_LOCK, OP_READ,
                           OP_UNLOCK, OP_WRITE, expand_op)
from repro.workloads import APPLICATIONS, make_workload

NUM_CPUS = 8
PAGE = 1024


def build(app, preset="tiny"):
    wl = make_workload(app, preset)
    ipc = GlobalIpcServer(num_nodes=4, page_bytes=PAGE)
    layout = AddressSpaceLayout(ipc, PAGE)
    wl.setup(layout, NUM_CPUS)
    return wl, layout


def collect_ops(wl, cpu_id):
    # Expand block run ops so every op is a single (kind, arg) pair.
    ops = []
    for op in wl.generator(cpu_id, NUM_CPUS):
        ops.extend(expand_op(op))
    return ops


@pytest.mark.parametrize("app", APPLICATIONS)
def test_ops_are_wellformed(app):
    wl, layout = build(app)
    legal = {OP_COMPUTE, OP_READ, OP_WRITE, OP_BARRIER, OP_LOCK, OP_UNLOCK}
    for cpu in range(NUM_CPUS):
        for op in collect_ops(wl, cpu):
            assert isinstance(op, tuple) and len(op) == 2
            kind, arg = op
            assert kind in legal
            assert isinstance(arg, int)
            if kind in (OP_READ, OP_WRITE):
                assert layout.is_mapped(arg // PAGE), \
                    "%s: unmapped address %d" % (app, arg)
            if kind == OP_COMPUTE:
                assert arg >= 0


@pytest.mark.parametrize("app", APPLICATIONS)
def test_barrier_sequences_identical_across_cpus(app):
    wl, _ = build(app)
    sequences = []
    for cpu in range(NUM_CPUS):
        seq = [op[1] for op in collect_ops(wl, cpu) if op[0] == OP_BARRIER]
        sequences.append(seq)
    for seq in sequences[1:]:
        assert seq == sequences[0]
    assert sequences[0], "%s has no barriers" % app


@pytest.mark.parametrize("app", APPLICATIONS)
def test_locks_balanced_and_nested_correctly(app):
    wl, _ = build(app)
    for cpu in range(NUM_CPUS):
        held = set()
        for op in collect_ops(wl, cpu):
            if op[0] == OP_LOCK:
                assert op[1] not in held, "recursive lock"
                held.add(op[1])
            elif op[0] == OP_UNLOCK:
                assert op[1] in held, "unlock of unheld lock"
                held.remove(op[1])
            elif op[0] == OP_BARRIER:
                assert not held, "%s: barrier while holding a lock" % app
        assert not held, "%s: cpu %d ends holding %r" % (app, cpu, held)


@pytest.mark.parametrize("app", APPLICATIONS)
def test_every_cpu_does_work(app):
    wl, _ = build(app)
    for cpu in range(NUM_CPUS):
        refs = sum(1 for op in collect_ops(wl, cpu)
                   if op[0] in (OP_READ, OP_WRITE))
        assert refs > 0, "%s: cpu %d performs no references" % (app, cpu)


@pytest.mark.parametrize("app", APPLICATIONS)
def test_deterministic(app):
    wl1, _ = build(app)
    wl2, _ = build(app)
    for cpu in (0, NUM_CPUS - 1):
        assert collect_ops(wl1, cpu) == collect_ops(wl2, cpu)


@pytest.mark.parametrize("app", APPLICATIONS)
def test_shared_traffic_exists(app):
    """Each kernel must actually exercise globally shared memory."""
    wl, layout = build(app)
    shared_refs = 0
    for cpu in range(NUM_CPUS):
        for op in collect_ops(wl, cpu):
            if op[0] in (OP_READ, OP_WRITE):
                if layout.gpage_of(op[1] // PAGE) is not None:
                    shared_refs += 1
    assert shared_refs > 100


@pytest.mark.parametrize("app", APPLICATIONS)
def test_presets_scale_down(app):
    tiny, _ = build(app, "tiny")
    small, _ = build(app, "small")
    tiny_refs = sum(1 for op in collect_ops(tiny, 0)
                    if op[0] in (OP_READ, OP_WRITE))
    small_refs = sum(1 for op in collect_ops(small, 0)
                     if op[0] in (OP_READ, OP_WRITE))
    assert small_refs > tiny_refs


def test_make_workload_rejects_unknown():
    with pytest.raises(ValueError):
        make_workload("sorbet")
    with pytest.raises(ValueError):
        make_workload("fft", "enormous")


def test_descriptions_populated():
    for app in APPLICATIONS:
        wl = make_workload(app, "tiny")
        info = wl.describe()
        assert info["description"]
        assert info["paper_problem"]
        assert info["problem"]


def test_coalesce_stream_expands_to_exact_input():
    from repro.sim.ops import OP_READ_RUN, OP_WRITE_RUN
    from repro.workloads.base import coalesce_stream

    stream = [
        (OP_READ, 0), (OP_READ, 32), (OP_READ, 64),      # stride-32 run
        (OP_WRITE, 96),                                  # lone write
        (OP_COMPUTE, 10),                                # flushes
        (OP_READ, 200), (OP_READ, 100),                  # negative stride
        (OP_BARRIER, 0),
        (OP_LOCK, 1), (OP_WRITE, 0), (OP_WRITE, 64),     # stride jump
        (OP_WRITE, 128), (OP_UNLOCK, 1),
        (OP_READ, 500),                                  # trailing single
    ]
    out = list(coalesce_stream(iter(stream)))
    # Runs actually formed where strides were constant...
    assert (OP_READ_RUN, 0, 32, 3) in out
    assert (OP_WRITE_RUN, 0, 64, 3) in out
    # ...and the expansion is op-for-op identical to the input.
    expanded = []
    for op in out:
        expanded.extend(expand_op(op))
    assert expanded == stream


@pytest.mark.parametrize("app",
                         ["ocean", "radix", "water-nsq", "water-spa",
                          "mp3d", "barnes"])
def test_coalesced_generators_match_their_raw_streams(app):
    # The kernels wrap their raw per-reference streams in
    # coalesce_stream; the wrapped generator must expand back to the
    # raw stream exactly (same kinds, addresses, order).
    wl, _layout = build(app)
    assert hasattr(wl, "_stream"), "%s lost its raw stream" % app
    for cpu in (0, NUM_CPUS - 1):
        raw = []
        for op in wl._stream(cpu, NUM_CPUS):
            raw.extend(expand_op(op))
        assert collect_ops(wl, cpu) == raw
