"""2PC atomicity under chaos: mutation self-tests and reproducibility.

The serving family's two-phase-commit scenario must never CORRUPT: with
retransmission disabled a dropped COMMAND message is allowed to hang or
abort the run (and the atomicity checker must still hold over the
prefix), and with the default retry policy the protocol must push
through drops to COMPLETED_SC.
"""

import pytest

from repro.faults import (ChaosCampaign, FaultPlan, RetryPolicy, Verdict,
                          run_chaos)
from repro.workloads.serving import Txn2pcScenario, chaos_scenarios

pytestmark = pytest.mark.faults


def scenario(**overrides):
    kwargs = dict(txns=6)
    kwargs.update(overrides)
    return Txn2pcScenario(**kwargs)


class TestTxn2pcChaos:
    def test_fault_free_run_completes_sc(self):
        run = run_chaos(scenario(), FaultPlan(), seed=0)
        assert run.verdict == Verdict.COMPLETED_SC
        assert run.violations == []

    def test_command_drop_without_retries_never_corrupts(self):
        # Mutation self-test half 1: kill every COMMAND message with
        # retransmission disabled.  The decision never reaches the
        # participants, so the run must end aborted-but-clean or HUNG —
        # anything judged CORRUPT means the atomicity checker caught a
        # data apply without its commit decision.
        plan = FaultPlan().drop(1.0, kinds="command")
        for seed in (0, 7, 23):
            run = run_chaos(scenario(), plan, seed=seed,
                            retry=RetryPolicy.disabled())
            assert run.verdict in (Verdict.HUNG, Verdict.FAILED_CLEAN), \
                run.describe()
            assert not any("2pc" in v for v in run.violations), \
                run.describe()

    def test_command_drop_with_retries_completes_sc(self):
        # Mutation self-test half 2: same drop probability, default
        # retry policy — retransmission is what earns the passing
        # verdict, and the fault stats prove drops actually happened.
        plan = FaultPlan().drop(0.4, kinds="command")
        run = run_chaos(scenario(), plan, seed=7)
        assert run.verdict == Verdict.COMPLETED_SC, run.describe()
        assert run.violations == []
        assert run.fault_stats["dropped"] > 0
        assert run.fault_stats["retransmissions"] > 0

    def test_coordinator_failure_is_clean(self):
        run = run_chaos(scenario(), FaultPlan().fail_node(0, at=5_000),
                        seed=0)
        assert run.verdict == Verdict.FAILED_CLEAN, run.describe()
        assert run.ok

    def test_participant_failure_is_acceptable(self):
        run = run_chaos(scenario(), FaultPlan().fail_node(2, at=5_000),
                        seed=0)
        assert run.ok, run.describe()


class TestAtomicityCheckerNonVacuity:
    """The checker itself must reject a fabricated dirty history."""

    def _machine_after_clean_run(self):
        from repro.obs.events import EventSink
        from repro.sim.machine import Machine
        from repro.verify.tracker import ValueTracker

        test = scenario()
        machine = Machine(test.build_config(), policy=test.policy)
        sink = EventSink(capacity=100_000)
        tracker = ValueTracker(machine, sink)
        workload = test.make_workload()
        machine.run(workload)
        tracker.detach()
        return test, machine, sink.events

    def test_clean_history_has_no_violations(self):
        test, machine, events = self._machine_after_clean_run()
        assert test.check(events, machine) == []

    def test_apply_before_decision_is_flagged(self):
        test, machine, events = self._machine_after_clean_run()
        # Clone the first data-segment write to time 0 — an apply that
        # precedes every commit decision.  The checker must flag it.
        workload = test._workload
        base = workload.data.addr(0)
        limit = workload.data.addr(workload.data.num_elems - 1)
        dirty = list(events)
        for event in events:
            if (event["kind"] == "write"
                    and base <= event["vaddr"] <= limit):
                forged = dict(event)
                forged["time"] = 0
                dirty.append(forged)
                break
        else:
            pytest.fail("no data write found in the clean history")
        violations = test.check(dirty, machine)
        assert violations, "forged early apply was not flagged"

    def test_apply_for_undecided_txn_is_flagged(self):
        test, machine, events = self._machine_after_clean_run()
        workload = test._workload
        # Strip every log write: no decisions exist, so every data
        # apply is now orphaned.
        log_base = workload.log.addr(0)
        log_limit = workload.log.addr(workload.log.num_elems - 1)
        dirty = [e for e in events
                 if not (e["kind"] == "write"
                         and log_base <= e["vaddr"] <= log_limit)]
        assert test.check(dirty, machine)


class TestServingCampaign:
    def test_campaign_over_scenarios_is_reproducible(self):
        tests = tuple(chaos_scenarios().values())
        first = ChaosCampaign(seed=11, rounds=4, tests=tests).run()
        second = ChaosCampaign(seed=11, rounds=4, tests=tests).run()
        assert first.summary() == second.summary()
        assert first.verdicts() == second.verdicts()
        assert all(v in Verdict.ACCEPTABLE for v in first.verdicts()), \
            first.summary()

    def test_scenarios_registry(self):
        names = chaos_scenarios()
        assert "txn2pc" in names
        assert all(hasattr(t, "make_workload") and hasattr(t, "check")
                   for t in names.values())
