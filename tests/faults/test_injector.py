"""The deterministic fault plane end to end on a real machine."""

import pytest

from repro.core.controller import NodeFailedError, UnreachableNodeError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.sim.config import tiny_config
from repro.sim.machine import DeadlineExceeded, Machine
from repro.workloads import make_workload

pytestmark = pytest.mark.faults


def run_fft(faults=None, deadline=None, policy="scoma"):
    machine = Machine(tiny_config(), policy=policy, faults=faults,
                      deadline=deadline)
    result = machine.run(make_workload("fft", preset="tiny"))
    return machine, result


class TestTransparency:
    def test_empty_plan_is_byte_identical(self):
        _, baseline = run_fft()
        _, with_plane = run_fft(faults=FaultInjector(FaultPlan(), seed=3))
        assert with_plane.stats.to_dict() == baseline.stats.to_dict()

    def test_bare_plan_is_wrapped(self):
        machine, _ = run_fft(faults=FaultPlan())
        assert isinstance(machine.faults, FaultInjector)

    def test_plan_node_ids_validated_against_machine(self):
        plan = FaultPlan().fail_node(99, at=0)
        with pytest.raises(ValueError, match="99"):
            Machine(tiny_config(), faults=FaultInjector(plan))


class TestDeterminism:
    def test_same_plan_and_seed_replays_exactly(self):
        plan = FaultPlan().drop(0.3, kinds="requests").delay(
            0.5, cycles=200, kinds="replies")
        runs = []
        for _ in range(2):
            machine, result = run_fft(faults=FaultInjector(plan, seed=11))
            runs.append((result.stats.to_dict(),
                         machine.faults.stats.to_dict()))
        assert runs[0] == runs[1]


class TestDropAndRetry:
    def test_drops_are_retransmitted_and_run_completes(self):
        plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
        machine, result = run_fft(faults=FaultInjector(plan, seed=5))
        stats = machine.faults.stats
        assert stats.dropped > 0
        assert stats.retransmissions == stats.dropped
        assert stats.retry_exhausted == 0
        assert result.stats.execution_cycles > 0

    def test_drops_cost_honest_latency(self):
        _, baseline = run_fft()
        plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
        _, faulted = run_fft(faults=FaultInjector(plan, seed=5))
        assert (faulted.stats.execution_cycles
                > baseline.stats.execution_cycles)

    def test_permanent_partition_exhausts_retries(self):
        plan = FaultPlan().partition({0}, start=0)
        injector = FaultInjector(plan, seed=0)
        with pytest.raises(UnreachableNodeError, match="retries"):
            run_fft(faults=injector)
        assert injector.stats.retry_exhausted >= 1
        # The clean-failure contract: UnreachableNodeError is a
        # NodeFailedError, so existing handling catches it.
        assert issubclass(UnreachableNodeError, NodeFailedError)

    def test_no_retry_policy_reports_a_hang(self):
        plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
        injector = FaultInjector(plan, seed=5, retry=RetryPolicy.disabled())
        with pytest.raises(DeadlineExceeded, match="forever"):
            run_fft(faults=injector)
        assert injector.stats.hangs == 1


class TestPerturbations:
    def test_delay_stretches_execution(self):
        _, baseline = run_fft()
        plan = FaultPlan().delay(1.0, cycles=500)
        machine, slowed = run_fft(faults=FaultInjector(plan, seed=0))
        assert machine.faults.stats.delayed > 0
        assert (slowed.stats.execution_cycles
                > baseline.stats.execution_cycles)

    def test_reorder_judgements_are_counted(self):
        plan = FaultPlan().reorder(1.0, cycles=400)
        machine, _ = run_fft(faults=FaultInjector(plan, seed=0))
        assert machine.faults.stats.reordered > 0

    def test_duplicates_are_dedupped_transparently(self):
        plan = FaultPlan().duplicate(0.5, kinds="replies")
        machine, result = run_fft(faults=FaultInjector(plan, seed=2))
        stats = machine.faults.stats
        assert stats.duplicated > 0
        assert stats.dedup_drops == stats.duplicated
        assert result.stats.execution_cycles > 0

    def test_pause_holds_deliveries_then_drains(self):
        plan = FaultPlan().pause_node(1, start=0, end=50_000)
        machine, result = run_fft(faults=FaultInjector(plan, seed=0))
        assert machine.faults.stats.paused_deliveries > 0
        assert result.stats.execution_cycles > 0   # slow, not gone


class TestScheduledFailure:
    def test_fail_node_fires_during_the_run(self):
        plan = FaultPlan().fail_node(1, at=10_000)
        injector = FaultInjector(plan, seed=0)
        # The run must end in a *clean* failure: either an access needs
        # the dead node, or survivors block on a barrier it can never
        # reach (reported as a deadlock).
        with pytest.raises((NodeFailedError, RuntimeError)):
            run_fft(faults=injector)

    def test_scheduled_failure_marks_the_node(self):
        plan = FaultPlan().fail_node(1, at=10_000)
        injector = FaultInjector(plan, seed=0)
        machine = Machine(tiny_config(), policy="scoma", faults=injector)
        try:
            machine.run(make_workload("fft", preset="tiny"))
        except (NodeFailedError, RuntimeError):
            pass
        assert machine.failed_nodes == {1}
        assert injector.stats.scheduled_failures == 1
        assert all(cpu.done for cpu in machine.nodes[1].cpus)


class TestDeadline:
    def test_deadline_cuts_off_a_run(self):
        with pytest.raises(DeadlineExceeded, match="deadline"):
            run_fft(deadline=1_000)

    def test_generous_deadline_is_invisible(self):
        _, baseline = run_fft()
        _, guarded = run_fft(deadline=10 ** 12)
        assert guarded.stats.to_dict() == baseline.stats.to_dict()
