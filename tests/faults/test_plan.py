"""The FaultPlan DSL: validation, kind resolution, serialization."""

import json
import random

import pytest

from repro.faults import (FaultPlan, LinkPartition, MessageRule, NodeFailure,
                          NodePause, resolve_kinds)
from repro.faults.plan import ACTIONS, KIND_CLASSES
from repro.interconnect.messages import MessageKind

pytestmark = pytest.mark.faults


class TestResolveKinds:
    def test_none_and_all_match_everything(self):
        assert resolve_kinds(None) is None
        assert resolve_kinds("all") is None

    def test_single_kind_by_enum_and_name(self):
        assert resolve_kinds(MessageKind.READ_REQ) == {MessageKind.READ_REQ}
        assert resolve_kinds("READ_REQ") == {MessageKind.READ_REQ}

    def test_class_names(self):
        assert resolve_kinds("requests") == KIND_CLASSES["requests"]
        assert MessageKind.DATA_REPLY in resolve_kinds("replies")

    def test_iterables_union(self):
        kinds = resolve_kinds(["requests", "ACK"])
        assert kinds == KIND_CLASSES["requests"] | {MessageKind.ACK}

    def test_all_inside_iterable_widens_to_everything(self):
        assert resolve_kinds(["requests", "all"]) is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown message kind"):
            resolve_kinds("nonesuch")

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValueError, match="empty kind filter"):
            resolve_kinds([])

    def test_kind_classes_cover_every_kind(self):
        covered = frozenset().union(*KIND_CLASSES.values())
        assert covered == frozenset(MessageKind)


class TestClauseValidation:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            MessageRule(action="mangle", probability=0.5)

    def test_probability_bounds(self):
        for p in (-0.1, 1.5):
            with pytest.raises(ValueError, match="probability"):
                MessageRule(action="drop", probability=p)

    def test_delay_needs_cycles(self):
        for action in ("delay", "reorder"):
            with pytest.raises(ValueError, match="cycles"):
                MessageRule(action=action, probability=0.5, cycles=0)

    def test_window_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            MessageRule(action="drop", probability=0.5, start=100, end=50)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            NodePause(node=-1, start=0, end=10)
        with pytest.raises(ValueError):
            NodeFailure(node=-1, at=0)
        with pytest.raises(ValueError):
            LinkPartition(frozenset({-1}), start=0)

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            LinkPartition(frozenset(), start=0)


class TestRuleMatching:
    def test_applies_respects_window_kinds_and_endpoints(self):
        rule = MessageRule(action="drop", probability=1.0,
                           kinds=resolve_kinds("requests"),
                           start=100, end=200, src=0, dst=1)
        assert rule.applies(MessageKind.READ_REQ, 0, 1, 150)
        assert not rule.applies(MessageKind.READ_REQ, 0, 1, 99)    # early
        assert not rule.applies(MessageKind.READ_REQ, 0, 1, 200)   # end excl
        assert not rule.applies(MessageKind.DATA_REPLY, 0, 1, 150)  # kind
        assert not rule.applies(MessageKind.READ_REQ, 2, 1, 150)   # src
        assert not rule.applies(MessageKind.READ_REQ, 0, 2, 150)   # dst

    def test_partition_severs_only_the_cut(self):
        part = LinkPartition(frozenset({0, 1}), start=0, end=100)
        assert part.severs(0, 2, 50)
        assert part.severs(2, 1, 50)
        assert not part.severs(0, 1, 50)   # inside the set
        assert not part.severs(2, 3, 50)   # inside the complement
        assert not part.severs(0, 2, 100)  # window closed


class TestFaultPlan:
    def make(self):
        return (FaultPlan()
                .drop(0.2, kinds="requests", start=0, end=50_000)
                .duplicate(0.1, kinds="command")
                .delay(0.5, cycles=300, kinds="replies")
                .reorder(0.3, cycles=100)
                .pause_node(2, start=10_000, end=20_000)
                .partition({3}, start=30_000, end=40_000)
                .fail_node(1, at=80_000))

    def test_empty_and_nonempty(self):
        assert FaultPlan().is_empty()
        assert not self.make().is_empty()
        assert FaultPlan().describe() == "empty plan (fault-free)"

    def test_fluent_builders_accumulate(self):
        plan = self.make()
        assert [r.action for r in plan.message_rules] == [
            "drop", "duplicate", "delay", "reorder"]
        assert len(plan.pauses) == len(plan.partitions) == 1
        assert len(plan.failures) == 1

    def test_json_round_trip(self):
        plan = self.make()
        encoded = json.dumps(plan.to_dict())   # must be JSON-safe
        back = FaultPlan.from_dict(json.loads(encoded))
        assert back.to_dict() == plan.to_dict()
        assert back.describe() == plan.describe()

    def test_describe_mentions_every_clause(self):
        text = self.make().describe()
        for needle in ("drop p=0.20", "duplicate p=0.10", "delay p=0.50",
                       "reorder p=0.30", "pause node 2", "partition [3]",
                       "fail node 1 at 80000"):
            assert needle in text

    def test_sample_is_deterministic_in_the_rng(self):
        a = FaultPlan.sample(random.Random(42), num_nodes=4)
        b = FaultPlan.sample(random.Random(42), num_nodes=4)
        assert a.to_dict() == b.to_dict()
        assert not a.is_empty()

    def test_sample_stays_within_the_documented_shape(self):
        rng = random.Random(7)
        for _ in range(50):
            plan = FaultPlan.sample(rng, num_nodes=4)
            assert 1 <= len(plan.message_rules) <= 3
            for rule in plan.message_rules:
                assert rule.action in ACTIONS
                assert 0.05 <= rule.probability <= 0.35
                assert rule.end is not None   # finite windows only
            for pause in plan.pauses:
                assert 0 <= pause.node < 4
            for failure in plan.failures:
                assert False, "sample() must not hard-fail nodes"
