"""CLI surface of the fault subsystem: ``repro chaos``."""

import json

import pytest

from repro.faults import FaultPlan
from repro.harness.cli import main

pytestmark = pytest.mark.faults


def test_chaos_default_campaign_passes(capsys):
    assert main(["chaos", "--seed", "3", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign: seed=3, 3 runs" in out
    assert "-> OK" in out


def test_chaos_is_reproducible_across_invocations(capsys):
    assert main(["chaos", "--seed", "7", "--rounds", "3"]) == 0
    first = capsys.readouterr().out
    assert main(["chaos", "--seed", "7", "--rounds", "3"]) == 0
    assert capsys.readouterr().out == first


def test_chaos_replays_a_json_plan(tmp_path, capsys):
    plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(plan.to_dict()))
    assert main(["chaos", "--seed", "5", "--rounds", "2",
                 "--test", "mp_scoma", "--plan", str(plan_file)]) == 0
    out = capsys.readouterr().out
    assert "drop p=0.30" in out
    assert "COMPLETED_SC" in out


def test_chaos_no_retry_detects_the_hang(tmp_path, capsys):
    # The mutation self-test from the CLI: with the retransmission
    # layer disabled, a seeded drop plan must be caught as HUNG and
    # the exit code must go nonzero.
    plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(plan.to_dict()))
    assert main(["chaos", "--seed", "5", "--rounds", "1",
                 "--test", "mp_scoma", "--plan", str(plan_file),
                 "--no-retry"]) == 1
    out = capsys.readouterr().out
    assert "HUNG" in out
    assert "-> FAIL" in out


def test_chaos_unknown_test_is_an_error(capsys):
    assert main(["chaos", "--test", "nonesuch"]) == 2
    out = capsys.readouterr().out
    assert "unknown chaos tests: nonesuch" in out
    assert "txn2pc" in out


def test_chaos_rejects_bad_rounds():
    with pytest.raises(SystemExit):
        main(["chaos", "--rounds", "0"])
