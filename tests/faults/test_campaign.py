"""Chaos campaigns: classification, reproducibility, non-vacuity."""

import pytest

from repro.faults import (ChaosCampaign, FaultPlan, RetryPolicy, Verdict,
                          run_chaos)
from repro.verify import suite_by_name

pytestmark = pytest.mark.faults


def litmus(name="mp_scoma"):
    return suite_by_name()[name]


class TestRunChaos:
    def test_fault_free_run_completes_sc(self):
        run = run_chaos(litmus(), FaultPlan(), seed=0)
        assert run.verdict == Verdict.COMPLETED_SC
        assert run.ok
        assert run.violations == []

    def test_drop_plan_completes_through_retries(self):
        plan = FaultPlan().drop(0.3, kinds="requests", end=100_000)
        run = run_chaos(litmus(), plan, seed=5)
        assert run.verdict == Verdict.COMPLETED_SC
        assert run.fault_stats["dropped"] > 0
        assert run.fault_stats["retransmissions"] > 0

    def test_hard_failure_is_a_clean_failure(self):
        plan = FaultPlan().fail_node(1, at=5_000)
        run = run_chaos(litmus(), plan, seed=0)
        assert run.verdict == Verdict.FAILED_CLEAN
        assert run.ok

    def test_permanent_partition_fails_cleanly(self):
        plan = FaultPlan().partition({0}, start=0)
        run = run_chaos(litmus(), plan, seed=0)
        assert run.verdict == Verdict.FAILED_CLEAN
        assert "Unreachable" in run.detail or "retries" in run.detail

    def test_describe_is_one_stable_line_per_run(self):
        run = run_chaos(litmus(), FaultPlan(), seed=0)
        text = run.describe()
        assert "mp_scoma" in text
        assert "COMPLETED_SC" in text
        assert "empty plan" in text


class TestMutationSelfTest:
    """Non-vacuity: the harness detects the failure it was built for.

    The same seeded drop plan must HANG with retransmission disabled
    and complete SC with it enabled — proving both that the verdict
    machinery catches real liveness bugs and that the recovery layer is
    what earns the passing verdict.
    """

    PLAN = FaultPlan().drop(0.3, kinds="requests", end=100_000)

    def test_without_retries_the_drop_plan_hangs(self):
        run = run_chaos(litmus(), self.PLAN, seed=5,
                        retry=RetryPolicy.disabled())
        assert run.verdict == Verdict.HUNG
        assert not run.ok

    def test_with_retries_the_same_plan_completes_sc(self):
        run = run_chaos(litmus(), self.PLAN, seed=5)
        assert run.verdict == Verdict.COMPLETED_SC


class TestCampaign:
    def test_campaign_is_reproducible(self):
        first = ChaosCampaign(seed=7, rounds=4).run()
        second = ChaosCampaign(seed=7, rounds=4).run()
        assert first.verdicts() == second.verdicts()
        assert first.summary() == second.summary()

    def test_default_campaign_is_all_acceptable(self):
        report = ChaosCampaign(seed=7, rounds=4).run()
        assert report.ok, report.summary()
        for run in report.runs:
            assert run.verdict in Verdict.ACCEPTABLE

    def test_summary_tallies_every_run(self):
        report = ChaosCampaign(seed=3, rounds=3).run()
        summary = report.summary()
        assert "3 runs" in summary
        assert summary.strip().endswith(("OK", "FAIL"))

    def test_fixed_plan_is_replayed_every_round(self):
        plan = FaultPlan().delay(0.5, cycles=200)
        report = ChaosCampaign(seed=0, rounds=2, plan=plan,
                               tests=(litmus(),)).run()
        assert all(r.plan is plan for r in report.runs)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            ChaosCampaign(rounds=0)
        with pytest.raises(ValueError):
            ChaosCampaign(tests=())
