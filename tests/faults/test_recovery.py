"""Recovery primitives in isolation: retry policy and sequence dedup."""

import pytest

from repro.faults import RetryPolicy
from repro.interconnect.messages import Message, MessageKind, SequenceTracker

pytestmark = pytest.mark.faults


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(timeout_cycles=1_000, max_retries=4, backoff=2.0)
        assert [policy.timeout(a) for a in range(4)] == [
            1_000, 2_000, 4_000, 8_000]

    def test_defaults_bound_the_total_wait(self):
        policy = RetryPolicy()
        total = sum(policy.timeout(a) for a in range(policy.max_retries))
        assert total < 10 ** 6   # a stall, never an effective hang

    def test_disabled_policy_has_no_retries(self):
        assert RetryPolicy.disabled().max_retries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_cycles=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)


class TestSequenceTracker:
    def test_stamps_are_monotonic_per_link(self):
        seqs = SequenceTracker()
        assert [seqs.stamp(0, 1) for _ in range(3)] == [0, 1, 2]
        # An independent link starts its own sequence.
        assert seqs.stamp(1, 0) == 0

    def test_fresh_messages_accepted_in_order(self):
        seqs = SequenceTracker()
        for seq in range(3):
            assert seqs.accept(0, 1, seq)
        assert seqs.dedup_drops == 0

    def test_replayed_seq_is_dropped(self):
        seqs = SequenceTracker()
        assert seqs.accept(0, 1, seqs.stamp(0, 1))
        assert not seqs.accept(0, 1, 0)    # exact duplicate
        assert seqs.dedup_drops == 1
        # ... but the same seq on another link is fine.
        assert seqs.accept(2, 1, 0)

    def test_older_seq_is_dropped(self):
        seqs = SequenceTracker()
        assert seqs.accept(0, 1, 5)
        assert not seqs.accept(0, 1, 3)
        assert seqs.accept(0, 1, 6)


class TestMessageSeq:
    def test_messages_default_to_unstamped(self):
        msg = Message(kind=MessageKind.READ_REQ, src_node=0, dst_node=1)
        assert msg.seq == -1
