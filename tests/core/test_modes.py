"""Unit tests for page frame modes."""

import pytest

from repro.core.modes import PageMode, parse_mode


def test_globality():
    assert PageMode.SCOMA.is_global
    assert PageMode.LANUMA.is_global
    assert PageMode.CCNUMA.is_global
    assert not PageMode.LOCAL.is_global
    assert not PageMode.COMMAND.is_global


def test_reality():
    assert PageMode.LOCAL.is_real
    assert PageMode.SCOMA.is_real
    assert not PageMode.LANUMA.is_real
    assert PageMode.LANUMA.is_imaginary


def test_parse_mode_variants():
    assert parse_mode("scoma") == PageMode.SCOMA
    assert parse_mode("S-COMA") == PageMode.SCOMA
    assert parse_mode("la_numa") == PageMode.LANUMA
    assert parse_mode("LA-NUMA") == PageMode.LANUMA
    assert parse_mode("ccnuma") == PageMode.CCNUMA


def test_parse_mode_unknown():
    with pytest.raises(ValueError):
        parse_mode("coma")
