"""Unit tests for the Page Information Table."""

import pytest

from repro.core.finegrain import Tag
from repro.core.modes import PageMode
from repro.core.pit import PageInformationTable


@pytest.fixture
def pit():
    return PageInformationTable(node_id=1, lines_per_page=8)


def test_install_scoma_client_tags_invalid(pit):
    entry = pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                        home_frame=9, mode=PageMode.SCOMA)
    assert entry.tags is not None
    assert entry.tags.get(0) == Tag.INVALID


def test_install_scoma_home_tags_exclusive(pit):
    entry = pit.install(3, gpage=40, static_home=1, dynamic_home=1,
                        home_frame=3, mode=PageMode.SCOMA)
    assert entry.tags.get(5) == Tag.EXCLUSIVE


def test_lanuma_has_no_tags(pit):
    entry = pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                        home_frame=9, mode=PageMode.LANUMA)
    assert entry.tags is None


def test_lanuma_at_home_rejected(pit):
    with pytest.raises(ValueError):
        pit.install(3, gpage=40, static_home=1, dynamic_home=1,
                    home_frame=3, mode=PageMode.LANUMA)


def test_double_install_rejected(pit):
    pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                home_frame=9, mode=PageMode.SCOMA)
    with pytest.raises(KeyError):
        pit.install(3, gpage=41, static_home=0, dynamic_home=0,
                    home_frame=9, mode=PageMode.SCOMA)


def test_same_gpage_twice_rejected(pit):
    pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                home_frame=9, mode=PageMode.SCOMA)
    with pytest.raises(KeyError):
        pit.install(4, gpage=40, static_home=0, dynamic_home=0,
                    home_frame=9, mode=PageMode.SCOMA)


def test_reverse_translation_with_correct_guess_is_fast(pit):
    pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                home_frame=9, mode=PageMode.SCOMA)
    entry = pit.by_gpage(40, guess_frame=3)
    assert entry.frame == 3
    assert pit.hash_lookups == 0


def test_reverse_translation_with_wrong_guess_falls_to_hash(pit):
    pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                home_frame=9, mode=PageMode.SCOMA)
    pit.install(5, gpage=41, static_home=0, dynamic_home=0,
                home_frame=2, mode=PageMode.SCOMA)
    entry = pit.by_gpage(40, guess_frame=5)  # guess points at gpage 41
    assert entry.frame == 3
    assert pit.hash_lookups == 1


def test_reverse_translation_unmapped(pit):
    assert pit.by_gpage(99) is None


def test_remove_clears_reverse_map(pit):
    pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                home_frame=9, mode=PageMode.SCOMA)
    pit.remove(3)
    assert pit.by_gpage(40) is None
    assert 3 not in pit


def test_local_frames_skip_reverse_map(pit):
    pit.install(7, gpage=-1, static_home=1, dynamic_home=1,
                home_frame=7, mode=PageMode.LOCAL)
    assert pit.by_gpage(-1) is None


def test_touched_lines(pit):
    entry = pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                        home_frame=9, mode=PageMode.SCOMA)
    entry.touch(0)
    entry.touch(5)
    entry.touch(5)
    assert entry.touched_lines() == 2


def test_memory_firewall():
    pit = PageInformationTable(node_id=1, lines_per_page=8)
    entry = pit.install(3, gpage=40, static_home=0, dynamic_home=0,
                        home_frame=9, mode=PageMode.SCOMA)
    assert pit.write_allowed(3, writer_node=5)  # no capability list
    entry.allowed_writers = {0, 2}
    assert pit.write_allowed(3, writer_node=2)
    assert not pit.write_allowed(3, writer_node=5)
    assert not pit.write_allowed(99, writer_node=0)  # unmapped frame
