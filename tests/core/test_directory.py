"""Unit tests for the full-map directory and its cache."""

import pytest

from repro.core.directory import Directory, DirectoryCache, DirState


def test_create_and_lookup():
    d = Directory(0, lines_per_page=4, cache_entries=8)
    page = d.create_page(10, home_frame=3)
    assert d.page(10) is page
    assert d.line(10, 2).state == DirState.HOME_EXCL
    assert d.line(11, 0) is None
    assert 10 in d
    assert len(d) == 1


def test_duplicate_page_rejected():
    d = Directory(0, 4, 8)
    d.create_page(10, 3)
    with pytest.raises(KeyError):
        d.create_page(10, 4)


def test_remove_and_adopt_moves_state():
    src = Directory(0, 4, 8)
    dst = Directory(1, 4, 8)
    page = src.create_page(10, 3)
    page.lines[1].state = DirState.SHARED
    page.lines[1].sharers = {2}
    moved = src.remove_page(10)
    dst.adopt_page(moved, home_frame=7)
    assert 10 not in src
    assert dst.page(10).home_frame == 7
    assert dst.line(10, 1).sharers == {2}


def test_adopt_duplicate_rejected():
    d = Directory(0, 4, 8)
    page = d.create_page(10, 3)
    with pytest.raises(KeyError):
        d.adopt_page(page, 4)


def test_directory_cache_hit_miss():
    cache = DirectoryCache(2)
    assert cache.access(1, 0) is False  # cold
    assert cache.access(1, 0) is True
    cache.access(2, 0)
    cache.access(3, 0)  # evicts (1, 0), LRU
    assert cache.access(1, 0) is False
    assert cache.misses == 3 + 1
    assert cache.hits == 1


def test_directory_cache_lru_refresh():
    cache = DirectoryCache(2)
    cache.access(1, 0)
    cache.access(2, 0)
    cache.access(1, 0)      # refresh 1
    cache.access(3, 0)      # evicts 2
    assert cache.access(1, 0) is True
    assert cache.access(2, 0) is False


def test_clients_and_counters():
    d = Directory(0, 4, 8)
    page = d.create_page(10, 3)
    page.clients.add(5)
    page.remote_refs += 3
    assert d.page(10).clients == {5}
    assert d.page(10).remote_refs == 3
