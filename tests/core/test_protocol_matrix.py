"""Table-driven coverage of the coherence protocol transition matrix.

For every reachable (directory state, requester kind, operation)
combination, set up the state with real accesses, perform the
operation, and check the resulting directory state, owner/sharers, and
fine-grain tags.  This complements the scenario tests in
``test_controller.py`` with systematic coverage.
"""

import pytest

from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.sim.invariants import check_machine

from tests.conftest import Harness

HOME = 1
CLIENT_A = 0
CLIENT_B = 2
CLIENT_C = 3


def fresh(policy="scoma"):
    return Harness(policy=policy)


def setup_state(h, page, lip, state):
    """Drive the machine into a named directory state for (page, lip)."""
    vaddr = h.vaddr(page, lip)
    if state == "HOME_EXCL":
        h.read(h.cpu_on_node(HOME), vaddr)
    elif state == "HOME_EXCL_DIRTY":
        h.write(h.cpu_on_node(HOME), vaddr)
    elif state == "SHARED_ONE":
        h.read(h.cpu_on_node(CLIENT_A), vaddr)
    elif state == "SHARED_MANY":
        h.read(h.cpu_on_node(CLIENT_A), vaddr)
        h.read(h.cpu_on_node(CLIENT_B), vaddr)
        h.read(h.cpu_on_node(CLIENT_C), vaddr)
    elif state == "CLIENT_EXCL":
        h.write(h.cpu_on_node(CLIENT_A), vaddr)
    else:
        raise ValueError(state)


# (initial state, actor node, op, expected dir state, expected owner,
#  expected sharer superset)
MATRIX = [
    ("HOME_EXCL", CLIENT_B, "read", DirState.SHARED, -1, {CLIENT_B}),
    ("HOME_EXCL", CLIENT_B, "write", DirState.CLIENT_EXCL, CLIENT_B, set()),
    ("HOME_EXCL_DIRTY", CLIENT_B, "read", DirState.SHARED, -1, {CLIENT_B}),
    ("HOME_EXCL_DIRTY", CLIENT_B, "write",
     DirState.CLIENT_EXCL, CLIENT_B, set()),
    ("HOME_EXCL_DIRTY", HOME, "read", DirState.HOME_EXCL, -1, set()),
    ("HOME_EXCL_DIRTY", HOME, "write", DirState.HOME_EXCL, -1, set()),
    ("SHARED_ONE", CLIENT_B, "read", DirState.SHARED, -1,
     {CLIENT_A, CLIENT_B}),
    ("SHARED_ONE", CLIENT_A, "write", DirState.CLIENT_EXCL, CLIENT_A, set()),
    ("SHARED_ONE", CLIENT_B, "write", DirState.CLIENT_EXCL, CLIENT_B, set()),
    ("SHARED_ONE", HOME, "read", DirState.SHARED, -1, {CLIENT_A}),
    ("SHARED_ONE", HOME, "write", DirState.HOME_EXCL, -1, set()),
    ("SHARED_MANY", CLIENT_A, "write", DirState.CLIENT_EXCL, CLIENT_A,
     set()),
    ("SHARED_MANY", HOME, "write", DirState.HOME_EXCL, -1, set()),
    ("CLIENT_EXCL", CLIENT_A, "read", DirState.CLIENT_EXCL, CLIENT_A,
     set()),
    ("CLIENT_EXCL", CLIENT_A, "write", DirState.CLIENT_EXCL, CLIENT_A,
     set()),
    ("CLIENT_EXCL", CLIENT_B, "read", DirState.SHARED, -1,
     {CLIENT_A, CLIENT_B}),
    ("CLIENT_EXCL", CLIENT_B, "write", DirState.CLIENT_EXCL, CLIENT_B,
     set()),
    ("CLIENT_EXCL", HOME, "read", DirState.SHARED, -1, {CLIENT_A}),
    ("CLIENT_EXCL", HOME, "write", DirState.HOME_EXCL, -1, set()),
]


@pytest.mark.parametrize(
    "initial,actor,op,want_state,want_owner,want_sharers", MATRIX,
    ids=["%s-%s-n%d" % (m[0], m[2], m[1]) for m in MATRIX])
def test_transition(initial, actor, op, want_state, want_owner,
                    want_sharers):
    h = fresh()
    page = h.page_homed_at(HOME)
    lip = 2
    setup_state(h, page, lip, initial)
    vaddr = h.vaddr(page, lip)
    if op == "read":
        h.read(h.cpu_on_node(actor), vaddr)
    else:
        h.write(h.cpu_on_node(actor), vaddr)

    dl = h.dir_line(page, lip)
    assert dl.state == want_state
    assert dl.owner == want_owner
    assert want_sharers <= dl.sharers
    # Home fine-grain tags agree with the directory.
    home_tag = h.entry_at(HOME, page).tags.get(lip)
    if want_state == DirState.HOME_EXCL:
        assert home_tag == Tag.EXCLUSIVE
    elif want_state == DirState.SHARED:
        assert home_tag == Tag.SHARED
    else:
        assert home_tag == Tag.INVALID
    assert check_machine(h.machine) == []


@pytest.mark.parametrize("initial", ["HOME_EXCL", "SHARED_MANY",
                                     "CLIENT_EXCL"])
def test_transitions_also_hold_for_lanuma_clients(initial):
    h = fresh(policy="lanuma")
    page = h.page_homed_at(HOME)
    lip = 2
    setup_state(h, page, lip, initial)
    # A second client write always ends CLIENT_EXCL at that client.
    h.write(h.cpu_on_node(CLIENT_C), h.vaddr(page, lip))
    dl = h.dir_line(page, lip)
    assert dl.state == DirState.CLIENT_EXCL
    assert dl.owner == CLIENT_C
    assert check_machine(h.machine) == []
